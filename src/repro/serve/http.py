"""A hand-rolled HTTP/1.1 layer over :mod:`asyncio` streams.

The repository's offline-install posture (stdlib + numpy/scipy only)
rules out aiohttp/uvicorn, and the serving surface is small enough —
five JSON endpoints and one server-sent-event stream — that a minimal,
well-tested HTTP/1.1 subset beats a dependency: request-line + headers
+ ``Content-Length`` bodies in, ``Connection: close`` responses out.

Nothing here knows about scenarios or jobs; the routing lives in
:mod:`repro.serve.app`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HTTPError",
    "Request",
    "read_request",
    "send_json",
    "send_response",
    "start_sse",
    "send_sse_event",
]

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HTTPError(Exception):
    """Maps straight to an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (400 on anything unparseable)."""
        if not self.body:
            raise HTTPError(400, "expected a JSON body")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HTTPError(400, f"unparseable JSON body: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF
    (client closed without sending), :class:`HTTPError` on garbage."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HTTPError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HTTPError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HTTPError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HTTPError(400, "bad Content-Length") from exc
        if length > MAX_BODY_BYTES:
            raise HTTPError(413, "body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HTTPError(400, "truncated body") from exc
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise HTTPError(400, "chunked request bodies are not supported")
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query={k: v for k, v in parse_qsl(split.query)},
        headers=headers,
        body=body,
    )


def _head(
    status: int, content_type: str, length: Optional[int], extra: Tuple[str, ...]
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
        "Cache-Control: no-store",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    lines.extend(extra)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Tuple[str, ...] = (),
) -> None:
    writer.write(_head(status, content_type, len(body), extra_headers) + body)
    await writer.drain()


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    extra_headers: Tuple[str, ...] = (),
) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    await send_response(writer, status, body, "application/json", extra_headers)


async def start_sse(writer: asyncio.StreamWriter) -> None:
    """Open a server-sent-event stream (chunking-free: the connection
    closes when the stream ends, as announced by ``Connection: close``)."""
    writer.write(_head(200, "text/event-stream", None, ()))
    await writer.drain()


async def send_sse_event(
    writer: asyncio.StreamWriter, event: str, payload: Any
) -> None:
    data = json.dumps(payload, sort_keys=True)
    writer.write(f"event: {event}\ndata: {data}\n\n".encode())
    await writer.drain()
