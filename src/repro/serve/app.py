"""The measurement server: routes + lifecycle.

``repro serve`` binds an asyncio TCP server speaking the minimal
HTTP/1.1 of :mod:`repro.serve.http` and exposes the results cache and
the scenario catalog as a service:

* ``POST /v1/measure``          — ScenarioSpec JSON in; a pooled-cache hit
  answers instantly (200), a miss queues a job (202) on the worker pool.
* ``GET  /v1/jobs/<id>``        — job state, progress, terminal result.
* ``GET  /v1/jobs/<id>/events`` — the same as server-sent events, one
  ``progress`` beat per completed replication wave.
* ``DELETE /v1/jobs/<id>``      — cooperative cancel (persisted
  replications survive, so resubmitting resumes).
* ``GET  /v1/scenarios``        — the registered catalog.
* ``GET  /v1/healthz``          — liveness, worker/job counts, store root.

The store root is resolved **once** at construction and pinned —
passed explicitly to every worker — so a mid-run ``$REPRO_CACHE_DIR``
change cannot split the cache (the documented hazard of
:func:`~repro.runner.store.default_cache_dir` in a long-lived
process).  Specs normalise through the same registries as the CLI
before content-hashing, so alias spellings share cache cells, and
results served over HTTP are byte-identical to ``repro run``'s.
"""

from __future__ import annotations

import asyncio
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigurationError
from repro.runner.backends import make_store
from repro.runner.registry import get_scenario, list_scenarios
from repro.runner.results import measurement_to_dict
from repro.runner.spec import ScenarioSpec
from repro.runner.store import default_cache_dir
from repro.serve.http import (
    HTTPError,
    Request,
    read_request,
    send_json,
    send_sse_event,
    start_sse,
)
from repro.serve.jobs import TERMINAL, JobManager

__all__ = ["ReproServer", "ServerThread"]

_SPEC_ERRORS = (ConfigurationError, KeyError, TypeError, ValueError)


def _spec_from_request(payload: Any) -> ScenarioSpec:
    """A spec from a POST body: either a full ScenarioSpec dict, or
    ``{"scenario": <registered name>, <field overrides...>}``."""
    if not isinstance(payload, dict):
        raise HTTPError(400, "expected a JSON object")
    try:
        if "scenario" in payload:
            overrides = {k: v for k, v in payload.items() if k != "scenario"}
            spec = get_scenario(str(payload["scenario"]))
            return spec.replace(**overrides) if overrides else spec
        data = dict(payload)
        data.setdefault("name", "serve")
        return ScenarioSpec.from_dict(data)
    except _SPEC_ERRORS as exc:
        raise HTTPError(400, f"invalid spec: {exc}") from exc


class ReproServer:
    """One serving process: asyncio front end + process worker pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        workers: int = 2,
        cache_dir: Union[str, Path, None] = None,
        backend: str = "locked",
        wave_reps: Optional[int] = 1,
        poll_interval: float = 0.1,
        job_ttl: float = 3600.0,
    ) -> None:
        # pin the root once, up front; workers receive it explicitly
        self.store_root = Path(cache_dir or default_cache_dir()).resolve()
        self.backend = backend
        self.host = host
        self._requested_port = port
        self.poll_interval = poll_interval
        self.started = time.time()
        self.store = make_store(self.store_root, backend)
        self.manager = JobManager(
            self.store_root, backend, workers,
            wave_reps=wave_reps, job_ttl=job_ttl,
        )
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.manager.shutdown()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is not None:
                    await self._dispatch(request, writer)
            except HTTPError as exc:
                await send_json(
                    writer, exc.status, {"error": exc.message}
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                return  # server shutting down mid-request
            except Exception as exc:  # never take the server down
                try:
                    await send_json(
                        writer,
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                    )
                except (ConnectionResetError, BrokenPipeError):
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        parts = [p for p in request.path.split("/") if p]
        if parts[:1] != ["v1"]:
            raise HTTPError(404, f"no such resource: {request.path}")
        tail = parts[1:]
        if tail == ["healthz"]:
            await self._route_healthz(request, writer)
        elif tail == ["scenarios"]:
            await self._route_scenarios(request, writer)
        elif tail == ["measure"]:
            await self._route_measure(request, writer)
        elif tail == ["jobs"]:
            self._require(request, "GET")
            await send_json(writer, 200, {"jobs": self.manager.list()})
        elif len(tail) == 2 and tail[0] == "jobs":
            await self._route_job(request, writer, tail[1])
        elif len(tail) == 3 and tail[0] == "jobs" and tail[2] == "events":
            await self._route_job_events(request, writer, tail[1])
        else:
            raise HTTPError(404, f"no such resource: {request.path}")

    @staticmethod
    def _require(request: Request, *methods: str) -> None:
        if request.method not in methods:
            raise HTTPError(
                405, f"{request.method} not allowed (use {', '.join(methods)})"
            )

    # -- routes -------------------------------------------------------------

    async def _route_healthz(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        self._require(request, "GET")
        await send_json(
            writer,
            200,
            {
                "status": "ok",
                "uptime": time.time() - self.started,
                "workers": self.manager.workers,
                "jobs": self.manager.counts(),
                "store": {
                    "root": str(self.store_root),
                    "backend": self.backend,
                },
            },
        )

    async def _route_scenarios(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        self._require(request, "GET")
        rows = [
            {
                "name": s.name,
                "network": s.network,
                "scheme": s.scheme,
                "traffic": s.traffic,
                "discipline": s.discipline,
                "d": s.d,
                "rho": s.rho,
                "lam": s.lam,
                "p": s.p,
                "replications": s.replications,
                "description": s.description,
            }
            for s in list_scenarios()
        ]
        await send_json(writer, 200, {"scenarios": rows})

    async def _route_measure(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        self._require(request, "POST")
        spec = _spec_from_request(request.json())
        spec_hash = spec.content_hash()
        cached = self.store.load(spec)
        if cached is not None:
            await send_json(
                writer,
                200,
                {
                    "cache": "hit",
                    "spec_hash": spec_hash,
                    "result": measurement_to_dict(cached),
                },
            )
            return
        loop = asyncio.get_running_loop()
        job, created = self.manager.submit(loop, spec)
        await send_json(
            writer,
            202,
            {
                "cache": "miss",
                "job": job.id,
                "coalesced": not created,
                "spec_hash": spec_hash,
                "status": f"/v1/jobs/{job.id}",
                "events": f"/v1/jobs/{job.id}/events",
            },
        )

    def _job_or_404(self, job_id: str):
        job = self.manager.get(job_id)
        if job is None:
            raise HTTPError(404, f"no such job: {job_id}")
        return job

    async def _route_job(
        self, request: Request, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        self._require(request, "GET", "DELETE")
        job = self._job_or_404(job_id)
        if request.method == "DELETE":
            cancellable = self.manager.cancel(job)
            await send_json(
                writer,
                200 if cancellable else 409,
                {
                    "job": job.id,
                    "cancelled": cancellable,
                    "state": job.state,
                },
            )
            return
        await send_json(writer, 200, job.snapshot())

    async def _route_job_events(
        self, request: Request, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        self._require(request, "GET")
        job = self._job_or_404(job_id)
        await start_sse(writer)
        last: Dict[str, Any] = {}
        while True:
            state = job.state
            beat = {"state": state, **job.progress()}
            if beat != last:
                await send_sse_event(writer, "progress", beat)
                last = beat
            if state in TERMINAL:
                await send_sse_event(writer, state, job.snapshot())
                return
            await asyncio.sleep(self.poll_interval)


class ServerThread:
    """A :class:`ReproServer` on a background thread — the harness the
    tests and the serve benchmark drive requests against."""

    def __init__(self, **kwargs: Any) -> None:
        kwargs.setdefault("port", 0)
        self.server = ReproServer(**kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.port}"

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start in time")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def _main() -> None:
            await self.server.start()
            self._ready.set()
            assert self.server._server is not None
            async with self.server._server:
                try:
                    await self.server._server.serve_forever()
                except asyncio.CancelledError:
                    pass

        try:
            self._loop.run_until_complete(_main())
        finally:
            self._loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None:
            return

        def _shutdown() -> None:
            for task in asyncio.all_tasks(self._loop):
                task.cancel()

        self._loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)
        self.server.manager.shutdown()
