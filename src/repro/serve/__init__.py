"""Simulation-as-a-service over the results cache.

``repro serve`` turns the content-hash cache plus the scenario
registry into a long-lived measurement service: POST a ScenarioSpec,
get an instant answer when any previous run (CLI or HTTP, any alias
spelling) already computed it, or a queued job with streamed
per-replication progress when it must be simulated.

Layers:

* :mod:`repro.serve.http` — minimal stdlib HTTP/1.1 over asyncio
  streams (request parsing, JSON responses, server-sent events);
* :mod:`repro.serve.jobs` — the job table and process worker pool,
  with file-based cancel/progress so jobs survive across N workers;
* :mod:`repro.serve.app`  — the routes and server lifecycle
  (:class:`~repro.serve.app.ReproServer`), plus the threaded harness
  (:class:`~repro.serve.app.ServerThread`) tests and benchmarks use.
"""

from repro.serve.app import ReproServer, ServerThread
from repro.serve.jobs import JobManager

__all__ = ["ReproServer", "ServerThread", "JobManager"]
