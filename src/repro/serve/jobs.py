"""Job lifecycle for the measurement server.

A *job* is one cache-missing :class:`~repro.runner.spec.ScenarioSpec`
queued onto a :class:`~concurrent.futures.ProcessPoolExecutor`.  The
worker routes through :func:`repro.runner.engine.measure` — the exact
seq/batch/shm machinery the CLI uses — against a concurrent-safe
store, so a job's cache cells are byte-identical to a ``repro run`` of
the same spec.

Cross-process coordination is deliberately file-based (the worker may
be any of N pool processes, and the pool survives across jobs):

* ``<job_dir>/progress.json`` — atomically replaced after every task
  wave with ``{"completed", "cached", "total"}``; its existence is
  also the queued → running transition.
* ``<job_dir>/cancel``   — a sentinel the worker polls between waves
  (:func:`measure`'s cooperative *cancel* hook).  Cancelled jobs keep
  every persisted per-replication cell, so resubmitting the same spec
  resumes instead of recomputing.

Jobs are coalesced by content hash: a second POST of a spec whose job
is still active returns the same job instead of queueing twice.

Terminal jobs are retained for ``job_ttl`` seconds after they finish
(default one hour) so clients can fetch results, then evicted — table
entry and job directory both — by a lazy sweep on every table access.
Active jobs are never evicted.
"""

from __future__ import annotations

import json
import os
import secrets
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runner.backends import make_store
from repro.runner.engine import MeasurementCancelled, measure
from repro.runner.results import measurement_to_dict
from repro.runner.spec import ScenarioSpec

__all__ = ["Job", "JobManager", "execute_job"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL = (DONE, FAILED, CANCELLED)


def _write_atomic_json(path: str, payload: Dict[str, Any]) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)


def execute_job(
    job_dir: str,
    spec_data: Dict[str, Any],
    store_root: str,
    backend: str,
    wave_reps: Optional[int],
) -> Dict[str, Any]:
    """Run one job in a pool worker; returns its terminal record.

    The store root arrives **explicitly pinned** by the server — never
    re-derived from the environment here — so a mid-run ``$REPRO_CACHE_DIR``
    change cannot split the cache between server and workers.
    Exceptions are folded into the returned record (never raised) so a
    failing spec cannot poison the executor.
    """
    spec = ScenarioSpec.from_dict(spec_data)
    store = make_store(store_root, backend)
    cancel_path = os.path.join(job_dir, "cancel")
    progress_path = os.path.join(job_dir, "progress.json")

    def _cancelled() -> bool:
        return os.path.exists(cancel_path)

    def _progress(ev) -> None:
        _write_atomic_json(
            progress_path,
            {"completed": ev.completed, "cached": ev.cached, "total": ev.total},
        )

    try:
        m = measure(
            spec,
            store=store,
            cancel=_cancelled,
            progress=_progress,
            wave_reps=wave_reps,
        )
        return {"state": DONE, "result": measurement_to_dict(m)}
    except MeasurementCancelled as exc:
        return {"state": CANCELLED, "completed": exc.completed}
    except Exception as exc:  # surfaced to the client, not the pool
        return {"state": FAILED, "error": f"{type(exc).__name__}: {exc}"}


@dataclass
class Job:
    """One queued/running/terminal measurement."""

    id: str
    spec: ScenarioSpec
    spec_hash: str
    job_dir: Path
    created: float
    future: Any = None
    terminal: Optional[Dict[str, Any]] = None
    cancel_requested: bool = False
    finished: Optional[float] = None
    #: progress as last read from the worker's progress file
    last_progress: Dict[str, int] = field(default_factory=dict)

    @property
    def state(self) -> str:
        if self.terminal is not None:
            return self.terminal["state"]
        if self.cancel_requested:
            return CANCELLED if self.future is None else RUNNING
        if (self.job_dir / "progress.json").exists():
            return RUNNING
        return QUEUED

    def progress(self) -> Dict[str, int]:
        """The worker's latest progress beat (sticky: keeps the last
        seen values if the file is momentarily torn or gone)."""
        try:
            payload = json.loads((self.job_dir / "progress.json").read_text())
            self.last_progress = {
                "completed": int(payload["completed"]),
                "cached": int(payload["cached"]),
                "total": int(payload["total"]),
            }
        except (FileNotFoundError, json.JSONDecodeError, KeyError, ValueError):
            pass
        out = dict(
            self.last_progress
            or {"completed": 0, "cached": 0, "total": self.spec.replications}
        )
        out["remaining"] = out["total"] - out["completed"] - out["cached"]
        return out

    def snapshot(self, with_result: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job": self.id,
            "state": self.state,
            "spec_hash": self.spec_hash,
            "scenario": self.spec.name,
            "created": self.created,
            "progress": self.progress(),
        }
        if self.finished is not None:
            out["finished"] = self.finished
        if self.terminal is not None:
            if self.terminal["state"] == FAILED:
                out["error"] = self.terminal["error"]
            if with_result and self.terminal["state"] == DONE:
                out["result"] = self.terminal["result"]
        return out


class JobManager:
    """Owns the worker pool and the job table.

    All methods run on the event-loop thread; only the pool workers
    and the file-based progress/cancel protocol cross processes.
    """

    def __init__(
        self,
        store_root: Path,
        backend: str,
        workers: int,
        wave_reps: Optional[int] = 1,
        state_dir: Optional[Path] = None,
        job_ttl: float = 3600.0,
    ) -> None:
        if job_ttl <= 0:
            raise ValueError(f"job_ttl must be > 0 seconds, got {job_ttl!r}")
        self.store_root = Path(store_root)
        self.backend = backend
        self.wave_reps = wave_reps
        self.job_ttl = float(job_ttl)
        self.workers = max(1, int(workers))
        self.executor = ProcessPoolExecutor(max_workers=self.workers)
        self._owns_state_dir = state_dir is None
        self.state_dir = Path(
            state_dir
            if state_dir is not None
            else tempfile.mkdtemp(prefix="repro-serve-")
        )
        self.jobs: Dict[str, Job] = {}
        #: content hash -> active (non-terminal) job id, for coalescing
        self._active: Dict[str, str] = {}

    def _evict_expired(self, now: Optional[float] = None) -> int:
        """Drop terminal jobs whose retention TTL has lapsed (lazy
        sweep, run on every table access).  Evicts the table entry and
        the job directory; active jobs are untouched.  Returns how
        many jobs were evicted."""
        now = time.time() if now is None else now
        expired = [
            job
            for job in self.jobs.values()
            if job.terminal is not None
            and job.finished is not None
            and job.finished + self.job_ttl < now
        ]
        for job in expired:
            del self.jobs[job.id]
            if self._active.get(job.spec_hash) == job.id:
                del self._active[job.spec_hash]
            shutil.rmtree(job.job_dir, ignore_errors=True)
        return len(expired)

    def submit(self, loop, spec: ScenarioSpec) -> tuple[Job, bool]:
        """Queue *spec*; returns ``(job, created)`` where ``created``
        is false when an active job for the same content hash was
        coalesced onto instead."""
        self._evict_expired()
        spec_hash = spec.content_hash()
        active_id = self._active.get(spec_hash)
        if active_id is not None:
            job = self.jobs[active_id]
            if job.state not in TERMINAL and not job.cancel_requested:
                return job, False
        job_id = secrets.token_hex(6)
        job_dir = self.state_dir / job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        job = Job(
            id=job_id,
            spec=spec,
            spec_hash=spec_hash,
            job_dir=job_dir,
            created=time.time(),
        )
        self.jobs[job_id] = job
        self._active[spec_hash] = job_id
        job.future = loop.run_in_executor(
            self.executor,
            execute_job,
            str(job_dir),
            spec.to_dict(),
            str(self.store_root),
            self.backend,
            self.wave_reps,
        )
        job.future.add_done_callback(lambda fut: self._finish(job, fut))
        return job, True

    def _finish(self, job: Job, fut) -> None:
        job.finished = time.time()
        if fut.cancelled():
            job.terminal = {"state": CANCELLED, "completed": 0}
        else:
            exc = fut.exception()
            if exc is not None:  # e.g. a broken pool; job-level errors
                # are already folded into the record by execute_job
                job.terminal = {
                    "state": FAILED,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            else:
                job.terminal = fut.result()
        if self._active.get(job.spec_hash) == job.id:
            del self._active[job.spec_hash]

    def get(self, job_id: str) -> Optional[Job]:
        self._evict_expired()
        return self.jobs.get(job_id)

    def cancel(self, job: Job) -> bool:
        """Request cancellation; returns whether the job was still
        cancellable.  A queued job's future is cancelled outright when
        the pool has not picked it up; a running one gets the sentinel
        and stops at the next wave boundary."""
        if job.state in TERMINAL:
            return False
        job.cancel_requested = True
        (job.job_dir / "cancel").touch()
        if self._active.get(job.spec_hash) == job.id:
            del self._active[job.spec_hash]
        if job.future is not None:
            job.future.cancel()
        return True

    def counts(self) -> Dict[str, int]:
        self._evict_expired()
        out = {s: 0 for s in (QUEUED, RUNNING, *TERMINAL)}
        for job in self.jobs.values():
            out[job.state] += 1
        return out

    def list(self) -> List[Dict[str, Any]]:
        self._evict_expired()
        return [
            job.snapshot(with_result=False)
            for job in sorted(self.jobs.values(), key=lambda j: j.created)
        ]

    def shutdown(self) -> None:
        for job in self.jobs.values():
            if job.state not in TERMINAL:
                self.cancel(job)
        self.executor.shutdown(wait=False, cancel_futures=True)
        if self._owns_state_dir:
            shutil.rmtree(self.state_dir, ignore_errors=True)
