"""Network plugin for the d-dimensional torus (wrap-around grid).

The second topology shipped through the plugin API, after the
related-work direction of Dietzfelbinger & Woelfel's greedy
lower-bound work on higher-dimensional grids.  The torus has
``side**d`` nodes (``side`` is a network option, default 4; ``d`` is
the spec's dimension field) and uniform destinations; greedy routing
is dimension-order with the shorter direction inside each dimension
(ties at ``side/2`` broken in the + direction) — exactly the
hypercube's rule with radix ``side`` instead of 2.

**Load law.**  Per-dimension offsets are i.i.d. uniform over
``range(side)``, so every + arc of every dimension carries
``lam * E[+ hops per dimension]`` — the same per-ring bottleneck
arithmetic as :mod:`repro.networks.ring` with ``n = side`` — giving
``rho = lam * (1/side) * sum_{2k <= side} k``, independent of ``d``.

**Engines.**  Multi-hop in-dimension movement revisits arc classes, so
like the ring the torus is not levelled; the native vectorised engine
is the fixed-point solver, cross-validated against the event calendar.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.errors import ConfigurationError
from repro.networks.api import (
    NetworkPlugin,
    uniform_ring_bottleneck_hops,
    uniform_ring_hop_pmf,
    uniform_ring_mean_hops,
)
from repro.networks.registry import register_network
from repro.plugins.api import OptionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.topology.torus import Torus
    from repro.traffic.workload import TrafficSample

__all__ = ["TorusNetwork"]


@register_network
class TorusNetwork(NetworkPlugin):
    name = "torus"
    aliases = ("grid",)
    summary = "the side**d-node wrap-around grid (dimension-order greedy)"
    options = (
        OptionSpec(
            "side",
            kind="int",
            default=4,
            description="points per dimension (>= 3); the torus has "
            "side**d nodes",
        ),
    )

    @staticmethod
    def _side(spec: "ScenarioSpec") -> int:
        return spec.option("side", 4)

    def validate(self, spec: "ScenarioSpec") -> None:
        side = self._side(spec)
        if side < 3:
            raise ConfigurationError(
                f"torus side must be >= 3 (the two directions must be "
                f"distinct arcs), got {side}"
            )

    # -- topology ------------------------------------------------------------

    def build_topology(self, spec: "ScenarioSpec") -> "Torus":
        from repro.topology.torus import Torus

        return Torus(self._side(spec), spec.d)

    # -- the load law --------------------------------------------------------

    def lam_for_load(self, spec: "ScenarioSpec") -> float:
        return spec.rho / uniform_ring_bottleneck_hops(self._side(spec))

    def load_factor(self, spec: "ScenarioSpec") -> float:
        return spec.lam * uniform_ring_bottleneck_hops(self._side(spec))

    # -- the traffic interface -----------------------------------------------

    def num_sources(self, spec: "ScenarioSpec") -> int:
        return self._side(spec) ** spec.d

    # address_bits: the NetworkPlugin default (None) — torus addresses
    # are mixed-radix coordinates, not an XOR algebra

    # -- greedy routing ------------------------------------------------------

    # build_workload: the NetworkPlugin default — the traffic axis

    def greedy_paths(
        self, topology: "Torus", spec: "ScenarioSpec", sample: "TrafficSample"
    ) -> List[List[int]]:
        return [
            topology.greedy_path_arcs(
                int(sample.origins[i]), int(sample.destinations[i])
            )
            for i in range(sample.num_packets)
        ]

    # simulate_greedy: the NetworkPlugin default (fixed-point solver
    # over greedy_paths) — multi-hop in-dimension movement is not levelled

    # -- theory --------------------------------------------------------------

    def greedy_theory_bounds(self, spec: "ScenarioSpec") -> Tuple[float, float]:
        """Zero-contention lower bound ``E[T] >= E[hops]``; no known
        closed-form upper bound."""
        return (self.mean_greedy_hops(spec), float("inf"))

    def mean_greedy_hops(self, spec: "ScenarioSpec") -> float:
        return spec.d * uniform_ring_mean_hops(self._side(spec))

    def greedy_hop_pmf(self, spec: "ScenarioSpec") -> "np.ndarray":
        """d-fold convolution of the per-dimension ring distribution."""
        import numpy as np

        per_dim = uniform_ring_hop_pmf(self._side(spec))
        pmf = np.array([1.0])
        for _ in range(spec.d):
            pmf = np.convolve(pmf, per_dim)
        return pmf
