"""Network plugin for the d-dimensional binary hypercube (paper §1–3).

Everything network-specific the stack used to hard-code behind
``if network == "hypercube"`` lives here: the §2.1 load law
``rho = lam * p``, the Props 2/3/12/13 theory, the canonical
dimension-order paths, and the vectorised feed-forward engine as the
native greedy simulator.  The workload itself comes from the **traffic
axis** (:mod:`repro.traffic`): this plugin only declares that its
``2**d`` sources live in a ``d``-bit XOR address space, and the spec's
traffic plugin does the rest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Tuple

from repro.networks.api import NetworkPlugin
from repro.networks.registry import register_network
from repro.plugins.api import OptionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.topology.hypercube import Hypercube
    from repro.traffic.workload import TrafficSample

__all__ = ["HypercubeNetwork"]


@register_network
class HypercubeNetwork(NetworkPlugin):
    name = "hypercube"
    aliases = ("cube", "d-cube")
    summary = "the d-dimensional binary hypercube (paper §1-3, 2**d nodes)"
    options = (
        OptionSpec(
            "dim_order",
            kind="int_tuple",
            description="global dimension crossing order "
            "(vectorized engine only)",
        ),
    )

    # -- topology ------------------------------------------------------------

    def build_topology(self, spec: "ScenarioSpec") -> "Hypercube":
        from repro.topology.hypercube import Hypercube

        return Hypercube(spec.d)

    # -- the traffic interface -----------------------------------------------

    def num_sources(self, spec: "ScenarioSpec") -> int:
        return 1 << spec.d

    def address_bits(self, spec: "ScenarioSpec") -> int:
        return spec.d

    # -- the §2.1 load law ---------------------------------------------------

    def lam_for_load(self, spec: "ScenarioSpec") -> float:
        from repro.core.load import lam_for_load

        return lam_for_load(spec.rho, spec.p)

    def load_factor(self, spec: "ScenarioSpec") -> float:
        return spec.lam * spec.p

    # -- greedy routing ------------------------------------------------------

    # build_workload: the NetworkPlugin default — the spec's traffic
    # plugin drives the eq. (1) workload (and every other law) through
    # num_sources / address_bits above

    def greedy_paths(
        self, topology: "Hypercube", spec: "ScenarioSpec", sample: "TrafficSample"
    ) -> List[List[int]]:
        from repro.sim.eventsim import hypercube_packet_paths

        return hypercube_packet_paths(topology, sample)

    def simulate_greedy(
        self, topology: "Hypercube", spec: "ScenarioSpec", sample: "TrafficSample"
    ) -> "np.ndarray":
        from repro.sim.feedforward import simulate_hypercube_greedy

        dim_order = spec.option("dim_order")
        return simulate_hypercube_greedy(
            topology,
            sample,
            discipline=spec.discipline,
            dim_order=None if dim_order is None else list(dim_order),
        ).delivery

    def simulate_greedy_batch(
        self,
        topology: "Hypercube",
        spec: "ScenarioSpec",
        samples: List["TrafficSample"],
    ) -> List["np.ndarray"]:
        from repro.sim.feedforward import simulate_hypercube_greedy_batch

        dim_order = spec.option("dim_order")
        return simulate_hypercube_greedy_batch(
            topology,
            samples,
            discipline=spec.discipline,
            dim_order=None if dim_order is None else list(dim_order),
        )

    def simulate_greedy_chunked(
        self,
        topology: "Hypercube",
        spec: "ScenarioSpec",
        sample: "TrafficSample",
        chunk_packets: int,
    ) -> "np.ndarray":
        from repro.sim.feedforward import simulate_hypercube_greedy_chunked

        dim_order = spec.option("dim_order")
        return simulate_hypercube_greedy_chunked(
            topology,
            sample,
            chunk_packets=chunk_packets,
            discipline=spec.discipline,
            dim_order=None if dim_order is None else list(dim_order),
        )

    # -- theory --------------------------------------------------------------

    def greedy_theory_bounds(self, spec: "ScenarioSpec") -> Tuple[float, float]:
        """Props 13/12: the greedy delay sandwich of §3."""
        from repro.core import bounds as B

        return (
            B.greedy_delay_lower_bound(spec.d, spec.resolved_lam, spec.p),
            B.greedy_delay_upper_bound(spec.d, spec.resolved_lam, spec.p),
        )

    def mean_greedy_hops(self, spec: "ScenarioSpec") -> float:
        """``d * p``: the Binomial(d, p) mean of eq. (1)."""
        return spec.d * spec.p

    def greedy_hop_pmf(self, spec: "ScenarioSpec") -> "np.ndarray":
        """Binomial(d, p) — Lemma 1's independent bit flips."""
        import numpy as np
        from scipy.stats import binom

        return binom.pmf(np.arange(spec.d + 1), spec.d, spec.p)

    def bound_report(self, spec: "ScenarioSpec") -> List[Tuple[str, Any]]:
        from repro.core import bounds as B
        from repro.networks.api import no_paper_law_report

        off_law = no_paper_law_report(spec)
        if off_law is not None:
            return off_law
        d, rho, p = spec.d, spec.resolved_rho, spec.p
        lam = spec.resolved_lam
        rows: List[Tuple[str, Any]] = [
            ("per-node rate lam", lam),
            ("load factor rho", rho),
            ("stable (Prop 6)", rho < 1),
            ("zero-contention dp", B.zero_contention_delay(d, p)),
        ]
        if rho < 1:
            lower, upper = self.greedy_theory_bounds(spec)
            rows += [
                ("Prop 2 universal lower", B.universal_delay_lower_bound(d, lam, p)),
                ("Prop 3 oblivious lower", B.oblivious_delay_lower_bound(d, lam, p)),
                ("Prop 13 greedy lower", lower),
                ("Prop 12 greedy upper", upper),
                ("queue/node bound", B.mean_queue_per_node_bound(d, lam, p)),
            ]
        return rows
