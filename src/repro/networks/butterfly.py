"""Network plugin for the d-dimensional butterfly (paper §4).

The §4.2 load law ``rho = lam * max(p, 1-p)`` (Prop 15 / eq. (17)),
the Props 14/17 delay bracket, the unique §4.1 paths (one arc per
level), and the vectorised feed-forward engine as the native greedy
simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Tuple

from repro.networks.api import NetworkPlugin
from repro.networks.registry import register_network

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.topology.butterfly import Butterfly
    from repro.traffic.workload import TrafficSample

__all__ = ["ButterflyNetwork"]


@register_network
class ButterflyNetwork(NetworkPlugin):
    name = "butterfly"
    aliases = ("bf",)
    summary = "the d-dimensional butterfly (paper §4, the unfolded cube)"

    # -- topology ------------------------------------------------------------

    def build_topology(self, spec: "ScenarioSpec") -> "Butterfly":
        from repro.topology.butterfly import Butterfly

        return Butterfly(spec.d)

    # -- the §4.2 load law ---------------------------------------------------

    def lam_for_load(self, spec: "ScenarioSpec") -> float:
        from repro.core.load import butterfly_lam_for_load

        return butterfly_lam_for_load(spec.rho, spec.p)

    def load_factor(self, spec: "ScenarioSpec") -> float:
        return spec.lam * max(spec.p, 1.0 - spec.p)

    # -- the traffic interface -----------------------------------------------

    def num_sources(self, spec: "ScenarioSpec") -> int:
        """Packets are born at the ``2**d`` level-0 inputs; origins and
        destinations are *row* addresses."""
        return 1 << spec.d

    def address_bits(self, spec: "ScenarioSpec") -> int:
        """Rows are d-bit addresses — the full bit-mask traffic family
        (Bernoulli flips, bit reversal, transpose, complement) applies."""
        return spec.d

    # -- greedy routing ------------------------------------------------------

    # build_workload: the NetworkPlugin default — the traffic axis
    # drives the §4.2 row workload through num_sources / address_bits

    def greedy_paths(
        self, topology: "Butterfly", spec: "ScenarioSpec", sample: "TrafficSample"
    ) -> List[List[int]]:
        from repro.sim.eventsim import butterfly_packet_paths

        return butterfly_packet_paths(topology, sample)

    def simulate_greedy(
        self, topology: "Butterfly", spec: "ScenarioSpec", sample: "TrafficSample"
    ) -> "np.ndarray":
        from repro.sim.feedforward import simulate_butterfly_greedy

        return simulate_butterfly_greedy(
            topology, sample, discipline=spec.discipline
        ).delivery

    def simulate_greedy_batch(
        self,
        topology: "Butterfly",
        spec: "ScenarioSpec",
        samples: List["TrafficSample"],
    ) -> List["np.ndarray"]:
        from repro.sim.feedforward import simulate_butterfly_greedy_batch

        return simulate_butterfly_greedy_batch(
            topology, samples, discipline=spec.discipline
        )

    def simulate_greedy_chunked(
        self,
        topology: "Butterfly",
        spec: "ScenarioSpec",
        sample: "TrafficSample",
        chunk_packets: int,
    ) -> "np.ndarray":
        from repro.sim.feedforward import simulate_butterfly_greedy_chunked

        return simulate_butterfly_greedy_chunked(
            topology,
            sample,
            chunk_packets=chunk_packets,
            discipline=spec.discipline,
        )

    # -- theory --------------------------------------------------------------

    def greedy_theory_bounds(self, spec: "ScenarioSpec") -> Tuple[float, float]:
        """Props 14/17: the butterfly delay bracket of §4."""
        from repro.core import bounds as B

        return (
            B.butterfly_delay_lower_bound(spec.d, spec.resolved_lam, spec.p),
            B.butterfly_delay_upper_bound(spec.d, spec.resolved_lam, spec.p),
        )

    def mean_greedy_hops(self, spec: "ScenarioSpec") -> float:
        """Exactly d: every §4.1 path crosses one arc per level."""
        return float(spec.d)

    def greedy_hop_pmf(self, spec: "ScenarioSpec") -> "np.ndarray":
        """Degenerate at d hops."""
        import numpy as np

        pmf = np.zeros(spec.d + 1)
        pmf[spec.d] = 1.0
        return pmf

    def bound_report(self, spec: "ScenarioSpec") -> List[Tuple[str, Any]]:
        from repro.networks.api import no_paper_law_report

        off_law = no_paper_law_report(spec)
        if off_law is not None:
            return off_law
        rho = spec.resolved_rho
        rows: List[Tuple[str, Any]] = [
            ("per-input rate lam", spec.resolved_lam),
            ("load factor rho", rho),
            ("stable (Prop 16)", rho < 1),
        ]
        if rho < 1:
            lower, upper = self.greedy_theory_bounds(spec)
            rows += [
                ("Prop 14 lower", lower),
                ("Prop 17 upper", upper),
            ]
        return rows
