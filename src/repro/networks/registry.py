"""The network-plugin registry: decorator registration + entry points.

Mirrors the scheme registry (:mod:`repro.plugins.registry`) on the
network axis, replacing the ``if network == ...`` branches that used to
be scattered through the runner, the CLI and the scheme adapters.  The
registry is populated from three sources:

1. **Built-ins** — the modules in :data:`_BUILTIN_MODULES` are imported
   lazily on first lookup; each registers its plugin at import time
   via the :func:`register_network` decorator.
2. **Entry points** — third-party distributions may declare::

       [project.entry-points."repro.network_plugins"]
       mynet = "mypkg.networks:MyNetworkPlugin"

   and are discovered through :mod:`importlib.metadata` without this
   repository knowing about them.  A broken third-party plugin emits a
   warning instead of taking the registry down.
3. **Runtime** — tests and notebooks call :func:`register_network` /
   :func:`unregister_network` directly.

Lookups accept **aliases**: each plugin may declare alternative
spellings (``"cube"`` for ``"hypercube"``), and
:func:`canonical_network_name` resolves any accepted spelling to the
canonical one — which is what :class:`~repro.runner.spec.ScenarioSpec`
stores (and content-hashes), so an alias and its canonical name always
share one cache cell.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Tuple, Type, Union

from repro.errors import ConfigurationError
from repro.networks.api import NetworkPlugin

__all__ = [
    "register_network",
    "unregister_network",
    "get_network",
    "iter_networks",
    "available_networks",
    "all_network_names",
    "canonical_network_name",
    "ENTRY_POINT_GROUP",
]

ENTRY_POINT_GROUP = "repro.network_plugins"

#: modules whose import registers the built-in network plugins
_BUILTIN_MODULES = (
    "repro.networks.hypercube",
    "repro.networks.butterfly",
    "repro.networks.ring",
    "repro.networks.torus",
)

_PLUGINS: Dict[str, NetworkPlugin] = {}
_ALIASES: Dict[str, str] = {}  # alias -> canonical name
_loaded = False
_loading = False


def register_network(
    plugin: Union[NetworkPlugin, Type[NetworkPlugin]],
    *,
    overwrite: bool = False,
) -> Union[NetworkPlugin, Type[NetworkPlugin]]:
    """Register a plugin (usable as a class decorator).

    Accepts either an instance or a ``NetworkPlugin`` subclass (which
    is instantiated with no arguments).  Returns its argument unchanged
    so it composes as ``@register_network`` above a class definition.
    """
    instance = plugin() if isinstance(plugin, type) else plugin
    if not isinstance(instance, NetworkPlugin):
        raise ConfigurationError(
            f"{instance!r} does not implement the NetworkPlugin protocol"
        )
    if not instance.name:
        raise ConfigurationError("a network plugin needs a non-empty name")
    existing = _PLUGINS.get(instance.name)
    if existing is not None and not overwrite:
        if type(existing) is type(instance):
            return plugin  # idempotent re-import of the same plugin
        raise ConfigurationError(
            f"network {instance.name!r} is already registered by "
            f"{type(existing).__name__} (pass overwrite=True to replace it)"
        )
    for alias in instance.aliases:
        # an alias may never shadow a canonical name, nor an alias a
        # *different* plugin owns — overwrite only replaces same-name
        # registrations, it does not license alias theft
        if alias in _PLUGINS or _ALIASES.get(alias, instance.name) != instance.name:
            raise ConfigurationError(
                f"alias {alias!r} of network {instance.name!r} collides "
                f"with an existing network name or alias"
            )
    if existing is not None:
        unregister_network(existing.name)
    _PLUGINS[instance.name] = instance
    for alias in instance.aliases:
        _ALIASES[alias] = instance.name
    return plugin


def unregister_network(name: str) -> None:
    """Remove a plugin and the aliases it owns (primarily for tests)."""
    plugin = _PLUGINS.pop(name, None)
    if plugin is not None:
        for alias in plugin.aliases:
            if _ALIASES.get(alias) == name:
                _ALIASES.pop(alias)


def _load_entry_points() -> None:
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - stdlib since 3.8
        return
    try:
        eps = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 selection API
        eps = entry_points().get(ENTRY_POINT_GROUP, ())
    for ep in eps:
        if ep.name in _PLUGINS or ep.name in _ALIASES:
            continue  # built-ins (or an earlier entry point) win
        try:
            register_network(ep.load())
        except Exception as exc:  # noqa: BLE001 - isolate bad third parties
            warnings.warn(
                f"network plugin entry point {ep.name!r} failed to load: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )


def _ensure_loaded() -> None:
    global _loaded, _loading
    if _loaded or _loading:
        return
    _loading = True  # re-entrancy guard, cleared on failure so a broken
    try:  # import can be fixed and retried within the process
        import importlib

        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
        _load_entry_points()
        _loaded = True
    finally:
        _loading = False


def get_network(name: str) -> NetworkPlugin:
    """The plugin registered under *name* (canonical or alias), or an
    enumerating error."""
    _ensure_loaded()
    plugin = _PLUGINS.get(_ALIASES.get(name, name))
    if plugin is None:
        known = ", ".join(sorted(_PLUGINS)) or "(none)"
        raise ConfigurationError(
            f"unknown network {name!r}; registered networks: {known}"
        )
    return plugin


def canonical_network_name(name: str) -> str:
    """Resolve *name* (canonical or alias) to the canonical name."""
    return get_network(name).name


def iter_networks() -> List[NetworkPlugin]:
    """All registered plugins, sorted by canonical name."""
    _ensure_loaded()
    return [_PLUGINS[name] for name in sorted(_PLUGINS)]


def available_networks() -> Tuple[str, ...]:
    """Sorted canonical names of every registered network."""
    _ensure_loaded()
    return tuple(sorted(_PLUGINS))


def all_network_names() -> Tuple[str, ...]:
    """Sorted canonical names *and* aliases (the CLI vocabulary)."""
    _ensure_loaded()
    return tuple(sorted({*_PLUGINS, *_ALIASES}))
