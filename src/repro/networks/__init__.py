"""Capability-declaring network plugins: topologies as first-class
citizens.

Mirror of :mod:`repro.plugins` (the scheme axis) on the network axis:
every topology the repository can measure is a
:class:`~repro.networks.api.NetworkPlugin` declaring its identity
(name + aliases), its network-scoped options, its
:class:`~repro.topology.base.Topology` factory, its load-factor ↔
arrival-rate law, its greedy machinery (workload, paths, native
vectorised engine) and its closed-form theory.  The scenario layer,
the parallel engine and the CLI contain no network-specific code at
all — adding a topology is one plugin module (see
:mod:`repro.networks.ring` for the template), or a third-party package
shipping the ``repro.network_plugins`` entry-point group.

Quickstart — a new network in one class::

    from repro.networks import NetworkPlugin, register_network

    @register_network
    class MyNetwork(NetworkPlugin):
        name = "mynet"
        aliases = ("mn",)
        summary = "one line for `repro networks`"

        def build_topology(self, spec): ...
        def lam_for_load(self, spec): ...
        def load_factor(self, spec): ...
        def build_workload(self, spec): ...
        def greedy_paths(self, topology, spec, sample): ...
        def simulate_greedy(self, topology, spec, sample): ...
"""

from repro.networks.api import NetworkPlugin
from repro.networks.registry import (
    all_network_names,
    available_networks,
    canonical_network_name,
    get_network,
    iter_networks,
    register_network,
    unregister_network,
)

__all__ = [
    "NetworkPlugin",
    "all_network_names",
    "available_networks",
    "canonical_network_name",
    "get_network",
    "iter_networks",
    "register_network",
    "unregister_network",
]
