"""The network-plugin protocol: topologies as first-class plugins.

PR 2 opened the *scheme* axis with capability-declaring plugins; this
module opens the *network* axis the same way.  A
:class:`NetworkPlugin` is the single place a topology touches the
scenario subsystem.  It declares its identity (``name`` + ``aliases``)
and its network-scoped ``extra`` options, and implements the hooks the
rest of the stack used to hard-code per network:

* :meth:`~NetworkPlugin.build_topology` — the
  :class:`~repro.topology.base.Topology` for a spec's parameters;
* :meth:`~NetworkPlugin.lam_for_load` / :meth:`~NetworkPlugin.load_factor`
  — the load-factor ↔ arrival-rate law (``ScenarioSpec.resolved_lam``
  / ``resolved_rho`` delegate here);
* :meth:`~NetworkPlugin.num_sources` / :meth:`~NetworkPlugin.address_bits`
  — the node space the **traffic axis** drives: how many sources the
  network exposes and whether its addresses carry the d-bit XOR
  algebra; :meth:`~NetworkPlugin.build_workload` delegates to the
  spec's resolved :class:`~repro.traffic.api.TrafficPlugin`, so the
  arrival process and destination law are a fourth plugin axis rather
  than per-network code;
* :meth:`~NetworkPlugin.greedy_paths` — per-packet arc paths, the
  event-engine cross-validation hook;
* :meth:`~NetworkPlugin.simulate_greedy` — the network's native
  vectorised greedy engine (level-by-level feed-forward where the
  network is levelled, the fixed-point engine otherwise);
* :meth:`~NetworkPlugin.greedy_theory_bounds` /
  :meth:`~NetworkPlugin.bound_report` — the closed-form theory, shared
  by the parallel engine's brackets and the ``repro bounds`` CLI so
  the two can never disagree;
* :meth:`~NetworkPlugin.mean_greedy_hops` /
  :meth:`~NetworkPlugin.greedy_hop_pmf` — the greedy hop-count
  distribution.

Like the scheme API, this module is dependency-light (no numpy import
at runtime, no simulator imports) so plugin modules can import it
without cycles; concrete plugins import their machinery lazily.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from repro.plugins.api import OptionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.topology.base import Topology
    from repro.traffic.workload import TrafficSample

__all__ = ["NetworkPlugin"]


class NetworkPlugin:
    """Base class / protocol for network plugins.

    Subclasses set :attr:`name` (and optionally :attr:`aliases`,
    :attr:`summary`, :attr:`options`), implement the topology /
    load-law / greedy hooks, and may extend :meth:`validate` with
    network-specific cross-field rules.
    """

    #: registry key; also the canonical ``ScenarioSpec.network`` value
    name: str = ""
    #: alternative spellings accepted by specs and the CLI; a spec
    #: built with an alias is normalised to :attr:`name` *before*
    #: content-hashing, so aliases share cache cells
    aliases: Tuple[str, ...] = ()
    #: one-line human description shown by ``repro networks``
    summary: str = ""
    #: network-scoped ``extra`` knobs; validated alongside the scheme's
    #: declared options (the scheme wins on a name collision)
    options: Tuple[OptionSpec, ...] = ()

    # -- option schema -------------------------------------------------------

    def option_spec(self, name: str) -> Optional[OptionSpec]:
        for opt in self.options:
            if opt.name == name:
                return opt
        return None

    def option_names(self) -> Tuple[str, ...]:
        return tuple(opt.name for opt in self.options)

    # -- validation ----------------------------------------------------------

    def validate(self, spec: "ScenarioSpec") -> None:
        """Network-specific cross-field rules (default: none)."""

    # -- topology ------------------------------------------------------------

    def build_topology(self, spec: "ScenarioSpec") -> "Topology":
        """The :class:`~repro.topology.base.Topology` for *spec*'s
        parameters (``d`` plus any network options)."""
        raise NotImplementedError  # pragma: no cover - protocol

    # -- the load law --------------------------------------------------------

    def lam_for_load(self, spec: "ScenarioSpec") -> float:
        """Per-node arrival rate achieving load factor ``spec.rho``."""
        raise NotImplementedError  # pragma: no cover - protocol

    def load_factor(self, spec: "ScenarioSpec") -> float:
        """Load factor (bottleneck arc utilisation) at rate ``spec.lam``."""
        raise NotImplementedError  # pragma: no cover - protocol

    # -- the traffic interface -----------------------------------------------

    def num_sources(self, spec: "ScenarioSpec") -> int:
        """How many packet sources the network exposes (the node count
        traffic laws draw origins and node-addressed destinations
        from).  Default: the topology's node count; networks whose
        sources are a strict subset (the butterfly's level-0 rows)
        override."""
        return self.build_topology(spec).num_nodes

    def address_bits(self, spec: "ScenarioSpec") -> Optional[int]:
        """The network's bit-address width, when its node space is the
        d-bit XOR algebra traffic masks act on (hypercube rows,
        butterfly rows); ``None`` for node-addressed networks (ring,
        torus), which makes the bit-mask traffic family (bitrev,
        transpose, bitcomp) inadmissible and the uniform background
        degrade to the uniform node law."""
        return None

    # -- greedy routing ------------------------------------------------------

    def build_workload(self, spec: "ScenarioSpec") -> Any:
        """The dynamic greedy arrival process: an object whose
        ``generate(horizon, gen)`` returns a
        :class:`~repro.traffic.workload.TrafficSample`.

        Default: delegate to the spec's resolved
        :class:`~repro.traffic.api.TrafficPlugin` — the traffic axis
        owns who sends, when, and to whom, parameterised by this
        network's :meth:`num_sources` / :meth:`address_bits`.  Custom
        networks with a bespoke arrival process may still override.
        """
        return spec.traffic_plugin.build_workload(spec, self)

    def build_workload_batch(
        self,
        spec: "ScenarioSpec",
        horizon: float,
        gens: Sequence["np.random.Generator"],
    ) -> List["TrafficSample"]:
        """R realised workloads, entry *r* **bit-identical** to
        ``build_workload(spec).generate(horizon, gens[r])`` (the
        replication-batched engine path's generation hook).

        Routes through the traffic plugin's
        :meth:`~repro.traffic.api.TrafficPlugin.sample_workload_batch`
        — unless the network overrides :meth:`build_workload`, in which
        case that override stays authoritative for the batch too.
        """
        if type(self).build_workload is not NetworkPlugin.build_workload:
            workload = self.build_workload(spec)
            return [workload.generate(horizon, gen) for gen in gens]
        return spec.traffic_plugin.sample_workload_batch(
            spec, self, horizon, gens
        )

    def greedy_paths(
        self,
        topology: "Topology",
        spec: "ScenarioSpec",
        sample: "TrafficSample",
    ) -> List[List[int]]:
        """Per-packet greedy arc paths (the event-engine hook)."""
        raise NotImplementedError  # pragma: no cover - protocol

    def native_engine(self) -> str:
        """Canonical name of the network's native *vectorised* engine
        (what ``engine="auto"``/``"vectorized"`` resolve to for greedy).

        Default: a network that ships its own level-sweep kernel
        (overrides :meth:`simulate_greedy`) is driven by the
        ``feedforward`` engine plugin; one that only ships
        :meth:`greedy_paths` is driven by the ``fixedpoint`` engine.
        Custom networks may override to name any registered engine.
        """
        if type(self).simulate_greedy is not NetworkPlugin.simulate_greedy:
            return "feedforward"
        return "fixedpoint"

    def simulate_greedy(
        self,
        topology: "Topology",
        spec: "ScenarioSpec",
        sample: "TrafficSample",
    ) -> "np.ndarray":
        """Delivery epochs of *sample* under greedy routing on the
        network's native vectorised engine.

        Default: the fixed-point solver over :meth:`greedy_paths` —
        correct for *any* topology (that is all the ring and torus
        plugins use).  Levelled networks override this with their
        one-pass feed-forward level-sweep kernel, which also flips
        :meth:`native_engine` to the ``feedforward`` engine plugin.
        """
        from repro.sim.fixedpoint import simulate_paths_fixed_point

        return simulate_paths_fixed_point(
            topology.num_arcs,
            sample.times,
            self.greedy_paths(topology, spec, sample),
            discipline=spec.discipline,
        ).delivery

    def simulate_greedy_batch(
        self,
        topology: "Topology",
        spec: "ScenarioSpec",
        samples: List["TrafficSample"],
    ) -> List["np.ndarray"]:
        """Delivery epochs of R independent samples (the
        ``feedforward`` engine's replication-batched fast path).

        Entry *r* must be **bit-identical** to
        ``simulate_greedy(topology, spec, samples[r])``.  Default: a
        plain per-sample loop (correct everywhere, vectorised nowhere);
        the hypercube and butterfly override it with stacked kernels
        that run the whole batch through one level sweep.
        """
        return [self.simulate_greedy(topology, spec, s) for s in samples]

    def simulate_greedy_chunked(
        self,
        topology: "Topology",
        spec: "ScenarioSpec",
        sample: "TrafficSample",
        chunk_packets: int,
    ) -> "np.ndarray":
        """Delivery epochs of *sample*, computed in birth-ordered
        chunks of at most ``chunk_packets`` packets with per-arc queue
        state carried between chunks (the ``feedforward`` engine's
        streaming bounded-memory mode).

        The contract is strict: the result must be **bit-identical** to
        :meth:`simulate_greedy`, with peak memory bounded by the chunk
        size and the topology instead of the horizon.  Default: the
        network ships no chunk-composable kernel.
        """
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"network {self.name!r} ships no chunked-horizon greedy "
            "kernel (NetworkPlugin.simulate_greedy_chunked); drop the "
            "chunk_packets option for this network"
        )

    # -- theory --------------------------------------------------------------

    def greedy_theory_bounds(self, spec: "ScenarioSpec") -> Tuple[float, float]:
        """The closed-form mean-delay bracket for greedy routing, when
        the network has one; default "no known constraint"."""
        return (-math.inf, math.inf)

    def mean_greedy_hops(self, spec: "ScenarioSpec") -> float:
        """Expected greedy path length (``nan`` when unknown)."""
        return float("nan")

    def greedy_hop_pmf(self, spec: "ScenarioSpec") -> "np.ndarray":
        """The greedy hop-count distribution: entry ``k`` is the
        probability that a packet crosses exactly ``k`` arcs."""
        raise NotImplementedError  # pragma: no cover - protocol

    def bound_report(self, spec: "ScenarioSpec") -> List[Tuple[str, Any]]:
        """Rows for the ``repro bounds`` CLI.  The bracket rows must be
        derived from :meth:`greedy_theory_bounds` so the CLI and the
        engine can never disagree — including the traffic gate: off the
        paper's law (:func:`no_paper_law_report`) the CLI reports "no
        known constraint", exactly like the runner's ``theory_bounds``.
        """
        off_law = no_paper_law_report(spec)
        if off_law is not None:
            return off_law
        rows: List[Tuple[str, Any]] = [
            ("per-node rate lam", spec.resolved_lam),
            ("load factor rho", spec.resolved_rho),
            ("stable", spec.resolved_rho < 1),
            ("mean greedy hops", self.mean_greedy_hops(spec)),
        ]
        lower, upper = self.greedy_theory_bounds(spec)
        rows.append(("greedy lower bound", lower))
        rows.append(("greedy upper bound", upper))
        return rows

    # -- cosmetics -----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NetworkPlugin {self.name!r}>"


def no_paper_law_report(spec: "ScenarioSpec") -> Optional[List[Tuple[str, Any]]]:
    """The ``repro bounds`` rows for a spec whose traffic plugin does
    not declare ``paper_law`` — or ``None`` when the closed forms
    apply.  Shared by every network's :meth:`NetworkPlugin.bound_report`
    so the CLI can never print the eq. (1) stability verdict or delay
    bracket for a law the runner's ``theory_bounds`` refuses."""
    if spec.traffic_plugin.paper_law:
        return None
    return [
        ("per-node rate lam", spec.resolved_lam),
        ("traffic", spec.traffic),
        (
            "closed-form theory",
            "none: the paper's load law and delay brackets assume the "
            "eq. (1) uniform/Bernoulli traffic",
        ),
    ]


def uniform_ring_mean_hops(n: int, variant: str = "absolute") -> float:
    """Mean greedy hop count on an n-ring under uniform destinations.

    ``absolute``: ``min(k, n-k)`` averaged over the uniform clockwise
    offset ``k`` (ties at ``n/2`` are one offset, not two); exactly
    ``n/4`` for even n, ``(n*n - 1) / (4n)`` for odd n.
    ``clockwise``: ``(n-1)/2``.
    """
    if variant == "clockwise":
        return (n - 1) / 2.0
    return sum(min(k, n - k) for k in range(n)) / n


def uniform_ring_bottleneck_hops(n: int, variant: str = "absolute") -> float:
    """Mean *clockwise* hops per packet — the bottleneck direction's
    per-arc flow multiplier (ties at ``n/2`` break clockwise, so the
    clockwise arcs carry weakly more flow than the counter-clockwise
    ones; under ``clockwise`` every hop is clockwise)."""
    if variant == "clockwise":
        return (n - 1) / 2.0
    return sum(k for k in range(n) if 2 * k <= n) / n


def uniform_ring_hop_pmf(n: int, variant: str = "absolute") -> "np.ndarray":
    """Greedy hop-count pmf on an n-ring under uniform destinations
    (the torus convolves this per dimension with ``n = side``)."""
    import numpy as np

    if variant == "clockwise":
        return np.full(n, 1.0 / n)
    pmf = np.zeros(n // 2 + 1)
    for k in range(n):
        pmf[min(k, n - k)] += 1.0 / n
    return pmf


__all__ += [
    "no_paper_law_report",
    "uniform_ring_mean_hops",
    "uniform_ring_bottleneck_hops",
    "uniform_ring_hop_pmf",
]
