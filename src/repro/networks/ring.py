"""Network plugin for the bidirectional ring (Papillon-style greedy).

The first topology added *through* the plugin API rather than wired
into the core — following the related-work direction of *Papillon:
Greedy Routing in Rings* (Abraham, Malkhi, Manku).  The ring has
``n = 2**d`` nodes (``d`` plays the same "size exponent" role as the
cube dimension) and uniform destinations; the ``direction`` option
selects the greedy variant:

* ``"absolute"`` (default) — shortest direction, ``min(k, n-k)`` hops
  for clockwise offset ``k``, ties at ``n/2`` broken clockwise;
* ``"clockwise"`` — the unidirectional ring, ``k`` hops.

**Load law.**  Uniform offsets make every clockwise arc carry
``lam * E[cw hops]`` and every counter-clockwise arc
``lam * E[ccw hops]``; the clockwise class is the (weak) bottleneck
because ties break clockwise, so ``rho = lam * E[cw hops]`` with
``E[cw hops] = (1/n) * sum_{2k <= n} k`` under ``absolute`` and
``(n-1)/2`` under ``clockwise``.

**Engines.**  Greedy ring paths wrap around the arc id space, so the
network is *not* levelled: the native vectorised engine is the
fixed-point solver (:mod:`repro.sim.fixedpoint`), cross-validated
against the event calendar exactly like the butterfly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.networks.api import (
    NetworkPlugin,
    uniform_ring_bottleneck_hops,
    uniform_ring_hop_pmf,
    uniform_ring_mean_hops,
)
from repro.networks.registry import register_network
from repro.plugins.api import OptionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.topology.ring import Ring
    from repro.traffic.workload import TrafficSample

__all__ = ["RingNetwork"]


@register_network
class RingNetwork(NetworkPlugin):
    name = "ring"
    aliases = ("cycle",)
    summary = "the 2**d-node bidirectional ring (Papillon-style greedy)"
    options = (
        OptionSpec(
            "direction",
            kind="str",
            default="absolute",
            choices=("absolute", "clockwise"),
            description="greedy variant: shortest absolute distance or "
            "unidirectional clockwise",
        ),
    )

    @staticmethod
    def _variant(spec: "ScenarioSpec") -> str:
        return spec.option("direction", "absolute")

    @staticmethod
    def _n(spec: "ScenarioSpec") -> int:
        return 1 << spec.d

    # -- topology ------------------------------------------------------------

    def build_topology(self, spec: "ScenarioSpec") -> "Ring":
        from repro.topology.ring import Ring

        return Ring(self._n(spec))

    # -- the load law --------------------------------------------------------

    def lam_for_load(self, spec: "ScenarioSpec") -> float:
        return spec.rho / uniform_ring_bottleneck_hops(
            self._n(spec), self._variant(spec)
        )

    def load_factor(self, spec: "ScenarioSpec") -> float:
        return spec.lam * uniform_ring_bottleneck_hops(
            self._n(spec), self._variant(spec)
        )

    # -- the traffic interface -----------------------------------------------

    def num_sources(self, spec: "ScenarioSpec") -> int:
        return self._n(spec)

    # address_bits: the NetworkPlugin default (None) — ring addresses
    # are cyclic node ids, not an XOR algebra, so the bit-mask traffic
    # family is inadmissible and uniform traffic degrades to the
    # uniform node law

    # -- greedy routing ------------------------------------------------------

    # build_workload: the NetworkPlugin default — the traffic axis

    def greedy_paths(
        self, topology: "Ring", spec: "ScenarioSpec", sample: "TrafficSample"
    ) -> List[List[int]]:
        variant = self._variant(spec)
        return [
            topology.greedy_path_arcs(
                int(sample.origins[i]), int(sample.destinations[i]), variant
            )
            for i in range(sample.num_packets)
        ]

    # simulate_greedy: the NetworkPlugin default (fixed-point solver
    # over greedy_paths) — the ring is not levelled

    # -- theory --------------------------------------------------------------

    def greedy_theory_bounds(self, spec: "ScenarioSpec") -> Tuple[float, float]:
        """Zero-contention lower bound: every hop costs at least one
        unit of service, so ``E[T] >= E[hops]``.  No closed-form upper
        bound is known for the ring in the paper's framework."""
        return (self.mean_greedy_hops(spec), float("inf"))

    def mean_greedy_hops(self, spec: "ScenarioSpec") -> float:
        return uniform_ring_mean_hops(self._n(spec), self._variant(spec))

    def greedy_hop_pmf(self, spec: "ScenarioSpec") -> "np.ndarray":
        return uniform_ring_hop_pmf(self._n(spec), self._variant(spec))
