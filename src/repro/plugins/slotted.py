"""Plugin for the §3.4 slotted-time greedy variant.

Packets wait for the next slot boundary before each hop; the vectorized
feed-forward engine handles the slotted workload directly (the dyadic
time grid keeps the shift arithmetic exact).  The scheme owns a single
option — the slot length ``tau`` — and admits FIFO only, matching the
synchronous model of the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.plugins.api import Capabilities, OptionSpec, Runner, SchemePlugin, steady_output
from repro.plugins.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import ScenarioSpec

__all__ = ["SlottedPlugin"]


@register_scheme
class SlottedPlugin(SchemePlugin):
    name = "slotted"
    summary = "slotted-time greedy hypercube routing (§3.4)"
    capabilities = Capabilities(
        networks=("hypercube",),
        engines=("vectorized", "feedforward"),
        options=(
            OptionSpec(
                "tau",
                kind="float",
                default=0.5,
                description="slot length (the +tau term of the §3.4 bound)",
            ),
        ),
    )

    def native_engine(self, spec: "ScenarioSpec"):
        """The slotted workload rides the levelled level sweep (the
        dyadic time grid keeps the shift arithmetic exact)."""
        return "feedforward"

    def theory_bounds(self, spec: "ScenarioSpec"):
        """The §3.4 upper bound next to the Prop 13 lower bound.

        The scheme only admits ``traffic="uniform"`` (its capability
        declaration), so the eq. (1) closed forms always apply here.
        """
        import math

        from repro.core import bounds as B
        from repro.errors import UnstableSystemError

        lam, p, d = spec.resolved_lam, spec.p, spec.d
        tau = float(spec.option("tau", 0.5))
        try:
            return (
                B.greedy_delay_lower_bound(d, lam, p),
                B.slotted_delay_upper_bound(d, lam, p, tau),
            )
        except UnstableSystemError:
            return (-math.inf, math.inf)

    def prepare(self, spec: "ScenarioSpec") -> Runner:
        from repro.sim.slotted import SlottedGreedyHypercube

        scheme = SlottedGreedyHypercube(
            d=spec.d,
            lam=spec.resolved_lam,
            p=spec.p,
            tau=float(spec.option("tau", 0.5)),
        )

        def run(gen):
            result = scheme.run(spec.horizon, gen)
            return steady_output(spec, result.delay_record())

        return run
