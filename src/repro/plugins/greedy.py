"""Plugin for the paper's central scheme: greedy dimension-order routing.

Covers both topologies and both engines:

* **hypercube** — the vectorized feed-forward engine by default
  (:func:`repro.sim.feedforward.simulate_hypercube_greedy`), or the
  event calendar when forced with ``engine="event"`` (cross-validation;
  identical FIFO sample paths by the shared tie-breaking rule);
* **butterfly** — the vectorized engine by default
  (:func:`repro.sim.feedforward.simulate_butterfly_greedy`), or the
  event calendar routing the unique §4.1 paths via
  :func:`repro.sim.eventsim.butterfly_packet_paths`.

RNG contract (golden-pinned): the workload sample is drawn from the
replication stream *before* any engine branch, so forcing the engine
never changes which packets exist — only how their contention is
resolved (identically, up to float round-off).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.plugins.api import (
    Capabilities,
    OptionSpec,
    Runner,
    SchemePlugin,
    resolve_hypercube_law,
    steady_output,
)
from repro.plugins.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import ScenarioSpec

__all__ = ["GreedyPlugin"]


@register_scheme
class GreedyPlugin(SchemePlugin):
    name = "greedy"
    summary = "greedy dimension-order routing (the paper's scheme)"
    capabilities = Capabilities(
        networks=("hypercube", "butterfly"),
        engines=("vectorized", "event"),
        disciplines=("fifo", "ps"),
        options=(
            OptionSpec(
                "law",
                kind="str",
                default="bernoulli",
                choices=("bernoulli", "bitrev"),
                description="destination law (hypercube only)",
            ),
            OptionSpec(
                "dim_order",
                kind="int_tuple",
                description="global dimension crossing order "
                "(hypercube, vectorized engine only)",
            ),
        ),
    )

    def validate(self, spec: "ScenarioSpec") -> None:
        super().validate(spec)
        if spec.option("dim_order") is not None:
            if spec.network == "butterfly":
                raise ConfigurationError(
                    "dim_order is undefined on the butterfly: the §4.1 "
                    "path is unique, crossing dimensions in increasing "
                    "order by construction"
                )
            if spec.engine == "event":
                raise ConfigurationError(
                    "dim_order is a vectorized-engine option"
                )
        if spec.network == "butterfly" and spec.option("law", "bernoulli") != "bernoulli":
            raise ConfigurationError(
                "butterfly scenarios use the Bernoulli law "
                "(law='bitrev' is a hypercube option)"
            )

    def prepare(self, spec: "ScenarioSpec") -> Runner:
        if spec.network == "butterfly":
            return self._prepare_butterfly(spec)
        return self._prepare_hypercube(spec)

    def _prepare_hypercube(self, spec: "ScenarioSpec") -> Runner:
        from repro.sim.eventsim import (
            hypercube_packet_paths,
            simulate_paths_event_driven,
        )
        from repro.sim.feedforward import simulate_hypercube_greedy
        from repro.sim.measurement import DelayRecord
        from repro.topology.hypercube import Hypercube
        from repro.traffic.workload import HypercubeWorkload

        cube = Hypercube(spec.d)
        law = resolve_hypercube_law(spec)
        dim_order = spec.option("dim_order")

        def run(gen):
            workload = HypercubeWorkload(cube, spec.resolved_lam, law)
            sample = workload.generate(spec.horizon, gen)
            if spec.engine == "event":
                paths = hypercube_packet_paths(cube, sample)
                delivery = simulate_paths_event_driven(
                    cube.num_arcs, sample.times, paths, discipline=spec.discipline
                ).delivery
            else:
                delivery = simulate_hypercube_greedy(
                    cube,
                    sample,
                    discipline=spec.discipline,
                    dim_order=None if dim_order is None else list(dim_order),
                ).delivery
            return steady_output(
                spec, DelayRecord(sample.times, delivery, sample.horizon)
            )

        return run

    def _prepare_butterfly(self, spec: "ScenarioSpec") -> Runner:
        from repro.sim.eventsim import (
            butterfly_packet_paths,
            simulate_paths_event_driven,
        )
        from repro.sim.feedforward import simulate_butterfly_greedy
        from repro.sim.measurement import DelayRecord
        from repro.topology.butterfly import Butterfly
        from repro.traffic.destinations import BernoulliFlipLaw
        from repro.traffic.workload import ButterflyWorkload

        bf = Butterfly(spec.d)

        def run(gen):
            workload = ButterflyWorkload(
                bf, spec.resolved_lam, BernoulliFlipLaw(spec.d, spec.p)
            )
            sample = workload.generate(spec.horizon, gen)
            if spec.engine == "event":
                paths = butterfly_packet_paths(bf, sample)
                delivery = simulate_paths_event_driven(
                    bf.num_arcs, sample.times, paths, discipline=spec.discipline
                ).delivery
            else:
                delivery = simulate_butterfly_greedy(
                    bf, sample, discipline=spec.discipline
                ).delivery
            return steady_output(
                spec, DelayRecord(sample.times, delivery, sample.horizon)
            )

        return run
