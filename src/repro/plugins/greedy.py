"""Plugin for the paper's central scheme: greedy routing.

Greedy routing is the one scheme defined on **every** registered
network and drivable by **every** registered engine, and since both
axes became plugin APIs it contains no network- or engine-specific
code at all: the spec's :class:`~repro.networks.api.NetworkPlugin`
supplies the topology, the workload and the per-packet arc paths, and
the resolved :class:`~repro.engines.api.EnginePlugin`
(:func:`repro.engines.registry.resolve_engine` — the level sweep for
levelled networks, the fixed-point solver for ring/torus, the event
calendar for cross-validation) turns a sample into delivery epochs.

RNG contract (golden-pinned): the workload sample is drawn from the
replication stream *before* the engine runs, so forcing the engine
never changes which packets exist — only how their contention is
resolved (identically, up to float round-off).

The scheme also exposes the replication-batched fast path: when the
resolved engine declares batching, :meth:`GreedyPlugin.batch_runner`
hands the parallel runner a closure that stacks R replications into
one vectorised computation (bit-identical to R sequential runs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ConfigurationError, UnstableSystemError
from repro.plugins.api import (
    Capabilities,
    Runner,
    SchemePlugin,
    steady_output,
)
from repro.plugins.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import ScenarioSpec

__all__ = ["GreedyPlugin"]


@register_scheme
class GreedyPlugin(SchemePlugin):
    name = "greedy"
    summary = "greedy routing (the paper's scheme; every network)"
    capabilities = Capabilities(
        # implemented purely against the NetworkPlugin and EnginePlugin
        # protocols, so it runs on every registered network and can be
        # forced onto any engine that supports the network —
        # third-party plugins included
        networks=("*",),
        engines=("vectorized", "feedforward", "fixedpoint", "event"),
        # implemented purely against the workload sample, so any
        # registered traffic law — third-party included — can drive it
        traffics=("*",),
        disciplines=("fifo", "ps"),
        network_options=True,
    )

    def native_engine(self, spec: "ScenarioSpec") -> Optional[str]:
        """Whatever the network plugin declares native: the level
        sweep on levelled networks, the fixed-point solver elsewhere."""
        return spec.network_plugin.native_engine()

    def validate(self, spec: "ScenarioSpec") -> None:
        super().validate(spec)
        # network-scoped options (law, dim_order, direction, side) are
        # validated by the network plugin's schema; the one cross-field
        # rule the scheme owns is that a global dimension crossing
        # order only exists inside the levelled level sweep (the
        # path-based engines replay canonical-order paths)
        if spec.option("dim_order") is not None:
            from repro.engines.registry import resolve_engine

            engine = resolve_engine(spec)
            if engine is None or engine.capabilities.kind != "levelled":
                raise ConfigurationError(
                    "dim_order is a vectorized-engine option (it needs "
                    "the levelled level sweep)"
                )

    def theory_bounds(self, spec: "ScenarioSpec") -> Tuple[float, float]:
        """The network's closed-form greedy bracket (Props 12/13 on the
        hypercube, 14/17 on the butterfly, the zero-contention lower
        bound elsewhere); ``(-inf, inf)`` off the paper's traffic law
        (the traffic plugin's ``paper_law`` declaration) or at unstable
        operating points."""
        import math

        no_bracket = (-math.inf, math.inf)
        if not spec.traffic_plugin.paper_law:
            return no_bracket
        try:
            return spec.network_plugin.greedy_theory_bounds(spec)
        except UnstableSystemError:
            return no_bracket

    def prepare(self, spec: "ScenarioSpec") -> Runner:
        from repro.engines.registry import resolve_engine
        from repro.sim.measurement import DelayRecord

        net = spec.network_plugin
        topology = net.build_topology(spec)
        engine = resolve_engine(spec)

        def run(gen):
            sample = net.build_workload(spec).generate(spec.horizon, gen)
            delivery = engine.simulate(spec, topology, sample)
            return steady_output(
                spec, DelayRecord(sample.times, delivery, sample.horizon)
            )

        return run

    def batch_engine(self, spec: "ScenarioSpec"):
        from repro.engines.registry import resolve_engine

        engine = resolve_engine(spec)
        if engine is None or not engine.supports_batch(spec):
            return None
        return engine

    def batch_runner(self, spec: "ScenarioSpec"):
        engine = self.batch_engine(spec)
        if engine is None:
            return None
        return lambda seeds: engine.simulate_batch(spec, seeds)
