"""Plugin for the paper's central scheme: greedy routing.

Greedy routing is the one scheme defined on **every** registered
network, and since the network axis became a plugin API it contains no
network-specific code at all: the spec's
:class:`~repro.networks.api.NetworkPlugin` supplies the topology, the
workload, the native vectorised engine
(:meth:`~repro.networks.api.NetworkPlugin.simulate_greedy` — the
level-by-level feed-forward engine for the levelled hypercube and
butterfly, the fixed-point solver for ring and torus) and the
per-packet arc paths the event calendar replays for cross-validation.

RNG contract (golden-pinned): the workload sample is drawn from the
replication stream *before* any engine branch, so forcing the engine
never changes which packets exist — only how their contention is
resolved (identically, up to float round-off).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.errors import ConfigurationError, UnstableSystemError
from repro.plugins.api import (
    Capabilities,
    Runner,
    SchemePlugin,
    steady_output,
)
from repro.plugins.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import ScenarioSpec

__all__ = ["GreedyPlugin"]


@register_scheme
class GreedyPlugin(SchemePlugin):
    name = "greedy"
    summary = "greedy routing (the paper's scheme; every network)"
    capabilities = Capabilities(
        # implemented purely against the NetworkPlugin protocol, so it
        # runs on every registered network, third-party ones included
        networks=("*",),
        engines=("vectorized", "event"),
        disciplines=("fifo", "ps"),
        network_options=True,
    )

    def validate(self, spec: "ScenarioSpec") -> None:
        super().validate(spec)
        # network-scoped options (law, dim_order, direction, side) are
        # validated by the network plugin's schema; the one cross-field
        # rule the scheme owns is engine admissibility of dim_order
        if spec.option("dim_order") is not None and spec.engine == "event":
            raise ConfigurationError("dim_order is a vectorized-engine option")

    def theory_bounds(self, spec: "ScenarioSpec") -> Tuple[float, float]:
        """The network's closed-form greedy bracket (Props 12/13 on the
        hypercube, 14/17 on the butterfly, the zero-contention lower
        bound elsewhere); ``(-inf, inf)`` off the Bernoulli law or at
        unstable operating points."""
        import math

        no_bracket = (-math.inf, math.inf)
        if spec.option("law", "bernoulli") != "bernoulli":
            return no_bracket
        try:
            return spec.network_plugin.greedy_theory_bounds(spec)
        except UnstableSystemError:
            return no_bracket

    def prepare(self, spec: "ScenarioSpec") -> Runner:
        from repro.sim.measurement import DelayRecord

        net = spec.network_plugin
        topology = net.build_topology(spec)

        def run(gen):
            sample = net.build_workload(spec).generate(spec.horizon, gen)
            if spec.engine == "event":
                from repro.sim.eventsim import simulate_paths_event_driven

                paths = net.greedy_paths(topology, spec, sample)
                delivery = simulate_paths_event_driven(
                    topology.num_arcs,
                    sample.times,
                    paths,
                    discipline=spec.discipline,
                ).delivery
            else:
                delivery = net.simulate_greedy(topology, spec, sample)
            return steady_output(
                spec, DelayRecord(sample.times, delivery, sample.horizon)
            )

        return run
