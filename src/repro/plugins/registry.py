"""The scheme-plugin registry: decorator registration + entry points.

Replaces the closed ``_DISPATCH`` table of the pre-plugin code.  The
registry is populated from three sources:

1. **Built-ins** — the modules in :data:`_BUILTIN_MODULES` are imported
   lazily on first lookup; each registers its plugins at import time
   via the :func:`register_scheme` decorator.
2. **Entry points** — third-party distributions may declare::

       [project.entry-points."repro.scheme_plugins"]
       myscheme = "mypkg.plugins:MySchemePlugin"

   and are discovered through :mod:`importlib.metadata` without this
   repository knowing about them.  A broken third-party plugin emits a
   warning instead of taking the registry down.
3. **Runtime** — tests and notebooks call :func:`register_scheme` /
   :func:`unregister_scheme` directly.

Lookups are name-based and error messages always enumerate what *is*
registered, so ``ScenarioSpec(scheme="typo", ...)`` is self-diagnosing.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Tuple, Type, Union

from repro.errors import ConfigurationError
from repro.plugins.api import SchemePlugin

__all__ = [
    "register_scheme",
    "unregister_scheme",
    "get_plugin",
    "iter_plugins",
    "available_schemes",
    "available_networks",
    "schemes_for_network",
    "schemes_for_traffic",
    "ENTRY_POINT_GROUP",
]

ENTRY_POINT_GROUP = "repro.scheme_plugins"

#: modules whose import registers the built-in plugins
_BUILTIN_MODULES = (
    "repro.plugins.greedy",
    "repro.plugins.slotted",
    "repro.schemes.random_order",
    "repro.schemes.twophase",
    "repro.schemes.valiant",
    "repro.schemes.deflection",
    "repro.schemes.static_tasks",
)

_PLUGINS: Dict[str, SchemePlugin] = {}
_loaded = False
_loading = False


def register_scheme(
    plugin: Union[SchemePlugin, Type[SchemePlugin]],
    *,
    overwrite: bool = False,
) -> Union[SchemePlugin, Type[SchemePlugin]]:
    """Register a plugin (usable as a class decorator).

    Accepts either an instance or a ``SchemePlugin`` subclass (which is
    instantiated with no arguments).  Returns its argument unchanged so
    it composes as ``@register_scheme`` above a class definition.
    """
    instance = plugin() if isinstance(plugin, type) else plugin
    if not isinstance(instance, SchemePlugin):
        raise ConfigurationError(
            f"{instance!r} does not implement the SchemePlugin protocol"
        )
    if not instance.name:
        raise ConfigurationError("a scheme plugin needs a non-empty name")
    if getattr(instance, "capabilities", None) is None:
        raise ConfigurationError(
            f"plugin {instance.name!r} declares no capabilities"
        )
    existing = _PLUGINS.get(instance.name)
    if existing is not None and not overwrite:
        if type(existing) is type(instance):
            return plugin  # idempotent re-import of the same plugin
        raise ConfigurationError(
            f"scheme {instance.name!r} is already registered by "
            f"{type(existing).__name__} (pass overwrite=True to replace it)"
        )
    _PLUGINS[instance.name] = instance
    return plugin


def unregister_scheme(name: str) -> None:
    """Remove a plugin (primarily for tests tearing down fakes)."""
    _PLUGINS.pop(name, None)


def _load_entry_points() -> None:
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - stdlib since 3.8
        return
    try:
        eps = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 selection API
        eps = entry_points().get(ENTRY_POINT_GROUP, ())
    for ep in eps:
        if ep.name in _PLUGINS:
            continue  # built-ins (or an earlier entry point) win
        try:
            register_scheme(ep.load())
        except Exception as exc:  # noqa: BLE001 - isolate bad third parties
            warnings.warn(
                f"scheme plugin entry point {ep.name!r} failed to load: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )


def _ensure_loaded() -> None:
    global _loaded, _loading
    if _loaded or _loading:
        return
    _loading = True  # re-entrancy guard, cleared on failure so a broken
    try:  # import can be fixed and retried within the process
        import importlib

        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
        _load_entry_points()
        _loaded = True
    finally:
        _loading = False


def get_plugin(name: str) -> SchemePlugin:
    """The plugin registered under *name*, or an enumerating error."""
    _ensure_loaded()
    try:
        return _PLUGINS[name]
    except KeyError:
        known = ", ".join(sorted(_PLUGINS)) or "(none)"
        raise ConfigurationError(
            f"unknown scheme {name!r}; registered schemes: {known}"
        ) from None


def iter_plugins() -> List[SchemePlugin]:
    """All registered plugins, sorted by name."""
    _ensure_loaded()
    return [_PLUGINS[name] for name in sorted(_PLUGINS)]


def available_schemes() -> Tuple[str, ...]:
    """Sorted names of every registered scheme."""
    _ensure_loaded()
    return tuple(sorted(_PLUGINS))


def available_networks() -> Tuple[str, ...]:
    """Sorted canonical names of every registered **network plugin**.

    The network axis has its own registry
    (:mod:`repro.networks.registry`); this re-export keeps the historic
    import path working and makes scheme-capability validation a true
    scheme x network cross-product.
    """
    from repro.networks.registry import available_networks as _nets

    return _nets()


def schemes_for_network(network: str) -> Tuple[str, ...]:
    """Sorted names of the schemes that can run on *network*
    (canonical name or alias)."""
    from repro.networks.registry import canonical_network_name

    _ensure_loaded()
    try:
        canon = canonical_network_name(network)
    except ConfigurationError:
        return ()  # unknown network: no scheme supports it
    return tuple(
        sorted(
            name
            for name, p in _PLUGINS.items()
            if canon in p.capabilities.networks
            or "*" in p.capabilities.networks
        )
    )


def schemes_for_traffic(traffic: str) -> Tuple[str, ...]:
    """Sorted names of the schemes that can run under *traffic*
    (canonical name or alias)."""
    from repro.traffic.registry import canonical_traffic_name, declared_traffic_names

    _ensure_loaded()
    try:
        canon = canonical_traffic_name(traffic)
    except ConfigurationError:
        return ()  # unknown traffic: no scheme supports it
    return tuple(
        sorted(
            name
            for name, p in _PLUGINS.items()
            if canon in declared_traffic_names(p.capabilities.traffics)
            or "*" in p.capabilities.traffics
        )
    )
