"""Capability-declaring scheme plugins: the open extension seam.

Every routing scheme the repository can measure is a
:class:`~repro.plugins.api.SchemePlugin`: a small object that declares
its **capabilities** — which networks it routes, which engines and
queueing disciplines it admits, a typed schema for its ``extra``
options, the side metrics it emits — and provides one
:meth:`~repro.plugins.api.SchemePlugin.prepare` hook turning a
:class:`~repro.runner.spec.ScenarioSpec` into a ``Runner(gen) ->
ReplicationOutput`` closure.

The registry (:mod:`repro.plugins.registry`) replaces the old closed
``_DISPATCH`` table: built-in schemes self-register via the
:func:`~repro.plugins.registry.register_scheme` decorator, and
third-party packages can ship new schemes through the
``repro.scheme_plugins`` entry-point group without touching this
repository.  :class:`~repro.runner.spec.ScenarioSpec` validation is
driven entirely by the declared capabilities, so configuration errors
enumerate what *is* available and why a combination is rejected.

Quickstart — a new scheme in one class::

    from repro.plugins import Capabilities, SchemePlugin, register_scheme
    from repro.plugins.api import steady_output

    @register_scheme
    class EchoPlugin(SchemePlugin):
        name = "echo"
        summary = "toy scheme: deliver every packet at birth"
        capabilities = Capabilities(networks=("hypercube",))

        def prepare(self, spec):
            def run(gen):
                ...  # consume gen, produce a DelayRecord
                return steady_output(spec, record)
            return run
"""

from repro.plugins.api import (
    Capabilities,
    OptionSpec,
    Runner,
    SchemePlugin,
)
from repro.plugins.registry import (
    available_networks,
    available_schemes,
    get_plugin,
    iter_plugins,
    register_scheme,
    schemes_for_network,
    schemes_for_traffic,
    unregister_scheme,
)

__all__ = [
    "Capabilities",
    "OptionSpec",
    "Runner",
    "SchemePlugin",
    "available_networks",
    "available_schemes",
    "get_plugin",
    "iter_plugins",
    "register_scheme",
    "schemes_for_network",
    "schemes_for_traffic",
    "unregister_scheme",
]
