"""The scheme-plugin protocol: capabilities, option schemas, runners.

A plugin is the single place a scheme touches the scenario subsystem.
It declares *capabilities* (which networks/engines/disciplines it
admits, its typed ``extra`` options, its side metrics) consumed by
:class:`~repro.runner.spec.ScenarioSpec` validation and the CLI, and
implements :meth:`SchemePlugin.prepare`, which turns a validated spec
into a ``Runner``: a closure ``runner(gen) -> ReplicationOutput``
executing exactly one replication from one RNG stream.

The run contract is strict: a runner must consume randomness **only**
from the generator it is handed (never module-level state), so that a
replication's numbers depend only on its seed — the property the
parallel engine and the per-replication cache are built on.  For the
built-in schemes the exact RNG consumption order is pinned by the
golden regression suite (``tests/test_golden_dispatch.py``).

This module is intentionally dependency-light (no numpy, no simulator
imports) so scheme modules can import it without cycles; the helpers
that need simulator types import them lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.sim.measurement import DelayRecord
    from repro.sim.run_spec import ReplicationOutput

__all__ = [
    "OptionSpec",
    "Capabilities",
    "Runner",
    "SchemePlugin",
    "steady_output",
]

#: the standardized run contract: one replication from one RNG stream.
Runner = Callable[["np.random.Generator"], "ReplicationOutput"]

#: option kinds understood by :meth:`OptionSpec.validate`
_KINDS = ("str", "int", "float", "bool", "int_tuple")


@dataclass(frozen=True)
class OptionSpec:
    """Typed schema entry for one scheme-specific ``extra`` knob."""

    name: str
    kind: str = "str"  # one of _KINDS
    default: Any = None
    choices: Optional[Tuple[Any, ...]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"option {self.name!r}: unknown kind {self.kind!r} "
                f"(one of {', '.join(_KINDS)})"
            )

    def validate(self, value: Any) -> None:
        """Raise :class:`ConfigurationError` unless *value* fits."""
        ok = True
        if self.kind == "str":
            ok = isinstance(value, str)
        elif self.kind == "bool":
            ok = isinstance(value, bool)
        elif self.kind == "int":
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif self.kind == "float":
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif self.kind == "int_tuple":
            ok = isinstance(value, tuple) and all(
                isinstance(x, int) and not isinstance(x, bool) for x in value
            )
        if not ok:
            raise ConfigurationError(
                f"option {self.name!r} expects a {self.kind}, got {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise ConfigurationError(
                f"option {self.name!r} must be one of "
                f"{', '.join(map(repr, self.choices))}; got {value!r}"
            )


@dataclass(frozen=True)
class Capabilities:
    """What a scheme declares about itself.

    ``networks`` lists canonical network-plugin names, or the wildcard
    ``"*"`` for a scheme implemented entirely against the
    :class:`~repro.networks.api.NetworkPlugin` protocol (greedy), which
    therefore runs on every registered network — including third-party
    ones this repository has never heard of.

    ``engines`` lists the engines a spec may force via
    ``engine="..."`` — canonical :class:`~repro.engines.api.EnginePlugin`
    names, their aliases, or the ``"vectorized"`` directive (the
    network's native vectorised engine); ``engine="auto"`` (the
    scheme's native engine) is always admissible.  Schemes that own
    their whole simulation loop (deflection, the pipelined batch
    baseline, the static tasks) declare no forceable engine at all.

    ``traffics`` lists the traffic laws the scheme can run under —
    canonical :class:`~repro.traffic.api.TrafficPlugin` names or the
    wildcard ``"*"`` for a scheme implemented purely against the
    workload sample (greedy, two-phase), which therefore runs under
    every registered law.  The default is the paper's assumption
    alone: a scheme that hard-codes its own arrival/destination
    machinery (slotted, deflection, the static tasks) only admits
    ``traffic="uniform"`` until it is taught otherwise.
    """

    networks: Tuple[str, ...]
    engines: Tuple[str, ...] = ()
    traffics: Tuple[str, ...] = ("uniform",)
    disciplines: Tuple[str, ...] = ("fifo",)
    options: Tuple[OptionSpec, ...] = ()
    metrics: Tuple[str, ...] = ()
    #: one-shot permutation task: no arrival process, takes neither rho nor lam
    static: bool = False
    #: the scheme routes through the network plugin's greedy machinery
    #: and therefore admits the network's declared ``extra`` options
    #: (``law``/``dim_order`` on the hypercube, ``direction`` on the
    #: ring, ``side`` on the torus, ...)
    network_options: bool = False

    def option_spec(self, name: str) -> Optional[OptionSpec]:
        for opt in self.options:
            if opt.name == name:
                return opt
        return None

    def option_names(self) -> Tuple[str, ...]:
        return tuple(opt.name for opt in self.options)


class SchemePlugin:
    """Base class / protocol for scheme plugins.

    Subclasses set :attr:`name`, :attr:`summary` and
    :attr:`capabilities`, implement :meth:`prepare`, and may extend
    :meth:`validate` with scheme-specific cross-field rules (always
    calling ``super().validate(spec)`` first).
    """

    #: registry key; also the ``ScenarioSpec.scheme`` value
    name: str = ""
    #: one-line human description shown by ``repro schemes``
    summary: str = ""
    capabilities: Capabilities

    # -- validation ----------------------------------------------------------

    def validate(self, spec: "ScenarioSpec") -> None:
        """Capability-driven spec validation.

        Rejections explain the combination *and* enumerate what is
        available, so a failing spec is self-diagnosing.
        """
        caps = self.capabilities
        if "*" not in caps.networks and spec.network not in caps.networks:
            from repro.plugins.registry import schemes_for_network

            peers = ", ".join(schemes_for_network(spec.network)) or "(none)"
            raise ConfigurationError(
                f"scheme {self.name!r} does not run on network "
                f"{spec.network!r}; it supports: {', '.join(caps.networks)} "
                f"(schemes available on {spec.network!r}: {peers})"
            )
        from repro.engines.registry import check_forced_engine, resolve_engine
        from repro.traffic.registry import declared_traffic_names

        check_forced_engine(self, spec)
        declared_traffics = declared_traffic_names(caps.traffics)
        if "*" not in declared_traffics and spec.traffic not in declared_traffics:
            raise ConfigurationError(
                f"scheme {self.name!r} does not run under traffic "
                f"{spec.traffic!r}; it supports: {', '.join(caps.traffics)}"
            )
        if spec.discipline not in caps.disciplines:
            raise ConfigurationError(
                f"scheme {self.name!r} does not support discipline "
                f"{spec.discipline!r}; it supports: "
                f"{', '.join(caps.disciplines)}"
            )
        net = spec.network_plugin
        tp = spec.traffic_plugin
        # engine-scoped options only reach schemes that participate in
        # the engine axis (declare at least one forceable engine)
        engine = resolve_engine(spec) if caps.engines else None
        for key, value in spec.extra:
            # the scheme's schema wins on a name collision with the
            # network's, which wins on the traffic plugin's, which wins
            # on the engine's; network options only apply to schemes
            # that declare they consume them
            # (capabilities.network_options)
            opt = caps.option_spec(key)
            if opt is None and caps.network_options:
                opt = net.option_spec(key)
            if opt is None:
                opt = tp.option_spec(key)
            if opt is None and engine is not None:
                opt = engine.option_spec(key)
            if opt is None:
                declared = ", ".join(caps.option_names()) or "(none)"
                msg = (
                    f"unknown option {key!r} for scheme {self.name!r}; "
                    f"declared options: {declared}"
                )
                if caps.network_options:
                    net_declared = ", ".join(net.option_names()) or "(none)"
                    msg += (
                        f"; options of network {spec.network!r}: {net_declared}"
                    )
                tp_declared = ", ".join(tp.option_names()) or "(none)"
                msg += f"; options of traffic {spec.traffic!r}: {tp_declared}"
                if engine is not None:
                    eng_declared = ", ".join(engine.option_names()) or "(none)"
                    msg += (
                        f"; options of engine {engine.name!r}: {eng_declared}"
                    )
                raise ConfigurationError(msg)
            opt.validate(value)

    # -- theory --------------------------------------------------------------

    def theory_bounds(self, spec: "ScenarioSpec") -> Tuple[float, float]:
        """The closed-form mean-delay bracket for *spec*, when the
        scheme has one (typically delegating to the network plugin's
        hooks); default "no known constraint"."""
        import math

        return (-math.inf, math.inf)

    # -- execution -----------------------------------------------------------

    def native_engine(self, spec: "ScenarioSpec") -> Optional[str]:
        """Canonical name of the engine an ``engine="auto"`` spec runs
        on, or ``None`` when the scheme owns its whole simulation loop
        (the default).

        This is what :func:`repro.engines.registry.resolve_engine`
        consults; schemes that route replications through an
        :class:`~repro.engines.api.EnginePlugin` override it (greedy
        returns whatever the network plugin declares native).
        """
        return None

    def prepare(self, spec: "ScenarioSpec") -> Runner:
        """Build the single-replication runner for a validated spec."""
        raise NotImplementedError  # pragma: no cover - protocol

    def batch_runner(
        self, spec: "ScenarioSpec"
    ) -> Optional[Callable[[Sequence[Any]], list]]:
        """A callable mapping replication seeds to their
        :class:`~repro.sim.run_spec.ReplicationOutput` list as **one**
        stacked computation, or ``None`` when the scheme cannot batch
        (the default).

        The contract matches :meth:`prepare` seed for seed: entry *k*
        of the batch must be bit-identical to running the prepared
        runner on ``as_generator(seeds[k])``.  The parallel runner
        (:func:`repro.runner.engine.measure_many`) routes a spec's
        replications through this hook whenever it returns a runner —
        in process for small batches, chunked across the pool for
        large ones.
        """
        return None

    def batch_engine(self, spec: "ScenarioSpec") -> Optional[Any]:
        """The batching-capable :class:`~repro.engines.api.EnginePlugin`
        behind :meth:`batch_runner`, or ``None`` when the scheme cannot
        batch or owns its batch loop opaquely (the default).

        Exposing the engine — not just the sealed runner closure — lets
        the parallel runner *decompose* a batch: generate all R
        workloads once in the parent (one vectorised
        ``build_workload_batch`` pass), publish the arrays to workers
        through shared memory, and have each worker call the engine's
        ``batch_deliveries``/``batch_output`` on its slice.  The
        bit-identity contract is :meth:`batch_runner`'s, seed for seed.
        """
        return None

    # -- cosmetics -----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SchemePlugin {self.name!r}>"


# ---------------------------------------------------------------------------
# shared adapter helpers
# ---------------------------------------------------------------------------


def steady_output(
    spec: "ScenarioSpec",
    record: "DelayRecord",
    metrics: Tuple[Tuple[str, float], ...] = (),
) -> "ReplicationOutput":
    """The common replication epilogue: trim the record by the spec's
    warm-up/cool-down windows and wrap the steady-state estimate."""
    from repro.sim.run_spec import ReplicationOutput

    mean = record.mean_delay(spec.warmup_fraction, spec.cooldown_fraction)
    return ReplicationOutput(mean, record.num_packets, metrics, record)
