"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so downstream
users can catch everything from this package with a single ``except``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "UnstableSystemError",
    "SimulationError",
    "MeasurementError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class TopologyError(ReproError, ValueError):
    """Invalid node, arc, or dimension for a network topology."""


class UnstableSystemError(ReproError, ValueError):
    """A steady-state quantity was requested for an unstable system.

    Raised by the closed-form queueing/bound evaluators when the load
    factor is >= 1 (the paper's eq. (2) / eq. (17) necessary conditions
    are violated), because the requested stationary average does not
    exist.
    """

    def __init__(self, rho: float, what: str = "steady-state quantity") -> None:
        self.rho = float(rho)
        super().__init__(
            f"{what} undefined: load factor rho={rho:.6g} >= 1 "
            "(system unstable; see paper eq. (2))"
        )


class SimulationError(ReproError, RuntimeError):
    """Internal inconsistency detected while running a simulation."""


class MeasurementError(ReproError, RuntimeError):
    """A statistic was requested from an empty or inconsistent record."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or scheme was configured with invalid parameters."""
