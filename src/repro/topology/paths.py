"""Shortest-path utilities for the hypercube (test/verification support).

The greedy scheme uses only the *canonical* dimension-order path, but
the correctness arguments ("canonical paths are shortest", "there are
``H(x,z)!`` shortest paths") need the general machinery, which also
powers the property-based tests.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator, List, Sequence

from repro.errors import TopologyError
from repro.topology.hypercube import Hypercube

__all__ = [
    "dims_to_cross",
    "path_arcs",
    "all_shortest_paths",
    "is_shortest_path",
]


def dims_to_cross(cube: Hypercube, x: int, z: int, order: Sequence[int] | None = None) -> List[int]:
    """Dimensions separating *x* and *z*, in the given crossing *order*.

    ``order=None`` gives the canonical increasing order.  Otherwise
    *order* must be a permutation of the differing dimensions.
    """
    dims = cube.dims_to_cross(x, z)
    if order is None:
        return dims
    if sorted(order) != dims:
        raise TopologyError(
            f"order {list(order)} is not a permutation of the differing "
            f"dimensions {dims}"
        )
    return list(order)


def path_arcs(cube: Hypercube, x: int, z: int, order: Sequence[int] | None = None) -> List[int]:
    """Arc ids of the shortest path from *x* to *z* crossing dims in *order*."""
    arcs = []
    cur = x
    for j in dims_to_cross(cube, x, z, order):
        arcs.append(cube.arc_index(cur, j))
        cur ^= 1 << j
    return arcs


def all_shortest_paths(cube: Hypercube, x: int, z: int) -> Iterator[List[int]]:
    """Yield the node sequences of *all* shortest x→z paths.

    There are ``H(x,z)!`` of them (one per ordering of the differing
    dimensions); intended for small Hamming distances in tests.
    """
    dims = cube.dims_to_cross(x, z)
    for order in permutations(dims):
        nodes = [x]
        cur = x
        for j in order:
            cur ^= 1 << j
            nodes.append(cur)
        yield nodes


def is_shortest_path(cube: Hypercube, nodes: Sequence[int]) -> bool:
    """True iff *nodes* is a shortest path between its endpoints.

    A path is shortest iff every hop flips exactly one bit and no
    dimension is crossed twice (length == Hamming distance).
    """
    if len(nodes) == 0:
        return False
    if len(nodes) == 1:
        return True
    seen_dims = set()
    for a, b in zip(nodes, nodes[1:]):
        cube.validate_node(a)
        cube.validate_node(b)
        diff = a ^ b
        if diff == 0 or (diff & (diff - 1)) != 0:
            return False  # not a single-bit hop
        dim = diff.bit_length() - 1
        if dim in seen_dims:
            return False  # re-crossed a dimension => not shortest
        seen_dims.add(dim)
    return len(nodes) - 1 == cube.hamming(nodes[0], nodes[-1])
