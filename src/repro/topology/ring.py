"""The n-node bidirectional ring (cycle) network.

The ring is the simplest unit-capacity interconnection network and the
setting of the greedy-routing line of work around *Papillon* (Abraham,
Malkhi, Manku): nodes are the integers ``0 .. n-1`` arranged in a
cycle, and every node owns one **clockwise** arc ``i -> (i+1) mod n``
and one **counter-clockwise** arc ``i -> (i-1) mod n``.

Greedy routing comes in two classical variants, both supported here:

* ``"clockwise"`` — packets only ever travel clockwise, crossing
  ``(z - x) mod n`` arcs (the unidirectional ring);
* ``"absolute"``  — packets take the direction of smaller absolute
  distance, crossing ``min(k, n-k)`` arcs for clockwise offset ``k``
  (ties at ``k = n/2`` broken clockwise, deterministically).

Arc id layout (direction-major)::

    clockwise arc of node i          -> id i
    counter-clockwise arc of node i  -> id n + i

so the two direction classes occupy the contiguous id slices
``[0, n)`` and ``[n, 2n)`` — the ring's two "levels" for the
:class:`~repro.topology.base.Topology` contract.  Unlike the levelled
hypercube/butterfly equivalents, a greedy ring path may wrap around
the id space, so the ring is simulated by the fixed-point engine
(:mod:`repro.sim.fixedpoint`) or the event calendar, never the
level-by-level feed-forward engine.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.topology.base import Arc, Topology

__all__ = ["Ring", "CLOCKWISE", "COUNTER_CLOCKWISE", "RING_DIRECTIONS"]

#: direction codes (== the ring's two arc levels)
CLOCKWISE = 0
COUNTER_CLOCKWISE = 1

#: greedy-variant names accepted by the path helpers
RING_DIRECTIONS = ("absolute", "clockwise")


class Ring(Topology):
    """The directed n-cycle with direction-major dense arc ids.

    Parameters
    ----------
    n:
        Number of nodes; ``n >= 3`` so the two directions are distinct
        arcs, and kept modest (``n <= 2**24``) since the simulators
        materialise per-arc state.
    """

    MAX_NODES = 1 << 24

    def __init__(self, n: int) -> None:
        if not isinstance(n, (int, np.integer)) or isinstance(n, bool):
            raise TopologyError(f"ring size must be an integer, got {n!r}")
        if not 3 <= n <= self.MAX_NODES:
            raise TopologyError(
                f"ring size must be in [3, {self.MAX_NODES}], got {n}"
            )
        self._n = int(n)

    # -- basic facts ---------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_arcs(self) -> int:
        """``2n`` directed arcs (one per node per direction)."""
        return 2 * self._n

    @property
    def num_levels(self) -> int:
        """Two direction classes: clockwise and counter-clockwise."""
        return 2

    @property
    def diameter(self) -> int:
        """``floor(n/2)`` under shortest-direction routing."""
        return self._n // 2

    # -- node helpers --------------------------------------------------------

    def validate_node(self, x: int) -> int:
        if not 0 <= x < self._n:
            raise TopologyError(f"node {x} out of range [0, {self._n})")
        return x

    def offset(self, x: int, z: int) -> int:
        """Clockwise offset ``(z - x) mod n`` from *x* to *z*."""
        self.validate_node(x)
        self.validate_node(z)
        return (z - x) % self._n

    def distance(self, x: int, z: int) -> int:
        """Absolute (shortest-direction) distance ``min(k, n-k)``."""
        k = self.offset(x, z)
        return min(k, self._n - k)

    # -- arc id layout -------------------------------------------------------

    def arc_index(self, tail: int, direction: int) -> int:
        """Dense id of the *tail* node's arc in *direction*."""
        self.validate_node(tail)
        if direction not in (CLOCKWISE, COUNTER_CLOCKWISE):
            raise TopologyError(
                f"direction must be 0 (clockwise) or 1 (counter-clockwise), "
                f"got {direction}"
            )
        return direction * self._n + tail

    def arc(self, index: int) -> Arc:
        self.validate_arc_index(index)
        direction, tail = divmod(index, self._n)
        step = 1 if direction == CLOCKWISE else -1
        return Arc(
            index=index,
            tail=tail,
            head=(tail + step) % self._n,
            level=direction,
        )

    def level_slice(self, level: int) -> slice:
        if level not in (CLOCKWISE, COUNTER_CLOCKWISE):
            raise TopologyError(f"level {level} out of range [0, 2)")
        return slice(level * self._n, (level + 1) * self._n)

    def arcs(self) -> Iterator[Arc]:
        for index in range(self.num_arcs):
            yield self.arc(index)

    # -- greedy paths --------------------------------------------------------

    def greedy_hops(self, x: int, z: int, variant: str = "absolute") -> int:
        """Number of arcs the greedy packet crosses from *x* to *z*."""
        k = self.offset(x, z)
        if variant == "clockwise":
            return k
        if variant == "absolute":
            # ties at k == n/2 go clockwise, so "clockwise wins at <= n/2"
            return k if 2 * k <= self._n else self._n - k
        raise ConfigurationError(
            f"unknown ring greedy variant {variant!r}; "
            f"one of {', '.join(RING_DIRECTIONS)}"
        )

    def greedy_path_arcs(
        self, x: int, z: int, variant: str = "absolute"
    ) -> List[int]:
        """Dense arc ids of the greedy path from *x* to *z*."""
        k = self.offset(x, z)
        if variant not in RING_DIRECTIONS:
            raise ConfigurationError(
                f"unknown ring greedy variant {variant!r}; "
                f"one of {', '.join(RING_DIRECTIONS)}"
            )
        clockwise = variant == "clockwise" or 2 * k <= self._n
        arcs: List[int] = []
        cur = x
        hops = k if clockwise else self._n - k
        for _ in range(hops):
            if clockwise:
                arcs.append(cur)
                cur = (cur + 1) % self._n
            else:
                arcs.append(self._n + cur)
                cur = (cur - 1) % self._n
        return arcs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ring(n={self._n})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ring) and other._n == self._n

    def __hash__(self) -> int:
        return hash(("Ring", self._n))
