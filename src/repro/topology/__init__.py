"""Interconnection-network topologies (substrate).

The paper studies two networks:

* the **d-dimensional binary hypercube** (:class:`Hypercube`) — §1.1 of
  the paper and Fig. 1a;
* the **d-dimensional butterfly** (:class:`Butterfly`) — §4.1 and Fig. 3a,
  the "unfolded" hypercube.

Two further unit-capacity networks from the related-work directions
ship through the network-plugin API (:mod:`repro.networks`):

* the **bidirectional ring** (:class:`Ring`) — Papillon-style greedy;
* the **d-dimensional torus** (:class:`Torus`) — wrap-around grids.

All classes expose a dense integer *arc indexing* that the queueing
simulators build on, plus the canonical (dimension-order / greedy)
path machinery used by the greedy routing scheme.

Note on conventions: the paper numbers dimensions ``1..d`` and butterfly
levels ``1..d+1``; this library uses 0-based indices throughout
(``dim`` in ``range(d)``, levels in ``range(d+1)``), so the paper's
``e_j`` is our ``1 << (j-1)``.
"""

from repro.topology.base import Arc, Topology
from repro.topology.butterfly import Butterfly, ButterflyArc
from repro.topology.graphs import butterfly_digraph, hypercube_digraph
from repro.topology.hypercube import Hypercube, HypercubeArc
from repro.topology.ring import Ring
from repro.topology.torus import Torus
from repro.topology.paths import (
    all_shortest_paths,
    dims_to_cross,
    is_shortest_path,
    path_arcs,
)

__all__ = [
    "Arc",
    "Topology",
    "Hypercube",
    "HypercubeArc",
    "Butterfly",
    "ButterflyArc",
    "Ring",
    "Torus",
    "dims_to_cross",
    "all_shortest_paths",
    "is_shortest_path",
    "path_arcs",
    "hypercube_digraph",
    "butterfly_digraph",
]
