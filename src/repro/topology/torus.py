"""The d-dimensional torus (wrap-around grid) with side ``m``.

Nodes are the ``m**d`` points of ``{0..m-1}**d``, encoded mixed-radix:
coordinate ``j`` of node ``v`` is ``(v // m**j) % m``.  Every node owns
``2d`` arcs — one per (dimension, direction) pair — connecting it to
its neighbour one step along that dimension, with wrap-around.  This
is the higher-dimensional grid of Dietzfelbinger & Woelfel's greedy
lower-bound line of work; the ring is the ``d = 1`` special case
(kept as its own class, :class:`~repro.topology.ring.Ring`, for its
direction variants).

Greedy routing is dimension-order, exactly as on the hypercube:
dimensions are corrected in increasing index order, and within a
dimension the packet takes the direction of smaller absolute offset
(ties at ``m/2`` broken in the + direction, deterministically).

Arc id layout ((dimension, direction)-major)::

    arc_index(v, dim, direction) = (2*dim + direction) * m**d + v

so each of the ``2d`` (dimension, direction) classes — the torus's
"levels" for the :class:`~repro.topology.base.Topology` contract —
occupies one contiguous id slice of length ``m**d``.  Like the ring
(and unlike the levelled hypercube equivalent), in-dimension movement
can revisit the same arc class many times, so the torus is simulated
by the fixed-point engine (:mod:`repro.sim.fixedpoint`) or the event
calendar, never the level-by-level feed-forward engine.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.topology.base import Arc, Topology

__all__ = ["Torus", "PLUS", "MINUS"]

#: direction codes within a dimension
PLUS = 0
MINUS = 1


class Torus(Topology):
    """The directed (m, d)-torus with (dimension, direction)-major arc ids.

    Parameters
    ----------
    side:
        Points per dimension; ``side >= 3`` so the two directions are
        distinct arcs.
    d:
        Number of dimensions; the torus has ``side**d`` nodes and
        ``2 * d * side**d`` arcs.  ``side**d`` is capped at ``2**22``
        since the simulators materialise per-arc state.
    """

    MAX_NODES = 1 << 22

    def __init__(self, side: int, d: int) -> None:
        for label, value in (("side", side), ("d", d)):
            if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                raise TopologyError(f"torus {label} must be an integer, got {value!r}")
        if side < 3:
            raise TopologyError(f"torus side must be >= 3, got {side}")
        if d < 1:
            raise TopologyError(f"torus dimension must be >= 1, got {d}")
        if side**d > self.MAX_NODES:
            raise TopologyError(
                f"torus {side}**{d} has more than {self.MAX_NODES} nodes"
            )
        self._m = int(side)
        self._d = int(d)
        self._n = self._m**self._d

    # -- basic facts ---------------------------------------------------------

    @property
    def side(self) -> int:
        """Points per dimension."""
        return self._m

    @property
    def d(self) -> int:
        """Number of dimensions."""
        return self._d

    @property
    def num_nodes(self) -> int:
        """``side**d`` nodes."""
        return self._n

    @property
    def num_arcs(self) -> int:
        """``2 * d * side**d`` directed arcs."""
        return 2 * self._d * self._n

    @property
    def num_levels(self) -> int:
        """One level per (dimension, direction) pair."""
        return 2 * self._d

    @property
    def diameter(self) -> int:
        """``d * floor(side/2)`` under per-dimension shortest routing."""
        return self._d * (self._m // 2)

    # -- node encoding -------------------------------------------------------

    def validate_node(self, v: int) -> int:
        if not 0 <= v < self._n:
            raise TopologyError(f"node {v} out of range [0, {self._n})")
        return v

    def validate_dim(self, dim: int) -> int:
        if not 0 <= dim < self._d:
            raise TopologyError(f"dimension {dim} out of range [0, {self._d})")
        return dim

    def coords(self, v: int) -> Tuple[int, ...]:
        """Mixed-radix coordinates of node *v* (dimension 0 first)."""
        self.validate_node(v)
        out = []
        for _ in range(self._d):
            v, c = divmod(v, self._m)
            out.append(c)
        return tuple(out)

    def node(self, coords: Tuple[int, ...]) -> int:
        """Inverse of :meth:`coords`."""
        if len(coords) != self._d:
            raise TopologyError(
                f"expected {self._d} coordinates, got {len(coords)}"
            )
        v = 0
        for j in reversed(range(self._d)):
            c = coords[j]
            if not 0 <= c < self._m:
                raise TopologyError(f"coordinate {c} out of range [0, {self._m})")
            v = v * self._m + c
        return v

    def coord(self, v: int, dim: int) -> int:
        """Coordinate *dim* of node *v*."""
        self.validate_node(v)
        self.validate_dim(dim)
        return (v // self._m**dim) % self._m

    def step(self, v: int, dim: int, direction: int) -> int:
        """Neighbour of *v* one hop along *dim* in *direction* (with wrap)."""
        stride = self._m**self.validate_dim(dim)
        c = (v // stride) % self._m
        delta = 1 if direction == PLUS else -1
        return v + ((c + delta) % self._m - c) * stride

    # -- arc id layout -------------------------------------------------------

    def arc_index(self, tail: int, dim: int, direction: int) -> int:
        """Dense id of arc ``tail -> step(tail, dim, direction)``."""
        self.validate_node(tail)
        self.validate_dim(dim)
        if direction not in (PLUS, MINUS):
            raise TopologyError(
                f"direction must be 0 (+) or 1 (-), got {direction}"
            )
        return (2 * dim + direction) * self._n + tail

    def arc_components(self, index: int) -> Tuple[int, int, int]:
        """Invert :meth:`arc_index`: returns ``(tail, dim, direction)``."""
        self.validate_arc_index(index)
        level, tail = divmod(index, self._n)
        dim, direction = divmod(level, 2)
        return tail, dim, direction

    def arc(self, index: int) -> Arc:
        tail, dim, direction = self.arc_components(index)
        return Arc(
            index=index,
            tail=tail,
            head=self.step(tail, dim, direction),
            level=2 * dim + direction,
        )

    def level_slice(self, level: int) -> slice:
        if not 0 <= level < self.num_levels:
            raise TopologyError(
                f"level {level} out of range [0, {self.num_levels})"
            )
        return slice(level * self._n, (level + 1) * self._n)

    def arcs(self) -> Iterator[Arc]:
        for index in range(self.num_arcs):
            yield self.arc(index)

    # -- greedy paths (dimension order, shortest direction) -------------------

    def greedy_hops(self, x: int, z: int) -> int:
        """Total arcs crossed: sum over dimensions of ``min(k, m-k)``."""
        self.validate_node(x)
        self.validate_node(z)
        total = 0
        for dim in range(self._d):
            k = (self.coord(z, dim) - self.coord(x, dim)) % self._m
            total += min(k, self._m - k)
        return total

    def greedy_path_arcs(self, x: int, z: int) -> List[int]:
        """Dense arc ids of the greedy path from *x* to *z*.

        Dimensions in increasing order; within a dimension, the shorter
        direction (ties at ``m/2`` broken in the + direction).
        """
        self.validate_node(x)
        self.validate_node(z)
        arcs: List[int] = []
        cur = x
        for dim in range(self._d):
            k = (self.coord(z, dim) - self.coord(cur, dim)) % self._m
            plus = 2 * k <= self._m
            hops = k if plus else self._m - k
            direction = PLUS if plus else MINUS
            for _ in range(hops):
                arcs.append((2 * dim + direction) * self._n + cur)
                cur = self.step(cur, dim, direction)
        return arcs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Torus(side={self._m}, d={self._d})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Torus)
            and other._m == self._m
            and other._d == self._d
        )

    def __hash__(self) -> int:
        return hash(("Torus", self._m, self._d))
