"""NetworkX adapters — independent validation of the topology substrate.

These converters rebuild the cube/butterfly as ``networkx.DiGraph``
objects so graph-theoretic invariants (degrees, diameter, path counts)
can be checked against a third-party implementation in the test suite,
and so downstream users can feed the topologies to standard graph
tooling.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube

__all__ = ["hypercube_digraph", "butterfly_digraph"]


def hypercube_digraph(cube: Hypercube) -> "nx.DiGraph":
    """The d-cube as a directed graph; arcs carry ``index`` and ``dim``."""
    g = nx.DiGraph()
    g.add_nodes_from(range(cube.num_nodes))
    for arc in cube.arcs():
        g.add_edge(arc.tail, arc.head, index=arc.index, dim=arc.level)
    return g


def butterfly_digraph(bf: Butterfly) -> "nx.DiGraph":
    """The butterfly as a directed graph over dense node ids
    (``level * 2**d + row``); arcs carry ``index``, ``level``, ``kind``."""
    g = nx.DiGraph()
    g.add_nodes_from(range(bf.num_nodes))
    for arc_id in range(bf.num_arcs):
        row, level, kind = bf.arc_components(arc_id)
        arc = bf.arc(arc_id)
        g.add_edge(arc.tail, arc.head, index=arc_id, level=level, kind=kind)
    return g
