"""The d-dimensional butterfly network (paper §4.1, Fig. 3a).

The butterfly is the "unfolded" d-cube: ``(d+1) * 2**d`` nodes organised
in ``d+1`` levels of ``2**d`` nodes each.  Node ``[x; j]`` (row ``x``,
level ``j`` with 0-based ``j`` in ``range(d+1)``) is connected, for
``j < d``, to

* ``[x; j+1]``            via the **straight** arc ``(x; j; s)``, and
* ``[x ^ e_j; j+1]``      via the **vertical** arc ``(x; j; v)``.

Packets enter at level 0 and leave at level ``d``; for every
origin/destination pair there is a *unique* path, whose vertical arcs
correspond exactly to the hypercube dimensions in which the two row
addresses differ, crossed in increasing index order (§4.1).

Arc id layout (level-major, straight/vertical interleaved by row)::

    arc_index(x, level, kind) = level * 2**(d+1) + 2 * x + kind

with ``kind == 0`` for straight, ``1`` for vertical, so level ``j``
occupies the contiguous slice ``[j * 2**(d+1), (j+1) * 2**(d+1))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.topology.base import Arc, Topology

__all__ = ["Butterfly", "ButterflyArc", "STRAIGHT", "VERTICAL"]

#: arc-kind codes
STRAIGHT = 0
VERTICAL = 1


@dataclass(frozen=True, slots=True)
class ButterflyArc:
    """A butterfly arc ``[row; level] -> [row (^ e_level); level+1]``."""

    row: int
    level: int
    kind: int  # STRAIGHT or VERTICAL

    @property
    def head_row(self) -> int:
        return self.row ^ (1 << self.level) if self.kind == VERTICAL else self.row


class Butterfly(Topology):
    """The directed d-dimensional butterfly with dense level-major arc ids.

    Parameters
    ----------
    d:
        Dimension; the network has ``(d+1) * 2**d`` nodes and
        ``d * 2**(d+1)`` arcs (``2**d`` straight + ``2**d`` vertical per
        level).
    """

    MAX_D = 24

    def __init__(self, d: int) -> None:
        if not isinstance(d, (int, np.integer)) or isinstance(d, bool):
            raise TopologyError(f"dimension must be an integer, got {d!r}")
        if not 1 <= d <= self.MAX_D:
            raise TopologyError(
                f"dimension must be in [1, {self.MAX_D}], got {d}"
            )
        self._d = int(d)
        self._n = 1 << self._d  # rows per level

    # -- basic facts ---------------------------------------------------------

    @property
    def d(self) -> int:
        return self._d

    @property
    def rows(self) -> int:
        """``2**d`` rows per level."""
        return self._n

    @property
    def num_nodes(self) -> int:
        """``(d+1) * 2**d`` nodes."""
        return (self._d + 1) * self._n

    @property
    def num_arcs(self) -> int:
        """``d * 2**(d+1)`` directed arcs."""
        return self._d * 2 * self._n

    @property
    def num_levels(self) -> int:
        """d levels of arcs (between the d+1 levels of nodes)."""
        return self._d

    # -- validation ----------------------------------------------------------

    def validate_row(self, x: int) -> int:
        if not 0 <= x < self._n:
            raise TopologyError(f"row {x} out of range [0, {self._n})")
        return x

    def validate_node_level(self, j: int) -> int:
        if not 0 <= j <= self._d:
            raise TopologyError(f"node level {j} out of range [0, {self._d}]")
        return j

    def validate_arc_level(self, j: int) -> int:
        if not 0 <= j < self._d:
            raise TopologyError(f"arc level {j} out of range [0, {self._d})")
        return j

    def validate_kind(self, kind: int) -> int:
        if kind not in (STRAIGHT, VERTICAL):
            raise TopologyError(f"arc kind must be 0 (straight) or 1 (vertical), got {kind}")
        return kind

    # -- arc id layout -------------------------------------------------------

    def arc_index(self, row: int, level: int, kind: int) -> int:
        """Dense id of arc ``(row; level; kind)``."""
        self.validate_row(row)
        self.validate_arc_level(level)
        self.validate_kind(kind)
        return level * 2 * self._n + 2 * row + kind

    def arc_index_many(
        self, rows: np.ndarray, levels: np.ndarray, kinds: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`arc_index` (no validation)."""
        return levels * (2 * self._n) + 2 * rows + kinds

    def arc_components(self, index: int) -> Tuple[int, int, int]:
        """Invert :meth:`arc_index`: returns ``(row, level, kind)``."""
        self.validate_arc_index(index)
        level, rem = divmod(index, 2 * self._n)
        row, kind = divmod(rem, 2)
        return row, level, kind

    def arc(self, index: int) -> Arc:
        row, level, kind = self.arc_components(index)
        head_row = row ^ (1 << level) if kind == VERTICAL else row
        # encode node ids as level * 2**d + row
        return Arc(
            index=index,
            tail=level * self._n + row,
            head=(level + 1) * self._n + head_row,
            level=level,
        )

    def level_slice(self, level: int) -> slice:
        self.validate_arc_level(level)
        return slice(level * 2 * self._n, (level + 1) * 2 * self._n)

    def arcs(self) -> Iterator[Arc]:
        for i in range(self.num_arcs):
            yield self.arc(i)

    # -- node encoding -------------------------------------------------------

    def node_id(self, row: int, level: int) -> int:
        """Dense node id of ``[row; level]``: ``level * 2**d + row``."""
        self.validate_row(row)
        self.validate_node_level(level)
        return level * self._n + row

    def node_components(self, node: int) -> Tuple[int, int]:
        """Invert :meth:`node_id`: returns ``(row, level)``."""
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.num_nodes})")
        level, row = divmod(node, self._n)
        return row, level

    # -- the unique greedy path (paper §4.1) -----------------------------------

    def hamming(self, x: int, z: int) -> int:
        """Hamming distance between two row addresses."""
        self.validate_row(x)
        self.validate_row(z)
        return (x ^ z).bit_count()

    def path_kinds(self, x: int, z: int) -> List[int]:
        """Arc kinds (STRAIGHT/VERTICAL) along the unique path x→z.

        Element ``j`` is VERTICAL iff bit ``j`` of ``x ^ z`` is set: the
        packet corrects address bits in increasing index order, one per
        level — exactly the hypercube dimension-order rule, unfolded.
        """
        self.validate_row(x)
        self.validate_row(z)
        diff = x ^ z
        return [(diff >> j) & 1 for j in range(self._d)]

    def path_arcs(self, x: int, z: int) -> List[int]:
        """Dense arc ids of the unique path from ``[x; 0]`` to ``[z; d]``."""
        arcs = []
        cur = self.validate_row(x)
        diff = x ^ self.validate_row(z)
        for j in range(self._d):
            kind = (diff >> j) & 1
            arcs.append(j * 2 * self._n + 2 * cur + kind)
            if kind:
                cur ^= 1 << j
        return arcs

    def path_rows(self, x: int, z: int) -> List[int]:
        """Row addresses visited at levels 0..d along the unique path."""
        rows = [x]
        cur = self.validate_row(x)
        diff = x ^ self.validate_row(z)
        for j in range(self._d):
            if (diff >> j) & 1:
                cur ^= 1 << j
            rows.append(cur)
        return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Butterfly(d={self._d})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Butterfly) and other._d == self._d

    def __hash__(self) -> int:
        return hash(("Butterfly", self._d))
