"""The d-dimensional binary hypercube (paper §1.1, Fig. 1a).

Nodes are the integers ``0 .. 2**d - 1``; the binary representation of a
node is its identity ``(z_{d-1}, ..., z_0)``.  An arc connects ``x`` to
``x ^ (1 << dim)`` for every ``dim`` in ``range(d)``; the set of all
arcs flipping bit ``dim`` is the *dimension* ``dim`` (the paper's
"``(dim+1)``-th type").  All arcs are directed and come in antiparallel
pairs, so the cube has ``d * 2**d`` arcs.

Arc id layout (level-major)::

    arc_index(x, dim) = dim * 2**d + x

so dimension ``k`` occupies the contiguous id slice
``[k * 2**d, (k+1) * 2**d)`` — dimension == level of the equivalent
levelled network Q (§3.1 Property B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.errors import TopologyError
from repro.topology.base import Arc, Topology

__all__ = ["Hypercube", "HypercubeArc"]


@dataclass(frozen=True, slots=True)
class HypercubeArc:
    """A hypercube arc ``tail -> tail ^ (1 << dim)``."""

    tail: int
    dim: int

    @property
    def head(self) -> int:
        return self.tail ^ (1 << self.dim)


class Hypercube(Topology):
    """The directed d-cube with dense, dimension-major arc ids.

    Parameters
    ----------
    d:
        Dimension; the cube has ``2**d`` nodes.  ``d >= 1`` and is kept
        modest (``d <= 24``) since the simulators materialise per-arc
        state.
    """

    MAX_D = 24

    def __init__(self, d: int) -> None:
        if not isinstance(d, (int, np.integer)) or isinstance(d, bool):
            raise TopologyError(f"dimension must be an integer, got {d!r}")
        if not 1 <= d <= self.MAX_D:
            raise TopologyError(
                f"dimension must be in [1, {self.MAX_D}], got {d}"
            )
        self._d = int(d)
        self._n = 1 << self._d

    # -- basic facts ---------------------------------------------------------

    @property
    def d(self) -> int:
        """Dimension of the cube."""
        return self._d

    @property
    def num_nodes(self) -> int:
        """``2**d`` nodes."""
        return self._n

    @property
    def num_arcs(self) -> int:
        """``d * 2**d`` directed arcs."""
        return self._d * self._n

    @property
    def num_levels(self) -> int:
        """One level per dimension in the equivalent network Q."""
        return self._d

    @property
    def diameter(self) -> int:
        """The diameter of the d-cube equals d (paper §1.1)."""
        return self._d

    # -- node helpers --------------------------------------------------------

    def validate_node(self, x: int) -> int:
        if not 0 <= x < self._n:
            raise TopologyError(f"node {x} out of range [0, {self._n})")
        return x

    def e(self, dim: int) -> int:
        """The unit vector ``e_dim`` (paper's ``e_{dim+1} = 2**dim``)."""
        self.validate_dim(dim)
        return 1 << dim

    def validate_dim(self, dim: int) -> int:
        if not 0 <= dim < self._d:
            raise TopologyError(f"dimension {dim} out of range [0, {self._d})")
        return dim

    def flip(self, x: int, dim: int) -> int:
        """Neighbour of *x* across dimension *dim*: ``x XOR e_dim``."""
        self.validate_node(x)
        return x ^ self.e(dim)

    def neighbors(self, x: int) -> List[int]:
        """The d neighbours ``x ^ e_0, ..., x ^ e_{d-1}``."""
        self.validate_node(x)
        return [x ^ (1 << j) for j in range(self._d)]

    def hamming(self, x: int, y: int) -> int:
        """Hamming distance ``H(x, y)`` between two node identities."""
        self.validate_node(x)
        self.validate_node(y)
        return (x ^ y).bit_count()

    def hamming_many(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised Hamming distance between arrays of node ids."""
        return np.bitwise_count(np.bitwise_xor(x, y))

    # -- arc id layout -------------------------------------------------------

    def arc_index(self, tail: int, dim: int) -> int:
        """Dense id of arc ``tail -> tail ^ e_dim``: ``dim * 2**d + tail``."""
        self.validate_node(tail)
        self.validate_dim(dim)
        return dim * self._n + tail

    def arc_index_many(self, tails: np.ndarray, dims: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`arc_index` (no validation)."""
        return dims * self._n + tails

    def arc(self, index: int) -> Arc:
        self.validate_arc_index(index)
        dim, tail = divmod(index, self._n)
        return Arc(index=index, tail=tail, head=tail ^ (1 << dim), level=dim)

    def arc_dim(self, index: int) -> int:
        """Dimension (== level) of the arc with dense id *index*."""
        self.validate_arc_index(index)
        return index // self._n

    def arc_tail(self, index: int) -> int:
        self.validate_arc_index(index)
        return index % self._n

    def level_slice(self, level: int) -> slice:
        self.validate_dim(level)
        return slice(level * self._n, (level + 1) * self._n)

    def arcs(self) -> Iterator[Arc]:
        for dim in range(self._d):
            for tail in range(self._n):
                yield Arc(
                    index=dim * self._n + tail,
                    tail=tail,
                    head=tail ^ (1 << dim),
                    level=dim,
                )

    # -- canonical greedy paths (paper §3) ------------------------------------

    def dims_to_cross(self, x: int, z: int) -> List[int]:
        """Dimensions in which *x* and *z* differ, in increasing order.

        These are exactly the dimensions a greedy packet crosses, in
        exactly this order (the paper's increasing index-order rule).
        """
        self.validate_node(x)
        self.validate_node(z)
        diff = x ^ z
        return [j for j in range(self._d) if (diff >> j) & 1]

    def canonical_path_nodes(self, x: int, z: int) -> List[int]:
        """Node sequence of the canonical path from *x* to *z* (inclusive)."""
        nodes = [x]
        cur = x
        for j in self.dims_to_cross(x, z):
            cur ^= 1 << j
            nodes.append(cur)
        return nodes

    def canonical_path_arcs(self, x: int, z: int) -> List[int]:
        """Dense arc ids of the canonical path from *x* to *z*."""
        arcs = []
        cur = x
        for j in self.dims_to_cross(x, z):
            arcs.append(j * self._n + cur)
            cur ^= 1 << j
        return arcs

    # -- misc -----------------------------------------------------------------

    def antipode(self, x: int) -> int:
        """The node at Hamming distance d from *x* (all bits flipped)."""
        self.validate_node(x)
        return x ^ (self._n - 1)

    def translate(self, x: int, y_star: int) -> int:
        """Rename node *x* to ``x XOR y_star`` (translation invariance, §1.1)."""
        self.validate_node(x)
        self.validate_node(y_star)
        return x ^ y_star

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypercube(d={self._d})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hypercube) and other._d == self._d

    def __hash__(self) -> int:
        return hash(("Hypercube", self._d))
