"""Common topology abstractions.

A *topology* here is a directed graph whose arcs carry unit-capacity,
unit-service-time transmitters (the paper's model: one packet per arc
per time unit).  The queueing simulators never manipulate nodes or arc
tuples directly — they work with **dense integer arc ids** in
``range(num_arcs)``, laid out level-major so that the arcs of one level
of the equivalent levelled network occupy one contiguous slice.  Each
concrete topology defines the id layout and the level structure.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["Arc", "Topology"]


@dataclass(frozen=True, slots=True)
class Arc:
    """A directed arc ``tail -> head`` with its dense integer id.

    ``level`` is the level of the arc in the levelled equivalent network
    (the paper's §3.1 Property B / §4.3 Property A): for the hypercube,
    the dimension it crosses; for the butterfly, the level its tail
    lives in.
    """

    index: int
    tail: int
    head: int
    level: int


class Topology(abc.ABC):
    """Abstract base for unit-capacity interconnection networks."""

    #: number of distinct levels in the levelled equivalent network
    num_levels: int
    #: total number of directed arcs (== number of servers)
    num_arcs: int

    @abc.abstractmethod
    def arcs(self) -> Iterator[Arc]:
        """Iterate over every arc, in increasing ``index`` order."""

    @abc.abstractmethod
    def level_slice(self, level: int) -> slice:
        """The contiguous range of arc ids forming *level*."""

    @abc.abstractmethod
    def arc(self, index: int) -> Arc:
        """Reconstruct the :class:`Arc` with dense id *index*."""

    # -- conveniences shared by all topologies ------------------------------

    def arcs_of_level(self, level: int) -> Sequence[Arc]:
        """All arcs of one level, in increasing id order."""
        s = self.level_slice(level)
        return [self.arc(i) for i in range(s.start, s.stop)]

    def validate_arc_index(self, index: int) -> int:
        """Return *index* unchanged, raising if out of range."""
        if not 0 <= index < self.num_arcs:
            from repro.errors import TopologyError

            raise TopologyError(
                f"arc index {index} out of range [0, {self.num_arcs})"
            )
        return index
