"""Load factors and stability conditions (§2.1, §4.2, and the §2.2
translation-invariant generalisation).

Hypercube: a packet crosses dimension ``j`` with probability ``q_j``
(= ``p`` for the paper's law), so dimension ``j`` carries an average
flow of ``lam * q_j`` per arc (Prop 5) and the load factor is

    rho = lam * max_j q_j      (= lam * p for eq. (1)).

Stability of any scheme *requires* ``rho <= 1`` (eq. (2); ``< 1``
unless arrivals are deterministic), and greedy routing *achieves* every
``rho < 1`` (Prop 6).

Butterfly: straight arcs carry ``lam (1-p)``, vertical arcs ``lam p``
(Prop 15), hence ``rho = lam * max(p, 1-p)`` (eq. (17) / Prop 16).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.destinations import DestinationLaw

__all__ = [
    "hypercube_load_factor",
    "hypercube_load_vector",
    "hypercube_stable",
    "butterfly_load_factor",
    "butterfly_stable",
    "lam_for_load",
    "butterfly_lam_for_load",
]


def _check_lam(lam: float) -> float:
    if not lam >= 0.0:
        raise ConfigurationError(f"arrival rate must be >= 0, got {lam}")
    return float(lam)


def _check_p(p: float) -> float:
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"flip probability must lie in [0, 1], got {p}")
    return float(p)


def hypercube_load_factor(lam: float, p: float) -> float:
    """The paper's load factor ``rho = lam * p`` (eq. (2))."""
    return _check_lam(lam) * _check_p(p)


def hypercube_load_vector(lam: float, law: DestinationLaw) -> np.ndarray:
    """Per-dimension load factors ``rho_j = lam * q_j`` (§2.2).

    For the paper's Bernoulli law all entries equal ``lam * p``; the
    general translation-invariant case takes the law's actual flip
    probabilities.
    """
    return _check_lam(lam) * law.flip_probabilities()


def hypercube_stable(lam: float, p: float) -> bool:
    """Prop 6: greedy routing on the d-cube is stable iff ``lam * p < 1``."""
    return hypercube_load_factor(lam, p) < 1.0


def butterfly_load_factor(lam: float, p: float) -> float:
    """Eq. (17): ``rho = lam * max(p, 1-p)``.

    For ``p > 1/2`` the vertical arcs are the bottleneck, for
    ``p < 1/2`` the straight arcs; ``p = 1/2`` maximises sustainable
    ``lam`` at fixed ``rho``.
    """
    lam, p = _check_lam(lam), _check_p(p)
    return lam * max(p, 1.0 - p)


def butterfly_stable(lam: float, p: float) -> bool:
    """Prop 16: butterfly greedy routing is stable iff
    ``lam * max(p, 1-p) < 1``."""
    return butterfly_load_factor(lam, p) < 1.0


def lam_for_load(rho: float, p: float) -> float:
    """Per-node rate achieving hypercube load factor *rho*: ``rho / p``.

    The standard way experiments parameterise runs ("sweep rho").
    """
    p = _check_p(p)
    if p == 0.0:
        raise ConfigurationError("p = 0 generates no traffic; rho is 0 for any lam")
    if rho < 0.0:
        raise ConfigurationError(f"rho must be >= 0, got {rho}")
    return float(rho) / p


def butterfly_lam_for_load(rho: float, p: float) -> float:
    """Per-node rate achieving butterfly load factor *rho*."""
    p = _check_p(p)
    bottleneck = max(p, 1.0 - p)
    if rho < 0.0:
        raise ConfigurationError(f"rho must be >= 0, got {rho}")
    return float(rho) / bottleneck
