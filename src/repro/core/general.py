"""§2.2 generalisation: arbitrary translation-invariant destination laws.

The paper notes (end of §2.2) that the necessary stability condition
and the lower bounds of Props 2/3 hold whenever the destination law is
translation invariant — ``Pr[x -> z] = f(x XOR z)`` — with the load
factor redefined per dimension:

    rho_j = lam * q_j,    q_j = sum_{v : v_j = 1} f(v),
    rho   = max_j rho_j.

Under greedy dimension-order routing the equivalent network is still
levelled (Property B holds for any law), and by node symmetry every arc
of dimension ``j`` carries total flow ``lam * q_j`` (the generalised
Prop 5).  The *routing* however is no longer Markovian for non-product
laws (Lemma 4 uses the bit-independence of eq. (1)), so the paper's
product-form upper bound does not directly extend — which is exactly
why §5 suggests two-phase randomised mixing
(:mod:`repro.schemes.twophase`) for general traffic.

This module provides the generalised load/stability/lower-bound
calculus; the simulators already accept any law.
"""

from __future__ import annotations

import numpy as np

from repro.errors import UnstableSystemError
from repro.queueing.md1 import md1_sojourn
from repro.queueing.mdc import mdc_sojourn_brumelle_lower
from repro.traffic.destinations import DestinationLaw

__all__ = [
    "general_load_vector",
    "general_load_factor",
    "general_stable",
    "general_zero_contention_delay",
    "general_arc_rates",
    "general_oblivious_lower_bound",
    "general_universal_lower_bound",
]


def general_load_vector(lam: float, law: DestinationLaw) -> np.ndarray:
    """Per-dimension load factors ``rho_j = lam * q_j``."""
    if lam < 0:
        raise ValueError(f"rate must be >= 0, got {lam}")
    return lam * law.flip_probabilities()


def general_load_factor(lam: float, law: DestinationLaw) -> float:
    """``rho = max_j rho_j`` — the §2.2 load factor."""
    return float(np.max(general_load_vector(lam, law)))


def general_stable(lam: float, law: DestinationLaw) -> bool:
    """Necessary condition (eq. (2) generalised): ``rho < 1``.

    For greedy routing this is also sufficient: each dimension-``j``
    arc is a deterministic unit server in a levelled network fed at
    total rate ``rho_j`` ([Bor87] Theorem 2A applies as in Prop 6).
    """
    return general_load_factor(lam, law) < 1.0


def general_zero_contention_delay(law: DestinationLaw) -> float:
    """Mean shortest-path time ``E[H] = sum_j q_j`` (generalises dp)."""
    return law.mean_distance()


def general_arc_rates(lam: float, law: DestinationLaw) -> np.ndarray:
    """Generalised Prop 5: arc of dimension ``j`` carries ``lam q_j``.

    Returns the per-arc rate vector in dimension-major arc order
    (shape ``(d * 2**d,)``).
    """
    q = law.flip_probabilities()
    return np.repeat(lam * q, 1 << law.d)


def general_oblivious_lower_bound(lam: float, law: DestinationLaw) -> float:
    """Prop 3 generalised: ``T >= max{E[H], max_j q_j (1 + rho_j/(2(1-rho_j)))}``.

    The proof's dimension-1 argument applies verbatim to each dimension
    ``j``; the best (largest) dimension gives the bound.
    """
    rho_vec = general_load_vector(lam, law)
    worst = float(np.max(rho_vec))
    if worst >= 1.0:
        raise UnstableSystemError(worst, "generalised oblivious lower bound")
    q = law.flip_probabilities()
    per_dim = [
        q_j * (md1_sojourn(r_j) if r_j > 0 else 1.0)
        for q_j, r_j in zip(q, rho_vec)
    ]
    return max(general_zero_contention_delay(law), max(per_dim))


def general_universal_lower_bound(lam: float, law: DestinationLaw) -> float:
    """Prop 2 generalised: each dimension's 2^d arcs form an M/D/2^d
    lower-bounding system at utilisation ``rho_j``."""
    rho_vec = general_load_vector(lam, law)
    worst = float(np.max(rho_vec))
    if worst >= 1.0:
        raise UnstableSystemError(worst, "generalised universal lower bound")
    q = law.flip_probabilities()
    c = 1 << law.d
    per_dim = [
        q_j * (mdc_sojourn_brumelle_lower(c, r_j) if r_j > 0 else 1.0)
        for q_j, r_j in zip(q, rho_vec)
    ]
    return max(general_zero_contention_delay(law), max(per_dim))
