"""High-level scheme objects: the paper's greedy routing, ready to run.

:class:`GreedyHypercubeScheme` bundles a cube, a per-node rate and a
bit-flip probability into one object exposing

* the closed-form theory (stability, load factor, Props 12/13 bounds),
* one-call simulation (:meth:`~GreedyHypercubeScheme.run`),
* the equivalent network Q (:meth:`~GreedyHypercubeScheme.qspec`).

:class:`GreedyButterflyScheme` is the §4 analogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core import bounds as _bounds
from repro.core.load import (
    butterfly_load_factor,
    hypercube_load_factor,
)
from repro.core.qnetwork import ButterflyRSpec, HypercubeQSpec
from repro.errors import ConfigurationError
from repro.rng import SeedLike
from repro.sim.feedforward import (
    FeedForwardResult,
    simulate_butterfly_greedy,
    simulate_hypercube_greedy,
)
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import ButterflyWorkload, HypercubeWorkload

__all__ = ["GreedyHypercubeScheme", "GreedyButterflyScheme"]


@dataclass(frozen=True)
class GreedyHypercubeScheme:
    """Greedy dimension-order routing on the d-cube (§3).

    Parameters
    ----------
    d:
        Cube dimension.
    lam:
        Per-node Poisson packet rate.
    p:
        Bit-flip probability of the destination law (eq. (1)).
    """

    d: int
    lam: float
    p: float
    cube: Hypercube = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cube", Hypercube(self.d))
        if not 0.0 < self.p <= 1.0:
            raise ConfigurationError(f"p must lie in (0, 1], got {self.p}")
        if self.lam <= 0.0:
            raise ConfigurationError(f"lam must be > 0, got {self.lam}")

    # -- theory ---------------------------------------------------------------

    @property
    def rho(self) -> float:
        """Load factor ``lam * p`` (eq. (2))."""
        return hypercube_load_factor(self.lam, self.p)

    @property
    def stable(self) -> bool:
        """Prop 6: stability holds iff ``rho < 1``."""
        return self.rho < 1.0

    def delay_upper_bound(self) -> float:
        """Prop 12: ``d p / (1 - rho)``."""
        return _bounds.greedy_delay_upper_bound(self.d, self.lam, self.p)

    def delay_lower_bound(self) -> float:
        """Prop 13: ``d p + p rho / (2 (1 - rho))``."""
        return _bounds.greedy_delay_lower_bound(self.d, self.lam, self.p)

    def zero_contention_delay(self) -> float:
        """Mean shortest-path time ``d p``."""
        return _bounds.zero_contention_delay(self.d, self.p)

    # -- machinery --------------------------------------------------------------

    def law(self) -> BernoulliFlipLaw:
        return BernoulliFlipLaw(self.d, self.p)

    def workload(self) -> HypercubeWorkload:
        return HypercubeWorkload(self.cube, self.lam, self.law())

    def qspec(self) -> HypercubeQSpec:
        """The equivalent network Q (Properties A–C)."""
        return HypercubeQSpec(self.cube, self.p)

    def run(
        self,
        horizon: float,
        rng: SeedLike = None,
        *,
        discipline: str = "fifo",
        dim_order: Optional[Sequence[int]] = None,
        record_arc_log: bool = False,
    ) -> FeedForwardResult:
        """Generate traffic over ``[0, horizon)`` and route every packet.

        Returns the full :class:`~repro.sim.feedforward.FeedForwardResult`;
        ``result.delay_record().mean_delay()`` estimates the paper's ``T``.
        """
        sample = self.workload().generate(horizon, rng)
        return simulate_hypercube_greedy(
            self.cube,
            sample,
            discipline=discipline,
            dim_order=dim_order,
            record_arc_log=record_arc_log,
        )

    def measure_delay(
        self, horizon: float, rng: SeedLike = None, warmup_fraction: float = 0.2
    ) -> float:
        """One-call steady-state mean-delay estimate."""
        return self.run(horizon, rng).delay_record().mean_delay(warmup_fraction)


@dataclass(frozen=True)
class GreedyButterflyScheme:
    """Greedy routing on the d-dimensional butterfly (§4)."""

    d: int
    lam: float
    p: float
    butterfly: Butterfly = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "butterfly", Butterfly(self.d))
        if not 0.0 <= self.p <= 1.0:
            raise ConfigurationError(f"p must lie in [0, 1], got {self.p}")
        if self.lam <= 0.0:
            raise ConfigurationError(f"lam must be > 0, got {self.lam}")

    # -- theory ---------------------------------------------------------------

    @property
    def rho(self) -> float:
        """Load factor ``lam * max(p, 1-p)`` (eq. (17))."""
        return butterfly_load_factor(self.lam, self.p)

    @property
    def stable(self) -> bool:
        """Prop 16: stability holds iff ``rho < 1``."""
        return self.rho < 1.0

    def delay_upper_bound(self) -> float:
        """Prop 17: ``d p/(1 - lam p) + d (1-p)/(1 - lam (1-p))``."""
        return _bounds.butterfly_delay_upper_bound(self.d, self.lam, self.p)

    def delay_lower_bound(self) -> float:
        """Prop 14 (universal)."""
        return _bounds.butterfly_delay_lower_bound(self.d, self.lam, self.p)

    # -- machinery --------------------------------------------------------------

    def law(self) -> BernoulliFlipLaw:
        return BernoulliFlipLaw(self.d, self.p)

    def workload(self) -> ButterflyWorkload:
        return ButterflyWorkload(self.butterfly, self.lam, self.law())

    def rspec(self) -> ButterflyRSpec:
        """The equivalent network R (§4.3 Properties A–B)."""
        return ButterflyRSpec(self.butterfly, self.p)

    def run(
        self,
        horizon: float,
        rng: SeedLike = None,
        *,
        discipline: str = "fifo",
        record_arc_log: bool = False,
    ) -> FeedForwardResult:
        """Generate traffic over ``[0, horizon)`` and route every packet."""
        sample = self.workload().generate(horizon, rng)
        return simulate_butterfly_greedy(
            self.butterfly,
            sample,
            discipline=discipline,
            record_arc_log=record_arc_log,
        )

    def measure_delay(
        self, horizon: float, rng: SeedLike = None, warmup_fraction: float = 0.2
    ) -> float:
        """One-call steady-state mean-delay estimate."""
        return self.run(horizon, rng).delay_record().mean_delay(warmup_fraction)
