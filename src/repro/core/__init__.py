"""The paper's primary contribution: greedy routing and its analysis.

* :mod:`repro.core.greedy` — the greedy dimension-order scheme on the
  hypercube (§3) and greedy routing on the butterfly (§4), as
  ready-to-run scheme objects.
* :mod:`repro.core.qnetwork` — the equivalent queueing networks Q
  (Fig. 1b) and R (Fig. 3b) with their Markovian routing (Lemma 4,
  Properties A–C), plus explicit levelled networks (Fig. 2).
* :mod:`repro.core.load` — load factors and the stability conditions
  (eq. (2), Prop 6, eq. (17), Prop 16).
* :mod:`repro.core.bounds` — every closed-form delay bound in the paper
  (Props 2, 3, 12, 13, 14, 17, §3.4, heavy-traffic windows).
"""

from repro.core.bounds import (
    antipodal_exact_delay,
    butterfly_delay_lower_bound,
    butterfly_delay_upper_bound,
    butterfly_heavy_traffic_window,
    greedy_delay_lower_bound,
    greedy_delay_upper_bound,
    heavy_traffic_window,
    mean_queue_per_node_bound,
    oblivious_delay_lower_bound,
    slotted_delay_upper_bound,
    total_population_bound,
    universal_delay_lower_bound,
    zero_contention_delay,
)
from repro.core.buffers import (
    arc_buffer_for_overflow,
    arc_overflow_probability,
    node_buffer_for_overflow,
)
from repro.core.general import (
    general_arc_rates,
    general_load_factor,
    general_load_vector,
    general_oblivious_lower_bound,
    general_stable,
    general_universal_lower_bound,
    general_zero_contention_delay,
)
from repro.core.greedy import GreedyButterflyScheme, GreedyHypercubeScheme
from repro.core.load import (
    butterfly_load_factor,
    butterfly_stable,
    hypercube_load_factor,
    hypercube_load_vector,
    hypercube_stable,
    lam_for_load,
)
from repro.core.qnetwork import (
    ButterflyRSpec,
    ExplicitLevelledSpec,
    HypercubeQSpec,
    butterfly_external_from_sample,
    hypercube_external_from_sample,
)

__all__ = [
    "GreedyHypercubeScheme",
    "GreedyButterflyScheme",
    "HypercubeQSpec",
    "ButterflyRSpec",
    "ExplicitLevelledSpec",
    "hypercube_external_from_sample",
    "butterfly_external_from_sample",
    "hypercube_load_factor",
    "hypercube_load_vector",
    "hypercube_stable",
    "butterfly_load_factor",
    "butterfly_stable",
    "lam_for_load",
    "universal_delay_lower_bound",
    "oblivious_delay_lower_bound",
    "greedy_delay_upper_bound",
    "greedy_delay_lower_bound",
    "slotted_delay_upper_bound",
    "butterfly_delay_lower_bound",
    "butterfly_delay_upper_bound",
    "heavy_traffic_window",
    "butterfly_heavy_traffic_window",
    "mean_queue_per_node_bound",
    "total_population_bound",
    "zero_contention_delay",
    "antipodal_exact_delay",
    "arc_overflow_probability",
    "arc_buffer_for_overflow",
    "node_buffer_for_overflow",
    "general_load_vector",
    "general_load_factor",
    "general_stable",
    "general_zero_contention_delay",
    "general_arc_rates",
    "general_oblivious_lower_bound",
    "general_universal_lower_bound",
]
