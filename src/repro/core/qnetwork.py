"""The equivalent queueing networks Q (Fig. 1b) and R (Fig. 3b).

Under greedy routing the hypercube behaves exactly as a queueing
network **Q** of ``d 2^d`` deterministic unit-service FIFO servers (one
per arc) with:

* **Property A** — external Poisson arrivals at arc ``(x, x^e_i)`` of
  rate ``lam p (1-p)^i`` (0-based ``i``): the packets born at ``x``
  whose lowest flipped dimension is ``i``;
* **Property B** — levelled structure: level ``i`` = dimension ``i``;
* **Property C / Lemma 4** — Markovian routing: after crossing
  ``(x, x^e_i)`` a packet moves to ``(x^e_i, x^e_i^e_j)`` with
  probability ``p (1-p)^{j-i-1}`` for ``j > i`` and exits with
  probability ``(1-p)^{d-1-i}``.

The butterfly analogue **R** (§4.3) has every packet traversing one arc
per level, choosing vertical with probability ``p`` at each level.

Both specs plug into :func:`repro.sim.feedforward.simulate_markovian`
and the event-driven engine.  :class:`ExplicitLevelledSpec` supports
arbitrary levelled networks given as tables — e.g. the three-server
network of Fig. 2 used by Lemma 9.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator
from repro.sim.feedforward import EXIT, LevelledSpec
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.traffic.workload import TrafficSample

__all__ = [
    "HypercubeQSpec",
    "ButterflyRSpec",
    "ExplicitLevelledSpec",
    "hypercube_external_from_sample",
    "butterfly_external_from_sample",
]


class HypercubeQSpec(LevelledSpec):
    """Network Q for the d-cube under the Bernoulli(p) law."""

    def __init__(self, cube: Hypercube, p: float) -> None:
        if not 0.0 < p <= 1.0:
            raise ConfigurationError(
                f"p must lie in (0, 1] for network Q, got {p}"
            )
        self.cube = cube
        self.p = float(p)
        self.num_arcs = cube.num_arcs
        self.num_levels = cube.d

    def arc_level(self, arc_id: int) -> int:
        return arc_id // self.cube.num_nodes

    def draw_decisions(
        self, arc_id: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        d, n = self.cube.d, self.cube.num_nodes
        dim, tail = divmod(arc_id, n)
        head = tail ^ (1 << dim)
        if self.p >= 1.0:
            # Every remaining dimension is crossed: next is dim + 1.
            nxt = np.full(count, dim + 1, dtype=np.int64)
        else:
            # Gap to the next crossed dimension ~ Geometric(p) on {1,2,...}:
            # P[gap = k] = p (1-p)^(k-1), matching Property C.
            nxt = dim + rng.geometric(self.p, size=count).astype(np.int64)
        out = np.where(nxt >= d, EXIT, nxt * n + head)
        return out.astype(np.int64)

    # -- analytical rates (Properties A and Prop 5) --------------------------

    def external_rates(self, lam: float) -> np.ndarray:
        """Property A: rate ``lam p (1-p)^dim`` at every arc of ``dim``."""
        d, n = self.cube.d, self.cube.num_nodes
        dims = np.arange(self.num_arcs) // n
        return lam * self.p * (1.0 - self.p) ** dims

    def total_rates(self, lam: float) -> np.ndarray:
        """Prop 5: the total arrival rate at *every* arc is ``lam p``."""
        return np.full(self.num_arcs, lam * self.p)

    def solve_total_rates(self, lam: float) -> np.ndarray:
        """Numerically solve the traffic equations level by level.

        Independent verification of Prop 5: the result must equal
        ``lam p`` at every arc (tested in the suite).
        """
        d, n = self.cube.d, self.cube.num_nodes
        p = self.p
        total = self.external_rates(lam).copy()
        for dim in range(d - 1):
            for tail in range(n):
                src = dim * n + tail
                head = tail ^ (1 << dim)
                rate = total[src]
                for j in range(dim + 1, d):
                    total[j * n + head] += rate * p * (1.0 - p) ** (j - dim - 1)
        return total

    def sample_external_arrivals(
        self, lam: float, horizon: float, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw external arrivals directly from Property A.

        Returns ``(times, arcs)`` sorted by time — an alternative to
        deriving them from a physical :class:`TrafficSample`.
        """
        gen = as_generator(rng)
        rates = self.external_rates(lam)
        total = float(rates.sum())
        count = gen.poisson(total * horizon)
        times = np.sort(gen.random(count) * horizon)
        arcs = gen.choice(self.num_arcs, size=count, p=rates / total)
        return times, arcs.astype(np.int64)


class ButterflyRSpec(LevelledSpec):
    """Network R for the d-dimensional butterfly under the row law."""

    def __init__(self, bf: Butterfly, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must lie in [0, 1], got {p}")
        self.bf = bf
        self.p = float(p)
        self.num_arcs = bf.num_arcs
        self.num_levels = bf.d

    def arc_level(self, arc_id: int) -> int:
        return arc_id // (2 * self.bf.rows)

    def draw_decisions(
        self, arc_id: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        d, n = self.bf.d, self.bf.rows
        row, level, kind = self.bf.arc_components(arc_id)
        if level == d - 1:
            return np.full(count, EXIT, dtype=np.int64)
        head_row = row ^ (1 << level) if kind else row
        vertical = rng.random(count) < self.p
        next_kind = vertical.astype(np.int64)
        return (level + 1) * 2 * n + 2 * head_row + next_kind

    # -- analytical rates (Prop 15) -------------------------------------------

    def external_rates(self, lam: float) -> np.ndarray:
        """External arrivals only at level 0: ``lam(1-p)`` straight /
        ``lam p`` vertical per arc."""
        rates = np.zeros(self.num_arcs)
        n = self.bf.rows
        for row in range(n):
            rates[2 * row] = lam * (1.0 - self.p)  # (row; 0; s)
            rates[2 * row + 1] = lam * self.p  # (row; 0; v)
        return rates

    def total_rates(self, lam: float) -> np.ndarray:
        """Prop 15: ``lam(1-p)`` at every straight arc, ``lam p`` at
        every vertical arc, at every level."""
        rates = np.empty(self.num_arcs)
        kinds = np.arange(self.num_arcs) % 2
        rates[kinds == 0] = lam * (1.0 - self.p)
        rates[kinds == 1] = lam * self.p
        return rates

    def solve_total_rates(self, lam: float) -> np.ndarray:
        """Traffic equations level by level (verifies Prop 15)."""
        d, n = self.bf.d, self.bf.rows
        p = self.p
        total = self.external_rates(lam).copy()
        for level in range(d - 1):
            for row in range(n):
                for kind in (0, 1):
                    src = level * 2 * n + 2 * row + kind
                    head_row = row ^ (1 << level) if kind else row
                    rate = total[src]
                    base = (level + 1) * 2 * n + 2 * head_row
                    total[base] += rate * (1.0 - p)
                    total[base + 1] += rate * p
        return total

    def sample_external_arrivals(
        self, lam: float, horizon: float, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw network-R external arrivals directly (level-0 arcs only).

        Returns ``(times, arcs)`` sorted by time; each level-0 input
        chooses vertical with probability ``p`` (the first routing bit),
        matching :func:`butterfly_external_from_sample` in law.
        """
        gen = as_generator(rng)
        n = self.bf.rows
        count = gen.poisson(lam * n * horizon)
        times = np.sort(gen.random(count) * horizon)
        rows = gen.integers(0, n, size=count, dtype=np.int64)
        kinds = (gen.random(count) < self.p).astype(np.int64)
        return times, 2 * rows + kinds


class ExplicitLevelledSpec(LevelledSpec):
    """A levelled network given by explicit tables.

    Parameters
    ----------
    levels:
        ``levels[arc]`` is the level of each arc.
    routing:
        ``routing[arc] = (targets, probs)``: next-arc candidates (use
        :data:`~repro.sim.feedforward.EXIT` for leaving the network)
        and their probabilities, summing to 1.  Arcs without an entry
        always exit.
    """

    def __init__(
        self,
        levels: Sequence[int],
        routing: Dict[int, Tuple[Sequence[int], Sequence[float]]],
    ) -> None:
        self._levels = np.asarray(levels, dtype=np.int64)
        if self._levels.ndim != 1 or self._levels.shape[0] == 0:
            raise ConfigurationError("levels must be a non-empty 1-D sequence")
        self.num_arcs = int(self._levels.shape[0])
        self.num_levels = int(self._levels.max()) + 1
        self._routing: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for arc, (targets, probs) in routing.items():
            t = np.asarray(targets, dtype=np.int64)
            q = np.asarray(probs, dtype=float)
            if t.shape != q.shape:
                raise ConfigurationError(f"arc {arc}: targets/probs must be parallel")
            if abs(float(q.sum()) - 1.0) > 1e-9 or np.any(q < 0):
                raise ConfigurationError(f"arc {arc}: probabilities must form a pmf")
            for tgt in t:
                if tgt != EXIT and (
                    not 0 <= tgt < self.num_arcs
                    or self._levels[tgt] <= self._levels[arc]
                ):
                    raise ConfigurationError(
                        f"arc {arc}: target {tgt} violates the levelled property"
                    )
            self._routing[int(arc)] = (t, q)

    def arc_level(self, arc_id: int) -> int:
        return int(self._levels[arc_id])

    def draw_decisions(
        self, arc_id: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        entry = self._routing.get(int(arc_id))
        if entry is None:
            return np.full(count, EXIT, dtype=np.int64)
        targets, probs = entry
        idx = rng.choice(targets.shape[0], size=count, p=probs)
        return targets[idx]


# ---------------------------------------------------------------------------
# deriving network-Q externals from physical traffic
# ---------------------------------------------------------------------------


def hypercube_external_from_sample(
    cube: Hypercube, sample: TrafficSample
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map physical packets to their network-Q entry arcs.

    A packet born at ``x`` with XOR mask ``v != 0`` enters Q at arc
    ``(x, lowest set dimension of v)``; zero-mask packets never enter.
    Returns ``(times, arcs, pids)`` of the entering packets, exactly
    coupling the physical and network-Q sample paths.
    """
    origins = np.asarray(sample.origins, dtype=np.int64)
    dests = np.asarray(sample.destinations, dtype=np.int64)
    diff = origins ^ dests
    m = diff != 0
    lowest = diff[m] & -diff[m]  # isolate lowest set bit
    first_dim = np.bitwise_count(lowest - 1)  # trailing zeros
    arcs = first_dim.astype(np.int64) * cube.num_nodes + origins[m]
    pids = np.flatnonzero(m).astype(np.int64)
    return sample.times[m], arcs, pids


def butterfly_external_from_sample(
    bf: Butterfly, sample: TrafficSample
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map physical butterfly packets to their network-R entry arcs.

    Every packet enters at level 0: straight if bit 0 needs no
    correction, vertical otherwise.
    """
    origins = np.asarray(sample.origins, dtype=np.int64)
    dests = np.asarray(sample.destinations, dtype=np.int64)
    kind = (origins ^ dests) & 1
    arcs = 2 * origins + kind
    pids = np.arange(origins.shape[0], dtype=np.int64)
    return sample.times.copy(), arcs, pids
