"""Closed-form delay bounds — every bound stated in the paper.

All bounds are for the steady-state mean per-packet delay ``T`` under
the §1.1 traffic model (per-node Poisson rate ``lam``, bit-flip
probability ``p``, load factor ``rho = lam * p``), unit service times.
Functions raise :class:`~repro.errors.UnstableSystemError` whenever the
requested quantity needs ``rho < 1`` (or the butterfly analogue).

Hypercube
---------
* :func:`universal_delay_lower_bound` — Prop 2 (any scheme), via the
  M/D/2^d delay ``D(2^d; rho)``;
* :func:`oblivious_delay_lower_bound` — Prop 3 (oblivious schemes);
* :func:`greedy_delay_upper_bound` — Prop 12: ``dp / (1 - rho)``;
* :func:`greedy_delay_lower_bound` — Prop 13:
  ``dp + p rho / (2 (1 - rho))``;
* :func:`slotted_delay_upper_bound` — §3.4;
* :func:`heavy_traffic_window` — the §3.3 two-sided bound on
  ``lim_{rho->1} (1 - rho) T``;
* :func:`antipodal_exact_delay` — the exact ``p = 1`` delay noted at
  the end of §3.3.

Butterfly
---------
* :func:`butterfly_delay_lower_bound` — Prop 14 (any scheme);
* :func:`butterfly_delay_upper_bound` — Prop 17;
* :func:`butterfly_heavy_traffic_window` — §4.3 closing remark.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError, UnstableSystemError
from repro.queueing.md1 import md1_sojourn
from repro.queueing.mdc import (
    mdc_sojourn_brumelle_lower,
    mdc_sojourn_cosmetatos,
    mdc_sojourn_exact,
    mdc_sojourn_mc,
)

__all__ = [
    "zero_contention_delay",
    "universal_delay_lower_bound",
    "universal_delay_lower_bound_simplified",
    "oblivious_delay_lower_bound",
    "greedy_delay_upper_bound",
    "greedy_delay_lower_bound",
    "slotted_delay_upper_bound",
    "heavy_traffic_window",
    "antipodal_exact_delay",
    "mean_queue_per_node_bound",
    "total_population_bound",
    "butterfly_delay_lower_bound",
    "butterfly_delay_upper_bound",
    "butterfly_heavy_traffic_window",
]


def _check(d: int, lam: float, p: float) -> Tuple[int, float, float]:
    d = int(d)
    if d < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {d}")
    if lam < 0:
        raise ConfigurationError(f"rate must be >= 0, got {lam}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must lie in [0, 1], got {p}")
    return d, float(lam), float(p)


def zero_contention_delay(d: int, p: float) -> float:
    """Mean delay with no queueing at all: the mean path length ``d p``.

    Lemma 1 gives ``E[H(x, z)] = d p``; any scheme needs at least this
    long on average (§2.1), so all delay bounds are compared to it.
    """
    d, _, p = _check(d, 0.0, p)
    return d * p


def universal_delay_lower_bound(
    d: int, lam: float, p: float, mdc_method: str = "brumelle"
) -> float:
    """Prop 2: ``T >= max{d p, p D(2^d; rho)}`` for **any** scheme.

    ``D(2^d; rho)`` is the mean sojourn of an M/D/2^d queue with unit
    service at utilisation ``rho``; *mdc_method* selects its evaluation:
    ``"brumelle"`` (the form the paper substitutes — heavy-traffic
    exact), ``"exact"`` (Crommelin embedded-chain solution — makes the
    result a certified lower bound), ``"cosmetatos"`` (closed-form
    approximation), or ``"mc"`` (Monte-Carlo, slow).
    """
    d, lam, p = _check(d, lam, p)
    rho = lam * p
    if rho >= 1.0:
        raise UnstableSystemError(rho, "universal delay lower bound")
    c = 1 << d
    if mdc_method == "brumelle":
        dd = mdc_sojourn_brumelle_lower(c, rho) if rho > 0 else 1.0
    elif mdc_method == "exact":
        dd = mdc_sojourn_exact(c, rho)
    elif mdc_method == "cosmetatos":
        dd = mdc_sojourn_cosmetatos(c, rho)
    elif mdc_method == "mc":
        dd = mdc_sojourn_mc(c, rho)
    else:
        raise ConfigurationError(f"unknown mdc_method {mdc_method!r}")
    return max(d * p, p * dd)


def universal_delay_lower_bound_simplified(d: int, lam: float, p: float) -> float:
    """Prop 2's closed form: ``(dp + p + p rho / (2^{d+1} (1-rho))) / 2``.

    Obtained from ``max{a1, a2} >= (a1 + a2)/2`` with the Brumelle
    bound; weaker than :func:`universal_delay_lower_bound` but matches
    the displayed formula in the paper.
    """
    d, lam, p = _check(d, lam, p)
    rho = lam * p
    if rho >= 1.0:
        raise UnstableSystemError(rho, "universal delay lower bound")
    return 0.5 * (d * p + p + p * rho / (2.0 ** (d + 1) * (1.0 - rho)))


def oblivious_delay_lower_bound(d: int, lam: float, p: float) -> float:
    """Prop 3: for oblivious schemes,
    ``T >= max{d p, p (1 + rho / (2 (1 - rho)))}``.

    The second term is ``p`` times the M/D/1 sojourn at utilisation
    ``rho`` — the convexity argument of the proof shows splitting the
    first-dimension flow evenly is the oblivious optimum.
    """
    d, lam, p = _check(d, lam, p)
    rho = lam * p
    if rho >= 1.0:
        raise UnstableSystemError(rho, "oblivious delay lower bound")
    per_arc = md1_sojourn(rho) if rho > 0 else 1.0
    return max(d * p, p * per_arc)


def greedy_delay_upper_bound(d: int, lam: float, p: float) -> float:
    """Prop 12: greedy dimension-order routing achieves
    ``T <= d p / (1 - rho)`` — O(d) delay for every fixed ``rho < 1``."""
    d, lam, p = _check(d, lam, p)
    rho = lam * p
    if rho >= 1.0:
        raise UnstableSystemError(rho, "greedy delay upper bound")
    return d * p / (1.0 - rho)


def greedy_delay_lower_bound(d: int, lam: float, p: float) -> float:
    """Prop 13: greedy routing satisfies
    ``T >= d p + p rho / (2 (1 - rho))``.

    (First-dimension arcs are exact M/D/1 queues; every further arc
    holds each packet at least one unit.)
    """
    d, lam, p = _check(d, lam, p)
    rho = lam * p
    if rho >= 1.0:
        raise UnstableSystemError(rho, "greedy delay lower bound")
    return d * p + p * rho / (2.0 * (1.0 - rho))


def slotted_delay_upper_bound(d: int, lam: float, p: float, tau: float) -> float:
    """§3.4: the slotted variant satisfies ``T~ <= d p / (1 - rho) + tau``.

    The slotted sample path is dominated by the continuous-time one with
    arrivals advanced to slot starts, costing at most one slot ``tau``.
    """
    if not 0.0 < tau <= 1.0:
        raise ConfigurationError(f"slot length tau must lie in (0, 1], got {tau}")
    return greedy_delay_upper_bound(d, lam, p) + tau


def heavy_traffic_window(d: int, p: float) -> Tuple[float, float]:
    """§3.3: ``p/2 <= lim_{rho -> 1} (1 - rho) T <= d p`` for greedy routing.

    Lower end from Prop 13 (``(1-rho) T -> p rho / 2``), upper from
    Prop 12.  The paper conjectures the upper end is tight for
    ``p in (0, 1)`` and shows the lower end is tight at ``p = 1``.
    """
    d, _, p = _check(d, 0.0, p)
    return (p / 2.0, d * p)


def antipodal_exact_delay(d: int, lam: float) -> float:
    """Exact delay at ``p = 1`` (§3.3 end): ``T = d + rho / (2 (1 - rho))``.

    With ``p = 1`` every packet targets the antipode, canonical paths
    from distinct origins are arc-disjoint, and each origin's stream
    queues only at its first arc — an M/D/1 at utilisation
    ``rho = lam`` — then flows without further contention.
    """
    d = int(d)
    if d < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {d}")
    rho = float(lam)
    if rho >= 1.0:
        raise UnstableSystemError(rho, "antipodal exact delay")
    if rho < 0.0:
        raise ConfigurationError(f"rate must be >= 0, got {lam}")
    return d + rho / (2.0 * (1.0 - rho))


def mean_queue_per_node_bound(d: int, lam: float, p: float) -> float:
    """§3.3: the mean number of packets per node is at most
    ``d rho / (1 - rho)`` — O(d) buffers suffice on average."""
    d, lam, p = _check(d, lam, p)
    rho = lam * p
    if rho >= 1.0:
        raise UnstableSystemError(rho, "mean queue per node bound")
    return d * rho / (1.0 - rho)


def total_population_bound(d: int, lam: float, p: float) -> float:
    """§3.3: mean total packets in flight is at most
    ``d 2^d rho / (1 - rho)`` (eq. (13))."""
    return mean_queue_per_node_bound(d, lam, p) * (1 << int(d))


# ---------------------------------------------------------------------------
# butterfly
# ---------------------------------------------------------------------------


def _check_butterfly(d: int, lam: float, p: float) -> Tuple[int, float, float, float, float]:
    d, lam, p = _check(d, lam, p)
    rv, rs = lam * p, lam * (1.0 - p)
    worst = max(rv, rs)
    if worst >= 1.0:
        raise UnstableSystemError(worst, "butterfly delay bound")
    return d, lam, p, rv, rs


def butterfly_delay_lower_bound(d: int, lam: float, p: float) -> float:
    """Prop 14: under **any** scheme,
    ``T >= d + lam p^2/(2(1-lam p)) + lam (1-p)^2/(2(1-lam(1-p)))``.

    First-level arcs are exact M/D/1 queues (rate ``lam p`` vertical,
    ``lam (1-p)`` straight) and the remaining ``d-1`` levels cost at
    least one unit each.
    """
    d, lam, p, rv, rs = _check_butterfly(d, lam, p)
    term_v = lam * p * p / (2.0 * (1.0 - rv)) if rv > 0 else 0.0
    term_s = lam * (1.0 - p) ** 2 / (2.0 * (1.0 - rs)) if rs > 0 else 0.0
    return d + term_v + term_s


def butterfly_delay_upper_bound(d: int, lam: float, p: float) -> float:
    """Prop 17: greedy butterfly routing achieves
    ``T <= d p / (1 - lam p) + d (1-p) / (1 - lam (1-p))``."""
    d, lam, p, rv, rs = _check_butterfly(d, lam, p)
    return d * p / (1.0 - rv) + d * (1.0 - p) / (1.0 - rs)


def butterfly_heavy_traffic_window(d: int, p: float) -> Tuple[float, float]:
    """§4.3: ``max{p,1-p}/2 <= lim_{rho->1} (1-rho) T <= d max{p,1-p}``.

    The lower end is tight at ``p in {0, 1}`` (disjoint paths), the
    upper end conjectured tight for ``p in (0, 1)``.
    """
    d, _, p = _check(d, 0.0, p)
    m = max(p, 1.0 - p)
    return (m / 2.0, d * m)
