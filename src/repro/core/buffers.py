"""Buffer-sizing from the paper's queue-size analysis (engineering layer).

The paper assumes infinite buffers (§1.1) and proves the *sizes* are
benign: the PS-dominated occupancy of each arc is geometric(rho), so a
finite buffer of ``B`` slots overflows with probability at most
``rho^B`` per arc — the practical consequence of §3.3's "O(d) packets
per node w.h.p." result.  These helpers turn the geometric tail into
dimensioning rules and are validated against simulated maxima in the
tests.

Note these are *stationary overflow probabilities* under the dominating
product-form law — conservative for the FIFO system (Prop 11).
"""

from __future__ import annotations

import math

from repro.errors import UnstableSystemError

__all__ = [
    "arc_overflow_probability",
    "arc_buffer_for_overflow",
    "node_buffer_for_overflow",
]


def _check(rho: float) -> float:
    rho = float(rho)
    if rho < 0.0:
        raise ValueError(f"utilisation must be >= 0, got {rho}")
    if rho >= 1.0:
        raise UnstableSystemError(rho, "buffer dimensioning")
    return rho


def arc_overflow_probability(rho: float, buffer_slots: int) -> float:
    """P[arc occupancy >= B] <= rho^B (geometric tail, Prop 11 + product
    form)."""
    rho = _check(rho)
    if buffer_slots < 0:
        raise ValueError(f"buffer size must be >= 0, got {buffer_slots}")
    if rho == 0.0:
        return 0.0 if buffer_slots > 0 else 1.0
    return rho**buffer_slots

def arc_buffer_for_overflow(rho: float, epsilon: float) -> int:
    """Smallest per-arc buffer B with stationary overflow prob <= eps:
    ``B = ceil(log eps / log rho)``."""
    rho = _check(rho)
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if rho == 0.0:
        return 1
    return max(1, math.ceil(math.log(epsilon) / math.log(rho)))


def node_buffer_for_overflow(d: int, rho: float, epsilon: float) -> int:
    """Per-node buffer (pooled across the node's d outgoing arcs) with
    overflow probability <= eps.

    A node's occupancy is the sum of its d independent geometric(rho)
    arc occupancies (product form); a union bound with per-arc budget
    ``eps/d`` gives a simple, slightly conservative rule.
    """
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")
    return d * arc_buffer_for_overflow(rho, epsilon / d)
