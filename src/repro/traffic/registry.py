"""The traffic-plugin registry: decorator registration + entry points.

Mirrors the scheme/network/engine registries on the **traffic** axis,
replacing the ``law``-selection branches that used to be hard-wired in
the network plugins and the scheme adapters.  This package is the
**only** place in the library allowed to compare traffic names —
everything else goes through :func:`get_traffic` /
:func:`canonical_traffic_name` (enforced by a grep-style test, exactly
as PRs 3 and 4 did for networks and engines).

The registry is populated from three sources:

1. **Built-ins** — the modules in :data:`_BUILTIN_MODULES` are imported
   lazily on first lookup; each registers its plugin at import time
   via the :func:`register_traffic` decorator.
2. **Entry points** — third-party distributions may declare::

       [project.entry-points."repro.traffic_plugins"]
       mylaw = "mypkg.traffic:MyTrafficPlugin"

   and are discovered through :mod:`importlib.metadata` without this
   repository knowing about them.  A broken third-party plugin emits a
   warning instead of taking the registry down.
3. **Runtime** — tests and notebooks call :func:`register_traffic` /
   :func:`unregister_traffic` directly.

Lookups accept **aliases** (``"bernoulli"`` for ``"uniform"``), and
:class:`~repro.runner.spec.ScenarioSpec` stores (and content-hashes)
the canonical spelling, so an alias and its canonical name always
share one cache cell.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Tuple, Type, Union

from repro.errors import ConfigurationError
from repro.traffic.api import TrafficPlugin

__all__ = [
    "register_traffic",
    "unregister_traffic",
    "get_traffic",
    "iter_traffics",
    "available_traffics",
    "all_traffic_names",
    "canonical_traffic_name",
    "declared_traffic_names",
    "merge_legacy_law",
    "ENTRY_POINT_GROUP",
]

ENTRY_POINT_GROUP = "repro.traffic_plugins"

#: modules whose import registers the built-in traffic plugins
_BUILTIN_MODULES = (
    "repro.traffic.uniform",
    "repro.traffic.permutations",
    "repro.traffic.hotspot",
    "repro.traffic.bursty",
)

#: the retired ``extra={"law": ...}`` vocabulary of the pre-axis
#: hypercube network option, mapped onto the traffic axis so old specs
#: keep constructing (and share cache cells with the new spelling)
_LEGACY_LAWS = {"bernoulli": "uniform", "bitrev": "bitrev"}

_PLUGINS: Dict[str, TrafficPlugin] = {}
_ALIASES: Dict[str, str] = {}  # alias -> canonical name
_loaded = False
_loading = False


def register_traffic(
    plugin: Union[TrafficPlugin, Type[TrafficPlugin]],
    *,
    overwrite: bool = False,
) -> Union[TrafficPlugin, Type[TrafficPlugin]]:
    """Register a plugin (usable as a class decorator).

    Accepts either an instance or a ``TrafficPlugin`` subclass (which
    is instantiated with no arguments).  Returns its argument unchanged
    so it composes as ``@register_traffic`` above a class definition.
    """
    instance = plugin() if isinstance(plugin, type) else plugin
    if not isinstance(instance, TrafficPlugin):
        raise ConfigurationError(
            f"{instance!r} does not implement the TrafficPlugin protocol"
        )
    if not instance.name:
        raise ConfigurationError("a traffic plugin needs a non-empty name")
    existing = _PLUGINS.get(instance.name)
    if existing is not None and not overwrite:
        if type(existing) is type(instance):
            return plugin  # idempotent re-import of the same plugin
        raise ConfigurationError(
            f"traffic {instance.name!r} is already registered by "
            f"{type(existing).__name__} (pass overwrite=True to replace it)"
        )
    for alias in instance.aliases:
        # an alias may never shadow a canonical name, nor an alias a
        # *different* plugin owns — overwrite only replaces same-name
        # registrations, it does not license alias theft
        if alias in _PLUGINS or _ALIASES.get(alias, instance.name) != instance.name:
            raise ConfigurationError(
                f"alias {alias!r} of traffic {instance.name!r} collides "
                f"with an existing traffic name or alias"
            )
    if existing is not None:
        unregister_traffic(existing.name)
    _PLUGINS[instance.name] = instance
    for alias in instance.aliases:
        _ALIASES[alias] = instance.name
    return plugin


def unregister_traffic(name: str) -> None:
    """Remove a plugin and the aliases it owns (primarily for tests)."""
    plugin = _PLUGINS.pop(name, None)
    if plugin is not None:
        for alias in plugin.aliases:
            if _ALIASES.get(alias) == name:
                _ALIASES.pop(alias)


def _load_entry_points() -> None:
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - stdlib since 3.8
        return
    try:
        eps = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 selection API
        eps = entry_points().get(ENTRY_POINT_GROUP, ())
    for ep in eps:
        if ep.name in _PLUGINS or ep.name in _ALIASES:
            continue  # built-ins (or an earlier entry point) win
        try:
            register_traffic(ep.load())
        except Exception as exc:  # noqa: BLE001 - isolate bad third parties
            warnings.warn(
                f"traffic plugin entry point {ep.name!r} failed to load: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )


def _ensure_loaded() -> None:
    global _loaded, _loading
    if _loaded or _loading:
        return
    _loading = True  # re-entrancy guard, cleared on failure so a broken
    try:  # import can be fixed and retried within the process
        import importlib

        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
        _load_entry_points()
        _loaded = True
    finally:
        _loading = False


def get_traffic(name: str) -> TrafficPlugin:
    """The plugin registered under *name* (canonical or alias), or an
    enumerating error."""
    _ensure_loaded()
    plugin = _PLUGINS.get(_ALIASES.get(name, name))
    if plugin is None:
        known = ", ".join(sorted(_PLUGINS)) or "(none)"
        raise ConfigurationError(
            f"unknown traffic {name!r}; registered traffic laws: {known}"
        )
    return plugin


def canonical_traffic_name(name: str) -> str:
    """Resolve *name* (canonical or alias) to the canonical name."""
    return get_traffic(name).name


def iter_traffics() -> List[TrafficPlugin]:
    """All registered plugins, sorted by canonical name."""
    _ensure_loaded()
    return [_PLUGINS[name] for name in sorted(_PLUGINS)]


def available_traffics() -> Tuple[str, ...]:
    """Sorted canonical names of every registered traffic law."""
    _ensure_loaded()
    return tuple(sorted(_PLUGINS))


def all_traffic_names() -> Tuple[str, ...]:
    """Sorted canonical names *and* aliases (the CLI vocabulary)."""
    _ensure_loaded()
    return tuple(sorted({*_PLUGINS, *_ALIASES}))


def declared_traffic_names(traffics: Tuple[str, ...]) -> Tuple[str, ...]:
    """Canonicalise a scheme's declared ``capabilities.traffics`` tuple
    (the wildcard passes through; aliases collapse to canonical names).

    A declared name that resolves to no registered law is kept verbatim
    rather than raised on: a scheme may declare a companion law whose
    distribution is not installed, and that must not poison the laws
    that *are* registered (nor the ``repro traffics`` matrix)."""
    names = []
    for traffic in traffics:
        if traffic == "*":
            names.append(traffic)
            continue
        try:
            names.append(canonical_traffic_name(traffic))
        except ConfigurationError:
            names.append(traffic)
    return tuple(dict.fromkeys(names))


def merge_legacy_law(traffic: str, law: object) -> str:
    """Fold the retired ``extra={"law": ...}`` option into the traffic
    axis: the canonical traffic name the pair resolves to, or an error
    when the two disagree.

    Called from :class:`~repro.runner.spec.ScenarioSpec` normalisation
    **before** content-hashing, so a legacy spelling and its traffic-axis
    twin always share one cache cell.
    """
    mapped = _LEGACY_LAWS.get(law)
    if mapped is None:
        known = ", ".join(sorted(_LEGACY_LAWS))
        raise ConfigurationError(
            f"unknown legacy destination law {law!r} (one of {known}); "
            "prefer the traffic axis: ScenarioSpec(traffic=...) with one "
            f"of {', '.join(available_traffics())}"
        )
    canonical = canonical_traffic_name(traffic)
    if canonical not in {canonical_traffic_name("uniform"), mapped}:
        raise ConfigurationError(
            f"legacy option law={law!r} maps to traffic {mapped!r}, which "
            f"contradicts the spec's traffic {canonical!r}; drop the law "
            "option and keep the traffic field"
        )
    return mapped
