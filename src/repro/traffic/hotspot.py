"""Traffic plugin for hot-spot destinations.

The standard non-uniform stress case (and the regime where greedy
performance degrades sharply in the faulty/non-ideal-workload
literature): with probability ``beta`` a packet targets one fixed hot
node, otherwise it falls back to the network's uniform background law
(eq. (1) Bernoulli flips on bit-addressed networks, uniform node
destinations elsewhere).  ``beta = 0`` recovers uniform traffic;
raising ``beta`` funnels an ever larger flow share into the hot node's
incoming arcs, saturating them long before the uniform load law would
predict — which is why the paper's closed forms do not apply
(:attr:`~repro.traffic.api.TrafficPlugin.paper_law` stays False) and
why two-phase mixing is the §5 remedy here too.

Runs on **every** network: the hot node is validated against the
network's source count, and the background law adapts to its address
structure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.plugins.api import OptionSpec
from repro.traffic.api import TrafficPlugin
from repro.traffic.registry import register_traffic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.networks.api import NetworkPlugin
    from repro.runner.spec import ScenarioSpec

__all__ = ["HotSpotTrafficPlugin"]


@register_traffic
class HotSpotTrafficPlugin(TrafficPlugin):
    name = "hotspot"
    aliases = ("hot-spot",)
    summary = (
        "one hot destination with tunable skew: P[target hot node] = "
        "beta, uniform background otherwise"
    )
    options = (
        OptionSpec(
            "beta",
            kind="float",
            default=0.1,
            description="probability a packet targets the hot node "
            "(0 recovers uniform traffic)",
        ),
        OptionSpec(
            "hot",
            kind="int",
            default=0,
            description="the hot destination's node id",
        ),
    )

    @staticmethod
    def _beta(spec: "ScenarioSpec") -> float:
        return float(spec.option("beta", 0.1))

    @staticmethod
    def _hot(spec: "ScenarioSpec") -> int:
        return int(spec.option("hot", 0))

    def validate(self, spec: "ScenarioSpec") -> None:
        super().validate(spec)
        beta = self._beta(spec)
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError(
                f"hotspot beta must lie in [0, 1], got {beta}"
            )
        num = spec.network_plugin.num_sources(spec)
        if not 0 <= self._hot(spec) < num:
            raise ConfigurationError(
                f"hot node {self._hot(spec)} out of range for network "
                f"{spec.network!r} with {num} sources"
            )

    def destination_law(
        self, spec: "ScenarioSpec", network: "NetworkPlugin"
    ) -> Any:
        from repro.traffic.destinations import HotSpotTraffic
        from repro.traffic.uniform import uniform_background_law

        return HotSpotTraffic(
            uniform_background_law(spec, network),
            self._hot(spec),
            self._beta(spec),
        )
