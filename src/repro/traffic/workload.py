"""Workload specifications bundling arrivals and destinations.

A *workload* fixes everything random about a run except the routing:
the topology, the per-node Poisson rate ``lam``, and the destination
law.  ``generate()`` returns a :class:`TrafficSample` — flat, sorted
arrays of (birth time, origin, destination) — which every simulator in
this library consumes.  Sampling is exact (superposition construction)
and fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.traffic.arrivals import SlottedBatchArrivals, merged_poisson_arrivals
from repro.traffic.destinations import DestinationLaw

__all__ = [
    "TrafficSample",
    "HypercubeWorkload",
    "ButterflyWorkload",
    "NodePoissonWorkload",
]


@dataclass(frozen=True)
class TrafficSample:
    """A realised set of packets: parallel arrays sorted by birth time.

    For the hypercube, ``origins``/``destinations`` are node ids; for
    the butterfly they are *row* addresses (origins live at level 0,
    destinations at level d).
    """

    times: np.ndarray
    origins: np.ndarray
    destinations: np.ndarray
    horizon: float

    def __post_init__(self) -> None:
        n = self.times.shape[0]
        if self.origins.shape[0] != n or self.destinations.shape[0] != n:
            raise ConfigurationError("times/origins/destinations must be parallel")
        if n > 1 and np.any(np.diff(self.times) < 0):
            raise ConfigurationError("times must be sorted ascending")

    @property
    def num_packets(self) -> int:
        return int(self.times.shape[0])

    def __len__(self) -> int:
        return self.num_packets


def _validate_positive_rate(lam: float) -> float:
    if not lam > 0.0:
        raise ConfigurationError(f"per-node rate lam must be > 0, got {lam}")
    return float(lam)


@dataclass(frozen=True)
class HypercubeWorkload:
    """Paper §1.1 workload: every cube node Poisson(``lam``), law eq. (1)."""

    cube: Hypercube
    lam: float
    law: DestinationLaw

    def __post_init__(self) -> None:
        _validate_positive_rate(self.lam)
        if self.law.d != self.cube.d:
            raise ConfigurationError(
                f"law dimension {self.law.d} != cube dimension {self.cube.d}"
            )

    def generate(self, horizon: float, rng: SeedLike = None) -> TrafficSample:
        """Sample every packet born in ``[0, horizon)``."""
        gen = as_generator(rng)
        times, origins = merged_poisson_arrivals(
            self.cube.num_nodes, self.lam, horizon, gen
        )
        dests = self.law.sample_destinations(origins, gen)
        return TrafficSample(times, origins, dests, float(horizon))

    @property
    def total_rate(self) -> float:
        """Aggregate packet birth rate ``lam * 2**d``."""
        return self.lam * self.cube.num_nodes


@dataclass(frozen=True)
class ButterflyWorkload:
    """Paper §4.2 workload: level-0 nodes Poisson(``lam``), row law eq. (1)."""

    butterfly: Butterfly
    lam: float
    law: DestinationLaw

    def __post_init__(self) -> None:
        _validate_positive_rate(self.lam)
        if self.law.d != self.butterfly.d:
            raise ConfigurationError(
                f"law dimension {self.law.d} != butterfly dimension {self.butterfly.d}"
            )

    def generate(self, horizon: float, rng: SeedLike = None) -> TrafficSample:
        """Sample every packet born in ``[0, horizon)`` (rows as addresses)."""
        gen = as_generator(rng)
        times, origins = merged_poisson_arrivals(
            self.butterfly.rows, self.lam, horizon, gen
        )
        dests = self.law.sample_destinations(origins, gen)
        return TrafficSample(times, origins, dests, float(horizon))

    @property
    def total_rate(self) -> float:
        """Aggregate packet birth rate ``lam * 2**d``."""
        return self.lam * self.butterfly.rows


@dataclass(frozen=True)
class NodePoissonWorkload:
    """Generic workload: every one of ``num_sources`` nodes births a
    Poisson(``lam``) packet stream; destinations come from any sampler
    exposing ``sample_destinations(origins, rng)``.

    This is the network-agnostic face of the paper's traffic model,
    used by network plugins (ring, torus) whose address structure is
    not the d-bit XOR algebra of :class:`HypercubeWorkload`.
    """

    num_sources: int
    lam: float
    law: "DestinationLaw"  # anything with sample_destinations

    def __post_init__(self) -> None:
        _validate_positive_rate(self.lam)
        if self.num_sources < 1:
            raise ConfigurationError(
                f"num_sources must be >= 1, got {self.num_sources}"
            )

    def generate(self, horizon: float, rng: SeedLike = None) -> TrafficSample:
        """Sample every packet born in ``[0, horizon)``."""
        gen = as_generator(rng)
        times, origins = merged_poisson_arrivals(
            self.num_sources, self.lam, horizon, gen
        )
        dests = self.law.sample_destinations(origins, gen)
        return TrafficSample(times, origins, dests, float(horizon))

    @property
    def total_rate(self) -> float:
        """Aggregate packet birth rate ``lam * num_sources``."""
        return self.lam * self.num_sources


@dataclass(frozen=True)
class SlottedHypercubeWorkload:
    """§3.4 slotted-time workload: Poisson(``lam * tau``) batches each slot."""

    cube: Hypercube
    lam: float
    law: DestinationLaw
    tau: float = 1.0
    _batches: SlottedBatchArrivals = field(init=False, repr=False)

    def __post_init__(self) -> None:
        _validate_positive_rate(self.lam)
        if self.law.d != self.cube.d:
            raise ConfigurationError(
                f"law dimension {self.law.d} != cube dimension {self.cube.d}"
            )
        object.__setattr__(self, "_batches", SlottedBatchArrivals(self.lam, self.tau))

    def generate(self, horizon: float, rng: SeedLike = None) -> TrafficSample:
        gen = as_generator(rng)
        times, origins = self._batches.sample_times(
            self.cube.num_nodes, horizon, gen
        )
        dests = self.law.sample_destinations(origins, gen)
        return TrafficSample(times, origins, dests, float(horizon))


__all__.append("SlottedHypercubeWorkload")
