"""Traffic plugin for the paper's primary law: eq. (1) / uniform.

On a bit-addressed network (hypercube, butterfly — anything exposing
:meth:`~repro.networks.api.NetworkPlugin.address_bits`) this is the
product-Bernoulli of eq. (1): every address bit flips independently
with probability ``spec.p``, uniform traffic at ``p = 1/2``.  On node-
addressed networks (ring, torus) it degrades gracefully to the uniform
law over all nodes — the network-agnostic face of the same assumption,
which is what the pre-axis network plugins hard-wired.

This is the **only** plugin declaring :attr:`~TrafficPlugin.paper_law`:
the closed-form load laws and the Props 12/13 and 14/17 delay brackets
assume exactly this model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.traffic.api import TrafficPlugin
from repro.traffic.registry import register_traffic

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.networks.api import NetworkPlugin
    from repro.runner.spec import ScenarioSpec

__all__ = [
    "UniformTraffic",
    "uniform_background_law",
    "bernoulli_mask_pmf",
    "bernoulli_flip_probabilities",
]


def uniform_background_law(spec: "ScenarioSpec", network: "NetworkPlugin") -> Any:
    """The eq. (1) background every uniform-destination plugin shares:
    Bernoulli(``spec.p``) flips where the network exposes a d-bit XOR
    address space, the uniform node law elsewhere.  One definition, so
    uniform, hotspot and bursty can never drift apart."""
    from repro.traffic.destinations import BernoulliFlipLaw, UniformNodeLaw

    bits = network.address_bits(spec)
    if bits is not None:
        return BernoulliFlipLaw(bits, spec.p)
    return UniformNodeLaw(network.num_sources(spec))


def bernoulli_mask_pmf(spec: "ScenarioSpec") -> Optional["np.ndarray"]:
    """The eq. (1) mask pmf on *spec*'s network, ``None`` where the
    network is not bit-addressed."""
    from repro.traffic.destinations import BernoulliFlipLaw

    bits = spec.network_plugin.address_bits(spec)
    if bits is None:
        return None
    return BernoulliFlipLaw(bits, spec.p).mask_pmf()


def bernoulli_flip_probabilities(spec: "ScenarioSpec") -> Optional["np.ndarray"]:
    """The eq. (1) per-dimension flip probabilities, ``None`` where the
    network is not bit-addressed."""
    import numpy as np

    bits = spec.network_plugin.address_bits(spec)
    if bits is None:
        return None
    return np.full(bits, spec.p)


@register_traffic
class UniformTraffic(TrafficPlugin):
    name = "uniform"
    aliases = ("bernoulli", "eq1")
    summary = (
        "the paper's eq. (1): Bernoulli(p) bit flips on bit-addressed "
        "networks, uniform node destinations elsewhere"
    )
    paper_law = True

    def destination_law(
        self, spec: "ScenarioSpec", network: "NetworkPlugin"
    ) -> Any:
        return uniform_background_law(spec, network)

    # -- exact theory ---------------------------------------------------------

    def mask_pmf(self, spec: "ScenarioSpec") -> Optional["np.ndarray"]:
        return bernoulli_mask_pmf(spec)

    def flip_probabilities(self, spec: "ScenarioSpec") -> Optional["np.ndarray"]:
        return bernoulli_flip_probabilities(spec)
