"""Arrival processes: Poisson (continuous time) and slotted batches (§3.4).

The continuous-time model has every node generating packets as an
independent Poisson process with rate ``lam``.  For vectorised
simulation we exploit the superposition property: the union of ``n``
independent rate-``lam`` processes is one Poisson process of rate
``n * lam`` whose points carry i.i.d. uniform source labels —
:func:`merged_poisson_arrivals` samples exactly that in O(N) numpy work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator

__all__ = ["PoissonProcess", "SlottedBatchArrivals", "merged_poisson_arrivals"]


@dataclass(frozen=True, slots=True)
class PoissonProcess:
    """Homogeneous Poisson process of the given rate (events / time unit)."""

    rate: float

    def __post_init__(self) -> None:
        if not self.rate >= 0.0:
            raise ConfigurationError(f"rate must be >= 0, got {self.rate}")

    def sample_times(self, horizon: float, rng: SeedLike = None) -> np.ndarray:
        """Event times in ``[0, horizon)``, sorted ascending.

        Uses the conditional-uniformity construction (draw the Poisson
        count, then order statistics of uniforms) — exact and fully
        vectorised, unlike cumulative exponential gaps.
        """
        if horizon < 0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        gen = as_generator(rng)
        n = gen.poisson(self.rate * horizon)
        times = gen.random(n) * horizon
        times.sort()
        return times

    def mean_count(self, horizon: float) -> float:
        return self.rate * horizon


def merged_poisson_arrivals(
    num_sources: int,
    rate_per_source: float,
    horizon: float,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Superposed arrivals of ``num_sources`` i.i.d. Poisson processes.

    Returns ``(times, sources)`` with ``times`` sorted ascending in
    ``[0, horizon)`` and ``sources[i]`` the index of the generating
    node, uniform on ``range(num_sources)`` — the exact law of the
    merged process.
    """
    if num_sources <= 0:
        raise ConfigurationError(f"need at least one source, got {num_sources}")
    gen = as_generator(rng)
    proc = PoissonProcess(num_sources * rate_per_source)
    times = proc.sample_times(horizon, gen)
    sources = gen.integers(0, num_sources, size=times.shape[0], dtype=np.int64)
    return times, sources


@dataclass(frozen=True, slots=True)
class SlottedBatchArrivals:
    """§3.4 slotted-time arrivals: Poisson-sized batches at slot starts.

    Time is divided into slots of duration ``tau`` (with ``1/tau`` an
    integer so unit-length packets tile slots exactly); at each time
    ``k * tau`` every node independently generates a batch of packets
    with Poisson(``rate * tau``) size, so the traffic *intensity*
    matches the continuous-time model with the same ``rate``.
    """

    rate: float
    tau: float

    def __post_init__(self) -> None:
        if not self.rate >= 0.0:
            raise ConfigurationError(f"rate must be >= 0, got {self.rate}")
        if not 0.0 < self.tau <= 1.0:
            raise ConfigurationError(f"tau must lie in (0, 1], got {self.tau}")
        slots_per_unit = 1.0 / self.tau
        if abs(slots_per_unit - round(slots_per_unit)) > 1e-9:
            raise ConfigurationError(
                f"1/tau must be an integer so packets tile slots; got tau={self.tau}"
            )

    def num_slots(self, horizon: float) -> int:
        """Number of slot boundaries in ``[0, horizon)``."""
        return int(np.ceil(horizon / self.tau - 1e-12))

    def sample_times(
        self, num_sources: int, horizon: float, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample all batches for all sources over the horizon.

        Returns ``(times, sources)``; ``times`` are the slot boundaries
        ``k * tau``, repeated once per packet of each batch, sorted
        (ties grouped by slot, then source).
        """
        if num_sources <= 0:
            raise ConfigurationError(f"need at least one source, got {num_sources}")
        gen = as_generator(rng)
        k = self.num_slots(horizon)
        # counts[s, node] ~ Poisson(rate * tau), independent across both axes
        counts = gen.poisson(self.rate * self.tau, size=(k, num_sources))
        per_slot = counts.sum(axis=1)
        times = np.repeat(np.arange(k) * self.tau, per_slot)
        sources = np.repeat(
            np.tile(np.arange(num_sources, dtype=np.int64), k),
            counts.reshape(-1),
        )
        return times, sources
