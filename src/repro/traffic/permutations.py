"""Traffic plugins for the classic permutation family.

The adversarial destination patterns of the oblivious-routing
literature, now first-class scenario vocabulary:

* ``bitrev``    — bit reversal: the canonical worst case for greedy
  dimension-order routing, piling ``Theta(2^{d/2})`` canonical paths
  onto single arcs (the §5 motivation for Valiant mixing);
* ``transpose`` — matrix transpose (swap the low and high address
  halves), the other standard hard permutation; needs even ``d``;
* ``bitcomp``   — bit complement: every packet targets its antipode.
  Unlike the other two it *is* translation invariant (the XOR mask is
  constantly all-ones), so the §2.2 exact hooks have closed forms:
  every dimension flips with probability 1 and every greedy path
  crosses all ``d`` arcs.

All three are deterministic maps over d-bit addresses, so they require
a bit-addressed network (hypercube, butterfly; the ring's node space
is cyclic, not an XOR algebra) and consume **no** randomness for the
destinations — the replication stream is spent on arrivals alone,
which is what makes their batched generation trivially bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ConfigurationError
from repro.traffic.api import TrafficPlugin
from repro.traffic.registry import register_traffic

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.networks.api import NetworkPlugin
    from repro.runner.spec import ScenarioSpec

__all__ = ["BitReversalTraffic", "TransposeTraffic", "BitComplementTraffic"]


class _PermutationTrafficPlugin(TrafficPlugin):
    """Shared shape of the deterministic d-bit permutation plugins."""

    needs_address_bits = True

    def permutation(self, bits: int) -> "np.ndarray":
        """The permutation table over ``range(2**bits)``."""
        raise NotImplementedError  # pragma: no cover - protocol

    def destination_law(
        self, spec: "ScenarioSpec", network: "NetworkPlugin"
    ) -> Any:
        from repro.traffic.destinations import PermutationTraffic

        bits = network.address_bits(spec)
        return PermutationTraffic(bits, self.permutation(bits))


@register_traffic
class BitReversalTraffic(_PermutationTrafficPlugin):
    name = "bitrev"
    aliases = ("bit-reversal",)
    summary = (
        "bit-reversal permutation: Theta(2**(d/2)) greedy flows share "
        "single arcs (§5 adversary)"
    )

    def permutation(self, bits: int) -> "np.ndarray":
        from repro.traffic.destinations import bit_reversal_permutation

        return bit_reversal_permutation(bits)


@register_traffic
class TransposeTraffic(_PermutationTrafficPlugin):
    name = "transpose"
    aliases = ("matrix-transpose",)
    summary = (
        "matrix-transpose permutation (swap address halves); the other "
        "classic hard case, even d only"
    )

    def validate(self, spec: "ScenarioSpec") -> None:
        super().validate(spec)  # guarantees address_bits is not None
        bits = spec.network_plugin.address_bits(spec)
        if bits % 2 != 0:
            raise ConfigurationError(
                f"traffic 'transpose' swaps the two address halves and "
                f"needs an even address width, got {bits} bits"
            )

    def permutation(self, bits: int) -> "np.ndarray":
        from repro.traffic.destinations import transpose_permutation

        return transpose_permutation(bits)


@register_traffic
class BitComplementTraffic(TrafficPlugin):
    name = "bitcomp"
    aliases = ("bit-complement", "antipodal")
    summary = (
        "bit complement: every packet targets its antipode (constant "
        "all-ones XOR mask, d greedy hops)"
    )
    needs_address_bits = True

    def destination_law(
        self, spec: "ScenarioSpec", network: "NetworkPlugin"
    ) -> Any:
        from repro.traffic.destinations import FixedMaskLaw

        bits = network.address_bits(spec)
        return FixedMaskLaw(bits, (1 << bits) - 1)

    # -- exact theory (translation invariant: point mass at all-ones) --------

    def mask_pmf(self, spec: "ScenarioSpec") -> Optional["np.ndarray"]:
        from repro.traffic.destinations import FixedMaskLaw

        bits = spec.network_plugin.address_bits(spec)
        if bits is None:
            return None
        return FixedMaskLaw(bits, (1 << bits) - 1).mask_pmf()

    def flip_probabilities(self, spec: "ScenarioSpec") -> Optional["np.ndarray"]:
        import numpy as np

        bits = spec.network_plugin.address_bits(spec)
        if bits is None:
            return None
        return np.ones(bits)
