"""Destination distributions (paper eq. (1) and the §2.2 generalisation).

All laws here are *translation invariant*: the probability that a
packet born at ``x`` targets ``z`` depends only on the XOR mask
``v = x ^ z``, i.e. equals ``f(v)`` for a pmf ``f`` over the ``2**d``
masks.  The paper's primary law (eq. (1)) is the product-Bernoulli

    f(v) = p**popcount(v) * (1-p)**(d - popcount(v)),

equivalently (Lemma 1): each address bit is flipped independently with
probability ``p``.  ``p = 1/2`` is uniform traffic (origin included);
:class:`UniformExcludingOriginLaw` covers the "origin not permissible"
variant discussed in §1.1.

Laws expose the per-dimension *flip probabilities*

    q_j = P[bit j flipped] = sum_{v : v_j = 1} f(v),

from which §2.2 defines the per-dimension load factors
``rho_j = lam * q_j`` and the overall load ``rho = max_j rho_j``.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator

__all__ = [
    "DestinationLaw",
    "BernoulliFlipLaw",
    "UniformLaw",
    "UniformExcludingOriginLaw",
    "TranslationInvariantLaw",
    "FixedMaskLaw",
    "PermutationTraffic",
    "HotSpotTraffic",
    "UniformNodeLaw",
    "bit_reversal_permutation",
    "transpose_permutation",
]


class DestinationLaw(abc.ABC):
    """A translation-invariant destination law over d-bit addresses."""

    def __init__(self, d: int) -> None:
        if not 1 <= int(d) <= 24:
            raise ConfigurationError(f"dimension must be in [1, 24], got {d}")
        self._d = int(d)

    @property
    def d(self) -> int:
        return self._d

    # -- sampling -------------------------------------------------------------

    @abc.abstractmethod
    def sample_masks(self, n: int, rng: SeedLike = None) -> np.ndarray:
        """Draw *n* i.i.d. XOR masks ``v = x ^ z`` (dtype int64)."""

    def sample_destinations(
        self, origins: np.ndarray, rng: SeedLike = None
    ) -> np.ndarray:
        """Destinations for an array of origins: ``origins ^ masks``."""
        origins = np.asarray(origins, dtype=np.int64)
        return origins ^ self.sample_masks(origins.shape[0], rng)

    # -- exact probabilities ---------------------------------------------------

    @abc.abstractmethod
    def mask_prob(self, v: int) -> float:
        """``f(v)`` — probability of XOR mask *v*."""

    def prob(self, x: int, z: int) -> float:
        """P[destination == z | origin == x] == f(x ^ z)."""
        return self.mask_prob(x ^ z)

    def mask_pmf(self) -> np.ndarray:
        """Full pmf over all ``2**d`` masks (small d only)."""
        return np.array([self.mask_prob(v) for v in range(1 << self._d)])

    # -- load-related scalars ----------------------------------------------------

    @abc.abstractmethod
    def flip_probabilities(self) -> np.ndarray:
        """``q_j = P[bit j flipped]`` for each dimension j (shape (d,))."""

    def mean_distance(self) -> float:
        """Expected Hamming distance to the destination: ``sum_j q_j``."""
        return float(np.sum(self.flip_probabilities()))

    def max_flip_probability(self) -> float:
        """``max_j q_j`` — drives the §2.2 load factor ``rho = lam * max_j q_j``."""
        return float(np.max(self.flip_probabilities()))


class BernoulliFlipLaw(DestinationLaw):
    """The paper's eq. (1): flip each bit independently with probability p.

    Lemma 1: the d flip events are mutually independent Bernoulli(p),
    with and without conditioning on the origin.
    """

    def __init__(self, d: int, p: float) -> None:
        super().__init__(d)
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"flip probability must lie in [0, 1], got {p}")
        self._p = float(p)

    @property
    def p(self) -> float:
        return self._p

    def sample_masks(self, n: int, rng: SeedLike = None) -> np.ndarray:
        gen = as_generator(rng)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        # One Bernoulli(p) per (packet, dimension); pack bits into ints.
        bits = gen.random((n, self._d)) < self._p
        weights = (np.int64(1) << np.arange(self._d, dtype=np.int64))
        return bits @ weights

    def mask_prob(self, v: int) -> float:
        if not 0 <= v < (1 << self._d):
            raise ConfigurationError(f"mask {v} out of range for d={self._d}")
        k = v.bit_count()
        return self._p**k * (1.0 - self._p) ** (self._d - k)

    def flip_probabilities(self) -> np.ndarray:
        return np.full(self._d, self._p)

    def mean_distance(self) -> float:
        return self._d * self._p

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BernoulliFlipLaw(d={self._d}, p={self._p})"


class UniformLaw(BernoulliFlipLaw):
    """Uniform destinations (origin included): eq. (1) with p = 1/2."""

    def __init__(self, d: int) -> None:
        super().__init__(d, 0.5)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformLaw(d={self._d})"


class UniformExcludingOriginLaw(DestinationLaw):
    """Uniform over the ``2**d - 1`` nodes other than the origin.

    The §1.1 remark: results for the uniform law apply to this case
    after rescaling; the flip probabilities are
    ``q_j = 2**(d-1) / (2**d - 1)`` (slightly above 1/2).
    """

    def __init__(self, d: int) -> None:
        super().__init__(d)
        self._num_masks = (1 << d) - 1  # nonzero masks

    def sample_masks(self, n: int, rng: SeedLike = None) -> np.ndarray:
        gen = as_generator(rng)
        return gen.integers(1, self._num_masks + 1, size=n, dtype=np.int64)

    def mask_prob(self, v: int) -> float:
        if not 0 <= v < (1 << self._d):
            raise ConfigurationError(f"mask {v} out of range for d={self._d}")
        return 0.0 if v == 0 else 1.0 / self._num_masks

    def flip_probabilities(self) -> np.ndarray:
        # Of the 2**d - 1 nonzero masks, exactly 2**(d-1) have bit j set.
        q = (1 << (self._d - 1)) / self._num_masks
        return np.full(self._d, q)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformExcludingOriginLaw(d={self._d})"


class TranslationInvariantLaw(DestinationLaw):
    """Arbitrary translation-invariant law given by a pmf over masks.

    Supports the §2.2 generalisation (Propositions 2/3 and the
    stability condition hold for any such law).  Intended for small d —
    the pmf is materialised over all ``2**d`` masks.
    """

    def __init__(self, d: int, pmf: Sequence[float]) -> None:
        super().__init__(d)
        f = np.asarray(pmf, dtype=float)
        if f.shape != (1 << d,):
            raise ConfigurationError(
                f"pmf must have length 2**d = {1 << d}, got shape {f.shape}"
            )
        if np.any(f < -1e-12):
            raise ConfigurationError("pmf entries must be non-negative")
        total = float(f.sum())
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ConfigurationError(f"pmf must sum to 1, sums to {total!r}")
        self._f = np.clip(f, 0.0, None)
        self._f /= self._f.sum()
        masks = np.arange(1 << d, dtype=np.int64)
        bit = (masks[:, None] >> np.arange(d)) & 1
        self._q = (self._f[:, None] * bit).sum(axis=0)

    def sample_masks(self, n: int, rng: SeedLike = None) -> np.ndarray:
        gen = as_generator(rng)
        return gen.choice(len(self._f), size=n, p=self._f).astype(np.int64)

    def mask_prob(self, v: int) -> float:
        if not 0 <= v < (1 << self._d):
            raise ConfigurationError(f"mask {v} out of range for d={self._d}")
        return float(self._f[v])

    def mask_pmf(self) -> np.ndarray:
        return self._f.copy()

    def flip_probabilities(self) -> np.ndarray:
        return self._q.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TranslationInvariantLaw(d={self._d})"


class FixedMaskLaw(DestinationLaw):
    """Degenerate translation-invariant law: a constant XOR mask.

    Every packet targets ``origin ^ mask`` — e.g. bit-complement
    traffic for ``mask = 2**d - 1``, a single-dimension shuffle for a
    one-hot mask.  Deterministic, so sampling consumes no randomness;
    still translation invariant, so all the §2.2 exact machinery
    (``mask_pmf`` is a point mass, ``q_j`` the bits of the mask)
    applies.
    """

    def __init__(self, d: int, mask: int) -> None:
        super().__init__(d)
        if not 0 <= int(mask) < (1 << self._d):
            raise ConfigurationError(
                f"mask {mask} out of range for d={d}"
            )
        self._mask = int(mask)

    @property
    def mask(self) -> int:
        return self._mask

    def sample_masks(self, n: int, rng: SeedLike = None) -> np.ndarray:
        return np.full(n, self._mask, dtype=np.int64)

    def mask_prob(self, v: int) -> float:
        if not 0 <= v < (1 << self._d):
            raise ConfigurationError(f"mask {v} out of range for d={self._d}")
        return 1.0 if v == self._mask else 0.0

    def flip_probabilities(self) -> np.ndarray:
        return ((self._mask >> np.arange(self._d)) & 1).astype(float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedMaskLaw(d={self._d}, mask={self._mask})"


# ---------------------------------------------------------------------------
# non-translation-invariant traffic (for the §5 two-phase discussion)
# ---------------------------------------------------------------------------


class PermutationTraffic:
    """Deterministic permutation traffic: node x always targets perm[x].

    *Not* translation invariant (unless the permutation is an XOR
    translation), so the paper's main analysis does not cover it — this
    is the adversarial setting motivating Valiant's two-phase scheme,
    which the paper's §5 suggests for general destination
    distributions.  Classic hard cases: bit reversal and matrix
    transpose, whose canonical dimension-order paths pile Theta(2^{d/2})
    flows onto single arcs.

    Implements the minimal sampler interface used by the workloads
    (``d`` and ``sample_destinations``); the translation-invariant
    machinery (``mask_prob`` etc.) is deliberately absent.
    """

    def __init__(self, d: int, perm: "np.ndarray") -> None:
        if not 1 <= int(d) <= 24:
            raise ConfigurationError(f"dimension must be in [1, 24], got {d}")
        self._d = int(d)
        perm = np.asarray(perm, dtype=np.int64)
        n = 1 << self._d
        if perm.shape != (n,) or sorted(perm.tolist()) != list(range(n)):
            raise ConfigurationError(
                f"perm must be a permutation of range(2**{d})"
            )
        self._perm = perm.copy()

    @property
    def d(self) -> int:
        return self._d

    @property
    def perm(self) -> "np.ndarray":
        return self._perm.copy()

    def sample_destinations(
        self, origins: "np.ndarray", rng: SeedLike = None
    ) -> "np.ndarray":
        origins = np.asarray(origins, dtype=np.int64)
        return self._perm[origins]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PermutationTraffic(d={self._d})"


class HotSpotTraffic:
    """Hot-spot traffic: with probability ``beta`` target a fixed node,
    otherwise fall back to a background law.

    The standard non-uniform stress case; like
    :class:`PermutationTraffic` it is outside the paper's
    translation-invariant model and motivates two-phase mixing.

    The background may be any destination sampler — a d-bit
    :class:`DestinationLaw` (node space ``2**d``) or a node-addressed
    law like :class:`UniformNodeLaw` (node space ``num_nodes``) — so
    hot spots exist on every network the traffic axis drives.
    """

    def __init__(
        self,
        background,
        hot_node: int,
        beta: float,
    ) -> None:
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError(f"beta must lie in [0, 1], got {beta}")
        d = getattr(background, "d", None)
        num_nodes = (1 << d) if d is not None else background.num_nodes
        if not 0 <= hot_node < num_nodes:
            raise ConfigurationError(f"hot node {hot_node} out of range")
        self.background = background
        self.num_nodes = int(num_nodes)
        self.hot_node = int(hot_node)
        self.beta = float(beta)

    @property
    def d(self) -> int:
        d = getattr(self.background, "d", None)
        if d is None:
            raise AttributeError(
                "node-addressed hot-spot law has no d-bit structure; "
                "use num_nodes"
            )
        return d

    def sample_destinations(
        self, origins: "np.ndarray", rng: SeedLike = None
    ) -> "np.ndarray":
        gen = as_generator(rng)
        origins = np.asarray(origins, dtype=np.int64)
        dests = self.background.sample_destinations(origins, gen)
        hot = gen.random(origins.shape[0]) < self.beta
        dests[hot] = self.hot_node
        return dests

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HotSpotTraffic(hot_node={self.hot_node}, beta={self.beta}, "
            f"background={self.background!r})"
        )


class UniformNodeLaw:
    """Uniform destinations over an arbitrary node set ``range(n)``.

    The network-agnostic uniform law used by the ring and torus
    plugins: the destination is uniform over all ``n`` nodes (origin
    included — a packet targeting itself is delivered at birth, the
    analogue of the zero XOR mask under eq. (1)).  Translation
    invariant under the cyclic group, which is what makes every arc of
    a direction class carry the same flow.

    Implements the minimal sampler interface the workloads use
    (``sample_destinations``); the d-bit mask machinery of
    :class:`DestinationLaw` is deliberately absent.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {num_nodes}"
            )
        self._n = int(num_nodes)

    @property
    def num_nodes(self) -> int:
        return self._n

    def sample_destinations(
        self, origins: "np.ndarray", rng: SeedLike = None
    ) -> "np.ndarray":
        gen = as_generator(rng)
        origins = np.asarray(origins, dtype=np.int64)
        return gen.integers(0, self._n, size=origins.shape[0], dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformNodeLaw(num_nodes={self._n})"


def bit_reversal_permutation(d: int) -> "np.ndarray":
    """The bit-reversal permutation on d-bit addresses.

    The classic worst case for oblivious dimension-order routing:
    2^{d/2} canonical paths share single arcs.
    """
    if not 1 <= d <= 24:
        raise ConfigurationError(f"dimension must be in [1, 24], got {d}")
    n = 1 << d
    out = np.empty(n, dtype=np.int64)
    for x in range(n):
        r = 0
        for j in range(d):
            if (x >> j) & 1:
                r |= 1 << (d - 1 - j)
        out[x] = r
    return out


def transpose_permutation(d: int) -> "np.ndarray":
    """Matrix-transpose traffic (swap the low and high address halves).

    Requires even d; another standard adversarial permutation for
    dimension-order routing.
    """
    if d % 2 != 0:
        raise ConfigurationError(f"transpose needs even d, got {d}")
    if not 2 <= d <= 24:
        raise ConfigurationError(f"dimension must be in [2, 24], got {d}")
    half = d // 2
    n = 1 << d
    mask = (1 << half) - 1
    out = np.empty(n, dtype=np.int64)
    for x in range(n):
        lo = x & mask
        hi = x >> half
        out[x] = (lo << half) | hi
    return out
