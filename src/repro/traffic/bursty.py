"""Traffic plugin for bursty arrivals (batch / on-off modulated Poisson).

The paper's delay brackets lean on Poisson arrivals as much as on
uniform destinations; this plugin keeps the destination marginal
uniform (so the mask-algebra hooks still have closed forms) but breaks
the Poisson assumption two classic ways, selected by the ``mode``
option:

* ``"batch"`` — a compound Poisson process: batch *events* arrive as
  one Poisson stream of rate ``lam * n / burst``, each event lands a
  Geometric(1/``burst``)-sized batch of packets at one uniformly
  random source, so the long-run intensity matches the plain model
  with the same ``lam`` while the short-run variance is ``~burst``
  times larger;
* ``"onoff"`` — a two-state modulated Poisson process: the whole
  network alternates exponential ON periods (mean ``duty * cycle``)
  and OFF periods (mean ``(1-duty) * cycle``); during ON the
  superposed rate is ``lam * n / duty``, so again the mean intensity
  is unchanged and only the burstiness grows as ``duty`` shrinks.

Either way the load *factor* of the spec (a mean-rate quantity) is
unchanged, but queueing delay is driven by variance — greedy under
bursty arrivals is exactly the "non-ideal workload" regime in which
the related fault/overload literature sees sharp degradation, and the
closed-form brackets do not apply (``paper_law`` stays False).

Generation is fully vectorised per replication (one Poisson draw, one
geometric or per-interval count draw, ``np.repeat``), so the
replication-batched engine fast path keeps its speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.plugins.api import OptionSpec
from repro.rng import SeedLike, as_generator
from repro.traffic.api import TrafficPlugin
from repro.traffic.registry import register_traffic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.networks.api import NetworkPlugin
    from repro.runner.spec import ScenarioSpec

__all__ = ["BurstyTraffic", "BurstyWorkload"]


@dataclass(frozen=True)
class BurstyWorkload:
    """Bursty arrivals with i.i.d. destinations from any sampler.

    The bursty analogue of
    :class:`~repro.traffic.workload.NodePoissonWorkload`: same
    ``generate(horizon, gen) -> TrafficSample`` contract, same mean
    intensity ``lam`` per source, modulated as described by
    :class:`BurstyTraffic`.
    """

    num_sources: int
    lam: float
    law: Any  # anything with sample_destinations(origins, rng)
    mode: str = "batch"
    burst: float = 4.0
    duty: float = 0.5
    cycle: float = 25.0

    def __post_init__(self) -> None:
        if self.num_sources < 1:
            raise ConfigurationError(
                f"num_sources must be >= 1, got {self.num_sources}"
            )
        if not self.lam > 0.0:
            raise ConfigurationError(f"per-node rate lam must be > 0, got {self.lam}")
        if self.mode not in ("batch", "onoff"):
            raise ConfigurationError(
                f"bursty mode must be 'batch' or 'onoff', got {self.mode!r}"
            )
        if not self.burst >= 1.0:
            raise ConfigurationError(
                f"mean batch size burst must be >= 1, got {self.burst}"
            )
        if not 0.0 < self.duty <= 1.0:
            raise ConfigurationError(
                f"duty (ON fraction) must lie in (0, 1], got {self.duty}"
            )
        if not self.cycle > 0.0:
            raise ConfigurationError(
                f"mean ON+OFF cycle length must be > 0, got {self.cycle}"
            )

    @property
    def total_rate(self) -> float:
        """Long-run aggregate packet birth rate ``lam * num_sources``."""
        return self.lam * self.num_sources

    def _batch_times(self, horizon: float, gen: "np.random.Generator"):
        """Compound Poisson: event times, then geometric batch sizes."""
        from repro.traffic.arrivals import PoissonProcess

        events = PoissonProcess(self.total_rate / self.burst).sample_times(
            horizon, gen
        )
        sources = gen.integers(
            0, self.num_sources, size=events.shape[0], dtype=np.int64
        )
        sizes = gen.geometric(1.0 / self.burst, size=events.shape[0])
        return np.repeat(events, sizes), np.repeat(sources, sizes)

    def _onoff_times(self, horizon: float, gen: "np.random.Generator"):
        """Two-state modulated Poisson: exponential ON/OFF alternation."""
        on_mean = self.duty * self.cycle
        off_mean = (1.0 - self.duty) * self.cycle
        # alternating ON/OFF durations until the horizon is covered;
        # chunked draws keep the loop O(horizon / cycle) regardless of
        # how unlucky the exponentials are
        chunks = []
        total = 0.0
        while total < horizon:
            need = max(4, int(np.ceil((horizon - total) / self.cycle)) + 4)
            chunk = gen.exponential(1.0, size=2 * need)
            chunk[0::2] *= on_mean
            chunk[1::2] *= off_mean
            chunks.append(chunk)
            total += float(chunk.sum())
        durations = np.concatenate(chunks)
        edges = np.cumsum(durations)
        starts = np.concatenate(([0.0], edges[:-1]))
        on_starts = np.minimum(starts[0::2], horizon)
        on_lengths = np.minimum(edges[0::2], horizon) - on_starts
        keep = on_lengths > 0
        on_starts, on_lengths = on_starts[keep], on_lengths[keep]
        rate = self.total_rate / self.duty
        counts = gen.poisson(rate * on_lengths)
        times = np.repeat(on_starts, counts) + gen.random(
            int(counts.sum())
        ) * np.repeat(on_lengths, counts)
        times.sort()
        sources = gen.integers(
            0, self.num_sources, size=times.shape[0], dtype=np.int64
        )
        return times, sources

    def generate(self, horizon: float, rng: SeedLike = None):
        """Sample every packet born in ``[0, horizon)``."""
        from repro.traffic.workload import TrafficSample

        gen = as_generator(rng)
        if self.mode == "batch":
            times, origins = self._batch_times(horizon, gen)
        else:
            times, origins = self._onoff_times(horizon, gen)
        dests = np.asarray(
            self.law.sample_destinations(origins, gen), dtype=np.int64
        )
        return TrafficSample(times, origins, dests, float(horizon))


@register_traffic
class BurstyTraffic(TrafficPlugin):
    name = "bursty"
    # deliberately no "onoff" alias: the canonical name would resolve
    # to the default mode="batch", silently running a different arrival
    # process than the alias promises — select modes via the option
    aliases = ("burst",)
    summary = (
        "bursty arrivals at unchanged mean rate: compound-Poisson "
        "batches or on-off modulated Poisson, uniform destinations"
    )
    options = (
        OptionSpec(
            "mode",
            kind="str",
            default="batch",
            choices=("batch", "onoff"),
            description="batch = compound Poisson (geometric batches); "
            "onoff = two-state modulated Poisson",
        ),
        OptionSpec(
            "burst",
            kind="float",
            default=4.0,
            description="mean batch size (batch mode; >= 1, 1 recovers "
            "plain Poisson arrivals)",
        ),
        OptionSpec(
            "duty",
            kind="float",
            default=0.5,
            description="ON fraction of each cycle (onoff mode; (0, 1], "
            "1 recovers plain Poisson arrivals)",
        ),
        OptionSpec(
            "cycle",
            kind="float",
            default=25.0,
            description="mean ON+OFF cycle length (onoff mode)",
        ),
    )

    def validate(self, spec: "ScenarioSpec") -> None:
        super().validate(spec)
        # the workload constructor owns the range rules; build one on a
        # nominal rate so a bad knob fails at spec construction, not
        # mid-replication
        BurstyWorkload(
            num_sources=1,
            lam=1.0,
            law=None,
            mode=str(spec.option("mode", "batch")),
            burst=float(spec.option("burst", 4.0)),
            duty=float(spec.option("duty", 0.5)),
            cycle=float(spec.option("cycle", 25.0)),
        )

    def destination_law(
        self, spec: "ScenarioSpec", network: "NetworkPlugin"
    ) -> Any:
        from repro.traffic.uniform import uniform_background_law

        return uniform_background_law(spec, network)

    def build_workload(
        self, spec: "ScenarioSpec", network: "NetworkPlugin"
    ) -> BurstyWorkload:
        return BurstyWorkload(
            num_sources=network.num_sources(spec),
            lam=spec.resolved_lam,
            law=self.destination_law(spec, network),
            mode=str(spec.option("mode", "batch")),
            burst=float(spec.option("burst", 4.0)),
            duty=float(spec.option("duty", 0.5)),
            cycle=float(spec.option("cycle", 25.0)),
        )

    # -- exact theory (the destination marginal is still uniform) ------------

    def mask_pmf(self, spec: "ScenarioSpec") -> Optional["np.ndarray"]:
        from repro.traffic.uniform import bernoulli_mask_pmf

        return bernoulli_mask_pmf(spec)

    def flip_probabilities(self, spec: "ScenarioSpec") -> Optional["np.ndarray"]:
        from repro.traffic.uniform import bernoulli_flip_probabilities

        return bernoulli_flip_probabilities(spec)
