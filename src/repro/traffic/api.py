"""The traffic-plugin protocol: workload laws as first-class plugins.

PR 2 opened the *scheme* axis, PR 3 the *network* axis, PR 4 the
*engine* axis; this module completes the four-axis design on the
**traffic** axis.  The paper's delay results hinge on the traffic
assumption (uniform random destinations, Poisson arrivals) — varying
exactly that assumption is how related work probes greedy routing
(Papillon's ring distance laws, the sharp degradation under non-ideal
workloads in Angel et al.), so the law a scenario runs under must be
as pluggable as its scheme, network and engine.

A :class:`TrafficPlugin` is the single place a workload law touches
the scenario subsystem.  It declares its identity (``name`` +
``aliases``), its traffic-scoped typed ``extra`` options, and whether
the paper's eq. (1) closed forms apply (:attr:`~TrafficPlugin.paper_law`),
and implements:

* :meth:`~TrafficPlugin.destination_law` — the destination sampler for
  a spec on a concrete network (consulting the network's address
  structure: d-bit XOR masks where
  :meth:`~repro.networks.api.NetworkPlugin.address_bits` says so,
  plain node ids elsewhere);
* :meth:`~TrafficPlugin.build_workload` — the arrival process bundled
  with the destinations: an object whose ``generate(horizon, gen)``
  returns a :class:`~repro.traffic.workload.TrafficSample` (Poisson
  superposition by default; bursty plugins override);
* :meth:`~TrafficPlugin.sample_workload` /
  :meth:`~TrafficPlugin.sample_workload_batch` — the generation hooks
  the single-replication runner and the replication-batched engine
  fast path route through.  The batch contract is strict: entry *r*
  must be **bit-identical** to ``sample_workload(..., gens[r])``, so
  the batched engine path stays indistinguishable from R sequential
  runs whatever the law;
* the exact-theory hooks :meth:`~TrafficPlugin.mask_pmf` /
  :meth:`~TrafficPlugin.flip_probabilities` /
  :meth:`~TrafficPlugin.mean_distance` — closed forms over the d-bit
  mask algebra where they exist (``None`` where they do not), used by
  the conformance tests and the analysis layer.

Like the scheme/network/engine APIs, this module is dependency-light
(no numpy import at runtime, no simulator imports) so plugin modules
can import it without cycles; concrete plugins import their machinery
lazily.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.plugins.api import OptionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.networks.api import NetworkPlugin
    from repro.runner.spec import ScenarioSpec
    from repro.traffic.workload import TrafficSample

__all__ = ["TrafficPlugin"]


class TrafficPlugin:
    """Base class / protocol for traffic plugins.

    Subclasses set :attr:`name` (and optionally :attr:`aliases`,
    :attr:`summary`, :attr:`options`), implement
    :meth:`destination_law` (and :meth:`build_workload` when the
    arrival process itself deviates from node-Poisson), and may extend
    :meth:`validate` / :meth:`supports` with law-specific rules.
    """

    #: registry key; also the canonical ``ScenarioSpec.traffic`` value
    name: str = ""
    #: alternative spellings accepted by specs and the CLI; a spec
    #: built with an alias is normalised to :attr:`name` *before*
    #: content-hashing, so aliases share cache cells
    aliases: Tuple[str, ...] = ()
    #: one-line human description shown by ``repro traffics``
    summary: str = ""
    #: traffic-scoped ``extra`` knobs; validated alongside the scheme's
    #: and network's declared options (scheme, then network, wins on a
    #: name collision)
    options: Tuple[OptionSpec, ...] = ()
    #: the paper's eq. (1) model holds (Bernoulli(p) flips, Poisson
    #: arrivals), so the closed-form load laws and delay brackets
    #: (Props 12/13 on the hypercube, 14/17 on the butterfly) apply
    paper_law: bool = False
    #: the law is expressed over d-bit addresses (XOR masks /
    #: permutations of ``range(2**d)``) and therefore only runs on
    #: networks exposing :meth:`~repro.networks.api.NetworkPlugin.address_bits`
    needs_address_bits: bool = False

    # -- option schema -------------------------------------------------------

    def option_spec(self, name: str) -> Optional[OptionSpec]:
        for opt in self.options:
            if opt.name == name:
                return opt
        return None

    def option_names(self) -> Tuple[str, ...]:
        return tuple(opt.name for opt in self.options)

    # -- admissibility -------------------------------------------------------

    def supports(self, spec: "ScenarioSpec") -> Optional[str]:
        """``None`` when the law can drive *spec*, else a reason.

        The default checks the :attr:`needs_address_bits` declaration
        against the network's address structure; subclasses add
        law-specific rules (transpose needs even d, ...).
        """
        if self.needs_address_bits and spec.network_plugin.address_bits(spec) is None:
            return (
                f"traffic {self.name!r} is defined over d-bit addresses, "
                f"but network {spec.network!r} exposes no bit-addressed "
                "node space (NetworkPlugin.address_bits)"
            )
        return None

    def validate(self, spec: "ScenarioSpec") -> None:
        """Traffic-specific cross-field rules.  The default rejects
        specs :meth:`supports` gives a reason against; subclasses
        extend (always calling ``super().validate(spec)`` first)."""
        reason = self.supports(spec)
        if reason is not None:
            raise ConfigurationError(
                f"traffic {self.name!r} cannot drive this spec: {reason}"
            )

    # -- sampling ------------------------------------------------------------

    def destination_law(
        self, spec: "ScenarioSpec", network: "NetworkPlugin"
    ) -> Any:
        """The destination sampler for *spec* on *network*: an object
        exposing ``sample_destinations(origins, rng)``."""
        raise NotImplementedError  # pragma: no cover - protocol

    def build_workload(
        self, spec: "ScenarioSpec", network: "NetworkPlugin"
    ) -> Any:
        """The arrival process bundled with the destinations: an object
        whose ``generate(horizon, gen)`` returns a
        :class:`~repro.traffic.workload.TrafficSample`.

        Default: every source node births an independent
        Poisson(``resolved_lam``) stream (the paper's §1.1 model) with
        destinations from :meth:`destination_law` — bit-identical to
        the historical per-network workload classes.  Plugins that
        modulate the *arrivals* (bursty) override this.
        """
        from repro.traffic.workload import NodePoissonWorkload

        return NodePoissonWorkload(
            network.num_sources(spec),
            spec.resolved_lam,
            self.destination_law(spec, network),
        )

    def sample_workload(
        self,
        spec: "ScenarioSpec",
        network: "NetworkPlugin",
        horizon: float,
        gen: "np.random.Generator",
    ) -> "TrafficSample":
        """One realised workload drawn from one replication stream."""
        return self.build_workload(spec, network).generate(horizon, gen)

    def sample_workload_batch(
        self,
        spec: "ScenarioSpec",
        network: "NetworkPlugin",
        horizon: float,
        gens: Sequence["np.random.Generator"],
    ) -> List["TrafficSample"]:
        """R realised workloads for the replication-batched engine path.

        The contract is strict: entry *r* must be **bit-identical** to
        ``sample_workload(spec, network, horizon, gens[r])`` — each
        replication consumes only its own stream, so the batched engine
        path and the per-replication cache cells can never tell the two
        routes apart.  The default amortises workload construction
        (laws, permutation tables, topology-derived constants are built
        once for the whole batch) and draws each sample fully
        vectorised from its own generator.
        """
        workload = self.build_workload(spec, network)
        return [workload.generate(horizon, gen) for gen in gens]

    # -- exact theory ---------------------------------------------------------

    def mask_pmf(self, spec: "ScenarioSpec") -> Optional["np.ndarray"]:
        """The pmf of the XOR mask ``origin ^ destination`` over all
        ``2**d`` masks, when the law is translation invariant on a
        bit-addressed network; ``None`` where no closed form exists."""
        return None

    def flip_probabilities(self, spec: "ScenarioSpec") -> Optional["np.ndarray"]:
        """Per-dimension flip probabilities ``q_j`` (§2.2), or ``None``."""
        return None

    def mean_distance(self, spec: "ScenarioSpec") -> Optional[float]:
        """Expected Hamming distance to the destination, or ``None``.

        Default: ``sum_j q_j`` when :meth:`flip_probabilities` has a
        closed form.
        """
        q = self.flip_probabilities(spec)
        if q is None:
            return None
        return float(sum(q))

    # -- cosmetics -----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TrafficPlugin {self.name!r}>"
