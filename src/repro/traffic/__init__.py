"""Traffic generation substrate: who sends, when, and to whom.

Implements the paper's packet-generation model (§1.1):

* each node generates packets as an independent Poisson process with
  rate ``lam`` (:class:`PoissonProcess`, :func:`merged_poisson_arrivals`);
* each packet flips each origin-address bit independently with
  probability ``p`` to pick its destination — eq. (1) / Lemma 1
  (:class:`BernoulliFlipLaw`), with the uniform law as the ``p = 1/2``
  special case and arbitrary translation-invariant laws
  (:class:`TranslationInvariantLaw`) for the §2.2 generalisation;
* the §3.4 slotted variant generates Poisson-sized batches at slot
  boundaries (:class:`SlottedBatchArrivals`).

:class:`HypercubeWorkload` / :class:`ButterflyWorkload` bundle both into
a reproducible sample of (birth time, origin, destination) triples.
"""

from repro.traffic.arrivals import (
    PoissonProcess,
    SlottedBatchArrivals,
    merged_poisson_arrivals,
)
from repro.traffic.destinations import (
    BernoulliFlipLaw,
    DestinationLaw,
    HotSpotTraffic,
    PermutationTraffic,
    TranslationInvariantLaw,
    UniformExcludingOriginLaw,
    UniformLaw,
    bit_reversal_permutation,
    transpose_permutation,
)
from repro.traffic.workload import (
    ButterflyWorkload,
    HypercubeWorkload,
    SlottedHypercubeWorkload,
    TrafficSample,
)

__all__ = [
    "PoissonProcess",
    "SlottedBatchArrivals",
    "merged_poisson_arrivals",
    "DestinationLaw",
    "BernoulliFlipLaw",
    "UniformLaw",
    "UniformExcludingOriginLaw",
    "TranslationInvariantLaw",
    "PermutationTraffic",
    "HotSpotTraffic",
    "bit_reversal_permutation",
    "transpose_permutation",
    "TrafficSample",
    "HypercubeWorkload",
    "ButterflyWorkload",
    "SlottedHypercubeWorkload",
]
