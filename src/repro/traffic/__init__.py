"""Traffic generation substrate *and* the traffic plugin axis: who
sends, when, and to whom.

The substrate implements the paper's packet-generation model (§1.1):

* each node generates packets as an independent Poisson process with
  rate ``lam`` (:class:`PoissonProcess`, :func:`merged_poisson_arrivals`);
* each packet flips each origin-address bit independently with
  probability ``p`` to pick its destination — eq. (1) / Lemma 1
  (:class:`BernoulliFlipLaw`), with the uniform law as the ``p = 1/2``
  special case and arbitrary translation-invariant laws
  (:class:`TranslationInvariantLaw`) for the §2.2 generalisation;
* the §3.4 slotted variant generates Poisson-sized batches at slot
  boundaries (:class:`SlottedBatchArrivals`).

On top of the substrate sits the **fourth plugin axis** (after
schemes, networks and engines): every workload law a scenario can run
under is a :class:`~repro.traffic.api.TrafficPlugin` declaring its
identity (name + aliases), its typed traffic-scoped options, its
sampling hooks (``sample_workload`` / ``sample_workload_batch`` for
the replication-batched engine path) and its exact-theory closed forms
(``mask_pmf`` / ``flip_probabilities`` / ``mean_distance``).  Built-ins:
``uniform`` (eq. (1)), the permutation family (``bitrev``,
``transpose``, ``bitcomp``), ``hotspot`` and ``bursty``; third-party
packages extend the vocabulary via the ``repro.traffic_plugins``
entry-point group.

Quickstart — a new traffic law in one class::

    from repro.traffic import TrafficPlugin, register_traffic

    @register_traffic
    class MyLaw(TrafficPlugin):
        name = "mylaw"
        aliases = ("ml",)
        summary = "one line for `repro traffics`"

        def destination_law(self, spec, network):
            ...  # anything with sample_destinations(origins, rng)
"""

from repro.traffic.api import TrafficPlugin
from repro.traffic.arrivals import (
    PoissonProcess,
    SlottedBatchArrivals,
    merged_poisson_arrivals,
)
from repro.traffic.destinations import (
    BernoulliFlipLaw,
    DestinationLaw,
    FixedMaskLaw,
    HotSpotTraffic,
    PermutationTraffic,
    TranslationInvariantLaw,
    UniformExcludingOriginLaw,
    UniformLaw,
    UniformNodeLaw,
    bit_reversal_permutation,
    transpose_permutation,
)
from repro.traffic.registry import (
    all_traffic_names,
    available_traffics,
    canonical_traffic_name,
    get_traffic,
    iter_traffics,
    register_traffic,
    unregister_traffic,
)
from repro.traffic.workload import (
    ButterflyWorkload,
    HypercubeWorkload,
    NodePoissonWorkload,
    SlottedHypercubeWorkload,
    TrafficSample,
)

__all__ = [
    "PoissonProcess",
    "SlottedBatchArrivals",
    "merged_poisson_arrivals",
    "DestinationLaw",
    "BernoulliFlipLaw",
    "UniformLaw",
    "UniformExcludingOriginLaw",
    "TranslationInvariantLaw",
    "FixedMaskLaw",
    "PermutationTraffic",
    "HotSpotTraffic",
    "UniformNodeLaw",
    "bit_reversal_permutation",
    "transpose_permutation",
    "TrafficSample",
    "HypercubeWorkload",
    "ButterflyWorkload",
    "NodePoissonWorkload",
    "SlottedHypercubeWorkload",
    "TrafficPlugin",
    "all_traffic_names",
    "available_traffics",
    "canonical_traffic_name",
    "get_traffic",
    "iter_traffics",
    "register_traffic",
    "unregister_traffic",
]
