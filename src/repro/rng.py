"""Reproducible random-number-generator plumbing.

Every stochastic component of the library accepts either a seed-like
value or a fully constructed :class:`numpy.random.Generator`.  This
module centralises the coercion logic and provides *stream spawning* so
that independent subsystems (per-node arrival processes, routing
decisions, service orderings) draw from provably independent streams
regardless of call order — the standard trick for reproducible parallel
stochastic simulation.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "spawn", "spawn_many", "replication_seeds"]

#: Anything accepted as a source of randomness.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state);
    anything else constructs a fresh PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Return a new generator statistically independent of *rng*.

    Uses the generator's underlying seed-spawning machinery, so the
    child stream never overlaps the parent regardless of how much either
    is consumed afterwards.
    """
    return rng.spawn(1)[0]


def spawn_many(rng: np.random.Generator, n: int) -> Sequence[np.random.Generator]:
    """Return *n* mutually independent child generators of *rng*."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    return rng.spawn(n)


def replication_seeds(
    base_seed: int, n: int, policy: str = "spawn"
) -> Sequence[SeedLike]:
    """Derive *n* replication seeds from one base seed, centrally.

    ``policy="spawn"`` returns children of ``SeedSequence(base_seed)``
    — provably independent streams, the recommended default.
    ``policy="sequential"`` returns ``base_seed + k`` — the historical
    experiment-loop convention, kept so migrated benchmarks reproduce
    their pre-runner numbers bit for bit.  Either way the k-th
    replication's stream depends only on ``(base_seed, k)``, never on
    which process runs it.
    """
    if n < 1:
        raise ValueError(f"need at least one replication, got {n}")
    if policy == "spawn":
        return np.random.SeedSequence(base_seed).spawn(n)
    if policy == "sequential":
        return [base_seed + k for k in range(n)]
    raise ValueError(f"unknown seed policy {policy!r}")
