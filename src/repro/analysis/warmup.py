"""Initial-transient (warm-up) detection — Welch's procedure.

Steady-state delay estimation requires discarding the start-up
transient.  The fixed-fraction defaults in
:class:`~repro.sim.measurement.DelayRecord` are robust but wasteful;
this module implements the classical alternative:

* :func:`welch_moving_average` — smooth the time-ordered observations
  with a centred window;
* :func:`detect_warmup` — pick the first index after which the smoothed
  curve stays inside a band around its final level (Welch's visual rule
  made programmatic).

Used by long-horizon experiments (heavy traffic) where throwing away
20% of a 10^4-unit run would dominate the budget.
"""

from __future__ import annotations

import numpy as np

__all__ = ["welch_moving_average", "detect_warmup"]


def welch_moving_average(samples: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with shrinking edge windows (Welch 1983).

    Interior points average ``2*window + 1`` neighbours; points closer
    than *window* to the start average the symmetric neighbourhood that
    fits (so the curve has the same length as the input).
    """
    x = np.asarray(samples, dtype=float)
    n = x.shape[0]
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if n == 0:
        return np.zeros(0)
    out = np.empty(n)
    csum = np.concatenate(([0.0], np.cumsum(x)))
    for i in range(n):
        w = min(window, i, n - 1 - i)
        out[i] = (csum[i + w + 1] - csum[i - w]) / (2 * w + 1)
    return out


def detect_warmup(
    samples: np.ndarray,
    window: int = 50,
    band: float = 0.05,
    tail_fraction: float = 0.5,
) -> int:
    """Index where the smoothed series first enters (and stays near) its
    steady level.

    The steady level is the mean of the trailing *tail_fraction* of the
    smoothed curve; the warm-up end is the first index from which the
    smoothed curve never leaves ``level * (1 ± band)``.  Returns 0 when
    the series starts in band, and ``len(samples)`` when it never
    settles (caller should lengthen the run).
    """
    x = np.asarray(samples, dtype=float)
    n = x.shape[0]
    if n == 0:
        return 0
    smooth = welch_moving_average(x, min(window, max(1, n // 4)))
    tail = smooth[int(n * (1.0 - tail_fraction)) :]
    level = float(tail.mean())
    if level == 0.0:
        return 0
    lo, hi = level * (1.0 - band), level * (1.0 + band)
    inside = (smooth >= min(lo, hi)) & (smooth <= max(lo, hi))
    # first index from which `inside` holds for the rest of the series
    outside_idx = np.flatnonzero(~inside)
    if outside_idx.shape[0] == 0:
        return 0
    last_outside = int(outside_idx[-1])
    return last_outside + 1 if last_outside + 1 < n else n
