"""Plain-text table/series formatting for the benchmark harness.

The paper is a theory paper; its "tables" are the closed-form claims.
The benchmark scripts print, for every experiment, one table in this
uniform format so ``EXPERIMENTS.md`` can quote them directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_cell"]


def format_cell(value) -> str:
    """Render one value: floats to 4 significant digits, rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table with optional title."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], xlabel: str = "x"
) -> str:
    """Render an (x, y) series as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    return format_table([xlabel, name], zip(xs, ys))
