"""Independent-replication estimation.

Batch means (``repro.stats``) squeezes one long run; the alternative
standard method runs R short *independent* replications (distinct
seeds), each producing one steady-state estimate, and builds a
t-interval across replications.  Used by the heavy-traffic experiments
where a single horizon long enough for batch means would be slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.stats import ConfidenceInterval, mean_confidence_interval

__all__ = ["ReplicationResult", "replicate"]


@dataclass(frozen=True)
class ReplicationResult:
    """Estimates from R independent replications."""

    estimates: np.ndarray
    ci: ConfidenceInterval

    @property
    def num_replications(self) -> int:
        return int(self.estimates.shape[0])

    @property
    def mean(self) -> float:
        return self.ci.mean

    @property
    def spread(self) -> float:
        """Max - min across replications (a quick dispersion check)."""
        return float(self.estimates.max() - self.estimates.min())


def replicate(
    runner: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> ReplicationResult:
    """Run ``runner(seed)`` for each seed and build a t-interval.

    ``runner`` must return one scalar steady-state estimate per call;
    seeds must be distinct (checked) so replications are independent.
    """
    seeds = list(seeds)
    if len(seeds) < 2:
        raise ValueError("need at least 2 replications for an interval")
    if len(set(seeds)) != len(seeds):
        raise ValueError("replication seeds must be distinct")
    estimates = np.array([float(runner(s)) for s in seeds])
    return ReplicationResult(estimates, mean_confidence_interval(estimates, confidence))
