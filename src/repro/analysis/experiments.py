"""Legacy experiment runners (deprecated shims).

The hand-rolled per-network measurement protocol that used to live
here is now the scenario runner (:mod:`repro.runner`): a declarative
:class:`~repro.runner.spec.ScenarioSpec` executed by a parallel
engine with pooled replications and a results cache.  These wrappers
keep the historical call signatures working — and bit-for-bit
reproduce the old numbers (single run, caller-supplied seed) — for
benchmarks and notebooks not yet migrated.

Prefer::

    from repro.runner import ScenarioSpec, measure

    m = measure(ScenarioSpec(name="mine", d=6, rho=0.8), jobs=4)
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.rng import SeedLike
from repro.runner.engine import theory_bounds
from repro.runner.results import DelayMeasurement
from repro.runner.spec import ScenarioSpec
from repro.sim.run_spec import run_spec

__all__ = [
    "DelayMeasurement",
    "measure_hypercube_delay",
    "measure_butterfly_delay",
    "sweep_load_factors",
]


def _deprecated(old: str, hint: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {hint} (see repro.runner)",
        DeprecationWarning,
        stacklevel=3,
    )


def _measure_single(
    network: str,
    d: int,
    rho: float,
    p: float,
    horizon: float,
    rng: SeedLike,
    warmup_fraction: float,
    with_ci: bool,
) -> DelayMeasurement:
    """One greedy run with a caller-supplied seed (the legacy protocol)."""
    spec = ScenarioSpec(
        name=f"legacy-{network}",
        network=network,
        d=d,
        rho=rho,
        p=p,
        horizon=horizon,
        warmup_fraction=warmup_fraction,
        replications=1,
        seed_policy="sequential",
    )
    out = run_spec(spec, rng, keep_record=True)
    ci = out.record.mean_delay_ci(warmup_fraction) if with_ci else None
    lower, upper = theory_bounds(spec)
    return DelayMeasurement(
        network=network,
        d=d,
        rho=rho,
        p=p,
        lam=spec.resolved_lam,
        horizon=horizon,
        num_packets=out.num_packets,
        mean_delay=out.mean_delay,
        ci=ci,
        lower_bound=lower,
        upper_bound=upper,
        replication_delays=(out.mean_delay,),
    )


def measure_hypercube_delay(
    d: int,
    rho: float,
    p: float = 0.5,
    horizon: float = 400.0,
    rng: SeedLike = None,
    warmup_fraction: float = 0.2,
    with_ci: bool = False,
) -> DelayMeasurement:
    """Measure greedy hypercube delay at load factor *rho* (Props 12/13).

    .. deprecated:: use ``measure(ScenarioSpec(...))`` instead.
    """
    _deprecated("measure_hypercube_delay", "measure(ScenarioSpec(network='hypercube'))")
    return _measure_single("hypercube", d, rho, p, horizon, rng, warmup_fraction, with_ci)


def measure_butterfly_delay(
    d: int,
    rho: float,
    p: float = 0.5,
    horizon: float = 400.0,
    rng: SeedLike = None,
    warmup_fraction: float = 0.2,
    with_ci: bool = False,
) -> DelayMeasurement:
    """Measure greedy butterfly delay at load factor *rho* (Props 14/17).

    .. deprecated:: use ``measure(ScenarioSpec(...))`` instead.
    """
    _deprecated("measure_butterfly_delay", "measure(ScenarioSpec(network='butterfly'))")
    return _measure_single("butterfly", d, rho, p, horizon, rng, warmup_fraction, with_ci)


def sweep_load_factors(
    d: int,
    rhos: Sequence[float],
    p: float = 0.5,
    horizon: float = 400.0,
    seed: int = 0,
    network: str = "hypercube",
) -> list[DelayMeasurement]:
    """Delay-vs-load series (the E3 sweep); one fresh seed per point.

    .. deprecated:: use ``measure_many`` over derived specs instead.
    """
    _deprecated("sweep_load_factors", "measure_many([spec.replace(rho=...) ...])")
    return [
        _measure_single(network, d, rho, p, horizon, seed + 1000 * i, 0.2, False)
        for i, rho in enumerate(rhos)
    ]
