"""Experiment runners: parameterised delay measurements and sweeps.

These wrap the scheme objects with the standard experimental protocol
used throughout ``EXPERIMENTS.md``: fix a load factor ``rho`` (not a
raw rate), simulate a horizon, trim warm-up/cool-down, and report the
measurement next to the paper's closed-form bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.stats import ConfidenceInterval
from repro.core.bounds import (
    butterfly_delay_lower_bound,
    butterfly_delay_upper_bound,
    greedy_delay_lower_bound,
    greedy_delay_upper_bound,
)
from repro.core.greedy import GreedyButterflyScheme, GreedyHypercubeScheme
from repro.core.load import butterfly_lam_for_load, lam_for_load
from repro.rng import SeedLike

__all__ = [
    "DelayMeasurement",
    "measure_hypercube_delay",
    "measure_butterfly_delay",
    "sweep_load_factors",
]


@dataclass(frozen=True)
class DelayMeasurement:
    """One steady-state delay estimate with its theoretical bracket."""

    network: str
    d: int
    rho: float
    p: float
    lam: float
    horizon: float
    num_packets: int
    mean_delay: float
    ci: Optional[ConfidenceInterval]
    lower_bound: float
    upper_bound: float

    @property
    def within_bounds(self) -> bool:
        """Point-estimate check against the paper's bracket."""
        return self.lower_bound <= self.mean_delay <= self.upper_bound

    @property
    def normalised_delay(self) -> float:
        """``T / d`` — flat in d when the O(d) claim holds."""
        return self.mean_delay / self.d


def measure_hypercube_delay(
    d: int,
    rho: float,
    p: float = 0.5,
    horizon: float = 400.0,
    rng: SeedLike = None,
    warmup_fraction: float = 0.2,
    with_ci: bool = False,
) -> DelayMeasurement:
    """Measure greedy hypercube delay at load factor *rho* (Props 12/13)."""
    lam = lam_for_load(rho, p)
    scheme = GreedyHypercubeScheme(d, lam, p)
    rec = scheme.run(horizon, rng).delay_record()
    ci = rec.mean_delay_ci(warmup_fraction) if with_ci else None
    return DelayMeasurement(
        network="hypercube",
        d=d,
        rho=rho,
        p=p,
        lam=lam,
        horizon=horizon,
        num_packets=rec.num_packets,
        mean_delay=rec.mean_delay(warmup_fraction),
        ci=ci,
        lower_bound=greedy_delay_lower_bound(d, lam, p),
        upper_bound=greedy_delay_upper_bound(d, lam, p),
    )


def measure_butterfly_delay(
    d: int,
    rho: float,
    p: float = 0.5,
    horizon: float = 400.0,
    rng: SeedLike = None,
    warmup_fraction: float = 0.2,
    with_ci: bool = False,
) -> DelayMeasurement:
    """Measure greedy butterfly delay at load factor *rho* (Props 14/17)."""
    lam = butterfly_lam_for_load(rho, p)
    scheme = GreedyButterflyScheme(d, lam, p)
    rec = scheme.run(horizon, rng).delay_record()
    ci = rec.mean_delay_ci(warmup_fraction) if with_ci else None
    return DelayMeasurement(
        network="butterfly",
        d=d,
        rho=rho,
        p=p,
        lam=lam,
        horizon=horizon,
        num_packets=rec.num_packets,
        mean_delay=rec.mean_delay(warmup_fraction),
        ci=ci,
        lower_bound=butterfly_delay_lower_bound(d, lam, p),
        upper_bound=butterfly_delay_upper_bound(d, lam, p),
    )


def sweep_load_factors(
    d: int,
    rhos: Sequence[float],
    p: float = 0.5,
    horizon: float = 400.0,
    seed: int = 0,
    network: str = "hypercube",
) -> list[DelayMeasurement]:
    """Delay-vs-load series (the E3 sweep); one fresh seed per point."""
    measure = (
        measure_hypercube_delay if network == "hypercube" else measure_butterfly_delay
    )
    return [
        measure(d, rho, p, horizon, rng=seed + 1000 * i)
        for i, rho in enumerate(rhos)
    ]
