"""Theory-vs-measurement comparators.

Small helpers that turn a :class:`~repro.analysis.experiments.DelayMeasurement`
(or raw numbers) into pass/fail verdicts with slack, used by both the
test suite and the benchmark harness when writing ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiments import DelayMeasurement

__all__ = ["BoundCheck", "check_measurement", "relative_position"]


@dataclass(frozen=True)
class BoundCheck:
    """Verdict of one measurement against its theoretical bracket."""

    measurement: DelayMeasurement
    holds: bool
    slack_lower: float
    slack_upper: float
    position: float

    def summary_row(self) -> tuple:
        m = self.measurement
        return (
            m.network,
            m.d,
            m.rho,
            m.p,
            m.lower_bound,
            m.mean_delay,
            m.upper_bound,
            self.holds,
        )


def relative_position(value: float, lo: float, hi: float) -> float:
    """Where *value* sits in ``[lo, hi]``: 0 at the lower bound, 1 at
    the upper (can exceed the range when a bound is violated)."""
    if hi <= lo:
        return 0.0 if value <= lo else 1.0
    return (value - lo) / (hi - lo)


def check_measurement(
    m: DelayMeasurement, statistical_slack: float = 0.0
) -> BoundCheck:
    """Check a measurement against the paper's bracket.

    *statistical_slack* widens the bracket multiplicatively (e.g. 0.05
    for ±5%) to absorb finite-horizon noise when the point estimate has
    no confidence interval attached.
    """
    lo = m.lower_bound * (1.0 - statistical_slack)
    hi = m.upper_bound * (1.0 + statistical_slack)
    return BoundCheck(
        measurement=m,
        holds=lo <= m.mean_delay <= hi,
        slack_lower=m.mean_delay - m.lower_bound,
        slack_upper=m.upper_bound - m.mean_delay,
        position=relative_position(m.mean_delay, m.lower_bound, m.upper_bound),
    )
