"""Terminal-friendly ASCII plots for examples and the CLI.

The paper's "figures" that carry data (delay-vs-load shapes, heavy
traffic scaling) are rendered as monospace scatter/line plots so the
whole reproduction stays dependency-light and usable over SSH.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_plot", "sparkline"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line bar sketch of a series (8 levels)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi - lo < 1e-300:
        return _SPARK_CHARS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 15,
    xlabel: str = "x",
    ylabel: str = "y",
    marker: str = "*",
) -> str:
    """Scatter-plot (x, y) points on a character canvas with axes."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) == 0:
        return "(empty plot)"
    if width < 10 or height < 4:
        raise ValueError("canvas too small")
    x = [float(v) for v in xs]
    y = [float(v) for v in ys]
    x_lo, x_hi = min(x), max(x)
    y_lo, y_hi = min(y), max(y)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xv, yv in zip(x, y):
        col = int((xv - x_lo) / x_span * (width - 1))
        row = height - 1 - int((yv - y_lo) / y_span * (height - 1))
        grid[row][col] = marker
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:8.3g} |"
        elif i == height - 1:
            label = f"{y_lo:8.3g} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9
        + f"{x_lo:<10.3g}"
        + f"{xlabel:^{max(width - 20, 1)}}"
        + f"{x_hi:>10.3g}"
    )
    lines.insert(0, f"{ylabel}")
    return "\n".join(lines)
