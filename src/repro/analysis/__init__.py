"""Experiment harness: statistics, sweep runners, and table formatting.

This layer sits on top of the simulators and the closed-form theory and
produces the paper-shaped outputs recorded in ``EXPERIMENTS.md``:
delay-vs-load series (Props 12/13), stability sweeps (Prop 6), bound
checks, and the FIFO-vs-PS domination experiments (Prop 11).
"""

from repro.analysis.experiments import (
    DelayMeasurement,
    measure_butterfly_delay,
    measure_hypercube_delay,
    sweep_load_factors,
)
from repro.analysis.plotting import ascii_plot, sparkline
from repro.analysis.replication import ReplicationResult, replicate
from repro.analysis.stats import (
    batch_means_ci,
    mean_confidence_interval,
    time_average_step,
)
from repro.analysis.tables import format_series, format_table
from repro.analysis.theory import BoundCheck, check_measurement
from repro.analysis.warmup import detect_warmup, welch_moving_average

__all__ = [
    "batch_means_ci",
    "mean_confidence_interval",
    "time_average_step",
    "DelayMeasurement",
    "measure_hypercube_delay",
    "measure_butterfly_delay",
    "sweep_load_factors",
    "format_table",
    "format_series",
    "ascii_plot",
    "sparkline",
    "replicate",
    "ReplicationResult",
    "BoundCheck",
    "check_measurement",
    "detect_warmup",
    "welch_moving_average",
]
