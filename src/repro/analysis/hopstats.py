"""Per-level (per-dimension) hop statistics from arc logs.

§3.3's closing discussion conjectures that the Prop 12 upper bound has
the right 1/(1-rho) character for every p in (0,1) because "each packet
faces additional contention for each dimension it crosses".  These
helpers slice a run's arc log by level so that the per-dimension
waiting times can be inspected directly:

* level 0 arcs are exact M/D/1 queues (wait ``rho/(2(1-rho))``, eq. 16);
* later levels see non-renewal, partially smoothed arrivals — the open
  question is how their waits scale (experiment E20 measures them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import MeasurementError
from repro.sim.feedforward import ArcLog

__all__ = ["LevelHopStats", "per_level_hop_stats"]


@dataclass(frozen=True)
class LevelHopStats:
    """Waiting/holding statistics of one level of a levelled network."""

    level: int
    num_hops: int
    mean_wait: float  # time queued before service (holding - 1)
    mean_holding: float  # full time at the arc (wait + unit service)

    @property
    def mean_service(self) -> float:
        return self.mean_holding - self.mean_wait


def per_level_hop_stats(
    arc_log: ArcLog,
    arcs_per_level: int,
    num_levels: int,
    t0: float = 0.0,
    t1: float = np.inf,
) -> List[LevelHopStats]:
    """Per-level mean waits from an arc log.

    ``arcs_per_level`` is the size of each contiguous level slice in the
    arc-id layout (``2**d`` for the cube, ``2**(d+1)`` for the
    butterfly).  Hops whose arc entry falls outside ``[t0, t1]`` are
    ignored (warm-up trimming).
    """
    if arcs_per_level < 1 or num_levels < 1:
        raise MeasurementError("need positive level geometry")
    if arc_log.num_hops and int(arc_log.arc.max()) >= arcs_per_level * num_levels:
        raise MeasurementError("arc id outside the given level geometry")
    levels = arc_log.arc // arcs_per_level
    window = (arc_log.t_in >= t0) & (arc_log.t_in <= t1)
    out: List[LevelHopStats] = []
    for lvl in range(num_levels):
        m = window & (levels == lvl)
        count = int(m.sum())
        if count == 0:
            out.append(LevelHopStats(lvl, 0, float("nan"), float("nan")))
            continue
        holding = arc_log.t_out[m] - arc_log.t_in[m]
        out.append(
            LevelHopStats(
                lvl,
                count,
                float(holding.mean() - 1.0),
                float(holding.mean()),
            )
        )
    return out
