"""Statistical utilities (re-export).

The implementations live in :mod:`repro.stats` (kept below the
simulation layer so that measurement collectors can use them without
pulling in the experiment harness); this module re-exports them under
the historical ``repro.analysis.stats`` name.
"""

from repro.stats import (
    ConfidenceInterval,
    batch_means_ci,
    mean_confidence_interval,
    time_average_step,
)

__all__ = [
    "ConfidenceInterval",
    "mean_confidence_interval",
    "batch_means_ci",
    "time_average_step",
]
