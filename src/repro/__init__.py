"""repro — reproduction of *The Efficiency of Greedy Routing in
Hypercubes and Butterflies* (Stamoulis & Tsitsiklis, SPAA 1991).

The package implements the paper end to end:

* the **topologies** (d-cube, butterfly) and the greedy dimension-order
  routing scheme;
* the **dynamic traffic model** (per-node Poisson sources, Bernoulli
  bit-flip destinations — eq. (1));
* exact **simulators** — a vectorised feed-forward engine exploiting
  the levelled structure, and an event-driven engine that also runs
  Processor Sharing (the paper's proof device);
* the **equivalent queueing networks** Q and R with Markovian routing
  (Lemma 4), and their product-form PS counterparts;
* every **closed-form bound** (Props 2, 3, 12, 13, 14, 17, §3.4) plus
  the stability conditions (eq. (2), Props 6/16);
* **baselines**: the §2.3 pipelined batch scheme, deflection routing,
  and dimension-ordering ablations.

Quickstart::

    from repro import GreedyHypercubeScheme

    scheme = GreedyHypercubeScheme(d=6, lam=1.6, p=0.5)   # rho = 0.8
    print(scheme.delay_lower_bound(), scheme.delay_upper_bound())
    print(scheme.measure_delay(horizon=400.0, rng=0))
"""

from repro.core.bounds import (
    butterfly_delay_lower_bound,
    butterfly_delay_upper_bound,
    greedy_delay_lower_bound,
    greedy_delay_upper_bound,
    oblivious_delay_lower_bound,
    universal_delay_lower_bound,
)
from repro.core.greedy import GreedyButterflyScheme, GreedyHypercubeScheme
from repro.core.load import (
    butterfly_load_factor,
    butterfly_stable,
    hypercube_load_factor,
    hypercube_stable,
)
from repro.sim.feedforward import (
    simulate_butterfly_greedy,
    simulate_hypercube_greedy,
)
from repro.sim.slotted import SlottedGreedyHypercube
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import (
    BernoulliFlipLaw,
    TranslationInvariantLaw,
    UniformLaw,
)
from repro.traffic.workload import ButterflyWorkload, HypercubeWorkload

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "Hypercube",
    "Butterfly",
    "BernoulliFlipLaw",
    "UniformLaw",
    "TranslationInvariantLaw",
    "HypercubeWorkload",
    "ButterflyWorkload",
    "GreedyHypercubeScheme",
    "GreedyButterflyScheme",
    "SlottedGreedyHypercube",
    "simulate_hypercube_greedy",
    "simulate_butterfly_greedy",
    "hypercube_load_factor",
    "hypercube_stable",
    "butterfly_load_factor",
    "butterfly_stable",
    "universal_delay_lower_bound",
    "oblivious_delay_lower_bound",
    "greedy_delay_lower_bound",
    "greedy_delay_upper_bound",
    "butterfly_delay_lower_bound",
    "butterfly_delay_upper_bound",
]
