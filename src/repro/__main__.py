"""Command-line interface: ``python -m repro``.

Subcommands:

* ``bounds``  — print the paper's closed-form theory for given parameters;
* ``simulate`` — run one simulation and compare against the bounds;
* ``sweep``   — delay-vs-load series with an ASCII plot.

Examples::

    python -m repro bounds --d 6 --rho 0.8
    python -m repro simulate --network butterfly --d 5 --rho 0.7 --p 0.3
    python -m repro sweep --d 5 --points 6
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import (
    measure_butterfly_delay,
    measure_hypercube_delay,
)
from repro.analysis.plotting import ascii_plot
from repro.analysis.tables import format_table
from repro.core import bounds as B
from repro.core.load import butterfly_lam_for_load, lam_for_load


def _cmd_bounds(args: argparse.Namespace) -> int:
    d, rho, p = args.d, args.rho, args.p
    if args.network == "hypercube":
        lam = lam_for_load(rho, p)
        rows = [
            ("per-node rate lam", lam),
            ("load factor rho", rho),
            ("stable (Prop 6)", rho < 1),
            ("zero-contention dp", B.zero_contention_delay(d, p)),
        ]
        if rho < 1:
            rows += [
                ("Prop 2 universal lower", B.universal_delay_lower_bound(d, lam, p)),
                ("Prop 3 oblivious lower", B.oblivious_delay_lower_bound(d, lam, p)),
                ("Prop 13 greedy lower", B.greedy_delay_lower_bound(d, lam, p)),
                ("Prop 12 greedy upper", B.greedy_delay_upper_bound(d, lam, p)),
                ("queue/node bound", B.mean_queue_per_node_bound(d, lam, p)),
            ]
    else:
        lam = butterfly_lam_for_load(rho, p)
        rows = [
            ("per-input rate lam", lam),
            ("load factor rho", rho),
            ("stable (Prop 16)", rho < 1),
        ]
        if rho < 1:
            rows += [
                ("Prop 14 lower", B.butterfly_delay_lower_bound(d, lam, p)),
                ("Prop 17 upper", B.butterfly_delay_upper_bound(d, lam, p)),
            ]
    print(
        format_table(
            ["quantity", "value"],
            rows,
            title=f"{args.network}, d={d}, rho={rho}, p={p}",
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    measure = (
        measure_hypercube_delay
        if args.network == "hypercube"
        else measure_butterfly_delay
    )
    m = measure(
        args.d, args.rho, p=args.p, horizon=args.horizon, rng=args.seed, with_ci=True
    )
    print(
        format_table(
            ["quantity", "value"],
            [
                ("packets simulated", m.num_packets),
                ("lower bound", m.lower_bound),
                ("measured mean delay", m.mean_delay),
                ("95% CI halfwidth", m.ci.halfwidth if m.ci else float("nan")),
                ("upper bound", m.upper_bound),
                ("inside the bracket", m.within_bounds),
            ],
            title=(
                f"{args.network} d={m.d} rho={m.rho} p={m.p} "
                f"horizon={m.horizon} seed={args.seed}"
            ),
        )
    )
    return 0 if m.within_bounds else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    measure = (
        measure_hypercube_delay
        if args.network == "hypercube"
        else measure_butterfly_delay
    )
    rhos = [0.95 * (i + 1) / args.points for i in range(args.points)]
    xs, ys, rows = [], [], []
    for i, rho in enumerate(rhos):
        m = measure(
            args.d, rho, p=args.p, horizon=args.horizon, rng=args.seed + i
        )
        xs.append(rho)
        ys.append(m.mean_delay)
        rows.append((rho, m.lower_bound, m.mean_delay, m.upper_bound))
    print(
        format_table(
            ["rho", "lower", "measured T", "upper"],
            rows,
            title=f"{args.network} delay sweep, d={args.d}, p={args.p}",
        )
    )
    print()
    print(ascii_plot(xs, ys, width=60, height=14, xlabel="rho", ylabel="T"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Greedy routing in hypercubes and butterflies (SPAA 1991)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--network", choices=["hypercube", "butterfly"],
                        default="hypercube")
        sp.add_argument("--d", type=int, default=6, help="dimension")
        sp.add_argument("--rho", type=float, default=0.8, help="load factor")
        sp.add_argument("--p", type=float, default=0.5,
                        help="bit-flip probability (eq. 1)")

    sp = sub.add_parser("bounds", help="print the closed-form theory")
    _common(sp)
    sp.set_defaults(func=_cmd_bounds)

    sp = sub.add_parser("simulate", help="one simulation vs the bounds")
    _common(sp)
    sp.add_argument("--horizon", type=float, default=600.0)
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(func=_cmd_simulate)

    sp = sub.add_parser("sweep", help="delay-vs-load series + ASCII plot")
    _common(sp)
    sp.add_argument("--points", type=int, default=6)
    sp.add_argument("--horizon", type=float, default=500.0)
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(func=_cmd_sweep)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
