"""Command-line interface: ``python -m repro`` (or the ``repro``
console script after ``pip install``).

Subcommands:

* ``bounds``          — print the closed-form theory via the network plugin's
  theory hooks (so the CLI and the engine brackets can never disagree);
* ``simulate``        — run one simulation and compare against the bounds;
* ``sweep``           — delay-vs-load series with an ASCII plot (parallel with ``--jobs``);
* ``list-scenarios``  — the registered scenario catalog;
* ``schemes``         — the scheme plugins and their declared capabilities;
* ``networks``        — the network plugins: aliases, options, and the
  scheme x network capability matrix;
* ``engines``         — the engine plugins: kind, disciplines, batching,
  options, and the scheme x engine capability matrix;
* ``traffics``        — the traffic plugins: aliases, options, closed-form
  theory, and the scheme x traffic capability matrix;
* ``describe``        — one scenario in full: spec fields + plugin capabilities;
* ``run``             — execute a registered scenario: parallel replications,
  pooled confidence interval, content-hash results cache;
* ``cache``           — inspect (``info [--json]``), clear, or evict
  (``prune --older-than/--max-bytes``) the content-hash results store,
  under any backend (``file``/``locked``/``sqlite``);
* ``serve``           — the measurement server: an asyncio HTTP API over the
  results cache (POST specs, instant cache hits, queued jobs with SSE
  progress, cooperative cancel).

Examples::

    python -m repro bounds --d 6 --rho 0.8
    python -m repro bounds --network ring --d 5 --rho 0.7
    python -m repro simulate --network butterfly --d 5 --rho 0.7 --p 0.3
    python -m repro sweep --d 5 --points 6 --jobs 4
    python -m repro sweep --network ring --traffic hotspot --d 4 --points 4
    python -m repro list-scenarios
    python -m repro schemes
    python -m repro networks
    python -m repro engines
    python -m repro traffics
    python -m repro describe butterfly-greedy-event
    python -m repro run hypercube-greedy-mid --replications 8 --jobs 4
    python -m repro cache info --json
    python -m repro cache prune --older-than 30d --max-bytes 100mb
    python -m repro serve --port 8765 --workers 4
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.plotting import ascii_plot
from repro.analysis.tables import format_table
from repro.runner import (
    ResultsStore,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    measure,
    measure_many,
)


def _cmd_bounds(args: argparse.Namespace) -> int:
    # a throwaway greedy spec at the requested operating point; the
    # network plugin's bound_report derives its bracket rows from the
    # same greedy_theory_bounds hook the parallel engine uses
    spec = ScenarioSpec(
        name=f"bounds-{args.network}",
        network=args.network,
        traffic=args.traffic,
        d=args.d,
        rho=args.rho,
        p=args.p,
    )
    print(
        format_table(
            ["quantity", "value"],
            spec.network_plugin.bound_report(spec),
            title=f"{spec.network}, d={args.d}, rho={args.rho}, p={args.p}",
        )
    )
    return 0


def _legacy_spec(args: argparse.Namespace, rho: float, seed: int) -> ScenarioSpec:
    """One single-run greedy cell with a directly applied seed — the
    protocol the pre-runner ``simulate``/``sweep`` commands used."""
    return ScenarioSpec(
        name=f"cli-{args.network}",
        network=args.network,
        traffic=args.traffic,
        d=args.d,
        rho=rho,
        p=args.p,
        horizon=args.horizon,
        replications=1,
        base_seed=seed,
        seed_policy="sequential",
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.runner.engine import run_replication, theory_bounds

    spec = _legacy_spec(args, args.rho, args.seed)
    out = run_replication(spec, keep_record=True)
    ci = out.record.mean_delay_ci(spec.warmup_fraction)
    lower, upper = theory_bounds(spec)
    within = lower <= out.mean_delay <= upper
    print(
        format_table(
            ["quantity", "value"],
            [
                ("packets simulated", out.num_packets),
                ("lower bound", lower),
                ("measured mean delay", out.mean_delay),
                ("95% CI halfwidth", ci.halfwidth),
                ("upper bound", upper),
                ("inside the bracket", within),
            ],
            title=(
                f"{args.network} d={args.d} rho={args.rho} p={args.p} "
                f"horizon={args.horizon} seed={args.seed}"
            ),
        )
    )
    return 0 if within else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    rhos = [0.95 * (i + 1) / args.points for i in range(args.points)]
    specs = [
        _legacy_spec(args, rho, args.seed + i) for i, rho in enumerate(rhos)
    ]
    measurements = measure_many(
        specs, jobs=args.jobs, pin_workers=args.pin_workers
    )
    xs = [m.rho for m in measurements]
    ys = [m.mean_delay for m in measurements]
    rows = [
        (m.rho, m.lower_bound, m.mean_delay, m.upper_bound) for m in measurements
    ]
    print(
        format_table(
            ["rho", "lower", "measured T", "upper"],
            rows,
            title=f"{args.network} delay sweep, d={args.d}, p={args.p}",
        )
    )
    print()
    print(ascii_plot(xs, ys, width=60, height=14, xlabel="rho", ylabel="T"))
    return 0


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    rows = []
    for s in list_scenarios():
        point = f"rho={s.rho}" if s.rho is not None else (
            f"lam={s.lam}" if s.lam is not None else "-"
        )
        rows.append(
            (s.name, s.network, s.scheme, s.traffic, s.discipline, s.d,
             point, s.p, s.replications, s.description)
        )
    print(
        format_table(
            ["name", "network", "scheme", "traffic", "disc", "d", "load",
             "p", "reps", "description"],
            rows,
            title="registered scenarios (run one with: python -m repro run <name>)",
        )
    )
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    from repro.plugins import iter_plugins

    rows = []
    for plugin in iter_plugins():
        caps = plugin.capabilities
        rows.append(
            (
                plugin.name,
                "* (any)" if "*" in caps.networks else " ".join(caps.networks),
                " ".join(caps.engines) or "-",
                " ".join(caps.disciplines),
                " ".join(caps.option_names()) or "-",
                " ".join(caps.metrics) or "-",
                "static" if caps.static else "dynamic",
                plugin.summary,
            )
        )
    print(
        format_table(
            ["scheme", "networks", "engines", "disciplines", "options",
             "metrics", "kind", "summary"],
            rows,
            title="registered scheme plugins "
            "(extend via the repro.scheme_plugins entry-point group)",
        )
    )
    return 0


def _cmd_networks(args: argparse.Namespace) -> int:
    from repro.networks import iter_networks
    from repro.plugins import schemes_for_network

    rows = []
    for plugin in iter_networks():
        rows.append(
            (
                plugin.name,
                " ".join(plugin.aliases) or "-",
                " ".join(schemes_for_network(plugin.name)) or "-",
                " ".join(plugin.option_names()) or "-",
                plugin.summary,
            )
        )
    print(
        format_table(
            ["network", "aliases", "schemes", "options", "summary"],
            rows,
            title="registered network plugins "
            "(extend via the repro.network_plugins entry-point group)",
        )
    )
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from repro.engines import declared_engine_names, iter_engines
    from repro.plugins import iter_plugins

    schemes = iter_plugins()
    rows = []
    for plugin in iter_engines():
        caps = plugin.capabilities
        forceable = " ".join(
            s.name
            for s in schemes
            if plugin.name in declared_engine_names(s.capabilities.engines)
        )
        rows.append(
            (
                plugin.name,
                " ".join(plugin.aliases) or "-",
                caps.kind,
                " ".join(caps.disciplines),
                "* (any)" if "*" in caps.networks else " ".join(caps.networks),
                "yes" if caps.batching else "no",
                " ".join(plugin.option_names()) or "-",
                forceable or "-",
                plugin.summary,
            )
        )
    print(
        format_table(
            ["engine", "aliases", "kind", "disciplines", "networks", "batch",
             "options", "schemes", "summary"],
            rows,
            title="registered engine plugins "
            "(extend via the repro.engine_plugins entry-point group)",
        )
    )
    return 0


def _cmd_traffics(args: argparse.Namespace) -> int:
    from repro.plugins import schemes_for_traffic
    from repro.traffic import iter_traffics

    rows = []
    for plugin in iter_traffics():
        rows.append(
            (
                plugin.name,
                " ".join(plugin.aliases) or "-",
                " ".join(schemes_for_traffic(plugin.name)) or "-",
                " ".join(plugin.option_names()) or "-",
                "eq. (1)" if plugin.paper_law else "-",
                "d-bit" if plugin.needs_address_bits else "any",
                plugin.summary,
            )
        )
    print(
        format_table(
            ["traffic", "aliases", "schemes", "options", "theory",
             "networks", "summary"],
            rows,
            title="registered traffic plugins "
            "(extend via the repro.traffic_plugins entry-point group)",
        )
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json as _json

    from repro.runner import make_store
    from repro.runner.store import parse_duration, parse_size

    store = make_store(args.cache_dir, args.backend)
    if args.action == "clear":
        removed = store.clear()
        print(
            f"cleared {removed.pooled} pooled and {removed.replications} "
            f"per-replication cells ({removed.total_bytes} bytes) from "
            f"{store.root}"
        )
        return 0
    if args.action == "prune":
        older_than = (
            parse_duration(args.older_than) if args.older_than else None
        )
        max_bytes = parse_size(args.max_bytes) if args.max_bytes else None
        if older_than is None and max_bytes is None:
            print(
                "nothing to prune: give --older-than and/or --max-bytes",
                file=sys.stderr,
            )
            return 2
        removed = store.prune(older_than=older_than, max_bytes=max_bytes)
        payload = {
            "root": str(store.root),
            "action": "prune",
            "removed": removed.to_dict(),
            "remaining": store.stats().to_dict(),
        }
        if args.json:
            print(_json.dumps(payload, indent=1, sort_keys=True))
        else:
            print(
                f"pruned {removed.pooled} pooled and {removed.replications} "
                f"per-replication cells ({removed.total_bytes} bytes) from "
                f"{store.root}"
            )
        return 0
    # info: verify every cell so silent-miss rot (corrupt cells) is visible
    stats = store.stats(verify=True)
    if args.json:
        payload = {
            "root": str(store.root),
            "backend": args.backend or "file",
            "exists": store.root.is_dir(),
            "pooled": stats.pooled,
            "replications": stats.replications,
            "total_bytes": stats.total_bytes,
            "corrupt": stats.corrupt,
        }
        print(_json.dumps(payload, indent=1, sort_keys=True))
        return 0
    rows = [
        ("root", str(store.root)),
        ("exists", store.root.is_dir()),
        ("pooled cells", stats.pooled),
        ("per-replication cells", stats.replications),
        ("total bytes", stats.total_bytes),
        ("corrupt cells", stats.corrupt),
    ]
    print(format_table(["quantity", "value"], rows, title="results store"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runner.store import parse_duration
    from repro.serve import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        backend=args.backend,
        wave_reps=args.wave_reps,
        job_ttl=parse_duration(args.job_ttl),
    )

    async def _main() -> None:
        await server.start()
        print(
            f"serving on http://{server.host}:{server.port} "
            f"(workers={server.manager.workers}, "
            f"cache={server.store_root}, backend={server.backend})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.engines import resolve_engine

    spec = get_scenario(args.scenario)
    plugin = spec.plugin
    net = spec.network_plugin
    tp = spec.traffic_plugin
    engine = resolve_engine(spec)
    caps = plugin.capabilities
    point = (
        "(static task)"
        if spec.is_static
        else f"rho={spec.resolved_rho:.4g}, lam={spec.resolved_lam:.4g}"
    )
    rows = [
        ("description", spec.description or "-"),
        ("network / scheme", f"{spec.network} / {spec.scheme} ({spec.discipline})"),
        ("plugin", f"{type(plugin).__name__}: {plugin.summary}"),
        ("network plugin", f"{type(net).__name__}: {net.summary}"),
        ("traffic", spec.traffic),
        ("traffic plugin", f"{type(tp).__name__}: {tp.summary}"),
        ("operating point", f"d={spec.d}, p={spec.p}, {point}"),
        ("engine", spec.engine),
        (
            "resolved engine",
            "(scheme-managed loop)"
            if engine is None
            else (
                f"{engine.name} ({engine.capabilities.kind}; batch="
                f"{'yes' if engine.supports_batch(spec) else 'no'})"
            ),
        ),
        ("horizon / trims",
         f"{spec.horizon} (warmup {spec.warmup_fraction}, "
         f"cooldown {spec.cooldown_fraction})"),
        ("replications / seed",
         f"{spec.replications} ({spec.seed_policy}, base {spec.base_seed})"),
        ("content hash", spec.content_hash()),
        ("scheme networks", " ".join(caps.networks)),
        ("scheme engines", " ".join(caps.engines) or "(auto only)"),
        ("scheme traffics", " ".join(caps.traffics)),
        ("scheme disciplines", " ".join(caps.disciplines)),
        ("scheme metrics", " ".join(caps.metrics) or "-"),
    ]
    def _option_rows(label, options):
        for opt in options:
            value = spec.option(opt.name, opt.default)
            choices = (
                f" one of {', '.join(map(str, opt.choices))};" if opt.choices else ""
            )
            rows.append(
                (
                    f"{label}: {opt.name}",
                    f"{value!r} ({opt.kind};{choices} {opt.description})",
                )
            )

    _option_rows("option", caps.options)
    if caps.network_options:
        _option_rows("network option", net.options)
    _option_rows("traffic option", tp.options)
    if engine is not None:
        _option_rows("engine option", engine.capabilities.options)
    print(format_table(["field", "value"], rows,
                       title=f"scenario {spec.name!r}"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = get_scenario(args.scenario)
    overrides = {}
    if args.replications is not None:
        overrides["replications"] = args.replications
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.d is not None:
        overrides["d"] = args.d
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if args.discipline is not None:
        overrides["discipline"] = args.discipline
    if args.options:
        import json as _json

        extra = spec.to_dict()["extra"]
        for item in args.options:
            key, sep, raw = item.partition("=")
            if not sep or not key:
                raise SystemExit(f"--set expects KEY=VALUE, got {item!r}")
            try:
                extra[key] = _json.loads(raw)
            except _json.JSONDecodeError:
                extra[key] = raw
        overrides["extra"] = extra
    if overrides:
        spec = spec.replace(**overrides)
    store = None if args.no_cache else ResultsStore(args.cache_dir)
    profiling = args.profile or args.profile_out is not None
    # a corrupt/torn cell counts as a miss, so probe with load, not
    # contains; skip the probe entirely under --profile so a profiled
    # simulation always actually runs
    m = None
    if store is not None and not args.refresh and not profiling:
        m = store.load(spec)
    cached = m is not None
    if m is None:
        if profiling:
            import cProfile
            import pstats
            import sys

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                m = measure(spec, jobs=args.jobs, store=store, refresh=True,
                            pin_workers=args.pin_workers)
            finally:
                profiler.disable()
                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(20)
                if args.profile_out is not None:
                    stats.dump_stats(args.profile_out)
        else:
            m = measure(spec, jobs=args.jobs, store=store,
                        refresh=args.refresh, pin_workers=args.pin_workers)
    rows = [
        ("network / scheme", f"{m.network} / {m.scheme} ({m.discipline})"),
        ("traffic", m.traffic),
        ("d, rho, p", f"{m.d}, {m.rho:.4g}, {m.p}"),
        ("per-node rate lam", m.lam),
        ("replications", m.num_replications),
        ("packets simulated", m.num_packets),
        ("lower bound", m.lower_bound),
        ("pooled mean delay", m.mean_delay),
        (
            "95% CI halfwidth",
            m.ci.halfwidth if m.ci is not None else float("nan"),
        ),
        ("upper bound", m.upper_bound),
        ("inside the bracket", m.within_bounds),
    ]
    rows += [(f"metric: {k}", v) for k, v in m.metrics]
    if m.replication_delays is not None:
        rows.append(
            (
                "per-replication T",
                " ".join(f"{x:.6g}" for x in m.replication_delays),
            )
        )
    source = "results cache" if (cached and not args.refresh) else (
        f"computed with jobs={args.jobs}"
    )
    rows.append(("source", source))
    print(
        format_table(
            ["quantity", "value"],
            rows,
            title=f"scenario {spec.name!r} (seed {spec.base_seed}, "
            f"policy {spec.seed_policy})",
        )
    )
    return 0 if m.within_bounds else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Greedy routing in hypercubes and butterflies (SPAA 1991)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.networks import all_network_names
    from repro.traffic import all_traffic_names

    def _common(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--network", choices=list(all_network_names()),
                        default="hypercube",
                        help="a registered network plugin (or alias)")
        sp.add_argument("--traffic", choices=list(all_traffic_names()),
                        default="uniform",
                        help="a registered traffic plugin (or alias)")
        sp.add_argument("--d", type=int, default=6, help="dimension")
        sp.add_argument("--rho", type=float, default=0.8, help="load factor")
        sp.add_argument("--p", type=float, default=0.5,
                        help="bit-flip probability (eq. 1; hypercube/butterfly)")

    sp = sub.add_parser("bounds", help="print the closed-form theory")
    _common(sp)
    sp.set_defaults(func=_cmd_bounds)

    sp = sub.add_parser("simulate", help="one simulation vs the bounds")
    _common(sp)
    sp.add_argument("--horizon", type=float, default=600.0)
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(func=_cmd_simulate)

    sp = sub.add_parser("sweep", help="delay-vs-load series + ASCII plot")
    _common(sp)
    sp.add_argument("--points", type=int, default=6)
    sp.add_argument("--horizon", type=float, default=500.0)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--jobs", type=int, default=1,
                    help="parallel worker processes")
    sp.add_argument("--pin-workers", action="store_true",
                    help="pin shared-workload pool workers to cores "
                    "(os.sched_setaffinity; no-op where unsupported)")
    sp.set_defaults(func=_cmd_sweep)

    sp = sub.add_parser("list-scenarios", help="the registered scenario catalog")
    sp.set_defaults(func=_cmd_list_scenarios)

    sp = sub.add_parser(
        "schemes", help="the scheme plugins and their declared capabilities"
    )
    sp.set_defaults(func=_cmd_schemes)

    sp = sub.add_parser(
        "networks",
        help="the network plugins: aliases, options, scheme matrix",
    )
    sp.set_defaults(func=_cmd_networks)

    sp = sub.add_parser(
        "engines",
        help="the engine plugins: kind, disciplines, batching, scheme matrix",
    )
    sp.set_defaults(func=_cmd_engines)

    sp = sub.add_parser(
        "traffics",
        help="the traffic plugins: aliases, options, theory, scheme matrix",
    )
    sp.set_defaults(func=_cmd_traffics)

    sp = sub.add_parser(
        "cache",
        help="inspect, clear, or prune the content-hash results store",
    )
    sp.add_argument("action", choices=("info", "clear", "prune"),
                    help="info = cell counts, size, and corrupt-cell rot; "
                    "clear = delete the store's cells (foreign files are "
                    "left alone); prune = TTL/LRU eviction")
    sp.add_argument("--cache-dir", default=None,
                    help="results store root (default: $REPRO_CACHE_DIR or .repro-cache)")
    sp.add_argument("--backend", default=None,
                    choices=("file", "locked", "sqlite"),
                    help="store backend (default: $REPRO_CACHE_BACKEND or file)")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable output (info and prune)")
    sp.add_argument("--older-than", default=None, metavar="AGE",
                    help="prune: drop cells older than AGE (e.g. 90, 12h, 30d)")
    sp.add_argument("--max-bytes", default=None, metavar="SIZE",
                    help="prune: evict LRU cells until the store fits SIZE "
                    "(e.g. 4096, 512kb, 100mb)")
    sp.set_defaults(func=_cmd_cache)

    sp = sub.add_parser(
        "serve",
        help="measurement server: HTTP API over the results cache",
    )
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=8765,
                    help="TCP port (0 picks a free one)")
    sp.add_argument("--workers", type=int, default=2,
                    help="measurement worker processes")
    sp.add_argument("--cache-dir", default=None,
                    help="results store root, pinned at startup "
                    "(default: $REPRO_CACHE_DIR or .repro-cache)")
    sp.add_argument("--backend", default="locked",
                    choices=("file", "locked", "sqlite"),
                    help="store backend; 'locked' adds cross-process "
                    "fcntl locking to the plain file layout")
    sp.add_argument("--wave-reps", type=int, default=1,
                    help="replications per task wave: the progress/"
                    "cancellation granularity of a job (larger = more "
                    "batching throughput, chunkier progress)")
    sp.add_argument("--job-ttl", default="1h", metavar="AGE",
                    help="retain terminal jobs this long before "
                    "evicting them from the job table (e.g. 90, 12h, "
                    "30d; default 1h). Active jobs are never evicted")
    sp.set_defaults(func=_cmd_serve)

    sp = sub.add_parser(
        "describe",
        help="one scenario in full: spec fields + plugin capabilities",
    )
    sp.add_argument("scenario", help="a name from list-scenarios")
    sp.set_defaults(func=_cmd_describe)

    sp = sub.add_parser(
        "run",
        help="run a registered scenario (parallel replications, cached results)",
    )
    sp.add_argument("scenario", help="a name from list-scenarios")
    sp.add_argument("--replications", type=int, default=None)
    sp.add_argument("--jobs", type=int, default=1,
                    help="parallel worker processes")
    sp.add_argument("--horizon", type=float, default=None)
    sp.add_argument("--d", type=int, default=None)
    sp.add_argument("--seed", type=int, default=None, help="base seed")
    sp.add_argument("--discipline", default=None, choices=("fifo", "ps"),
                    help="override the scenario's queueing discipline")
    sp.add_argument("--set", action="append", default=[], dest="options",
                    metavar="KEY=VALUE",
                    help="override a typed engine/network/traffic option "
                    "(e.g. --set chunk_packets=32768); repeatable")
    sp.add_argument("--pin-workers", action="store_true",
                    help="pin shared-workload pool workers to cores "
                    "(os.sched_setaffinity; no-op where unsupported)")
    sp.add_argument("--cache-dir", default=None,
                    help="results store root (default: $REPRO_CACHE_DIR or .repro-cache)")
    sp.add_argument("--no-cache", action="store_true",
                    help="neither read nor write the results store")
    sp.add_argument("--refresh", action="store_true",
                    help="recompute even on a cache hit")
    sp.add_argument("--profile", action="store_true",
                    help="run under cProfile and print the top 20 "
                    "cumulative-time entries to stderr (forces a "
                    "recomputation so there is something to profile)")
    sp.add_argument("--profile-out", default=None, metavar="FILE",
                    help="also dump the raw pstats data to FILE "
                    "(implies --profile; load with pstats.Stats)")
    sp.set_defaults(func=_cmd_run)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
