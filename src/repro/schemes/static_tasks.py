"""Static routing tasks (§1.2 context): one-shot permutations.

The dynamic problem of the paper sits on a literature of *static* tasks
— route one permutation, all packets released at t = 0, measure the
completion time.  This module provides the two schemes the paper's
survey contrasts:

* :func:`route_permutation_greedy` — direct greedy dimension-order
  routing of a permutation.  Completion is O(d) for random
  permutations but Theta(2^{d/2}) for adversarial ones (bit reversal) —
  the Borodin–Hopcroft phenomenon;
* :func:`route_permutation_valiant` — the [VaB81] two-phase randomised
  algorithm (random intermediates, both phases dimension order):
  O(d) completion with high probability for *every* permutation.

Both reuse the event-driven engine (phase-2 reuses low dimensions, so
the combined system is not levelled).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator
from repro.sim.eventsim import simulate_paths_event_driven
from repro.topology.hypercube import Hypercube

__all__ = [
    "StaticRunResult",
    "route_permutation_greedy",
    "route_permutation_valiant",
]


@dataclass(frozen=True)
class StaticRunResult:
    """Outcome of a one-shot routing task."""

    delivery: np.ndarray
    hops: np.ndarray

    @property
    def completion_time(self) -> float:
        """Time the last packet arrives (the task's makespan)."""
        return float(self.delivery.max()) if self.delivery.shape[0] else 0.0

    @property
    def mean_delay(self) -> float:
        return float(self.delivery.mean()) if self.delivery.shape[0] else 0.0


def _validate_perm(cube: Hypercube, perm: np.ndarray) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64)
    n = cube.num_nodes
    if perm.shape != (n,) or sorted(perm.tolist()) != list(range(n)):
        raise ConfigurationError(f"perm must be a permutation of range({n})")
    return perm


def route_permutation_greedy(
    cube: Hypercube, perm: np.ndarray
) -> StaticRunResult:
    """Route packet x -> perm[x] for every node, all released at t = 0,
    via canonical dimension-order paths."""
    perm = _validate_perm(cube, perm)
    n = cube.num_nodes
    paths = [cube.canonical_path_arcs(x, int(perm[x])) for x in range(n)]
    res = simulate_paths_event_driven(cube.num_arcs, np.zeros(n), paths)
    return StaticRunResult(res.delivery, res.hops)


def route_permutation_valiant(
    cube: Hypercube, perm: np.ndarray, rng: SeedLike = None
) -> StaticRunResult:
    """[VaB81]: route via uniform random intermediates, both phases in
    dimension order.  O(d) completion w.h.p. for any permutation."""
    perm = _validate_perm(cube, perm)
    gen = as_generator(rng)
    n = cube.num_nodes
    intermediates = gen.integers(0, n, size=n, dtype=np.int64)
    paths = []
    for x in range(n):
        w, z = int(intermediates[x]), int(perm[x])
        paths.append(
            cube.canonical_path_arcs(x, w) + cube.canonical_path_arcs(w, z)
        )
    res = simulate_paths_event_driven(cube.num_arcs, np.zeros(n), paths)
    return StaticRunResult(res.delivery, res.hops)


# ---------------------------------------------------------------------------
# scenario-runner plugins
# ---------------------------------------------------------------------------

from typing import TYPE_CHECKING

from repro.plugins.api import Capabilities, OptionSpec, Runner, SchemePlugin
from repro.plugins.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import ScenarioSpec

_PERM_OPTION = OptionSpec(
    "perm",
    kind="str",
    default="random",
    choices=("random", "bitrev"),
    description="which permutation to route (fresh uniform draw, or bit reversal)",
)


class _StaticTaskPlugin(SchemePlugin):
    """Shared one-shot permutation machinery: no arrival process (the
    spec takes neither rho nor lam), every packet released at t = 0,
    and the makespan rides along as a side metric.

    RNG contract (golden-pinned): with ``perm="random"`` the stream
    first draws the permutation; the Valiant variant then draws its
    random intermediates.
    """

    capabilities = Capabilities(
        networks=("hypercube",),
        options=(_PERM_OPTION,),
        metrics=("makespan",),
        static=True,
    )

    def _route(self, cube: Hypercube, perm: np.ndarray, gen) -> StaticRunResult:
        raise NotImplementedError  # pragma: no cover - protocol

    def prepare(self, spec: "ScenarioSpec") -> Runner:
        from repro.sim.measurement import DelayRecord
        from repro.sim.run_spec import ReplicationOutput
        from repro.traffic.destinations import bit_reversal_permutation

        cube = Hypercube(spec.d)
        which = spec.option("perm", "random")

        def run(gen):
            if which == "bitrev":
                perm = bit_reversal_permutation(spec.d)
            else:
                perm = gen.permutation(cube.num_nodes)
            result = self._route(cube, perm, gen)
            n = cube.num_nodes
            record = DelayRecord(
                np.zeros(n), result.delivery, max(result.completion_time, 1.0)
            )
            return ReplicationOutput(
                result.mean_delay,
                n,
                (("makespan", result.completion_time),),
                record,
            )

        return run


@register_scheme
class StaticGreedyPlugin(_StaticTaskPlugin):
    name = "static_greedy"
    summary = "one-shot permutation via direct greedy routing (§1.2)"

    def _route(self, cube, perm, gen):
        return route_permutation_greedy(cube, perm)


@register_scheme
class StaticValiantPlugin(_StaticTaskPlugin):
    name = "static_valiant"
    summary = "one-shot permutation via Valiant–Brebner two-phase routing"

    def _route(self, cube, perm, gen):
        return route_permutation_valiant(cube, perm, gen)
