"""The §2.3 non-greedy baseline: pipelined batch routing.

The scheme (paper §2.3, built on Valiant–Brebner phase 1): at each
round start every node releases *one* queued packet; the released batch
is routed greedily (dimension order); the next round begins only when
the **entire batch** has been delivered.  Packets arriving mid-round
wait at their origins even while the arcs they need sit idle — the
idling that the paper blames for the scheme's poor stability.

Each node thus behaves as an M/G/1 queue whose service time is the
batch completion time (≈ ``R d`` with high probability), so the scheme
is stable only when ``lam * R * d < 1`` — i.e. ``rho = O(1/d)``,
vanishing with the cube size, versus greedy routing's ``rho < 1``.
Experiment E11 measures exactly this contrast.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator
from repro.sim.feedforward import simulate_hypercube_greedy
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import HypercubeWorkload, TrafficSample

__all__ = ["PipelinedBatchScheme", "PipelinedBatchResult"]


@dataclass(frozen=True)
class PipelinedBatchResult:
    """Outcome of a pipelined-batch run.

    ``delivery`` is NaN for packets still queued when the horizon ends —
    under overload the backlog grows without bound and most packets
    never leave their origin.
    """

    sample: TrafficSample
    delivery: np.ndarray
    round_starts: np.ndarray
    round_durations: np.ndarray
    final_backlog: int

    @property
    def num_rounds(self) -> int:
        return int(self.round_starts.shape[0])

    def delivered_mask(self) -> np.ndarray:
        return ~np.isnan(self.delivery)

    def mean_delay_delivered(self) -> float:
        """Mean delay over delivered packets only (optimistic under
        overload — the backlog is the real story there)."""
        m = self.delivered_mask()
        if not m.any():
            return float("nan")
        return float((self.delivery[m] - self.sample.times[m]).mean())

    def mean_round_duration(self) -> float:
        if self.round_durations.shape[0] == 0:
            return float("nan")
        return float(self.round_durations.mean())

    def backlog_trajectory(self) -> Tuple[np.ndarray, np.ndarray]:
        """(round start times, packets waiting at origins then)."""
        waiting = np.zeros(self.num_rounds, dtype=np.int64)
        births = self.sample.times
        deliveries = self.delivery
        for i, t in enumerate(self.round_starts):
            born = births <= t
            gone = ~np.isnan(deliveries) & (deliveries <= t)
            waiting[i] = int(born.sum() - gone.sum())
        return self.round_starts.copy(), waiting


@dataclass(frozen=True)
class PipelinedBatchScheme:
    """One-packet-per-node rounds, each routed greedily, no overlap."""

    d: int
    lam: float
    p: float = 0.5
    cube: Hypercube = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cube", Hypercube(self.d))
        if not 0.0 < self.p <= 1.0:
            raise ConfigurationError(f"p must lie in (0, 1], got {self.p}")
        if self.lam <= 0.0:
            raise ConfigurationError(f"lam must be > 0, got {self.lam}")

    def workload(self) -> HypercubeWorkload:
        return HypercubeWorkload(
            self.cube, self.lam, BernoulliFlipLaw(self.d, self.p)
        )

    def run(self, horizon: float, rng: SeedLike = None) -> PipelinedBatchResult:
        """Simulate rounds until the horizon (no new rounds after it)."""
        gen = as_generator(rng)
        sample = self.workload().generate(horizon, gen)
        n = sample.num_packets
        delivery = np.full(n, np.nan)
        queues: List[Deque[int]] = [deque() for _ in range(self.cube.num_nodes)]
        next_pkt = 0  # pointer into the birth-sorted sample
        t = 0.0
        round_starts: List[float] = []
        round_durations: List[float] = []

        def _absorb_arrivals(upto: float) -> None:
            nonlocal next_pkt
            while next_pkt < n and sample.times[next_pkt] <= upto:
                queues[int(sample.origins[next_pkt])].append(next_pkt)
                next_pkt += 1

        while t < horizon:
            _absorb_arrivals(t)
            batch = [q.popleft() for q in queues if q]
            if not batch:
                if next_pkt >= n:
                    break
                t = float(sample.times[next_pkt])
                continue
            round_starts.append(t)
            ids = np.array(batch, dtype=np.int64)
            # Route the batch greedily, all released at the round start.
            sub = TrafficSample(
                np.full(ids.shape[0], t),
                sample.origins[ids],
                sample.destinations[ids],
                horizon,
            )
            res = simulate_hypercube_greedy(self.cube, sub)
            delivery[ids] = res.delivery
            t_end = float(res.delivery.max())
            # Termination detection is ignored (paper's simplification),
            # but a round always costs at least one time unit.
            t_end = max(t_end, t + 1.0)
            round_durations.append(t_end - t)
            t = t_end

        backlog = int(sum(len(q) for q in queues) + (n - next_pkt))
        return PipelinedBatchResult(
            sample,
            delivery,
            np.asarray(round_starts),
            np.asarray(round_durations),
            backlog,
        )

    def approximate_stability_threshold(self, measured_round: float) -> float:
        """The load factor above which the scheme saturates.

        Each node serves one packet per round of measured duration
        ``Rd``; M/G/1 stability needs ``lam * Rd < 1``, i.e.
        ``rho < p / Rd``.
        """
        if measured_round <= 0:
            raise ConfigurationError("round duration must be > 0")
        return self.p / measured_round


# ---------------------------------------------------------------------------
# scenario-runner plugin
# ---------------------------------------------------------------------------

from typing import TYPE_CHECKING

from repro.plugins.api import Capabilities, Runner, SchemePlugin
from repro.plugins.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import ScenarioSpec


@register_scheme
class PipelinedBatchPlugin(SchemePlugin):
    """The §2.3 non-greedy baseline.  Owns its whole round-structured
    simulation loop (no forceable engine); packets still queued when the
    horizon ends are undelivered, so the mean is taken over the
    delivered packets inside the trim window and the delivered fraction,
    final backlog and round duration ride along as metrics."""

    name = "pipelined_batch"
    summary = "pipelined batch rounds, stable only for rho = O(1/d) (§2.3)"
    capabilities = Capabilities(
        networks=("hypercube",),
        metrics=("delivered_fraction", "final_backlog", "mean_round_duration"),
    )

    def prepare(self, spec: "ScenarioSpec") -> Runner:
        from repro.sim.measurement import DelayRecord
        from repro.sim.run_spec import ReplicationOutput

        scheme = PipelinedBatchScheme(d=spec.d, lam=spec.resolved_lam, p=spec.p)

        def run(gen):
            result = scheme.run(spec.horizon, gen)
            sample = result.sample
            delivered = result.delivered_mask()
            lo = spec.horizon * spec.warmup_fraction
            hi = spec.horizon * (1.0 - spec.cooldown_fraction)
            window = delivered & (sample.times >= lo) & (sample.times <= hi)
            mean = (
                float((result.delivery[window] - sample.times[window]).mean())
                if window.any()
                else float("nan")
            )
            metrics = (
                ("delivered_fraction",
                 float(delivered.mean()) if len(delivered) else 1.0),
                ("final_backlog", float(result.final_backlog)),
                ("mean_round_duration", result.mean_round_duration()),
            )
            record = DelayRecord(
                sample.times[delivered], result.delivery[delivered], sample.horizon
            )
            return ReplicationOutput(mean, sample.num_packets, metrics, record)

        return run
