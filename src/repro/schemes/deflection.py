"""Slotted deflection (hot-potato) routing baseline — experiment E14.

The paper's §1.2 contrasts greedy store-and-forward routing with the
deflection schemes analysed (approximately) by Greenberg–Hajek [GrH89]
and Varvarigos [Var90].  This module implements a concrete slotted
deflection router on the d-cube so the comparison can be *measured*:

* time advances in unit slots; every arc carries at most one packet per
  slot;
* at each slot, every node ranks its resident packets oldest-first
  (age priority) and assigns output dimensions one packet at a time:
  a packet prefers its lowest *needed* dimension that is still free,
  otherwise it is **deflected** onto the lowest free dimension
  (lengthening its route), otherwise — only when all ``d`` ports are
  taken — it waits a slot in place;
* packets are absorbed on reaching their destination.

Allowing a packet to wait when every port is busy makes this a
buffered deflection hybrid ([GrH89] proper drops or misroutes instead
of queueing); the substitution keeps the hot-potato behaviour under
contention while remaining loss-free, which is what the delay
comparison against greedy routing needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import BernoulliFlipLaw

__all__ = ["DeflectionRouter", "DeflectionResult"]


@dataclass(frozen=True)
class DeflectionResult:
    """Outcome of a deflection run (slotted time)."""

    birth_slot: np.ndarray
    delivery_slot: np.ndarray
    hops_taken: np.ndarray
    shortest_hops: np.ndarray
    horizon_slots: int

    def delays(self) -> np.ndarray:
        """Per-packet delay in slots (== time units, unit slots)."""
        return (self.delivery_slot - self.birth_slot).astype(float)

    def mean_delay(self, warmup_fraction: float = 0.2) -> float:
        lo = self.horizon_slots * warmup_fraction
        m = self.birth_slot >= lo
        if not m.any():
            raise ConfigurationError("no packets after the warm-up window")
        return float(self.delays()[m].mean())

    def mean_deflections(self) -> float:
        """Average number of extra hops caused by deflections."""
        extra = self.hops_taken - self.shortest_hops
        return float(extra.mean()) if extra.shape[0] else 0.0


@dataclass(frozen=True)
class DeflectionRouter:
    """Age-priority hot-potato routing on the d-cube, unit slots."""

    d: int
    lam: float
    p: float = 0.5
    cube: Hypercube = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cube", Hypercube(self.d))
        if not 0.0 < self.p <= 1.0:
            raise ConfigurationError(f"p must lie in (0, 1], got {self.p}")
        if self.lam <= 0.0:
            raise ConfigurationError(f"lam must be > 0, got {self.lam}")

    def run(self, num_slots: int, rng: SeedLike = None) -> DeflectionResult:
        """Simulate ``num_slots`` slots, then drain remaining packets.

        Packet injections per (slot, node) are Poisson(``lam``) —
        the slotted analogue of the continuous model at ``tau = 1``.
        """
        if num_slots < 1:
            raise ConfigurationError(f"need >= 1 slot, got {num_slots}")
        gen = as_generator(rng)
        d, n = self.d, self.cube.num_nodes
        law = BernoulliFlipLaw(d, self.p)

        # packet store: arrays grown per injection batch
        births: List[int] = []
        dests: List[int] = []
        hops: List[int] = []
        short: List[int] = []
        delivered: Dict[int, int] = {}
        # resident[node] = list of packet ids currently at `node`
        resident: List[List[int]] = [[] for _ in range(n)]
        location: List[int] = []

        def _inject(slot: int) -> None:
            counts = gen.poisson(self.lam, size=n)
            total = int(counts.sum())
            if total == 0:
                return
            origins = np.repeat(np.arange(n, dtype=np.int64), counts)
            targets = law.sample_destinations(origins, gen)
            for o, z in zip(origins, targets):
                pid = len(births)
                births.append(slot)
                dests.append(int(z))
                hops.append(0)
                short.append(int(o ^ z).bit_count())
                location.append(int(o))
                resident[int(o)].append(pid)

        def _step(slot: int) -> None:
            # Absorb packets already at their destinations.
            for node in range(n):
                keep = []
                for pid in resident[node]:
                    if dests[pid] == node:
                        delivered[pid] = slot
                    else:
                        keep.append(pid)
                resident[node] = keep
            # Assign output ports, oldest packets first.
            moves: List[tuple] = []  # (pid, from, to)
            for node in range(n):
                if not resident[node]:
                    continue
                resident[node].sort(key=lambda q: (births[q], q))
                free = [True] * d
                stay = []
                for pid in resident[node]:
                    need = node ^ dests[pid]
                    out_dim = -1
                    for dim in range(d):
                        if free[dim] and (need >> dim) & 1:
                            out_dim = dim
                            break
                    if out_dim < 0:  # deflect onto any free port
                        for dim in range(d):
                            if free[dim]:
                                out_dim = dim
                                break
                    if out_dim < 0:
                        stay.append(pid)  # every port taken: wait
                    else:
                        free[out_dim] = False
                        moves.append((pid, node, node ^ (1 << out_dim)))
                resident[node] = stay
            for pid, _src, dst in moves:
                hops[pid] += 1
                location[pid] = dst
                resident[dst].append(pid)

        slot = 0
        while slot < num_slots:
            _inject(slot)
            _step(slot)
            slot += 1
        # Drain: no further injections; hot-potato always progresses
        # because contention only shrinks as packets are absorbed.
        in_flight = len(births) - len(delivered)
        guard = 0
        while in_flight > 0:
            _step(slot)
            slot += 1
            guard += 1
            in_flight = len(births) - len(delivered)
            if guard > 100 * num_slots + 10_000:  # pragma: no cover
                raise RuntimeError("deflection drain did not converge")

        # delivered[pid] is the slot at which the packet was absorbed,
        # i.e. the time it reached its destination (hop during slot s
        # lands at s+1; zero-hop packets absorb at birth, delay 0).
        delivery = np.array(
            [delivered[pid] for pid in range(len(births))], dtype=np.int64
        )
        return DeflectionResult(
            np.asarray(births, dtype=np.int64),
            delivery,
            np.asarray(hops, dtype=np.int64),
            np.asarray(short, dtype=np.int64),
            num_slots,
        )


# ---------------------------------------------------------------------------
# scenario-runner plugin
# ---------------------------------------------------------------------------

from typing import TYPE_CHECKING

from repro.plugins.api import Capabilities, Runner, SchemePlugin
from repro.plugins.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import ScenarioSpec


@register_scheme
class DeflectionPlugin(SchemePlugin):
    """Hot-potato routing in unit slots.  Owns its slotted simulation
    loop (no forceable engine, no queueing discipline to choose); the
    spec's horizon is rounded to a slot count and the mean number of
    deflections rides along as a side metric."""

    name = "deflection"
    summary = "age-priority hot-potato baseline in the spirit of [GrH89]"
    capabilities = Capabilities(
        networks=("hypercube",),
        metrics=("mean_deflections",),
    )

    def prepare(self, spec: "ScenarioSpec") -> Runner:
        from repro.sim.measurement import DelayRecord
        from repro.sim.run_spec import ReplicationOutput

        slots = int(round(spec.horizon))
        router = DeflectionRouter(d=spec.d, lam=spec.resolved_lam, p=spec.p)

        def run(gen):
            result = router.run(slots, gen)
            record = DelayRecord(
                result.birth_slot.astype(float),
                result.delivery_slot.astype(float),
                float(slots),
            )
            return ReplicationOutput(
                result.mean_delay(spec.warmup_fraction),
                int(result.birth_slot.shape[0]),
                (("mean_deflections", result.mean_deflections()),),
                record,
            )

        return run
