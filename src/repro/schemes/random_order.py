"""Dimension-ordering ablation (experiment E13).

The paper's scheme crosses dimensions in *increasing index order*; the
analysis leans on the induced levelled structure (Property B), but the
scheme itself would route correctly under any ordering.  This module
provides:

* :func:`simulate_fixed_order` — any fixed global permutation of the
  dimensions (still levelled, still analysable; by node-relabelling
  symmetry its delay law is identical to the canonical order's);
* :func:`simulate_random_order` — an *independent uniformly random*
  order per packet (not levelled: two packets can cross the same pair
  of dimensions in opposite orders, creating cyclic server
  dependencies), simulated on the event-driven engine.

Comparing the two quantifies how much of greedy routing's performance
the levelled structure actually buys — the paper's design choice made
measurable.
"""

from __future__ import annotations

from typing import Sequence

from repro.rng import SeedLike, as_generator
from repro.sim.eventsim import (
    EventSimResult,
    FlatPaths,
    hypercube_arcs_flat,
    hypercube_dims_flat,
    simulate_paths_event_driven,
)
from repro.sim.feedforward import FeedForwardResult, simulate_hypercube_greedy
from repro.topology.hypercube import Hypercube
from repro.traffic.workload import TrafficSample

__all__ = ["simulate_fixed_order", "simulate_random_order"]


def simulate_fixed_order(
    cube: Hypercube,
    sample: TrafficSample,
    dim_order: Sequence[int],
) -> FeedForwardResult:
    """Greedy routing crossing dimensions in a fixed global order.

    ``dim_order`` is a permutation of ``range(d)`` shared by every
    packet; the network stays levelled, so the fast engine applies.
    """
    return simulate_hypercube_greedy(cube, sample, dim_order=dim_order)


def _random_order_paths(
    cube: Hypercube, sample: TrafficSample, gen
) -> FlatPaths:
    """Flat arc paths with an independent random dimension order per
    packet.

    RNG contract (golden-pinned): one shuffle per packet in packet
    order.  ``Generator.shuffle`` on a slice view of the packed
    dimension array consumes the stream exactly as the historical
    per-packet list shuffle did (and a length-``<= 1`` shuffle consumes
    nothing, so those packets are skipped); only the path *assembly*
    around the shuffles is vectorised.
    """
    dims_flat, start = hypercube_dims_flat(
        cube.d, sample.origins, sample.destinations
    )
    shuffle = gen.shuffle
    st = start.tolist()
    for i in range(sample.num_packets):
        s = st[i]
        e = st[i + 1]
        if e - s > 1:
            shuffle(dims_flat[s:e])
    arcs = hypercube_arcs_flat(
        cube.num_nodes, sample.origins, dims_flat, start
    )
    return FlatPaths(arcs, start)


def simulate_random_order(
    cube: Hypercube,
    sample: TrafficSample,
    rng: SeedLike = None,
    *,
    record_arc_log: bool = False,
) -> EventSimResult:
    """Greedy routing with an independent random order per packet.

    Each packet shuffles its own set of differing dimensions uniformly;
    the resulting server graph is cyclic, so the event-driven engine is
    used.  Delivery times come back aligned with the sample's packets.
    """
    gen = as_generator(rng)
    paths = _random_order_paths(cube, sample, gen)
    return simulate_paths_event_driven(
        cube.num_arcs,
        sample.times,
        paths,
        record_arc_log=record_arc_log,
    )


# ---------------------------------------------------------------------------
# scenario-runner plugin
# ---------------------------------------------------------------------------

from typing import TYPE_CHECKING

from repro.plugins.api import Capabilities, Runner, SchemePlugin, steady_output
from repro.plugins.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import ScenarioSpec


@register_scheme
class RandomOrderPlugin(SchemePlugin):
    """Per-packet random dimension order: inherently event-driven (the
    server graph is cyclic), FIFO only, Bernoulli traffic.

    RNG contract (golden-pinned): the replication stream first draws
    the workload sample, then one shuffle per packet in packet order.
    """

    name = "random_order"
    summary = "greedy with per-packet random dimension order (E13 ablation)"
    capabilities = Capabilities(
        networks=("hypercube",),
        engines=("event",),
        # routes whatever the workload sample holds (the shuffle is per
        # packet, not per law), so any registered traffic law drives it
        traffics=("*",),
    )

    def native_engine(self, spec: "ScenarioSpec"):
        return "event"

    def prepare(self, spec: "ScenarioSpec") -> Runner:
        from repro.sim.measurement import DelayRecord

        cube = Hypercube(spec.d)

        def run(gen):
            # the traffic axis samples the workload (for uniform traffic
            # this is bit-identical to the historical eq. (1) draw)
            workload = spec.network_plugin.build_workload(spec)
            sample = workload.generate(spec.horizon, gen)
            delivery = simulate_random_order(cube, sample, gen).delivery
            return steady_output(
                spec, DelayRecord(sample.times, delivery, sample.horizon)
            )

        return run

    def batch_runner(self, spec: "ScenarioSpec"):
        """Stack R replications into one event calendar.

        Workloads draw through ``build_workload_batch`` (each from its
        own seed's stream), the per-packet shuffles follow from the
        same stream — exactly the sequential RNG order — and the R
        path sets run as one arc-offset batch.  ``batch_engine`` stays
        ``None``: the shuffles consume the replication stream *after*
        the workload draw, so the shared-workload shm decomposition
        (which reconstructs state from published samples alone) cannot
        reproduce them; at ``jobs > 1`` the runner composes this
        batch runner through chunked batch tasks instead.
        """
        from repro.engines.api import batch_output
        from repro.sim.eventsim import simulate_paths_event_driven_batch

        cube = Hypercube(spec.d)

        def run_batch(seeds):
            gens = [as_generator(seed) for seed in seeds]
            samples = spec.network_plugin.build_workload_batch(
                spec, spec.horizon, gens
            )
            paths = [
                _random_order_paths(cube, sample, gen)
                for sample, gen in zip(samples, gens)
            ]
            deliveries = simulate_paths_event_driven_batch(
                cube.num_arcs,
                [sample.times for sample in samples],
                paths,
            )
            return [
                batch_output(spec, sample, delivery)
                for sample, delivery in zip(samples, deliveries)
            ]

        return run_batch
