"""Two-phase randomised routing (Valiant mixing) — the paper's §5 remedy.

For an *arbitrary* destination pattern, greedy dimension-order routing
can be terrible: deterministic permutations such as bit reversal pile
``Theta(2^{d/2})`` canonical paths onto single arcs, so the system
saturates at ``lam = Theta(2^{-d/2})``.  The paper's concluding remarks
(§5), following [Val82]/[VaB81], suggest *mixing*: send each packet
first to a uniformly random intermediate node (phase 1), then on to its
true destination (phase 2), both phases greedy dimension-order.

Whatever the destination pattern, each phase presents uniform-random
masks, so every arc carries total flow at most ``lam`` — two-phase
routing is stable for all ``lam < 1``, at the price of roughly doubling
the mean path length (``d`` instead of ``d/2`` hops under uniform
traffic).  Exactly the trade the paper describes: better worst-case
stability, worse constant under benign traffic.

The combined (phase-1 + phase-2) system is *not* levelled — phase-2
packets revisit low dimensions while phase-1 packets are still using
them — so this scheme runs on the event-driven engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator
from repro.sim.eventsim import (
    EventSimResult,
    FlatPaths,
    hypercube_arcs_flat,
    hypercube_dims_flat,
    simulate_paths_event_driven,
)
from repro.sim.measurement import DelayRecord
from repro.topology.hypercube import Hypercube
from repro.traffic.workload import TrafficSample

__all__ = ["TwoPhaseScheme", "TwoPhaseResult"]


@dataclass(frozen=True)
class TwoPhaseResult:
    """Outcome of a two-phase run."""

    sample: TrafficSample
    result: EventSimResult
    intermediates: np.ndarray

    def delay_record(self) -> DelayRecord:
        return DelayRecord(
            self.sample.times, self.result.delivery, self.sample.horizon
        )

    def mean_hops(self) -> float:
        return float(self.result.hops.mean()) if len(self.result.hops) else 0.0


@dataclass(frozen=True)
class TwoPhaseScheme:
    """Valiant two-phase routing on the d-cube.

    ``law`` may be *any* destination sampler (translation invariant or
    not — permutations, hot spots, ...): the point of the scheme is
    that stability no longer depends on it.  Callers that draw their
    workload elsewhere (the scenario runner's traffic axis, bursty
    arrival processes) may omit the law and hand pre-sampled traffic
    to :meth:`route` directly.
    """

    d: int
    lam: float
    law: object = None  # anything with .d and .sample_destinations
    cube: Hypercube = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cube", Hypercube(self.d))
        if self.lam <= 0.0:
            raise ConfigurationError(f"lam must be > 0, got {self.lam}")
        if self.law is not None and getattr(self.law, "d", None) != self.d:
            raise ConfigurationError(
                f"law dimension {getattr(self.law, 'd', None)} != {self.d}"
            )

    @property
    def stability_limit(self) -> float:
        """Two-phase arcs carry flow ``lam`` regardless of the law:
        stable iff ``lam < 1``."""
        return 1.0

    @property
    def stable(self) -> bool:
        return self.lam < self.stability_limit

    def expected_hops(self) -> float:
        """Mean path length: ``d/2`` per phase with uniform mixing."""
        return float(self.d)

    def _paths(
        self, sample: TrafficSample, intermediates: np.ndarray
    ) -> FlatPaths:
        """Flat phase-1 + phase-2 arc paths.

        Both phases build in one pass: rows ``2i``/``2i + 1`` of an
        interleaved node table hold packet *i*'s phase-1 and phase-2
        hops, so the flat dimension array lists each packet's phase-1
        crossings immediately followed by its phase-2 crossings, and
        taking every other ``start`` entry merges the two segments.
        """
        origins = np.asarray(sample.origins, np.int64)
        inter = np.asarray(intermediates, np.int64)
        dests = np.asarray(sample.destinations, np.int64)
        n = origins.shape[0]
        seg_from = np.empty(2 * n, np.int64)
        seg_from[0::2] = origins
        seg_from[1::2] = inter
        seg_to = np.empty(2 * n, np.int64)
        seg_to[0::2] = inter
        seg_to[1::2] = dests
        dims_flat, seg_start = hypercube_dims_flat(self.d, seg_from, seg_to)
        arcs = hypercube_arcs_flat(
            self.cube.num_nodes, seg_from, dims_flat, seg_start
        )
        return FlatPaths(arcs, seg_start[0::2])

    def route(self, sample: TrafficSample, rng: SeedLike = None) -> TwoPhaseResult:
        """Pick uniform intermediates for pre-sampled traffic and route
        both phases.

        RNG contract: consumes exactly one ``integers`` draw of
        ``sample.num_packets`` intermediates from the stream — drawn
        *after* whatever sampled the workload, matching the historical
        consumption order bit for bit.
        """
        gen = as_generator(rng)
        intermediates = gen.integers(
            0, self.cube.num_nodes, size=sample.num_packets, dtype=np.int64
        )
        paths = self._paths(sample, intermediates)
        result = simulate_paths_event_driven(
            self.cube.num_arcs, sample.times, paths
        )
        return TwoPhaseResult(sample, result, intermediates)

    def run(self, horizon: float, rng: SeedLike = None) -> TwoPhaseResult:
        """Sample traffic, pick uniform intermediates, route both phases."""
        if self.law is None:
            raise ConfigurationError(
                "run() needs a destination law; either construct the "
                "scheme with one or pre-sample traffic and call route()"
            )
        gen = as_generator(rng)
        from repro.traffic.arrivals import merged_poisson_arrivals

        times, origins = merged_poisson_arrivals(
            self.cube.num_nodes, self.lam, horizon, gen
        )
        dests = np.asarray(
            self.law.sample_destinations(origins, gen), dtype=np.int64
        )
        sample = TrafficSample(times, origins, dests, float(horizon))
        return self.route(sample, gen)

    def measure_delay(
        self, horizon: float, rng: SeedLike = None, warmup_fraction: float = 0.2
    ) -> float:
        return self.run(horizon, rng).delay_record().mean_delay(warmup_fraction)


def direct_greedy_arc_loads(cube: Hypercube, law, lam: float) -> np.ndarray:
    """Exact per-arc flow of *direct* greedy routing under any traffic.

    For deterministic or sampled laws this evaluates the canonical-path
    flow each arc receives per unit time (``lam`` per origin spread
    along its canonical path) — the quantity whose maximum decides
    direct-greedy stability.  Exact for :class:`PermutationTraffic`;
    for stochastic laws it returns the expectation computed from a
    large destination sample.
    """
    n = cube.num_nodes
    loads = np.zeros(cube.num_arcs)
    perm = getattr(law, "perm", None)
    if perm is not None:
        for x in range(n):
            for arc in cube.canonical_path_arcs(x, int(perm[x])):
                loads[arc] += lam
        return loads
    # stochastic law: Monte-Carlo expectation over destinations
    reps = 200
    origins = np.repeat(np.arange(n, dtype=np.int64), reps)
    dests = np.asarray(law.sample_destinations(origins, 12345), dtype=np.int64)
    for x, z in zip(origins, dests):
        for arc in cube.canonical_path_arcs(int(x), int(z)):
            loads[arc] += lam / reps
    return loads


__all__.append("direct_greedy_arc_loads")


# ---------------------------------------------------------------------------
# scenario-runner plugin
# ---------------------------------------------------------------------------

from typing import TYPE_CHECKING

from repro.plugins.api import (
    Capabilities,
    Runner,
    SchemePlugin,
    steady_output,
)
from repro.plugins.registry import register_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import ScenarioSpec


@register_scheme
class TwoPhasePlugin(SchemePlugin):
    """Valiant two-phase mixing: route via a uniform random intermediate,
    both phases greedy.  Event-driven (phase 2 revisits low dimensions),
    FIFO, with the realised mean hop count as a side metric."""

    name = "twophase"
    summary = "Valiant two-phase mixing against adversarial traffic (§5)"
    capabilities = Capabilities(
        networks=("hypercube",),
        engines=("event",),
        # mixing exists precisely to neutralise the traffic pattern, so
        # the scheme runs under every registered law — permutations,
        # hot spots, bursty arrivals, third-party plugins
        traffics=("*",),
        metrics=("mean_hops",),
    )

    def native_engine(self, spec: "ScenarioSpec"):
        return "event"

    def prepare(self, spec: "ScenarioSpec") -> Runner:
        # the traffic axis samples the workload; the scheme only draws
        # the intermediates and routes (RNG order: workload first, then
        # intermediates — the historical order, golden-pinned)
        workload = spec.network_plugin.build_workload(spec)
        scheme = TwoPhaseScheme(d=spec.d, lam=spec.resolved_lam)

        def run(gen):
            sample = workload.generate(spec.horizon, gen)
            result = scheme.route(sample, gen)
            return steady_output(
                spec,
                result.delay_record(),
                metrics=(("mean_hops", result.mean_hops()),),
            )

        return run

    def batch_runner(self, spec: "ScenarioSpec"):
        """Stack R replications into one event calendar.

        Same seed-for-seed contract as :meth:`prepare`: each stream
        draws its workload (via ``build_workload_batch``), then its
        intermediates, then the R path sets run as one arc-offset
        batch.  The ``mean_hops`` side metric is recomputed per
        replication from the flat paths — bit-identical to the
        sequential ``TwoPhaseResult.mean_hops``.  ``batch_engine``
        stays ``None``: the intermediates draw follows the workload on
        the replication stream, which the shared-workload shm route
        (samples only, no generator state) cannot replay; ``jobs > 1``
        composes through chunked batch tasks instead.
        """
        from repro.sim.eventsim import simulate_paths_event_driven_batch
        from repro.sim.run_spec import ReplicationOutput

        scheme = TwoPhaseScheme(d=spec.d, lam=spec.resolved_lam)

        def run_batch(seeds):
            gens = [as_generator(seed) for seed in seeds]
            samples = spec.network_plugin.build_workload_batch(
                spec, spec.horizon, gens
            )
            paths = []
            for sample, gen in zip(samples, gens):
                intermediates = gen.integers(
                    0, scheme.cube.num_nodes,
                    size=sample.num_packets, dtype=np.int64,
                )
                paths.append(scheme._paths(sample, intermediates))
            deliveries = simulate_paths_event_driven_batch(
                scheme.cube.num_arcs,
                [sample.times for sample in samples],
                paths,
            )
            outputs = []
            for sample, delivery, fp in zip(samples, deliveries, paths):
                hops = fp.hops()
                mean_hops = float(hops.mean()) if len(hops) else 0.0
                out = steady_output(
                    spec,
                    DelayRecord(sample.times, delivery, sample.horizon),
                    metrics=(("mean_hops", mean_hops),),
                )
                outputs.append(
                    ReplicationOutput(
                        out.mean_delay, out.num_packets, out.metrics, None
                    )
                )
            return outputs

        return run_batch
