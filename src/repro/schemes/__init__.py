"""Baselines and ablations positioned against greedy routing.

* :mod:`repro.schemes.valiant` — the §2.3 non-greedy pipelined batch
  scheme (one packet per node per round, rounds are Valiant–Brebner
  phase-1 runs): stable only for ``rho = O(1/d)``, demonstrating the
  cost of idling.
* :mod:`repro.schemes.random_order` — greedy routing with alternative
  dimension crossing orders (fixed permutations and per-packet random
  orders): the ablation on the paper's increasing-index-order choice.
* :mod:`repro.schemes.deflection` — a slotted hot-potato baseline in
  the spirit of Greenberg–Hajek [GrH89], the related work the paper
  contrasts against.
"""

from repro.schemes.deflection import DeflectionResult, DeflectionRouter
from repro.schemes.random_order import (
    simulate_fixed_order,
    simulate_random_order,
)
from repro.schemes.static_tasks import (
    StaticRunResult,
    route_permutation_greedy,
    route_permutation_valiant,
)
from repro.schemes.twophase import (
    TwoPhaseResult,
    TwoPhaseScheme,
    direct_greedy_arc_loads,
)
from repro.schemes.valiant import PipelinedBatchResult, PipelinedBatchScheme

__all__ = [
    "PipelinedBatchScheme",
    "PipelinedBatchResult",
    "simulate_fixed_order",
    "simulate_random_order",
    "DeflectionRouter",
    "DeflectionResult",
    "TwoPhaseScheme",
    "TwoPhaseResult",
    "direct_greedy_arc_loads",
    "StaticRunResult",
    "route_permutation_greedy",
    "route_permutation_valiant",
]
