"""Statistical utilities for steady-state simulation output analysis.

Simulated delays are serially correlated (queueing systems mix slowly
near saturation), so naive i.i.d. confidence intervals are too
optimistic.  The standard remedy used here is the **batch-means**
method: split the (time-ordered) observations into ``k`` contiguous
batches, treat batch averages as approximately independent normal
samples, and build a t-interval from them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "mean_confidence_interval",
    "batch_means_ci",
    "time_average_step",
    "ConfidenceInterval",
]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A symmetric confidence interval ``mean ± halfwidth``."""

    mean: float
    halfwidth: float
    confidence: float
    num_samples: int

    @property
    def lo(self) -> float:
        return self.mean - self.halfwidth

    @property
    def hi(self) -> float:
        return self.mean + self.halfwidth

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


def mean_confidence_interval(
    samples: np.ndarray, confidence: float = 0.95
) -> ConfidenceInterval:
    """t-interval for the mean of (assumed independent) samples."""
    x = np.asarray(samples, dtype=float)
    n = x.shape[0]
    if n == 0:
        raise ValueError("cannot build a confidence interval from zero samples")
    m = float(x.mean())
    if n == 1:
        return ConfidenceInterval(m, math.inf, confidence, 1)
    se = float(x.std(ddof=1)) / math.sqrt(n)
    tcrit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(m, tcrit * se, confidence, n)


def batch_means_ci(
    samples: np.ndarray,
    num_batches: int = 20,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Batch-means confidence interval for serially correlated data.

    *samples* must be in time order.  The trailing remainder that does
    not fill a whole batch is dropped.
    """
    x = np.asarray(samples, dtype=float)
    if num_batches < 2:
        raise ValueError(f"need at least 2 batches, got {num_batches}")
    n = x.shape[0]
    if n < num_batches:
        raise ValueError(
            f"need at least one sample per batch: {n} samples, {num_batches} batches"
        )
    batch_size = n // num_batches
    used = batch_size * num_batches
    means = x[:used].reshape(num_batches, batch_size).mean(axis=1)
    ci = mean_confidence_interval(means, confidence)
    # Overall mean from all used samples; the spread comes from batches.
    return ConfidenceInterval(
        float(x[:used].mean()), ci.halfwidth, confidence, num_batches
    )


def time_average_step(
    event_times: np.ndarray,
    increments: np.ndarray,
    t0: float,
    t1: float,
    initial: float = 0.0,
) -> float:
    """Time average over ``[t0, t1]`` of a right-continuous step process.

    The process starts at *initial* and jumps by ``increments[i]`` at
    ``event_times[i]`` (sorted ascending).  Used for population and
    queue-length averages: births are ``+1`` events, deliveries ``-1``.
    """
    if t1 <= t0:
        raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
    t = np.asarray(event_times, dtype=float)
    dx = np.asarray(increments, dtype=float)
    if t.shape != dx.shape:
        raise ValueError("event_times and increments must be parallel")
    if t.shape[0] == 0:
        return float(initial)
    if np.any(np.diff(t) < 0):
        raise ValueError("event_times must be sorted ascending")
    # Value just after each event, plus the starting value.
    values = initial + np.cumsum(dx)
    # Integrate the step function over [t0, t1].
    level_start = initial if t.shape[0] == 0 else float(
        initial + dx[t <= t0].sum()
    )
    inside = (t > t0) & (t < t1)
    times_in = np.concatenate(([t0], t[inside], [t1]))
    vals_in = np.concatenate(([level_start], values[inside]))
    return float(np.sum(vals_in * np.diff(times_in)) / (t1 - t0))
