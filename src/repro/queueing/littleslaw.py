"""Little's-law conversions (paper eq. (14) and eq. (19)).

The paper converts between mean network population ``N`` and mean
per-packet delay ``T`` via ``T = N / Lambda`` with ``Lambda`` the
aggregate packet birth rate (``lam * 2**d`` for both networks).
"""

from __future__ import annotations

__all__ = ["delay_from_population", "population_from_delay"]


def delay_from_population(mean_population: float, throughput: float) -> float:
    """``T = N / Lambda`` — mean delay from mean population."""
    if throughput <= 0.0:
        raise ValueError(f"throughput must be > 0, got {throughput}")
    if mean_population < 0.0:
        raise ValueError(f"population must be >= 0, got {mean_population}")
    return mean_population / throughput


def population_from_delay(mean_delay: float, throughput: float) -> float:
    """``N = Lambda * T`` — mean population from mean delay."""
    if throughput <= 0.0:
        raise ValueError(f"throughput must be > 0, got {throughput}")
    if mean_delay < 0.0:
        raise ValueError(f"delay must be >= 0, got {mean_delay}")
    return mean_delay * throughput
