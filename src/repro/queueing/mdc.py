"""M/D/c — multi-server queue with deterministic unit service.

Prop 2 lower-bounds the universal delay through ``D(2^d; rho)``, the
mean sojourn time of an M/D/c queue with ``c = 2**d`` servers, arrival
rate ``c * rho`` and unit service.  No simple closed form exists, so we
provide the three evaluations the reproduction needs:

* :func:`mdc_sojourn_brumelle_lower` — the lower bound
  ``D(c; rho) >= 1 + rho / (2 c (1 - rho))`` from [Bru71] that the
  paper substitutes into Prop 2;
* :func:`mdc_sojourn_cosmetatos` — the standard Cosmetatos closed-form
  approximation (via Erlang C), good to a few percent;
* :func:`mdc_sojourn_mc` — a Monte-Carlo estimate by direct simulation
  of the c-server FIFO recursion (exact in distribution).
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.errors import UnstableSystemError
from repro.rng import SeedLike, as_generator

__all__ = [
    "erlang_b",
    "erlang_c",
    "mdc_sojourn_brumelle_lower",
    "mdc_sojourn_cosmetatos",
    "mdc_sojourn_mc",
    "mmc_wait",
]


def _check(c: int, rho: float) -> tuple[int, float]:
    c = int(c)
    if c < 1:
        raise ValueError(f"need at least one server, got c={c}")
    rho = float(rho)
    if rho < 0.0:
        raise ValueError(f"utilisation must be >= 0, got {rho}")
    if rho >= 1.0:
        raise UnstableSystemError(rho, f"M/D/{c} stationary quantity")
    return c, rho


def erlang_b(c: int, offered_load: float) -> float:
    """Erlang-B blocking probability for *c* servers, offered load *a*.

    Evaluated with the numerically stable recurrence
    ``B(k) = a B(k-1) / (k + a B(k-1))``.
    """
    if c < 0:
        raise ValueError(f"server count must be >= 0, got {c}")
    a = float(offered_load)
    if a < 0:
        raise ValueError(f"offered load must be >= 0, got {a}")
    b = 1.0
    for k in range(1, c + 1):
        b = a * b / (k + a * b)
    return b


def erlang_c(c: int, offered_load: float) -> float:
    """Erlang-C probability of waiting (M/M/c), ``a = c * rho < c``."""
    a = float(offered_load)
    if a >= c:
        raise UnstableSystemError(a / c, "Erlang C")
    b = erlang_b(c, a)
    rho = a / c
    return b / (1.0 - rho * (1.0 - b))


def mmc_wait(c: int, rho: float) -> float:
    """Mean queueing wait of M/M/c with unit mean service."""
    c, rho = _check(c, rho)
    if rho == 0.0:
        return 0.0
    return erlang_c(c, c * rho) / (c * (1.0 - rho))


def mdc_sojourn_brumelle_lower(c: int, rho: float) -> float:
    """The paper's [Bru71]-based evaluation:
    ``D(c; rho) ~ 1 + rho / (2 c (1 - rho))``.

    Reconstructed from the scanned source (the formula is partially
    garbled there).  It is *asymptotically exact in heavy traffic*
    (``Wq(M/D/c) -> 1/(2c(1-rho))`` as ``rho -> 1``) but can exceed the
    true M/D/c sojourn by a few percent at light load (e.g. 1.107 vs
    the true 1.055 at ``c=2, rho=0.3``).  Inside Prop 2 this is
    harmless: the ``max{dp, p D}`` picks the ``dp`` term exactly in the
    light-load regime where the discrepancy occurs, so the proposition's
    displayed bound remains valid where it binds.  Use
    :func:`mdc_sojourn_mc` when a certified value is needed.
    """
    c, rho = _check(c, rho)
    return 1.0 + rho / (2.0 * c * (1.0 - rho))


def mdc_sojourn_cosmetatos(c: int, rho: float) -> float:
    """Cosmetatos approximation to the M/D/c mean sojourn time.

    ``W_q(M/D/c) ~= 0.5 * phi * W_q(M/M/c)`` with the standard
    correction ``phi = 1 + (1-rho)(c-1)(sqrt(4+5c)-2)/(16 rho c)``;
    exact at ``c = 1`` and asymptotically correct in heavy traffic.
    """
    c, rho = _check(c, rho)
    if rho == 0.0:
        return 1.0
    wq_mmc = mmc_wait(c, rho)
    phi = 1.0 + (1.0 - rho) * (c - 1) * (math.sqrt(4.0 + 5.0 * c) - 2.0) / (
        16.0 * rho * c
    )
    return 1.0 + 0.5 * phi * wq_mmc


def mdc_sojourn_mc(
    c: int,
    rho: float,
    num_customers: int = 200_000,
    rng: SeedLike = None,
    warmup_fraction: float = 0.1,
) -> float:
    """Monte-Carlo estimate of the M/D/c mean sojourn time.

    Simulates the exact c-server FIFO dynamics: arrival *i* starts
    service at ``max(t_i, earliest server-free time)`` and departs one
    unit later.  The first ``warmup_fraction`` of customers is
    discarded to reduce initial-transient bias.
    """
    c, rho = _check(c, rho)
    if num_customers < 1:
        raise ValueError(f"need at least one customer, got {num_customers}")
    gen = as_generator(rng)
    lam = c * rho
    if lam == 0.0:
        return 1.0
    gaps = gen.exponential(1.0 / lam, size=num_customers)
    times = np.cumsum(gaps)
    free = [0.0] * c  # min-heap of server-free times
    heapq.heapify(free)
    skip = int(num_customers * warmup_fraction)
    total = 0.0
    count = 0
    for i, t in enumerate(times):
        start = free[0]
        begin = start if start > t else t
        depart = begin + 1.0
        heapq.heapreplace(free, depart)
        if i >= skip:
            total += depart - t
            count += 1
    return total / count


def mdc_sojourn_exact(
    c: int,
    rho: float,
    tol: float = 1e-10,
    max_states: int = 1 << 16,
) -> float:
    """Exact M/D/c mean sojourn time via the Crommelin embedded chain.

    With deterministic unit service, the number-in-system process
    satisfies the *exact* lattice recursion

        N(t + 1) = max(N(t) - c, 0) + A(t, t+1],   A ~ Poisson(c rho):

    every customer in service at ``t`` departs by ``t+1`` (and when the
    system is backlogged each server completes exactly one), while
    arrivals during the interval cannot depart before ``t+1``.  The
    stationary lattice law equals the continuous-time stationary law,
    so iterating the pmf to a fixed point and applying Little's law
    gives the exact mean sojourn, up to truncation error (monitored and
    driven below *tol*).
    """
    import numpy as np

    c, rho = _check(c, rho)
    if rho == 0.0:
        return 1.0
    a = c * rho
    # Poisson(a) pmf, truncated where negligible.
    k_max = int(a + 12 * math.sqrt(a) + 30)
    ks = np.arange(k_max + 1)
    log_pmf = ks * math.log(a) - a - np.array(
        [math.lgamma(k + 1) for k in ks]
    )
    pois = np.exp(log_pmf)
    pois /= pois.sum()

    # The chain mixes on a timescale ~ (1 - rho)^-2; budget iterations
    # accordingly (with head-room) and fail loudly if not converged.
    max_iter = int(min(2_000_000, 200 + 60.0 / (1.0 - rho) ** 2))
    size = max(256, 4 * (c + k_max), int(8 / (1.0 - rho)))
    while True:
        if size > max_states:
            raise RuntimeError(
                f"M/D/{c} state truncation exceeded {max_states} states "
                f"(rho={rho} too close to 1 for this method)"
            )
        pi = np.zeros(size)
        pi[0] = 1.0
        converged = False
        truncation_bites = False
        for it in range(max_iter):
            shifted = np.zeros(size)
            # states <= c collapse to 0
            shifted[0] = pi[: c + 1].sum()
            upto = size - c
            shifted[1:upto] = pi[c + 1 : size]
            new = np.convolve(shifted, pois)[:size]
            diff = np.abs(new - pi).sum()
            pi = new
            if diff < tol:
                converged = True
                break
            # Periodically check whether mass is escaping the truncation
            # — if so, restart wider instead of grinding to max_iter.
            if it % 200 == 199 and pi[-max(k_max, 1) :].sum() > 1e-9:
                truncation_bites = True
                break
        leak = 1.0 - float(pi.sum())
        tail = float(pi[-max(k_max, 1) :].sum())
        if converged and leak < 1e-9 and tail < 1e-9:
            break
        if not converged and not truncation_bites:
            raise RuntimeError(
                f"M/D/{c} power iteration did not converge in {max_iter} "
                f"iterations at rho={rho}"
            )
        size *= 2  # truncation visibly bites: widen and redo
    mean_n = float(np.dot(np.arange(size), pi) / pi.sum())
    return mean_n / a


__all__.append("mdc_sojourn_exact")
