"""Classical queueing-theory formulas used by the paper's analysis.

* :mod:`repro.queueing.md1` — M/D/1 (Pollaczek–Khinchine with
  deterministic unit service): eq. (16) and the per-arc delays in
  Props 3, 13, 14.
* :mod:`repro.queueing.mdc` — M/D/c: the Brumelle lower bound [Bru71]
  used inside Prop 2, plus a Cosmetatos approximation and a Monte-Carlo
  estimator for reference values.
* :mod:`repro.queueing.mm1` — geometric (M/M/1-style) marginals of the
  product-form PS network.
* :mod:`repro.queueing.productform` — network-level product-form
  quantities (Walrand, pp. 93–94) behind Props 12 and 17, including the
  Chernoff tail of the total population (§3.3 closing remark).
* :mod:`repro.queueing.littleslaw` — Little's-law conversions (eq. 14/19).
"""

from repro.queueing.littleslaw import delay_from_population, population_from_delay
from repro.queueing.md1 import (
    md1_mean_number,
    md1_sojourn,
    md1_wait,
)
from repro.queueing.mdc import (
    erlang_b,
    erlang_c,
    mdc_sojourn_brumelle_lower,
    mdc_sojourn_cosmetatos,
    mdc_sojourn_exact,
    mdc_sojourn_mc,
)
from repro.queueing.mm1 import (
    geometric_mean,
    geometric_pmf,
    geometric_tail,
    mm1_mean_number,
)
from repro.queueing.productform import (
    ProductFormNetwork,
    butterfly_ps_mean_population,
    hypercube_ps_mean_population,
)

__all__ = [
    "md1_wait",
    "md1_sojourn",
    "md1_mean_number",
    "erlang_b",
    "erlang_c",
    "mdc_sojourn_brumelle_lower",
    "mdc_sojourn_cosmetatos",
    "mdc_sojourn_exact",
    "mdc_sojourn_mc",
    "mm1_mean_number",
    "geometric_pmf",
    "geometric_tail",
    "geometric_mean",
    "ProductFormNetwork",
    "hypercube_ps_mean_population",
    "butterfly_ps_mean_population",
    "delay_from_population",
    "population_from_delay",
]
