"""M/D/1 with unit service time (Pollaczek–Khinchine specialisation).

For Poisson arrivals of rate ``rho < 1`` into a single deterministic
server with unit service time [Kle75]:

* mean waiting time in queue   ``W_q = rho / (2 (1 - rho))``
* mean sojourn (system) time   ``T   = 1 + rho / (2 (1 - rho))``
* mean number in system        ``N   = rho + rho^2 / (2 (1 - rho))``
  — this is the paper's eq. (16).

These drive the per-arc delay terms of Props 3, 13 and 14.
"""

from __future__ import annotations

from repro.errors import UnstableSystemError

__all__ = ["md1_wait", "md1_sojourn", "md1_mean_number"]


def _check_rho(rho: float, allow_zero: bool = True) -> float:
    rho = float(rho)
    lo_ok = rho >= 0.0 if allow_zero else rho > 0.0
    if not lo_ok:
        raise ValueError(f"utilisation must be >= 0, got {rho}")
    if rho >= 1.0:
        raise UnstableSystemError(rho, "M/D/1 stationary quantity")
    return rho


def md1_wait(rho: float) -> float:
    """Mean time spent waiting (excluding service): ``rho / (2(1-rho))``."""
    rho = _check_rho(rho)
    return rho / (2.0 * (1.0 - rho))


def md1_sojourn(rho: float) -> float:
    """Mean time in system (waiting + unit service)."""
    return 1.0 + md1_wait(rho)


def md1_mean_number(rho: float) -> float:
    """Mean number of customers in the system — paper eq. (16)."""
    rho = _check_rho(rho)
    return rho + rho * rho / (2.0 * (1.0 - rho))


def md1_wait_cdf(rho: float, x: float) -> float:
    """Exact waiting-time distribution ``P[W <= x]`` of M/D/1.

    The classical Erlang/Crommelin alternating series for unit service
    (see Kleinrock vol. 1):

        P[W <= x] = (1 - rho) * sum_{j=0}^{floor(x)}
                    [rho (j - x)]^j / j! * exp(-rho (j - x)),

    with ``P[W <= 0] = 1 - rho`` (an arrival waits iff it finds
    unfinished work; the workload is empty with probability 1 - rho).

    The series alternates with terms growing like ``(rho x)^j / j!``,
    so float64 suffers catastrophic cancellation for ``x`` beyond ~20;
    larger arguments are summed in :mod:`decimal` arithmetic with
    precision scaled to ``x``.
    """
    import math as _math

    rho = _check_rho(rho)
    if x < 0.0:
        return 0.0
    if rho == 0.0:
        return 1.0
    k = int(_math.floor(x))
    if x <= 12.0:
        total = 0.0
        for j in range(k + 1):
            z = rho * (j - x)  # <= 0
            total += (z**j) / _math.factorial(j) * _math.exp(-z)
        val = (1.0 - rho) * total
    else:
        # high-precision path: the cancellation consumes O(x) digits
        import decimal

        with decimal.localcontext() as ctx:
            ctx.prec = 40 + int(3 * x)
            dr = decimal.Decimal(repr(rho))
            dx = decimal.Decimal(repr(float(x)))
            total_d = decimal.Decimal(0)
            fact = decimal.Decimal(1)
            for j in range(k + 1):
                if j > 0:
                    fact *= j
                z = dr * (j - dx)
                total_d += z**j / fact * (-z).exp()
            val = float((1 - dr) * total_d)
    return min(max(val, 0.0), 1.0)


def md1_wait_quantile(rho: float, q: float, tol: float = 1e-9) -> float:
    """Inverse of :func:`md1_wait_cdf` by bisection."""
    rho = _check_rho(rho)
    if not 0.0 <= q < 1.0:
        raise ValueError(f"quantile must lie in [0, 1), got {q}")
    if q <= 1.0 - rho:
        return 0.0
    lo, hi = 0.0, 1.0
    while md1_wait_cdf(rho, hi) < q:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - defensive
            raise RuntimeError("quantile search diverged")
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if md1_wait_cdf(rho, mid) < q:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


__all__.extend(["md1_wait_cdf", "md1_wait_quantile"])
