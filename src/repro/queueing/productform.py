"""Product-form analysis of the PS-discipline networks Q̃ and R̃.

Under Processor Sharing every server of the levelled networks is
quasi-reversible, so the stationary joint law factorises (Walrand,
pp. 93–94) into independent geometric marginals with parameter equal to
each server's *total* arrival rate.  This module evaluates:

* the mean total population ``N̄ = sum_i rho_i / (1 - rho_i)``
  (eq. (13) numerator and eq. (21));
* the implied delay bound via Little's law (Props 12 and 17);
* the Chernoff tail of the total population — the paper's closing
  remark of §3.3: ``N <= (1+eps) N̄`` with high probability.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import UnstableSystemError
from repro.queueing.littleslaw import delay_from_population

__all__ = [
    "ProductFormNetwork",
    "hypercube_ps_mean_population",
    "butterfly_ps_mean_population",
]


class ProductFormNetwork:
    """A product-form network of PS servers with given total rates.

    Parameters
    ----------
    rates:
        Per-server total arrival rates ``rho_i`` (unit service), each
        required ``< 1`` for stationarity.
    """

    def __init__(self, rates: Sequence[float]) -> None:
        rho = np.asarray(rates, dtype=float)
        if rho.ndim != 1 or rho.shape[0] == 0:
            raise ValueError("rates must be a non-empty 1-D sequence")
        if np.any(rho < 0):
            raise ValueError("rates must be non-negative")
        worst = float(rho.max())
        if worst >= 1.0:
            raise UnstableSystemError(worst, "product-form stationary law")
        self._rho = rho

    @property
    def rates(self) -> np.ndarray:
        return self._rho.copy()

    @property
    def num_servers(self) -> int:
        return int(self._rho.shape[0])

    def mean_population(self) -> float:
        """``N̄ = sum_i rho_i / (1 - rho_i)`` (independent geometrics)."""
        return float(np.sum(self._rho / (1.0 - self._rho)))

    def var_population(self) -> float:
        """Variance of the total population: ``sum rho_i/(1-rho_i)^2``."""
        return float(np.sum(self._rho / (1.0 - self._rho) ** 2))

    def mean_delay(self, throughput: float) -> float:
        """Little's-law delay of the PS network at the given birth rate."""
        return delay_from_population(self.mean_population(), throughput)

    # -- tail of the total population -----------------------------------------

    def log_mgf(self, theta: float) -> float:
        """``log E[exp(theta * N)]`` for the total population N.

        Finite only for ``exp(theta) < 1 / max_i rho_i``.
        """
        z = math.exp(theta)
        if z * float(self._rho.max()) >= 1.0:
            return math.inf
        return float(np.sum(np.log1p(-self._rho) - np.log1p(-self._rho * z)))

    def chernoff_tail(self, threshold: float) -> float:
        """Chernoff bound on ``P[N >= threshold]``.

        Optimises ``exp(-theta x + log_mgf(theta))`` over a geometric
        grid of admissible ``theta``; returns 1.0 when the threshold is
        below the mean (where the bound is vacuous).
        """
        x = float(threshold)
        if x <= self.mean_population():
            return 1.0
        theta_max = -math.log(float(self._rho.max()))
        best = 1.0
        # dense geometric sweep toward the boundary; the exponent is
        # smooth and unimodal so this is accurate to ~1e-3 in the log.
        for frac in np.linspace(1e-4, 1.0 - 1e-6, 400):
            theta = theta_max * frac
            val = -theta * x + self.log_mgf(theta)
            if val < math.log(best):
                best = math.exp(val)
        return best

    def population_quantile_bound(self, epsilon: float) -> float:
        """Bound on ``P[N >= (1 + epsilon) * N̄]`` — the §3.3 whp claim."""
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        return self.chernoff_tail((1.0 + epsilon) * self.mean_population())


def hypercube_ps_mean_population(d: int, rho: float) -> float:
    """Mean population of Q̃: ``d * 2**d * rho / (1 - rho)`` (Prop 12 proof)."""
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")
    if not 0.0 <= rho < 1.0:
        raise UnstableSystemError(rho, "PS hypercube population")
    return d * (1 << d) * rho / (1.0 - rho)


def butterfly_ps_mean_population(d: int, lam: float, p: float) -> float:
    """Mean population of R̃ — paper eq. (21).

    ``N̄ = d 2^d [ lam p / (1 - lam p) + lam(1-p) / (1 - lam(1-p)) ]``.
    """
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    rv, rs = lam * p, lam * (1.0 - p)
    worst = max(rv, rs)
    if worst >= 1.0:
        raise UnstableSystemError(worst, "PS butterfly population")
    return d * (1 << d) * (rv / (1.0 - rv) + rs / (1.0 - rs))
