"""Geometric marginals of product-form (PS) servers.

Under the Processor-Sharing discipline the equivalent networks Q̃ and R̃
are product-form (Walrand, pp. 93–94): each server with total arrival
rate ``rho`` holds ``n`` packets with probability ``(1-rho) rho^n`` —
the M/M/1 stationary law, despite the deterministic service.  These
helpers evaluate that geometric law.
"""

from __future__ import annotations

import numpy as np

from repro.errors import UnstableSystemError

__all__ = ["mm1_mean_number", "geometric_pmf", "geometric_tail", "geometric_mean"]


def _check(rho: float) -> float:
    rho = float(rho)
    if rho < 0.0:
        raise ValueError(f"utilisation must be >= 0, got {rho}")
    if rho >= 1.0:
        raise UnstableSystemError(rho, "geometric stationary law")
    return rho


def mm1_mean_number(rho: float) -> float:
    """Mean of the geometric law: ``rho / (1 - rho)``."""
    rho = _check(rho)
    return rho / (1.0 - rho)


geometric_mean = mm1_mean_number


def geometric_pmf(rho: float, n) -> np.ndarray | float:
    """``P[N = n] = (1 - rho) rho^n`` for scalar or array *n*."""
    rho = _check(rho)
    n_arr = np.asarray(n)
    out = (1.0 - rho) * np.power(rho, n_arr, dtype=float)
    out = np.where(n_arr < 0, 0.0, out)
    return float(out) if np.isscalar(n) else out


def geometric_tail(rho: float, n) -> np.ndarray | float:
    """``P[N >= n] = rho^n`` (with ``P[N >= n] = 1`` for n <= 0)."""
    rho = _check(rho)
    n_arr = np.asarray(n)
    out = np.power(rho, np.maximum(n_arr, 0), dtype=float)
    return float(out) if np.isscalar(n) else out
