"""The slotted-time variant of §3.4.

Time is divided into slots of length ``tau`` (``1/tau`` integer); every
node emits a Poisson(``lam * tau``)-sized batch of packets at each slot
boundary, keeping the traffic intensity of the continuous-time model.
Routing and service are unchanged — unit transmissions, greedy
dimension order, FIFO per arc — so the slotted system is simulated by
the same feed-forward engine fed with tied arrival times (ties resolved
by packet id, standing in for the paper's arbitrary intra-batch order).

The §3.4 comparison result states that advancing each continuous-time
arrival to the start of its slot only adds the in-flight batch ``X_k``
to the population, yielding the delay bound ``T~ <= d p/(1-rho) + tau``
(:func:`repro.core.bounds.slotted_delay_upper_bound`), verified by
experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bounds import slotted_delay_upper_bound
from repro.errors import ConfigurationError
from repro.rng import SeedLike
from repro.sim.feedforward import FeedForwardResult, simulate_hypercube_greedy
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import SlottedHypercubeWorkload

__all__ = ["SlottedGreedyHypercube"]


@dataclass(frozen=True)
class SlottedGreedyHypercube:
    """Greedy dimension-order routing with §3.4 slotted batch arrivals."""

    d: int
    lam: float
    p: float
    tau: float = 0.5
    cube: Hypercube = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cube", Hypercube(self.d))
        if not 0.0 < self.p <= 1.0:
            raise ConfigurationError(f"p must lie in (0, 1], got {self.p}")
        if self.lam <= 0.0:
            raise ConfigurationError(f"lam must be > 0, got {self.lam}")
        # Validate tau eagerly (1/tau must be an integer — §3.4).
        from repro.traffic.arrivals import SlottedBatchArrivals

        SlottedBatchArrivals(self.lam, self.tau)

    @property
    def rho(self) -> float:
        return self.lam * self.p

    def delay_upper_bound(self) -> float:
        """§3.4: ``T~ <= d p / (1 - rho) + tau``."""
        return slotted_delay_upper_bound(self.d, self.lam, self.p, self.tau)

    def workload(self) -> SlottedHypercubeWorkload:
        return SlottedHypercubeWorkload(
            self.cube, self.lam, BernoulliFlipLaw(self.d, self.p), self.tau
        )

    def run(self, horizon: float, rng: SeedLike = None) -> FeedForwardResult:
        """Sample slotted traffic and route every packet."""
        sample = self.workload().generate(horizon, rng)
        return simulate_hypercube_greedy(self.cube, sample)

    def measure_delay(
        self, horizon: float, rng: SeedLike = None, warmup_fraction: float = 0.2
    ) -> float:
        return self.run(horizon, rng).delay_record().mean_delay(warmup_fraction)


@dataclass(frozen=True)
class SlottedGreedyButterfly:
    """§4.3 closing remark: the slotted butterfly "can be treated as in
    §3.4" — batch arrivals at level 0, unit transmissions, greedy
    (unique-path) routing, with the bound ``T~ <= Prop 17 + tau``."""

    d: int
    lam: float
    p: float
    tau: float = 0.5

    def __post_init__(self) -> None:
        from repro.topology.butterfly import Butterfly

        object.__setattr__(self, "_bf", Butterfly(self.d))
        if not 0.0 <= self.p <= 1.0:
            raise ConfigurationError(f"p must lie in [0, 1], got {self.p}")
        if self.lam <= 0.0:
            raise ConfigurationError(f"lam must be > 0, got {self.lam}")
        from repro.traffic.arrivals import SlottedBatchArrivals

        SlottedBatchArrivals(self.lam, self.tau)

    @property
    def butterfly(self):
        return self._bf

    @property
    def rho(self) -> float:
        return self.lam * max(self.p, 1.0 - self.p)

    def delay_upper_bound(self) -> float:
        from repro.core.bounds import butterfly_delay_upper_bound

        return butterfly_delay_upper_bound(self.d, self.lam, self.p) + self.tau

    def run(self, horizon: float, rng: SeedLike = None):
        from repro.rng import as_generator
        from repro.sim.feedforward import simulate_butterfly_greedy
        from repro.traffic.arrivals import SlottedBatchArrivals
        from repro.traffic.destinations import BernoulliFlipLaw
        from repro.traffic.workload import TrafficSample

        gen = as_generator(rng)
        batches = SlottedBatchArrivals(self.lam, self.tau)
        times, origins = batches.sample_times(self._bf.rows, horizon, gen)
        law = BernoulliFlipLaw(self.d, self.p)
        dests = law.sample_destinations(origins, gen)
        sample = TrafficSample(times, origins, dests, float(horizon))
        return simulate_butterfly_greedy(self._bf, sample)

    def measure_delay(
        self, horizon: float, rng: SeedLike = None, warmup_fraction: float = 0.2
    ) -> float:
        return self.run(horizon, rng).delay_record().mean_delay(warmup_fraction)


__all__.append("SlottedGreedyButterfly")
