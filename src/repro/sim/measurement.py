"""Measurement collectors shared by all simulators.

* :class:`DelayRecord` — per-packet birth/delivery epochs with
  warm-up/cool-down-aware steady-state delay estimation (the quantity
  ``T`` of the paper).
* :class:`PopulationTracker` — the network population process ``N(t)``
  reconstructed from births and deliveries; supports time averages and
  suprema (used for Prop 11 and the §3.3 queue-size claims).
* :func:`arc_arrival_counts` — empirical per-arc flows (Props 5/15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats import ConfidenceInterval, batch_means_ci, time_average_step
from repro.errors import MeasurementError

__all__ = ["DelayRecord", "PopulationTracker", "arc_arrival_counts"]


@dataclass(frozen=True)
class DelayRecord:
    """Per-packet delay observations from one simulation run.

    ``birth`` is sorted ascending (packets indexed in birth order);
    ``delivery[i] - birth[i]`` is the delay of packet ``i``.  Packets
    with zero hops (destination == origin) have ``delivery == birth``.
    """

    birth: np.ndarray
    delivery: np.ndarray
    horizon: float

    def __post_init__(self) -> None:
        if self.birth.shape != self.delivery.shape:
            raise MeasurementError("birth/delivery must be parallel arrays")
        if np.any(self.delivery < self.birth - 1e-9):
            raise MeasurementError("deliveries must not precede births")

    @property
    def num_packets(self) -> int:
        return int(self.birth.shape[0])

    def delays(self) -> np.ndarray:
        return self.delivery - self.birth

    def steady_state_mask(
        self, warmup_fraction: float = 0.2, cooldown_fraction: float = 0.1
    ) -> np.ndarray:
        """Select packets born in the central window of the horizon.

        Early packets see an empty network (delay biased low); packets
        born near the end see no future contention (also biased low).
        The defaults drop the first 20% and last 10% of the horizon.
        """
        if not 0 <= warmup_fraction < 1 or not 0 <= cooldown_fraction < 1:
            raise MeasurementError("fractions must lie in [0, 1)")
        if warmup_fraction + cooldown_fraction >= 1:
            raise MeasurementError("warmup + cooldown must leave a window")
        lo = self.horizon * warmup_fraction
        hi = self.horizon * (1.0 - cooldown_fraction)
        return (self.birth >= lo) & (self.birth <= hi)

    def mean_delay(
        self, warmup_fraction: float = 0.2, cooldown_fraction: float = 0.1
    ) -> float:
        """Steady-state estimate of the paper's ``T``."""
        mask = self.steady_state_mask(warmup_fraction, cooldown_fraction)
        if not mask.any():
            raise MeasurementError("no packets in the steady-state window")
        return float(self.delays()[mask].mean())

    def mean_delay_ci(
        self,
        warmup_fraction: float = 0.2,
        cooldown_fraction: float = 0.1,
        num_batches: int = 20,
        confidence: float = 0.95,
    ) -> ConfidenceInterval:
        """Batch-means confidence interval for ``T`` (time-ordered batches)."""
        mask = self.steady_state_mask(warmup_fraction, cooldown_fraction)
        d = self.delays()[mask]
        if d.shape[0] < num_batches:
            raise MeasurementError(
                f"too few steady-state packets ({d.shape[0]}) for {num_batches} batches"
            )
        return batch_means_ci(d, num_batches=num_batches, confidence=confidence)


class PopulationTracker:
    """The step process ``N(t)`` = packets in flight at time ``t``."""

    def __init__(self, event_times: np.ndarray, increments: np.ndarray) -> None:
        order = np.argsort(event_times, kind="stable")
        self._t = np.asarray(event_times, dtype=float)[order]
        self._dx = np.asarray(increments, dtype=float)[order]
        self._values = np.cumsum(self._dx)

    @classmethod
    def from_intervals(
        cls, starts: np.ndarray, ends: np.ndarray
    ) -> "PopulationTracker":
        """Build N(t) from per-packet (birth, delivery) intervals."""
        starts = np.asarray(starts, dtype=float)
        ends = np.asarray(ends, dtype=float)
        if starts.shape != ends.shape:
            raise MeasurementError("starts/ends must be parallel")
        times = np.concatenate([starts, ends])
        incs = np.concatenate([np.ones_like(starts), -np.ones_like(ends)])
        return cls(times, incs)

    def time_average(self, t0: float, t1: float) -> float:
        """Time-averaged population over ``[t0, t1]``."""
        return time_average_step(self._t, self._dx, t0, t1, initial=0.0)

    def maximum(self) -> float:
        """Supremum of N(t) over the whole run."""
        if self._values.shape[0] == 0:
            return 0.0
        return float(self._values.max())

    def at(self, t: float) -> float:
        """N(t) (right-continuous evaluation)."""
        idx = np.searchsorted(self._t, t, side="right")
        return float(self._values[idx - 1]) if idx > 0 else 0.0

    def counting_process(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (event times, N values just after each event)."""
        return self._t.copy(), self._values.copy()


def arc_arrival_counts(arc_ids: np.ndarray, num_arcs: int) -> np.ndarray:
    """Histogram of arrivals per arc id (for empirical flow rates)."""
    ids = np.asarray(arc_ids)
    if ids.shape[0] and (ids.min() < 0 or ids.max() >= num_arcs):
        raise MeasurementError("arc id out of range")
    return np.bincount(ids, minlength=num_arcs)


def arc_occupancy_pmf(
    arc_log,
    arc_id: int,
    t0: float,
    t1: float,
    max_n: int = 16,
    grid_points: int = 2000,
) -> np.ndarray:
    """Empirical occupancy pmf of one arc's server over ``[t0, t1]``.

    Samples the number of packets holding the arc (queued + in service)
    on a uniform time grid; used to compare against the product-form
    geometric marginals (experiment E7).  Returns ``P[occupancy = n]``
    for ``n = 0..max_n-1`` (the tail above is folded into the last bin).
    """
    if t1 <= t0:
        raise MeasurementError(f"need t1 > t0, got [{t0}, {t1}]")
    m = arc_log.arc == arc_id
    tracker = PopulationTracker.from_intervals(arc_log.t_in[m], arc_log.t_out[m])
    grid = np.linspace(t0, t1, grid_points)
    samples = np.array([tracker.at(t) for t in grid])
    clipped = np.clip(samples, 0, max_n - 1).astype(int)
    return np.bincount(clipped, minlength=max_n) / grid_points


__all__.append("arc_occupancy_pmf")
