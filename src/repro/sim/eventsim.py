"""Event-driven network simulator (FIFO and PS disciplines).

This is the classical engine: chronological event order, per-arc server
state, packets following explicit precomputed arc paths.  It is
deliberately independent of the levelled structure, so it can simulate

* the canonical greedy scheme (cross-validating the fast feed-forward
  engine sample-path-for-sample-path),
* **non-levelled** schemes such as per-packet random dimension order
  (the E13 ablation), which the feed-forward engine cannot express.

The state is flat preallocated NumPy/array storage — no per-event
allocation, no per-packet Python objects:

* paths live in a :class:`FlatPaths` packed layout
  (``flat[start[i]:start[i+1]]`` is packet *i*'s path);
* per-packet columns (``hop_index``, ``join_time``, delivery) replace
  the historical ``(pid, hop) -> t_in`` dict, and FIFO queues are an
  intrusive linked list (one ``next`` slot per packet — a packet waits
  in at most one queue);
* the arc log fills preallocated arrays (exactly one row per hop), so
  ``record_arc_log=True`` costs bounded extra memory, not growing
  Python lists.

Two cores implement the same sample path bit for bit:

* the **windowed** FIFO core drains *runs* of events per step: every
  window ``[T, T + service)`` (``T`` the earliest pending event)
  contains at most one completion per arc, every such completion is due
  inside the window, and same-window queue joins never change which
  packet is in service — so each window's completions, forwards, log
  rows and refills are computed as a handful of vectorised array
  operations instead of per-event heap traffic;
* the **heap** core keeps strict event order but packs each event into
  a single Python int — ``(time-bits, join?, id, version)`` bit fields,
  IEEE-754 order-preserving time image — over the same flat state.  PS
  always uses it (a PS departure can cascade across arcs inside one
  service window); FIFO falls back to it when the calendar is too
  sparse for windowing to pay (``mode="auto"``).

Tie-breaking matches :mod:`repro.sim.feedforward` exactly: at equal
times, service completions fire before queue-joins, and queue-joins
fire in packet-id order.  Consequently FIFO sample paths agree with the
feed-forward engine to floating-point round-off.

:func:`simulate_paths_event_driven_batch` stacks R independent
replications into **one** calendar by offsetting replication *r*'s arc
ids by ``r * num_arcs``: the sub-systems are disjoint, their events
interleave safely, and each replication's deliveries are bit-identical
to its own sequential run — while the merged calendar is R times
denser, exactly what the windowed core wants.
"""

from __future__ import annotations

import heapq
import itertools
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.feedforward import ArcLog
from repro.sim.servers import PsServerBank
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.traffic.workload import TrafficSample

__all__ = [
    "EventSimResult",
    "FlatPaths",
    "flatten_paths",
    "simulate_paths_event_driven",
    "simulate_paths_event_driven_batch",
    "hypercube_packet_paths",
    "hypercube_dims_flat",
    "hypercube_arcs_flat",
    "butterfly_packet_paths",
]

_EMPTY_F = np.empty(0)
_EMPTY_I = np.empty(0, np.int64)

#: events-per-service-window estimate below which ``mode="auto"``
#: prefers the flat heap core: with almost-empty windows the fixed
#: per-window cost of the vectorised drains dominates.
_WINDOW_DENSITY = 16.0

# packed event keys (heap core): a single Python int per event,
#   ((time_key << 1 | is_join) << 72) | (id << 40..32 bits) | version
# so integer order == (time, completions-before-joins, id, version).
# ``id`` is the packet id for joins (joins tie-break in pid order) and
# the arc id for completions / PS checks; ``version`` is the PS
# stale-check counter (0 for FIFO).
_JOIN_BIT = 1 << 72
_ID_MASK = (1 << 40) - 1
_VER_MASK = (1 << 32) - 1

_PACK_D = struct.Struct(">d").pack


def _time_key(t: float) -> int:
    """Order-preserving uint64 image of a finite float.

    Non-negative floats map to ``bits | 2^63`` (IEEE-754 bit patterns
    are already ordered there); negatives flip to ``2^64 - 1 - bits``
    so more-negative sorts smaller.
    """
    b = int.from_bytes(_PACK_D(t), "big")
    if b < 0x8000000000000000:
        return b | 0x8000000000000000
    return 0xFFFFFFFFFFFFFFFF - b


@dataclass(frozen=True)
class FlatPaths:
    """Packed per-packet arc paths.

    ``flat[start[i]:start[i+1]]`` is packet *i*'s arc path; both arrays
    are int64 and ``start`` has one trailing entry (``start[-1] ==
    len(flat)``).  Anywhere a ``Sequence[Sequence[int]]`` of paths is
    accepted, a ``FlatPaths`` is too — and skips the flattening pass.
    """

    flat: np.ndarray
    start: np.ndarray

    @property
    def num_packets(self) -> int:
        return self.start.shape[0] - 1

    def hops(self) -> np.ndarray:
        return np.diff(self.start)

    def __len__(self) -> int:
        return self.num_packets

    def __getitem__(self, i: int) -> np.ndarray:
        return self.flat[self.start[i] : self.start[i + 1]]


def flatten_paths(
    paths: Union[FlatPaths, Sequence[Sequence[int]]]
) -> FlatPaths:
    """Pack a sequence of per-packet arc paths (no-op on FlatPaths)."""
    if isinstance(paths, FlatPaths):
        return paths
    counts = np.fromiter(
        (len(p) for p in paths), np.int64, count=len(paths)
    )
    start = np.zeros(counts.shape[0] + 1, np.int64)
    np.cumsum(counts, out=start[1:])
    flat = np.fromiter(
        itertools.chain.from_iterable(paths), np.int64, count=int(start[-1])
    )
    return FlatPaths(flat, start)


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of an event-driven run."""

    delivery: np.ndarray
    hops: np.ndarray
    arc_log: Optional[ArcLog]

    def delay_record_from(self, sample: TrafficSample):
        from repro.sim.measurement import DelayRecord

        return DelayRecord(sample.times, self.delivery, sample.horizon)


class _LogArrays:
    """Preallocated arc-log columns: exactly one row per hop."""

    __slots__ = ("pid", "arc", "t_in", "t_out", "fill")

    def __init__(self, total_hops: int) -> None:
        self.pid = np.empty(total_hops, np.int64)
        self.arc = np.empty(total_hops, np.int64)
        self.t_in = np.empty(total_hops)
        self.t_out = np.empty(total_hops)
        self.fill = 0

    def freeze(self) -> ArcLog:
        return ArcLog(self.pid, self.arc, self.t_in, self.t_out)


def _calendar_density(
    births: np.ndarray, hops: np.ndarray, service: float
) -> float:
    """Estimated events per service window (joins + completions)."""
    active = hops > 0
    bt = births[active]
    span = float(bt.max() - bt.min()) if bt.shape[0] else 0.0
    return 2.0 * float(hops.sum()) / (span / service + 1.0)


def simulate_paths_event_driven(
    num_arcs: int,
    birth_times: np.ndarray,
    paths: Union[FlatPaths, Sequence[Sequence[int]]],
    *,
    discipline: str = "fifo",
    service: float = 1.0,
    record_arc_log: bool = False,
    mode: str = "auto",
) -> EventSimResult:
    """Simulate packets following explicit arc paths.

    Parameters
    ----------
    num_arcs:
        Total number of servers (arc ids must lie in ``range(num_arcs)``).
    birth_times:
        Per-packet injection epochs (any order).
    paths:
        Per-packet sequences of arc ids (or a :class:`FlatPaths`); a
        packet with an empty path is delivered at birth.
    discipline:
        ``"fifo"`` or ``"ps"`` applied at every arc.
    mode:
        ``"auto"`` (default) picks the FIFO core by calendar density;
        ``"windows"`` / ``"heap"`` force one.  PS always runs the heap
        core (its departures cascade across arcs within a window), so
        ``mode="windows"`` with PS is a configuration error.  All modes
        produce the same sample path bit for bit.
    """
    if discipline not in ("fifo", "ps"):
        raise ConfigurationError(f"unknown discipline {discipline!r}")
    if service <= 0:
        raise ConfigurationError(f"service must be > 0, got {service}")
    if mode not in ("auto", "heap", "windows"):
        raise ConfigurationError(f"unknown event-core mode {mode!r}")
    if discipline == "ps" and mode == "windows":
        raise ConfigurationError(
            "the windowed event core is FIFO-only (PS departures cascade "
            "across arcs inside one service window); use mode='auto'"
        )
    births = np.asarray(birth_times, dtype=float)
    n = births.shape[0]
    if len(paths) != n:
        raise ConfigurationError("paths and birth_times must be parallel")
    fp = flatten_paths(paths)
    flat, start = fp.flat, fp.start
    total = int(flat.shape[0])
    if total:
        lo = int(flat.min())
        hi = int(flat.max())
        if lo < 0 or hi >= num_arcs:
            bad = lo if lo < 0 else hi
            raise SimulationError(f"arc id {bad} out of range")
    hops = np.diff(start)
    delivery = np.empty(n)
    trivial = hops == 0
    delivery[trivial] = births[trivial]
    log = _LogArrays(total) if record_arc_log else None
    if total:
        if discipline == "ps":
            _ps_heap_core(
                num_arcs, births, flat, start, hops, service, delivery, log
            )
        elif mode == "heap" or (
            mode == "auto"
            and _calendar_density(births, hops, service) < _WINDOW_DENSITY
        ):
            _fifo_heap_core(
                num_arcs, births, flat, start, hops, service, delivery, log
            )
        else:
            _fifo_window_core(
                num_arcs, births, flat, start, hops, service, delivery, log
            )
        if log is not None and log.fill != total:  # pragma: no cover
            raise SimulationError("some packets did not complete their paths")
    return EventSimResult(
        delivery, hops, log.freeze() if log is not None else None
    )


def simulate_paths_event_driven_batch(
    num_arcs: int,
    birth_times: Sequence[np.ndarray],
    paths: Sequence[Union[FlatPaths, Sequence[Sequence[int]]]],
    *,
    discipline: str = "fifo",
    service: float = 1.0,
    mode: str = "auto",
) -> List[np.ndarray]:
    """Delivery epochs of R independent replications as ONE calendar.

    Replication *r*'s arc ids are offset by ``r * num_arcs``, making
    the R sub-systems disjoint: their events interleave safely in a
    single merged run whose calendar is R times denser (which is where
    the windowed core's per-window cost amortises).  Entry *r* of the
    result is **bit-identical** to

    ``simulate_paths_event_driven(num_arcs, birth_times[r], paths[r], ...)``

    because every computed epoch is a per-arc chain of the same float
    operations — the merged calendar changes only the event interleave
    across (independent) replications, never the arithmetic within one.
    """
    reps = len(birth_times)
    if len(paths) != reps:
        raise ConfigurationError("paths and birth_times must be parallel")
    if reps == 0:
        return []
    births_list = [np.asarray(b, dtype=float) for b in birth_times]
    flats = [flatten_paths(p) for p in paths]
    for b, f in zip(births_list, flats):
        if f.num_packets != b.shape[0]:
            raise ConfigurationError("paths and birth_times must be parallel")
        if f.flat.shape[0]:
            lo = int(f.flat.min())
            hi = int(f.flat.max())
            if lo < 0 or hi >= num_arcs:
                bad = lo if lo < 0 else hi
                raise SimulationError(f"arc id {bad} out of range")
    merged_flat = np.concatenate(
        [f.flat + r * num_arcs for r, f in enumerate(flats)]
    )
    starts = []
    hop_off = 0
    for f in flats:
        starts.append(f.start[:-1] + hop_off)
        hop_off += int(f.start[-1])
    starts.append(np.array([hop_off], np.int64))
    merged = FlatPaths(merged_flat, np.concatenate(starts))
    result = simulate_paths_event_driven(
        num_arcs * reps,
        np.concatenate(births_list),
        merged,
        discipline=discipline,
        service=service,
        mode=mode,
    )
    out: List[np.ndarray] = []
    offset = 0
    for b in births_list:
        out.append(result.delivery[offset : offset + b.shape[0]].copy())
        offset += b.shape[0]
    return out


# ---------------------------------------------------------------------------
# the windowed FIFO core
# ---------------------------------------------------------------------------


def _fifo_window_core(
    num_arcs: int,
    births: np.ndarray,
    path_flat: np.ndarray,
    path_start: np.ndarray,
    hops: np.ndarray,
    service: float,
    delivery: np.ndarray,
    log: Optional[_LogArrays],
) -> None:
    """Vectorised drains of same-window event runs.

    Window invariants (``T`` = earliest pending event, window =
    ``[T, T + service)``):

    * at most one completion per arc falls in the window (the refill
      after a completion at ``t`` lands at ``t + service >= T +
      service``), and every arc busy at ``T`` has its completion due
      inside it (service started before ``T``);
    * completions are independent of same-window joins: the packet in
      service is the queue head, joins append to the tail of a
      non-empty queue;
    * each packet joins at most one queue per window (its next join is
      at its completion epoch, beyond the window end);

    so all completions pop as one gather/scatter, all joins (births +
    forwards) splice into the intrusive queues as one segmented pass,
    and refills are decided per arc from the spliced state.
    """
    record = log is not None
    hop_index = np.zeros(births.shape[0], np.int64)
    cur_join = np.zeros(births.shape[0])
    nxt = np.full(births.shape[0], -1, np.int64)
    q_head = np.full(num_arcs, -1, np.int64)
    q_tail = np.full(num_arcs, -1, np.int64)
    q_len = np.zeros(num_arcs, np.int64)
    # per-window scratch: which arcs completed this window, and when
    arc_stamp = np.zeros(num_arcs, np.int64)
    arc_done_t = np.zeros(num_arcs)

    bidx = np.flatnonzero(hops > 0)
    order = np.argsort(births[bidx], kind="stable")
    bp = bidx[order]
    bt = births[bidx][order]
    nb = bp.shape[0]
    ptr = 0
    ct = _EMPTY_F  # pending completions: times ...
    ca = _EMPTY_I  # ... and their arcs (the "carry")
    w = 0
    while ptr < nb or ct.shape[0]:
        w += 1
        tmin = bt[ptr] if ptr < nb else np.inf
        if ct.shape[0]:
            cmin = ct.min()
            if cmin < tmin:
                tmin = cmin
        wend = tmin + service
        # completions due in this window, chronological (ties by arc)
        nd = 0
        if ct.shape[0]:
            due = ct < wend
            d_t = ct[due]
            d_a = ca[due]
            ct = ct[~due]
            ca = ca[~due]
            nd = d_t.shape[0]
            if nd > 1:
                o2 = np.lexsort((d_a, d_t))
                d_t = d_t[o2]
                d_a = d_a[o2]
        # births entering this window (bt sorted)
        j = ptr + int(np.searchsorted(bt[ptr:], wend, side="left"))
        b_p = bp[ptr:j]
        b_t = bt[ptr:j]
        ptr = j
        # pop every completed head; forward or deliver
        if nd:
            len0 = q_len[d_a]
            h = q_head[d_a]
            q_head[d_a] = nxt[h]
            len1 = len0 - 1
            q_len[d_a] = len1
            if record:
                fill = log.fill
                log.pid[fill : fill + nd] = h
                log.arc[fill : fill + nd] = d_a
                log.t_in[fill : fill + nd] = cur_join[h]
                log.t_out[fill : fill + nd] = d_t
                log.fill = fill + nd
            hop_index[h] += 1
            hi = hop_index[h]
            fin = hi == hops[h]
            delivery[h[fin]] = d_t[fin]
            fwd = ~fin
            f_p = h[fwd]
            f_t = d_t[fwd]
            f_a = path_flat[path_start[f_p] + hi[fwd]]
            arc_stamp[d_a] = w
            arc_done_t[d_a] = d_t
        else:
            f_p = _EMPTY_I
            f_t = _EMPTY_F
            f_a = _EMPTY_I
        # all joins of the window (births + forwards), grouped by arc,
        # chronological within an arc (ties by pid)
        if b_p.shape[0]:
            j_p = np.concatenate((b_p, f_p))
            j_t = np.concatenate((b_t, f_t))
            j_a = np.concatenate((path_flat[path_start[b_p]], f_a))
        else:
            j_p, j_t, j_a = f_p, f_t, f_a
        nj = j_p.shape[0]
        if nj:
            o3 = np.lexsort((j_p, j_t, j_a))
            j_p = j_p[o3]
            j_t = j_t[o3]
            j_a = j_a[o3]
            cur_join[j_p] = j_t
            newseg = np.empty(nj, bool)
            newseg[0] = True
            np.not_equal(j_a[1:], j_a[:-1], out=newseg[1:])
            seg_start = np.flatnonzero(newseg)
            u_arcs = j_a[seg_start]
            seg_end = np.append(seg_start[1:], nj)
            counts = seg_end - seg_start
            # splice each arc's joins into its intrusive queue
            same = ~newseg[1:]
            nxt[j_p[:-1][same]] = j_p[1:][same]
            first = j_p[seg_start]
            last = j_p[seg_end - 1]
            len_pre = q_len[u_arcs]
            em = len_pre == 0
            q_head[u_arcs[em]] = first[em]
            ne = ~em
            nxt[q_tail[u_arcs[ne]]] = first[ne]
            q_tail[u_arcs] = last
            q_len[u_arcs] = len_pre + counts
            # arcs idle at window start (no completion, empty queue):
            # their first join starts service immediately
            no_d = (arc_stamp[u_arcs] != w) & em
            new_a0 = u_arcs[no_d]
            new_t0 = j_t[seg_start[no_d]] + service
            # per join-arc: did any join land before the arc's
            # completion epoch? (logical OR per segment)
            any_before = np.maximum.reduceat(
                (arc_stamp[j_a] == w) & (j_t < arc_done_t[j_a]), seg_start
            )
        else:
            new_a0 = _EMPTY_I
            new_t0 = _EMPTY_F
        # arcs that completed: refill from the spliced queue state
        if nd:
            if nj:
                pos = np.searchsorted(u_arcs, d_a)
                posc = np.minimum(pos, u_arcs.shape[0] - 1)
                hasj = u_arcs[posc] == d_a
                before = hasj & any_before[posc]
                # non-empty after the pop, or a join slipped in before
                # the completion epoch -> next service starts at d_t;
                # else the earliest join (>= d_t) starts it
                busy_again = (len1 > 0) | before
                refill_t = j_t[seg_start[posc]]
                new_t1 = np.where(busy_again, d_t, refill_t) + service
                valid = busy_again | hasj
            else:
                busy_again = len1 > 0
                new_t1 = d_t + service
                valid = busy_again
            new_a1 = d_a[valid]
            new_t1 = new_t1[valid]
        else:
            new_a1 = _EMPTY_I
            new_t1 = _EMPTY_F
        ct = np.concatenate((ct, new_t0, new_t1))
        ca = np.concatenate((ca, new_a0, new_a1))


# ---------------------------------------------------------------------------
# the flat heap cores (packed int64-key events, no per-event allocation)
# ---------------------------------------------------------------------------


def _fifo_heap_core(
    num_arcs: int,
    births: np.ndarray,
    path_flat: np.ndarray,
    path_start: np.ndarray,
    hops: np.ndarray,
    service: float,
    delivery: np.ndarray,
    log: Optional[_LogArrays],
) -> None:
    """Strict event order over flat state: one packed int per event."""
    n = births.shape[0]
    flat_l = path_flat.tolist()
    start_l = path_start.tolist()
    hops_l = hops.tolist()
    join_t = births.tolist()  # per-packet join epoch of the current hop
    hop_i = [0] * n
    nxt = [0] * n
    q_head = [0] * num_arcs
    q_tail = [0] * num_arcs
    q_len = [0] * num_arcs
    done_t = [0.0] * num_arcs  # the (single) outstanding completion
    record = log is not None
    heap = [
        (_time_key(join_t[p]) << 73) | _JOIN_BIT | (p << 32)
        for p in range(n)
        if hops_l[p]
    ]
    heapq.heapify(heap)
    pop = heapq.heappop
    push = heapq.heappush
    tkey = _time_key
    fill = 0
    while heap:
        key = pop(heap)
        if key & _JOIN_BIT:
            p = (key >> 32) & _ID_MASK
            t = join_t[p]
            a = flat_l[start_l[p] + hop_i[p]]
            if q_len[a]:
                nxt[q_tail[a]] = p
                q_tail[a] = p
                q_len[a] += 1
            else:
                q_head[a] = p
                q_tail[a] = p
                q_len[a] = 1
                td = t + service
                done_t[a] = td
                push(heap, (tkey(td) << 73) | (a << 32))
        else:
            a = (key >> 32) & _ID_MASK
            t = done_t[a]
            p = q_head[a]
            q_head[a] = nxt[p]
            q_len[a] -= 1
            if record:
                log.pid[fill] = p
                log.arc[fill] = a
                log.t_in[fill] = join_t[p]
                log.t_out[fill] = t
                fill += 1
            hop_i[p] += 1
            if hop_i[p] == hops_l[p]:
                delivery[p] = t
            else:
                join_t[p] = t
                push(heap, (tkey(t) << 73) | _JOIN_BIT | (p << 32))
            if q_len[a]:
                td = t + service
                done_t[a] = td
                push(heap, (tkey(td) << 73) | (a << 32))
    if record:
        log.fill = fill


def _ps_heap_core(
    num_arcs: int,
    births: np.ndarray,
    path_flat: np.ndarray,
    path_start: np.ndarray,
    hops: np.ndarray,
    service: float,
    delivery: np.ndarray,
    log: Optional[_LogArrays],
) -> None:
    """PS over flat state: versioned departure checks, packed keys.

    An arrival reschedules its arc's next departure, bumping the arc's
    version; a popped check whose version is stale is skipped.  Server
    arithmetic is :class:`repro.sim.servers.PsServerBank` — op-for-op
    the :class:`~repro.sim.servers.PSServer` update rules, so sample
    paths are bit-identical to the historical per-object engine.
    """
    n = births.shape[0]
    flat_l = path_flat.tolist()
    start_l = path_start.tolist()
    hops_l = hops.tolist()
    join_t = births.tolist()
    hop_i = [0] * n
    bank = PsServerBank(num_arcs, n)
    ver = [0] * num_arcs
    record = log is not None
    heap = [
        (_time_key(join_t[p]) << 73) | _JOIN_BIT | (p << 32)
        for p in range(n)
        if hops_l[p]
    ]
    heapq.heapify(heap)
    pop = heapq.heappop
    push = heapq.heappush
    tkey = _time_key
    fill = 0
    while heap:
        key = pop(heap)
        if key & _JOIN_BIT:
            p = (key >> 32) & _ID_MASK
            t = join_t[p]
            a = flat_l[start_l[p] + hop_i[p]]
            bank.arrive(a, t, p, service)
            v = ver[a] + 1
            ver[a] = v
            td = bank.next_departure(a)
            push(
                heap,
                (tkey(td) << 73) | (a << 32) | (v & _VER_MASK),
            )
        else:
            a = (key >> 32) & _ID_MASK
            if (key & _VER_MASK) != (ver[a] & _VER_MASK):
                continue  # stale: an arrival rescheduled this departure
            t, p = bank.pop(a)
            if record:
                log.pid[fill] = p
                log.arc[fill] = a
                log.t_in[fill] = join_t[p]
                log.t_out[fill] = t
                fill += 1
            hop_i[p] += 1
            if hop_i[p] == hops_l[p]:
                delivery[p] = t
            else:
                join_t[p] = t
                push(heap, (tkey(t) << 73) | _JOIN_BIT | (p << 32))
            v = ver[a] + 1
            ver[a] = v
            td = bank.next_departure(a)
            if td is not None:
                push(
                    heap,
                    (tkey(td) << 73) | (a << 32) | (v & _VER_MASK),
                )
    if record:
        log.fill = fill


# ---------------------------------------------------------------------------
# path construction
# ---------------------------------------------------------------------------


def hypercube_dims_flat(
    d: int, origins: np.ndarray, destinations: np.ndarray
) -> tuple:
    """Per-packet differing dimensions, increasing order, packed flat.

    Returns ``(dims_flat, start)``: packet *i* must cross dimensions
    ``dims_flat[start[i]:start[i+1]]`` (ascending — the canonical
    greedy order).  One bit-matrix ``nonzero`` instead of a per-packet
    Python loop.
    """
    o = np.asarray(origins, np.int64)
    z = np.asarray(destinations, np.int64)
    diff = o ^ z
    bits = (diff[:, None] >> np.arange(d, dtype=np.int64)) & 1
    dims = np.nonzero(bits)[1].astype(np.int64, copy=False)
    start = np.zeros(o.shape[0] + 1, np.int64)
    np.cumsum(bits.sum(axis=1), out=start[1:])
    return dims, start


def hypercube_arcs_flat(
    num_nodes: int,
    origins: np.ndarray,
    dims_flat: np.ndarray,
    start: np.ndarray,
) -> np.ndarray:
    """Arc ids along the paths crossing ``dims_flat`` in order.

    The node after each crossing is the segment origin XOR the
    crossings so far — a segmented exclusive XOR prefix, computed with
    one global ``bitwise_xor.accumulate`` re-based per segment.  Works
    for any per-packet dimension order (canonical, shuffled, two-phase
    concatenations), as long as ``start`` marks segment boundaries and
    ``origins`` holds each segment's starting node.
    """
    if dims_flat.shape[0] == 0:
        return np.zeros(0, np.int64)
    counts = np.diff(start)
    tot = np.bitwise_xor.accumulate(np.int64(1) << dims_flat)
    pre = np.empty_like(tot)
    pre[0] = 0
    pre[1:] = tot[:-1]
    idx = np.minimum(start[:-1], dims_flat.shape[0] - 1)
    excl = pre ^ np.repeat(pre[idx], counts)
    cur = np.repeat(np.asarray(origins, np.int64), counts) ^ excl
    return dims_flat * num_nodes + cur


def hypercube_packet_paths(
    cube: Hypercube,
    sample: TrafficSample,
    orders: Optional[Sequence[Sequence[int]]] = None,
) -> List[List[int]]:
    """Arc paths for each packet of a hypercube traffic sample.

    ``orders`` optionally supplies a per-packet dimension crossing
    order (each a permutation of that packet's differing dimensions);
    default is the canonical increasing order, built vectorised.
    """
    n_nodes = cube.num_nodes
    if orders is None:
        dims_flat, start = hypercube_dims_flat(
            cube.d, sample.origins, sample.destinations
        )
        arcs = hypercube_arcs_flat(
            n_nodes, sample.origins, dims_flat, start
        ).tolist()
        st = start.tolist()
        return [
            arcs[st[i] : st[i + 1]] for i in range(sample.num_packets)
        ]
    paths: List[List[int]] = []
    for i in range(sample.num_packets):
        x = int(sample.origins[i])
        z = int(sample.destinations[i])
        dims = cube.dims_to_cross(x, z)
        order = list(orders[i])
        if sorted(order) != dims:
            raise ConfigurationError(
                f"packet {i}: order {order} is not a permutation of {dims}"
            )
        arcs = []
        cur = x
        for j in order:
            arcs.append(j * n_nodes + cur)
            cur ^= 1 << j
        paths.append(arcs)
    return paths


def butterfly_packet_paths(
    bf: Butterfly, sample: TrafficSample
) -> List[List[int]]:
    """Arc paths for each packet of a butterfly traffic sample.

    Origins/destinations are row addresses; each packet follows the
    *unique* §4.1 path from ``[origin; 0]`` to ``[destination; d]`` —
    exactly one arc per level, vertical wherever the row addresses
    differ.  This is what lets the event calendar cross-validate
    :func:`repro.sim.feedforward.simulate_butterfly_greedy`: both
    engines share the tie-breaking rule (completions before joins,
    joins in packet-id order), so FIFO sample paths agree to
    floating-point round-off.
    """
    return [
        bf.path_arcs(int(sample.origins[i]), int(sample.destinations[i]))
        for i in range(sample.num_packets)
    ]
