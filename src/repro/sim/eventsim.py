"""Event-driven network simulator (FIFO and PS disciplines).

This is the classical engine: a single chronological event heap, per-arc
server state, packets following explicit precomputed arc paths.  It is
deliberately independent of the levelled structure, so it can simulate

* the canonical greedy scheme (cross-validating the fast feed-forward
  engine sample-path-for-sample-path),
* **non-levelled** schemes such as per-packet random dimension order
  (the E13 ablation), which the feed-forward engine cannot express.

Tie-breaking matches :mod:`repro.sim.feedforward` exactly: at equal
times, service completions fire before queue-joins, and queue-joins
fire in packet-id order.  Consequently FIFO sample paths agree with the
feed-forward engine to floating-point round-off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import EventCalendar
from repro.sim.feedforward import ArcLog
from repro.sim.servers import PSServer
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.traffic.workload import TrafficSample

__all__ = [
    "EventSimResult",
    "simulate_paths_event_driven",
    "hypercube_packet_paths",
    "butterfly_packet_paths",
]

# event kinds
_JOIN = 0  # packet joins an arc queue
_FIFO_DONE = 1  # FIFO service completion at an arc
_PS_CHECK = 2  # (possibly stale) PS departure check at an arc

# priorities: completions strictly before joins at equal times;
# joins ordered by packet id.
_PRIO_DONE = -1


def _prio_join(pid: int) -> int:
    return int(pid)


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of an event-driven run."""

    delivery: np.ndarray
    hops: np.ndarray
    arc_log: Optional[ArcLog]

    def delay_record_from(self, sample: TrafficSample):
        from repro.sim.measurement import DelayRecord

        return DelayRecord(sample.times, self.delivery, sample.horizon)


class _FifoArc:
    """FIFO queue state for one arc: head of `queue` is in service."""

    __slots__ = ("queue", "busy")

    def __init__(self) -> None:
        self.queue: Deque[int] = deque()
        self.busy = False


def simulate_paths_event_driven(
    num_arcs: int,
    birth_times: np.ndarray,
    paths: Sequence[Sequence[int]],
    *,
    discipline: str = "fifo",
    service: float = 1.0,
    record_arc_log: bool = False,
) -> EventSimResult:
    """Simulate packets following explicit arc paths.

    Parameters
    ----------
    num_arcs:
        Total number of servers (arc ids must lie in ``range(num_arcs)``).
    birth_times:
        Per-packet injection epochs (any order).
    paths:
        Per-packet sequences of arc ids; a packet with an empty path is
        delivered at birth.
    discipline:
        ``"fifo"`` or ``"ps"`` applied at every arc.
    """
    if discipline not in ("fifo", "ps"):
        raise ConfigurationError(f"unknown discipline {discipline!r}")
    if service <= 0:
        raise ConfigurationError(f"service must be > 0, got {service}")
    births = np.asarray(birth_times, dtype=float)
    n = births.shape[0]
    if len(paths) != n:
        raise ConfigurationError("paths and birth_times must be parallel")
    delivery = np.empty(n)
    hop_index = np.zeros(n, dtype=np.int64)
    hops = np.array([len(pth) for pth in paths], dtype=np.int64)
    cal = EventCalendar()

    log_pid: List[int] = []
    log_arc: List[int] = []
    log_in: List[float] = []
    log_out: List[float] = []

    fifo_state = (
        [_FifoArc() for _ in range(num_arcs)] if discipline == "fifo" else None
    )
    ps_state = [PSServer() for _ in range(num_arcs)] if discipline == "ps" else None
    ps_version = [0] * num_arcs
    join_time: dict[Tuple[int, int], float] = {}  # (pid, hop) -> t_in

    for pid in range(n):
        if hops[pid] == 0:
            delivery[pid] = births[pid]
        else:
            cal.schedule(births[pid], (_JOIN, pid), priority=_prio_join(pid))

    def _forward(pid: int, t: float) -> None:
        """Packet finished a hop at time t: advance or deliver."""
        hop_index[pid] += 1
        if hop_index[pid] >= hops[pid]:
            delivery[pid] = t
        else:
            cal.schedule(t, (_JOIN, pid), priority=_prio_join(pid))

    def _record(pid: int, arc: int, t_in: float, t_out: float) -> None:
        if record_arc_log:
            log_pid.append(pid)
            log_arc.append(arc)
            log_in.append(t_in)
            log_out.append(t_out)

    while len(cal):
        t, payload = cal.pop()
        kind = payload[0]
        if kind == _JOIN:
            pid = payload[1]
            arc = paths[pid][hop_index[pid]]
            if not 0 <= arc < num_arcs:
                raise SimulationError(f"arc id {arc} out of range")
            if record_arc_log:
                join_time[(pid, int(hop_index[pid]))] = t
            if discipline == "fifo":
                st = fifo_state[arc]
                st.queue.append(pid)
                if not st.busy:
                    st.busy = True
                    cal.schedule(t + service, (_FIFO_DONE, arc), priority=_PRIO_DONE)
            else:
                srv = ps_state[arc]
                srv.arrive(t, customer_id=pid, work=service)
                ps_version[arc] += 1
                nxt = srv.next_departure_time()
                cal.schedule(
                    nxt, (_PS_CHECK, arc, ps_version[arc]), priority=_PRIO_DONE
                )
        elif kind == _FIFO_DONE:
            arc = payload[1]
            st = fifo_state[arc]
            pid = st.queue.popleft()
            _record(pid, arc, join_time.pop((pid, int(hop_index[pid])), np.nan), t)
            _forward(pid, t)
            if st.queue:
                cal.schedule(t + service, (_FIFO_DONE, arc), priority=_PRIO_DONE)
            else:
                st.busy = False
        else:  # _PS_CHECK
            arc, version = payload[1], payload[2]
            if version != ps_version[arc]:
                continue  # stale: an arrival rescheduled this departure
            srv = ps_state[arc]
            dep_t, pid = srv.pop_departure()
            _record(pid, arc, join_time.pop((pid, int(hop_index[pid])), np.nan), dep_t)
            _forward(pid, dep_t)
            ps_version[arc] += 1
            nxt = srv.next_departure_time()
            if nxt is not None:
                cal.schedule(
                    nxt, (_PS_CHECK, arc, ps_version[arc]), priority=_PRIO_DONE
                )

    if np.any(hop_index != hops):  # pragma: no cover - internal invariant
        raise SimulationError("some packets did not complete their paths")
    arc_log = None
    if record_arc_log:
        arc_log = ArcLog(
            np.asarray(log_pid, dtype=np.int64),
            np.asarray(log_arc, dtype=np.int64),
            np.asarray(log_in),
            np.asarray(log_out),
        )
    return EventSimResult(delivery, hops, arc_log)


def hypercube_packet_paths(
    cube: Hypercube,
    sample: TrafficSample,
    orders: Optional[Sequence[Sequence[int]]] = None,
) -> List[List[int]]:
    """Arc paths for each packet of a hypercube traffic sample.

    ``orders`` optionally supplies a per-packet dimension crossing
    order (each a permutation of that packet's differing dimensions);
    default is the canonical increasing order.
    """
    paths: List[List[int]] = []
    n_nodes = cube.num_nodes
    for i in range(sample.num_packets):
        x = int(sample.origins[i])
        z = int(sample.destinations[i])
        dims = cube.dims_to_cross(x, z)
        if orders is not None:
            order = list(orders[i])
            if sorted(order) != dims:
                raise ConfigurationError(
                    f"packet {i}: order {order} is not a permutation of {dims}"
                )
            dims = order
        arcs = []
        cur = x
        for j in dims:
            arcs.append(j * n_nodes + cur)
            cur ^= 1 << j
        paths.append(arcs)
    return paths


def butterfly_packet_paths(
    bf: Butterfly, sample: TrafficSample
) -> List[List[int]]:
    """Arc paths for each packet of a butterfly traffic sample.

    Origins/destinations are row addresses; each packet follows the
    *unique* §4.1 path from ``[origin; 0]`` to ``[destination; d]`` —
    exactly one arc per level, vertical wherever the row addresses
    differ.  This is what lets the event calendar cross-validate
    :func:`repro.sim.feedforward.simulate_butterfly_greedy`: both
    engines share the tie-breaking rule (completions before joins,
    joins in packet-id order), so FIFO sample paths agree to
    floating-point round-off.
    """
    return [
        bf.path_arcs(int(sample.origins[i]), int(sample.destinations[i]))
        for i in range(sample.num_packets)
    ]
