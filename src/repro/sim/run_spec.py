"""Single-replication execution of a scenario spec.

This is the sim-layer entry point of the scenario runner
(:mod:`repro.runner`): given a :class:`~repro.runner.spec.ScenarioSpec`
and one seed, execute exactly one replication and return its
steady-state estimate.  The dispatch picks the engine the scheme
admits:

* **vectorized** — the levelled feed-forward engine
  (:mod:`repro.sim.feedforward`) for greedy dimension-order routing on
  both topologies and the slotted variant;
* **event** — the event-calendar engine (:mod:`repro.sim.eventsim`)
  for non-levelled schemes (per-packet random order, two-phase mixing,
  static permutation tasks) or when a spec forces ``engine="event"``
  for cross-validation.

The RNG consumption per scheme deliberately reproduces the historical
hand-rolled experiment loops, so a spec with ``seed_policy=
"sequential"`` and ``replications=1`` is bit-for-bit identical to the
pre-runner code paths (regression-tested).

Scheme modules are imported lazily: they import :mod:`repro.sim`
themselves, so importing them at module scope would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator
from repro.sim.measurement import DelayRecord

__all__ = ["ReplicationOutput", "run_spec"]


@dataclass(frozen=True)
class ReplicationOutput:
    """What one replication contributes to a pooled measurement."""

    mean_delay: float
    num_packets: int
    #: scheme-specific side metrics, averaged across replications later
    metrics: Tuple[Tuple[str, float], ...] = ()
    #: full per-packet record (only when ``keep_record=True``)
    record: Optional[DelayRecord] = None


def _steady_mean(spec, record: DelayRecord) -> float:
    return record.mean_delay(spec.warmup_fraction, spec.cooldown_fraction)


def _hypercube_law(spec):
    from repro.traffic.destinations import (
        BernoulliFlipLaw,
        PermutationTraffic,
        bit_reversal_permutation,
    )

    law = spec.option("law", "bernoulli")
    if law == "bernoulli":
        return BernoulliFlipLaw(spec.d, spec.p)
    if law == "bitrev":
        return PermutationTraffic(spec.d, bit_reversal_permutation(spec.d))
    raise ConfigurationError(f"unknown destination law {law!r}")


def _run_greedy_hypercube(spec, gen) -> ReplicationOutput:
    from repro.sim.eventsim import hypercube_packet_paths, simulate_paths_event_driven
    from repro.sim.feedforward import simulate_hypercube_greedy
    from repro.topology.hypercube import Hypercube
    from repro.traffic.workload import HypercubeWorkload

    cube = Hypercube(spec.d)
    workload = HypercubeWorkload(cube, spec.resolved_lam, _hypercube_law(spec))
    sample = workload.generate(spec.horizon, gen)
    dim_order = spec.option("dim_order")
    if spec.engine == "event":
        if dim_order is not None:
            raise ConfigurationError("dim_order is a vectorized-engine option")
        paths = hypercube_packet_paths(cube, sample)
        delivery = simulate_paths_event_driven(
            cube.num_arcs, sample.times, paths, discipline=spec.discipline
        ).delivery
    else:
        delivery = simulate_hypercube_greedy(
            cube,
            sample,
            discipline=spec.discipline,
            dim_order=None if dim_order is None else list(dim_order),
        ).delivery
    return _from_record(spec, DelayRecord(sample.times, delivery, sample.horizon))


def _run_greedy_butterfly(spec, gen) -> ReplicationOutput:
    from repro.sim.feedforward import simulate_butterfly_greedy
    from repro.topology.butterfly import Butterfly
    from repro.traffic.destinations import BernoulliFlipLaw
    from repro.traffic.workload import ButterflyWorkload

    if spec.engine == "event":
        raise ConfigurationError("the event engine routes hypercube paths only")
    if spec.option("law", "bernoulli") != "bernoulli":
        raise ConfigurationError("butterfly scenarios use the Bernoulli law")
    bf = Butterfly(spec.d)
    workload = ButterflyWorkload(bf, spec.resolved_lam, BernoulliFlipLaw(spec.d, spec.p))
    sample = workload.generate(spec.horizon, gen)
    delivery = simulate_butterfly_greedy(
        bf, sample, discipline=spec.discipline
    ).delivery
    return _from_record(spec, DelayRecord(sample.times, delivery, sample.horizon))


def _run_slotted(spec, gen) -> ReplicationOutput:
    from repro.sim.slotted import SlottedGreedyHypercube

    scheme = SlottedGreedyHypercube(
        d=spec.d,
        lam=spec.resolved_lam,
        p=spec.p,
        tau=float(spec.option("tau", 0.5)),
    )
    result = scheme.run(spec.horizon, gen)
    return _from_record(spec, result.delay_record())


def _run_random_order(spec, gen) -> ReplicationOutput:
    from repro.schemes.random_order import simulate_random_order
    from repro.topology.hypercube import Hypercube
    from repro.traffic.destinations import BernoulliFlipLaw
    from repro.traffic.workload import HypercubeWorkload

    cube = Hypercube(spec.d)
    workload = HypercubeWorkload(cube, spec.resolved_lam, BernoulliFlipLaw(spec.d, spec.p))
    sample = workload.generate(spec.horizon, gen)
    delivery = simulate_random_order(cube, sample, gen).delivery
    return _from_record(spec, DelayRecord(sample.times, delivery, sample.horizon))


def _run_twophase(spec, gen) -> ReplicationOutput:
    from repro.schemes.twophase import TwoPhaseScheme

    scheme = TwoPhaseScheme(
        d=spec.d, lam=spec.resolved_lam, law=_hypercube_law(spec)
    )
    result = scheme.run(spec.horizon, gen)
    record = result.delay_record()
    return _from_record(
        spec, record, metrics=(("mean_hops", result.mean_hops()),)
    )


def _run_pipelined_batch(spec, gen) -> ReplicationOutput:
    from repro.schemes.valiant import PipelinedBatchScheme

    scheme = PipelinedBatchScheme(d=spec.d, lam=spec.resolved_lam, p=spec.p)
    result = scheme.run(spec.horizon, gen)
    sample = result.sample
    delivered = result.delivered_mask()
    lo = spec.horizon * spec.warmup_fraction
    hi = spec.horizon * (1.0 - spec.cooldown_fraction)
    window = delivered & (sample.times >= lo) & (sample.times <= hi)
    mean = (
        float((result.delivery[window] - sample.times[window]).mean())
        if window.any()
        else float("nan")
    )
    metrics = (
        ("delivered_fraction", float(delivered.mean()) if len(delivered) else 1.0),
        ("final_backlog", float(result.final_backlog)),
        ("mean_round_duration", result.mean_round_duration()),
    )
    record = DelayRecord(
        sample.times[delivered], result.delivery[delivered], sample.horizon
    )
    return ReplicationOutput(mean, sample.num_packets, metrics, record)


def _run_deflection(spec, gen) -> ReplicationOutput:
    from repro.schemes.deflection import DeflectionRouter

    slots = int(round(spec.horizon))
    router = DeflectionRouter(d=spec.d, lam=spec.resolved_lam, p=spec.p)
    result = router.run(slots, gen)
    record = DelayRecord(
        result.birth_slot.astype(float),
        result.delivery_slot.astype(float),
        float(slots),
    )
    return ReplicationOutput(
        result.mean_delay(spec.warmup_fraction),
        int(result.birth_slot.shape[0]),
        (("mean_deflections", result.mean_deflections()),),
        record,
    )


def _run_static(spec, gen) -> ReplicationOutput:
    from repro.schemes.static_tasks import (
        route_permutation_greedy,
        route_permutation_valiant,
    )
    from repro.topology.hypercube import Hypercube
    from repro.traffic.destinations import bit_reversal_permutation

    cube = Hypercube(spec.d)
    which = spec.option("perm", "random")
    if which == "bitrev":
        perm = bit_reversal_permutation(spec.d)
    elif which == "random":
        perm = gen.permutation(cube.num_nodes)
    else:
        raise ConfigurationError(f"unknown perm {which!r} (random | bitrev)")
    if spec.scheme == "static_greedy":
        result = route_permutation_greedy(cube, perm)
    else:
        result = route_permutation_valiant(cube, perm, gen)
    n = cube.num_nodes
    record = DelayRecord(np.zeros(n), result.delivery, max(result.completion_time, 1.0))
    return ReplicationOutput(
        result.mean_delay,
        n,
        (("makespan", result.completion_time),),
        record,
    )


def _from_record(
    spec, record: DelayRecord, metrics: Tuple[Tuple[str, float], ...] = ()
) -> ReplicationOutput:
    return ReplicationOutput(
        _steady_mean(spec, record), record.num_packets, metrics, record
    )


_DISPATCH = {
    ("greedy", "hypercube"): _run_greedy_hypercube,
    ("greedy", "butterfly"): _run_greedy_butterfly,
    ("slotted", "hypercube"): _run_slotted,
    ("random_order", "hypercube"): _run_random_order,
    ("twophase", "hypercube"): _run_twophase,
    ("pipelined_batch", "hypercube"): _run_pipelined_batch,
    ("deflection", "hypercube"): _run_deflection,
    ("static_greedy", "hypercube"): _run_static,
    ("static_valiant", "hypercube"): _run_static,
}


def run_spec(spec, rng: SeedLike = None, *, keep_record: bool = False) -> ReplicationOutput:
    """Execute **one** replication of *spec* with the given seed.

    The seed fully determines the result — callers that fan
    replications out over processes get bit-identical numbers to a
    sequential run because each replication consumes only its own
    stream.
    """
    runner = _DISPATCH.get((spec.scheme, spec.network))
    if runner is None:  # pragma: no cover - spec validation precludes this
        raise ConfigurationError(
            f"no runner for scheme={spec.scheme!r} on network={spec.network!r}"
        )
    out = runner(spec, as_generator(rng))
    if not keep_record:
        out = ReplicationOutput(out.mean_delay, out.num_packets, out.metrics, None)
    return out
