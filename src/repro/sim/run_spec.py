"""Single-replication execution of a scenario spec.

This is the sim-layer entry point of the scenario runner
(:mod:`repro.runner`): given a :class:`~repro.runner.spec.ScenarioSpec`
and one seed, execute exactly one replication and return its
steady-state estimate.

Execution is a thin lookup: the spec's scheme resolves to a
:class:`~repro.plugins.api.SchemePlugin` through the plugin registry
(:mod:`repro.plugins.registry`), whose ``prepare(spec)`` hook builds
the ``Runner(gen) -> ReplicationOutput`` closure that does the work.
Which engine runs — the levelled feed-forward sweep, the fixed-point
solver or the event calendar — resolves through the **engine plugin
registry** (:func:`repro.engines.registry.resolve_engine`), driven by
the spec's ``engine`` field and the capabilities the scheme, network
and engine plugins declare.

The RNG consumption per scheme deliberately reproduces the historical
hand-rolled experiment loops, so a spec with ``seed_policy=
"sequential"`` and ``replications=1`` is bit-for-bit identical to the
pre-runner code paths (pinned by ``tests/test_golden_dispatch.py``).

The plugin registry is imported lazily: plugin modules import
:mod:`repro.sim` themselves, so importing them at module scope would
be circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.rng import SeedLike, as_generator
from repro.sim.measurement import DelayRecord

__all__ = ["ReplicationOutput", "run_spec"]


@dataclass(frozen=True)
class ReplicationOutput:
    """What one replication contributes to a pooled measurement."""

    mean_delay: float
    num_packets: int
    #: scheme-specific side metrics, averaged across replications later
    metrics: Tuple[Tuple[str, float], ...] = ()
    #: full per-packet record (only when ``keep_record=True``)
    record: Optional[DelayRecord] = None


def run_spec(spec, rng: SeedLike = None, *, keep_record: bool = False) -> ReplicationOutput:
    """Execute **one** replication of *spec* with the given seed.

    The seed fully determines the result — callers that fan
    replications out over processes get bit-identical numbers to a
    sequential run because each replication consumes only its own
    stream.
    """
    from repro.plugins.registry import get_plugin

    runner = get_plugin(spec.scheme).prepare(spec)
    out = runner(as_generator(rng))
    if not keep_record:
        out = ReplicationOutput(out.mean_delay, out.num_packets, out.metrics, None)
    return out
