"""Vectorised simulation of levelled networks (the HPC fast path).

The equivalent networks Q (hypercube, §3.1) and R (butterfly, §4.3) are
*levelled*: a packet leaving a level-``l`` server only ever joins a
server at a level ``> l`` (Property B).  Consequently the whole sample
path can be computed **level by level with no event calendar**: once
levels ``0..l-1`` are solved, the complete arrival stream of every
level-``l`` server is known, and each server is solved in one shot —
FIFO by the closed-form Lindley recursion
(:func:`repro.sim.lindley.fifo_departure_times`), PS by the exact
fair-share construction (:func:`repro.sim.servers.ps_departure_times`).

Two front ends:

* :func:`simulate_hypercube_greedy` / :func:`simulate_butterfly_greedy`
  — *packet mode*: route actual packets of a
  :class:`~repro.traffic.workload.TrafficSample` along their canonical
  paths (the physical system of the paper);
* :func:`simulate_markovian` — *network mode*: simulate a levelled
  network spec with Markovian routing decisions (networks Q/R and the
  Fig. 2 example), with optional **decision coupling** for the
  Lemma 9/10 sample-path comparisons.

FIFO ties are broken by packet id (birth order) — the deterministic
stand-in for the paper's "first arrived at the node" rule — and the
event-driven engine uses the same rule, so both engines produce the
same sample path (cross-validated in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.rng import SeedLike, as_generator
from repro.sim.measurement import DelayRecord
from repro.sim.servers import ps_departure_times
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.traffic.workload import TrafficSample

__all__ = [
    "ArcLog",
    "FeedForwardResult",
    "MarkovianResult",
    "serve_level",
    "simulate_hypercube_greedy",
    "simulate_butterfly_greedy",
    "simulate_hypercube_greedy_batch",
    "simulate_butterfly_greedy_batch",
    "simulate_hypercube_greedy_chunked",
    "simulate_butterfly_greedy_chunked",
    "simulate_markovian",
    "LevelledSpec",
]

#: routing decision code for "leave the network"
EXIT = -1


@dataclass(frozen=True)
class ArcLog:
    """Flat per-hop trace: packet ``pid`` held arc ``arc`` during
    ``[t_in, t_out)`` of queueing+service."""

    pid: np.ndarray
    arc: np.ndarray
    t_in: np.ndarray
    t_out: np.ndarray

    @property
    def num_hops(self) -> int:
        return int(self.pid.shape[0])

    def for_arc(self, arc_id: int) -> "ArcLog":
        """Sub-log of a single arc, in service (departure) order."""
        m = self.arc == arc_id
        order = np.lexsort((self.pid[m], self.t_in[m]))
        return ArcLog(
            self.pid[m][order],
            self.arc[m][order],
            self.t_in[m][order],
            self.t_out[m][order],
        )


@dataclass(frozen=True)
class FeedForwardResult:
    """Outcome of a packet-mode run."""

    delivery: np.ndarray
    hops: np.ndarray
    arc_log: Optional[ArcLog]
    sample: TrafficSample

    def delay_record(self) -> DelayRecord:
        return DelayRecord(self.sample.times, self.delivery, self.sample.horizon)

    def delays(self) -> np.ndarray:
        return self.delivery - self.sample.times


@dataclass(frozen=True)
class MarkovianResult:
    """Outcome of a network-mode (Markovian routing) run."""

    #: exit time of each external customer (indexed like the inputs)
    exit_times: np.ndarray
    #: number of servers visited per customer
    hops: np.ndarray
    arc_log: Optional[ArcLog]
    #: per-arc routing decision sequences actually used (for coupling)
    decisions: Optional[Dict[int, np.ndarray]]


def _running_max_inplace(out: np.ndarray, pos: np.ndarray) -> None:
    """Hillis–Steele doubling scan over one contiguous run, in place."""
    max_pos = int(pos.max()) if pos.shape[0] else 0
    shift = 1
    while shift <= max_pos:
        # element i's in-segment predecessor at distance `shift` is
        # i - shift iff pos[i] >= shift (segments are contiguous);
        # np.where materialises last round's values before the write
        candidate = np.where(pos[shift:] >= shift, out[:-shift], -np.inf)
        np.maximum(out[shift:], candidate, out=out[shift:])
        shift <<= 1


def _segmented_running_max(
    values: np.ndarray,
    pos: np.ndarray,
    blocks: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-segment prefix maximum of *values* (Hillis–Steele doubling).

    ``pos`` gives each element's 0-based index within its (contiguous)
    segment.  Equivalent to ``np.maximum.accumulate`` applied segment
    by segment — bit-identical, since ``max`` selects one of its
    operands — but with O(log max-segment-length) vectorised rounds
    instead of a Python loop over segments.  ``blocks`` (boundaries of
    independent row runs, as in :func:`serve_level`) keeps each
    doubling scan cache-resident on large stacked batches; the scans
    run in place on views of the output, so a block costs no copies
    beyond the single upfront one.
    """
    out = values.copy()
    n = out.shape[0]
    if n == 0:
        return out
    if blocks is not None and len(blocks) > 2:
        for lo, hi in zip(blocks[:-1], blocks[1:]):
            if hi > lo:
                _running_max_inplace(out[lo:hi], pos[lo:hi])
        return out
    _running_max_inplace(out, pos)
    return out


def serve_level(
    arcs: np.ndarray,
    times: np.ndarray,
    pids: np.ndarray,
    discipline: str = "fifo",
    service: float | np.ndarray = 1.0,
    *,
    blocks: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve every server of one level in one shot.

    Parameters are parallel arrays (one entry per packet crossing the
    level): global arc id, arrival epoch at the arc, packet id for tie
    breaking.  ``service`` is the deterministic service duration —
    either a scalar (the paper's unit packets) or an array indexed by
    *global arc id* (the heterogeneous-server generality noted after
    Prop 11).  Returns ``(departures, order)`` where ``departures`` is
    aligned with the inputs and ``order`` is the service permutation
    (packets in (arc, time, pid) order) used for routing-decision
    positions.

    ``blocks`` is the replication-batching fast path: boundaries (as in
    ``blocks[i]:blocks[i+1]``) of contiguous row runs whose arc-id
    ranges are **disjoint and increasing** — which is how the batch
    kernels lay out R stacked replications (arc ids offset by
    ``replication * num_arcs``, rows replication-major).  Each block is
    then sorted independently (cache-resident, exactly the sorts the
    R standalone runs would do) and the concatenation *is* the global
    (arc, time, pid) order, skipping one large cache-hostile lexsort.

    FIFO is solved for **all** arcs in one segmented Lindley recursion
    (``D_i = s*(i+1) + max_{j<=i}(t_j - s*j)`` per arc, the closed form
    of :func:`repro.sim.lindley.fifo_departure_times`, with the running
    maximum computed by :func:`_segmented_running_max`) — no Python
    loop over arcs, which is what makes the replication-batched engine
    path scale.  PS keeps the exact per-arc fair-share construction.
    """
    if discipline not in ("fifo", "ps"):
        raise ConfigurationError(f"unknown discipline {discipline!r}")
    n = arcs.shape[0]
    dep = np.empty(n)
    if n == 0:
        return dep, np.zeros(0, dtype=np.int64)
    per_arc = isinstance(service, np.ndarray)
    if not per_arc and service <= 0.0:
        raise ValueError(f"service time must be > 0, got {service}")
    if blocks is None:
        order = np.lexsort((pids, times, arcs))
    else:
        order = np.empty(n, dtype=np.int64)
        for lo, hi in zip(blocks[:-1], blocks[1:]):
            order[lo:hi] = lo + np.lexsort(
                (pids[lo:hi], times[lo:hi], arcs[lo:hi])
            )
    a_s = arcs[order]
    t_s = times[order]
    starts = np.flatnonzero(np.r_[True, a_s[1:] != a_s[:-1]])
    bounds = np.r_[starts, n]
    dep_s = np.empty(n)
    if discipline == "fifo":
        counts = np.diff(bounds)
        pos = np.arange(n, dtype=np.int64) - np.repeat(starts, counts)
        idx = pos.astype(float)
        s_rows = service[a_s] if per_arc else float(service)
        run = _segmented_running_max(t_s - s_rows * idx, pos, blocks)
        dep_s = s_rows * (idx + 1.0) + run
    else:
        for i in range(starts.shape[0]):
            lo, hi = bounds[i], bounds[i + 1]
            s = float(service[int(a_s[lo])]) if per_arc else float(service)
            dep_s[lo:hi] = ps_departure_times(t_s[lo:hi], work=s)
    dep[order] = dep_s
    return dep, order


# ---------------------------------------------------------------------------
# packet mode
# ---------------------------------------------------------------------------


def simulate_hypercube_greedy(
    cube: Hypercube,
    sample: TrafficSample,
    *,
    dim_order: Optional[Sequence[int]] = None,
    discipline: str = "fifo",
    record_arc_log: bool = False,
) -> FeedForwardResult:
    """Route a traffic sample through the d-cube under greedy routing.

    ``dim_order`` is the *global* dimension crossing order shared by all
    packets (default: increasing — the paper's canonical scheme; any
    fixed permutation keeps the network levelled, enabling the E13
    ablation).  ``discipline="ps"`` replaces every arc's FIFO server
    with Processor Sharing (the network Q̃ of §3.3, but fed by physical
    packet paths).
    """
    d, n_nodes = cube.d, cube.num_nodes
    if dim_order is None:
        dim_order = range(d)
    else:
        if sorted(dim_order) != list(range(d)):
            raise ConfigurationError(
                f"dim_order must be a permutation of range({d}), got {dim_order!r}"
            )
    origins = np.asarray(sample.origins, dtype=np.int64)
    dests = np.asarray(sample.destinations, dtype=np.int64)
    n = origins.shape[0]
    diff = origins ^ dests
    x = origins.copy()
    cur = np.asarray(sample.times, dtype=float).copy()
    pids = np.arange(n, dtype=np.int64)
    logs: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    for dim in dim_order:
        m = ((diff >> dim) & 1).astype(bool)
        if not m.any():
            continue
        tails = x[m]
        arc_ids = dim * n_nodes + tails
        t_in = cur[m]
        dep, _ = serve_level(arc_ids, t_in, pids[m], discipline)
        if record_arc_log:
            logs.append((pids[m], arc_ids, t_in, dep))
        cur[m] = dep
        x[m] = tails ^ (1 << dim)
    if np.any(x != dests):  # pragma: no cover - internal invariant
        raise SimulationError("packets did not reach their destinations")
    hops = np.bitwise_count(diff).astype(np.int64)
    arc_log = _merge_logs(logs) if record_arc_log else None
    return FeedForwardResult(cur, hops, arc_log, sample)


def simulate_butterfly_greedy(
    bf: Butterfly,
    sample: TrafficSample,
    *,
    discipline: str = "fifo",
    record_arc_log: bool = False,
) -> FeedForwardResult:
    """Route a traffic sample through the butterfly (unique paths, §4).

    Origins/destinations of the sample are row addresses; every packet
    crosses exactly one arc per level (d hops total).
    """
    d, rows_per_level = bf.d, bf.rows
    origins = np.asarray(sample.origins, dtype=np.int64)
    dests = np.asarray(sample.destinations, dtype=np.int64)
    n = origins.shape[0]
    diff = origins ^ dests
    rows = origins.copy()
    cur = np.asarray(sample.times, dtype=float).copy()
    pids = np.arange(n, dtype=np.int64)
    logs: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    for level in range(d):
        kind = (diff >> level) & 1
        arc_ids = level * 2 * rows_per_level + 2 * rows + kind
        dep, _ = serve_level(arc_ids, cur, pids, discipline)
        if record_arc_log:
            logs.append((pids.copy(), arc_ids, cur.copy(), dep))
        cur = dep
        rows = rows ^ (kind << level)
    if n and np.any(rows != dests):  # pragma: no cover - internal invariant
        raise SimulationError("packets did not reach their destination rows")
    hops = np.full(n, d, dtype=np.int64)
    arc_log = _merge_logs(logs) if record_arc_log else None
    return FeedForwardResult(cur, hops, arc_log, sample)


# ---------------------------------------------------------------------------
# replication-batched packet mode
# ---------------------------------------------------------------------------
#
# R independent replications of the same spec are R disjoint copies of
# the network: offsetting every arc id by ``replication * num_arcs``
# makes the stacked system one big levelled network whose per-arc
# arrival sequences are exactly the per-replication ones.  The d-level
# loop then runs once for the whole batch — one lexsort and one
# segmented Lindley/PS solve per level instead of R — while each
# replication's delivery sub-array stays bit-identical to its
# standalone run (pinned by tests/test_golden_dispatch.py).


def _stack_samples(
    samples: Sequence[TrafficSample],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate samples into parallel arrays plus a replication id
    per packet and the per-replication packet counts."""
    counts = np.array([s.num_packets for s in samples], dtype=np.int64)
    times = np.concatenate([np.asarray(s.times, dtype=float) for s in samples])
    origins = np.concatenate(
        [np.asarray(s.origins, dtype=np.int64) for s in samples]
    )
    dests = np.concatenate(
        [np.asarray(s.destinations, dtype=np.int64) for s in samples]
    )
    rep = np.repeat(np.arange(len(samples), dtype=np.int64), counts)
    return times, origins, dests, rep, counts


def _split_delivery(
    delivery: np.ndarray, counts: np.ndarray
) -> List[np.ndarray]:
    return np.split(delivery, np.cumsum(counts)[:-1])


def _rep_blocks(rep_rows: np.ndarray, reps: int) -> np.ndarray:
    """Block boundaries of the (sorted) per-row replication ids — the
    ``serve_level`` fast path for replication-major stacked rows."""
    return np.searchsorted(rep_rows, np.arange(reps + 1))


def simulate_hypercube_greedy_batch(
    cube: Hypercube,
    samples: Sequence[TrafficSample],
    *,
    dim_order: Optional[Sequence[int]] = None,
    discipline: str = "fifo",
) -> List[np.ndarray]:
    """Delivery epochs of R independent samples, one per-level sweep.

    Entry *r* of the result is bit-identical to
    ``simulate_hypercube_greedy(cube, samples[r], ...).delivery``: the
    replications share the vectorised level loop but never a server.

    Unlike the single-sample sweep, the batch keeps **no evolving
    per-packet state**: a packet's position entering level ``dim`` is
    ``origin XOR (diff & crossed-so-far)`` and its hop index is
    ``popcount(diff & crossed-so-far)``, both stateless bit algebra —
    so each level touches only its own rows (gather arrival, serve,
    scatter departure into the next hop's slot) instead of re-masking
    R stacked replications' worth of arrays.
    """
    d, n_nodes = cube.d, cube.num_nodes
    if dim_order is None:
        dim_order = range(d)
    elif sorted(dim_order) != list(range(d)):
        raise ConfigurationError(
            f"dim_order must be a permutation of range({d}), got {dim_order!r}"
        )
    times, origins, dests, rep, counts = _stack_samples(samples)
    arc_offset = rep * np.int64(cube.num_arcs)
    diff = origins ^ dests
    hops = np.bitwise_count(diff).astype(np.int64)
    total = int(hops.sum())
    delivery = times.copy()  # zero-hop packets are delivered at birth
    if total == 0:
        return _split_delivery(delivery, counts)
    #: pid-major per-hop arrival epochs; slot ``first[p] + k`` is hop k
    first = np.r_[0, np.cumsum(hops)[:-1]]
    arrivals = np.empty(total)
    routed = hops > 0
    arrivals[first[routed]] = times[routed]
    crossed = np.int64(0)
    for dim in dim_order:
        rows = np.flatnonzero((diff >> dim) & 1)
        below = crossed
        crossed |= np.int64(1) << dim
        if rows.size == 0:
            continue
        pdiff = diff[rows]
        already = pdiff & below
        k = np.bitwise_count(already).astype(np.int64)
        slots = first[rows] + k
        arc_ids = dim * n_nodes + (origins[rows] ^ already) + arc_offset[rows]
        dep, _ = serve_level(
            arc_ids,
            arrivals[slots],
            rows,
            discipline,
            blocks=_rep_blocks(rep[rows], len(samples)),
        )
        last = k + 1 == hops[rows]
        delivery[rows[last]] = dep[last]
        cont = ~last
        arrivals[slots[cont] + 1] = dep[cont]
    return _split_delivery(delivery, counts)


def simulate_butterfly_greedy_batch(
    bf: Butterfly,
    samples: Sequence[TrafficSample],
    *,
    discipline: str = "fifo",
) -> List[np.ndarray]:
    """Delivery epochs of R independent samples, one per-level sweep
    (the butterfly analogue of :func:`simulate_hypercube_greedy_batch`)."""
    d, rows_per_level = bf.d, bf.rows
    times, origins, dests, rep, counts = _stack_samples(samples)
    arc_offset = rep * np.int64(bf.num_arcs)
    diff = origins ^ dests
    rows = origins.copy()
    cur = times.copy()
    n = times.shape[0]
    pids = np.arange(n, dtype=np.int64)
    blocks = np.r_[0, np.cumsum(counts)]
    for level in range(d):
        kind = (diff >> level) & 1
        arc_ids = level * 2 * rows_per_level + 2 * rows + kind + arc_offset
        dep, _ = serve_level(arc_ids, cur, pids, discipline, blocks=blocks)
        cur = dep
        rows = rows ^ (kind << level)
    if n and np.any(rows != dests):  # pragma: no cover - internal invariant
        raise SimulationError("packets did not reach their destination rows")
    return _split_delivery(cur, counts)


# ---------------------------------------------------------------------------
# chunked-horizon packet mode (streaming, bounded memory)
# ---------------------------------------------------------------------------
#
# The one-shot sweeps materialise every packet's every hop at once, so
# peak memory grows linearly with the horizon.  The chunked mode
# processes packets in birth-order chunks instead: a chunk's watermark
# is its last birth epoch, rows whose arrival at a level exceeds the
# watermark are parked for a later chunk, and each arc carries its
# queue state between chunks.  Because every future packet is born at
# or after the watermark (birth times are sorted), each arc's arrival
# stream up to the watermark is complete by the time its level is
# served, so the carried state continues the one-shot construction
# exactly.  Peak memory is O(chunk + in-flight rows + num_arcs) —
# bounded by the chunk knob and the topology, independent of the
# horizon.
#
# FIFO carries the Lindley prefix state (arrival count + running max)
# per arc, dense: the whole queue ahead of every arrival is determined
# at admission, so departures are emitted immediately — even past the
# watermark — and because ``max`` selects one of its operands exactly,
# the carried closed form reproduces every departure **bit for bit**
# (validated against the one-shot path in the tests).
#
# PS departures depend on arrivals beyond the chunk, so the carry is
# the set of in-service customers per arc instead: each busy arc keeps
# its live fair-share server (:class:`~repro.sim.servers.PSServer` —
# the in-service arrival epochs and residual work, encoded as fair-
# share thresholds) across chunk boundaries, departures are emitted
# only once the watermark passes them (no later arrival can change
# them: ties at a departure epoch are processed after the departure),
# and the final chunk's infinite watermark closes every busy period.
# The carried server replays the exact event order of the one-shot
# :func:`~repro.sim.servers.ps_departure_times` construction, so the
# sample path matches the one-shot sweep bit for bit as well (the
# tests pin <= 1e-9, the engine contract).
#
# To keep the per-chunk bookkeeping O(d) instead of O(d^2), rows carry
# their *level-space* crossing mask (bit ``di`` set iff position ``di``
# of the global crossing order is still to be crossed): the entry
# level and each next level are then count-trailing-zeros bit algebra
# instead of a scan over the remaining dimensions.


class _ArcCarry:
    """Dense per-arc FIFO Lindley state carried across horizon chunks.

    ``counts[a]`` is how many arrivals arc *a* has served so far and
    ``run[a]`` the running maximum of ``t_j - s*j`` over them — the
    prefix state of :func:`serve_level`'s closed form.  Memory is
    O(num_arcs): topology-bounded, independent of the horizon.
    """

    __slots__ = ("counts", "run")

    def __init__(self, num_arcs: int) -> None:
        self.counts = np.zeros(num_arcs, dtype=np.int64)
        self.run = np.full(num_arcs, -np.inf)


#: grow-on-demand scratch aranges shared by every carry-kernel call in
#: the process (workers are processes, so there is no sharing hazard)
_ARANGE_F = np.empty(0)
_ARANGE_I = np.empty(0, dtype=np.int64)


def _scratch_aranges(n: int) -> Tuple[np.ndarray, np.ndarray]:
    global _ARANGE_F, _ARANGE_I
    if _ARANGE_F.shape[0] < n:
        size = max(n, 2 * _ARANGE_F.shape[0])
        _ARANGE_F = np.arange(size, dtype=float)
        _ARANGE_I = np.arange(size, dtype=np.int64)
    return _ARANGE_F[:n], _ARANGE_I[:n]


def _arc_time_pid_order(
    arcs: np.ndarray, times: np.ndarray, pids: np.ndarray
) -> np.ndarray:
    """Permutation putting rows in (arc, time, pid) service order.

    Within one serve call the pids are distinct, so that order is a
    *unique* permutation — any algorithm producing it matches
    ``np.lexsort((pids, times, arcs))`` exactly.  This one needs two
    plain argsorts instead of three stable passes: rank the arrival
    epochs densely (equal floats share a rank, so exact time ties
    still fall through to the pid), then argsort a single packed
    ``(arc, rank, pid)`` int64 key.  Plain argsorts may be unstable,
    which is safe here precisely because ranks collapse equal times
    and the packed keys are unique — and they hit NumPy's vectorised
    quicksort, which the stable kinds cannot use.

    Falls back to ``np.lexsort`` when the packed key would overflow 63
    bits or any time is negative (the int64 view of an IEEE double is
    order-preserving only for non-negative values, ``-0.0`` included
    in the guard since its sign bit is set).
    """
    n = arcs.shape[0]
    t = times if times.flags.c_contiguous else np.ascontiguousarray(times)
    o_t = np.argsort(t.view(np.int64))
    t_s = t.view(np.int64)[o_t]
    if t_s[0] < 0:
        return np.lexsort((pids, times, arcs))
    r_sorted = np.empty(n, dtype=np.int64)
    r_sorted[0] = 0
    np.cumsum(t_s[1:] != t_s[:-1], out=r_sorted[1:])
    bits_p = int(pids.max()).bit_length()
    bits_r = int(r_sorted[-1]).bit_length()
    bits_a = int(arcs.max()).bit_length()
    if bits_a + bits_r + bits_p > 63:
        return np.lexsort((pids, times, arcs))
    rank = np.empty(n, dtype=np.int64)
    rank[o_t] = r_sorted
    key = (arcs << np.int64(bits_r + bits_p)) | (rank << np.int64(bits_p))
    key |= pids
    return np.argsort(key)


def _serve_fifo_carry(
    arcs: np.ndarray,
    times: np.ndarray,
    pids: np.ndarray,
    service: float,
    carry: _ArcCarry,
) -> np.ndarray:
    """One chunk's share of a level's FIFO arrivals, with carry-over.

    Bit-identical continuation of :func:`serve_level`'s closed form:
    each arc's rows take global positions ``carry.counts[a]...`` and
    the running maximum seeds from the carried one.  Chunks split an
    arc's arrival sequence at a boundary that respects the (time, pid)
    service order, and ``max`` selects one of its operands exactly, so
    no departure epoch moves by a single bit.  The carried maximum is
    folded into each segment's head before the prefix scan — the scan
    then propagates it to every element, the same multiset maximum the
    historical post-scan ``np.maximum`` computed.
    """
    n = arcs.shape[0]
    dep = np.empty(n)
    if n == 0:
        return dep
    order = _arc_time_pid_order(arcs, times, pids)
    a_s = arcs[order]
    t_s = times[order]
    head = np.empty(n, dtype=bool)
    head[0] = True
    np.not_equal(a_s[1:], a_s[:-1], out=head[1:])
    starts = np.flatnonzero(head)
    counts = np.empty(starts.shape[0], dtype=np.int64)
    np.subtract(starts[1:], starts[:-1], out=counts[:-1])
    counts[-1] = n - starts[-1]
    uniq = a_s[starts]
    s = float(service)
    base = carry.counts[uniq]
    arange_f, arange_i = _scratch_aranges(n)
    pos = arange_i - np.repeat(starts, counts)
    # i + float(base - start) == (i - start) + base exactly: integers
    # below 2**52 stay exact through the cast and the add
    idx = arange_f + np.repeat((base - starts).astype(float), counts)
    vals = t_s - s * idx
    vals[starts] = np.maximum(vals[starts], carry.run[uniq])
    run = _segmented_running_max(vals, pos)
    dep[order] = s * (idx + 1.0) + run
    carry.counts[uniq] = base + counts
    ends = starts + counts - 1
    carry.run[uniq] = run[ends]
    return dep


class _PsLevelCarry:
    """Sparse per-arc PS state for one level, carried across chunks.

    ``servers`` maps an arc id to its live fair-share server — the
    in-service customers' arrival state encoded as departure thresholds
    (:class:`~repro.sim.servers.PSServer`); ``active`` is the subset of
    arcs with customers still in service, which must be drained up to
    every chunk's watermark even when the chunk brings them no new
    arrivals.  Idle servers are kept (not reset): their fair-share
    integral is part of the one-shot arithmetic, so keeping them makes
    the carried construction replay :func:`ps_departure_times` exactly.
    Memory is O(busy arcs + in-service customers) — topology-bounded.
    """

    __slots__ = ("servers", "active")

    def __init__(self) -> None:
        self.servers: Dict[int, "PSServer"] = {}
        self.active: set = set()

    @property
    def busy(self) -> bool:
        return bool(self.active)

    def serve(
        self,
        arcs: np.ndarray,
        times: np.ndarray,
        pids: np.ndarray,
        watermark: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Feed one chunk's share of a level's PS arrivals and return
        every departure due by the *watermark* as ``(pids, epochs)``.

        Replays the exact event order of the one-shot construction:
        before each arrival, every departure due at or before it pops
        (departures win ties — an arrival coinciding with a departure
        epoch renders the departing customer zero service), and at the
        chunk boundary every departure at or before the watermark pops.
        Later arrivals are all past the watermark, so the emitted
        epochs are final; customers still in service stay carried.
        """
        from repro.sim.servers import PSServer

        dep_pids: List[int] = []
        dep_times: List[float] = []
        servers = self.servers
        if arcs.shape[0]:
            order = np.lexsort((pids, times, arcs))
            a_s = arcs[order]
            t_s = times[order]
            p_s = pids[order]
            starts = np.flatnonzero(np.r_[True, a_s[1:] != a_s[:-1]])
            bounds = np.r_[starts, a_s.shape[0]]
            for i in range(starts.shape[0]):
                lo, hi = int(bounds[i]), int(bounds[i + 1])
                arc = int(a_s[lo])
                server = servers.get(arc)
                if server is None:
                    server = servers[arc] = PSServer()
                for j in range(lo, hi):
                    t = float(t_s[j])
                    nxt = server.next_departure_time()
                    while nxt is not None and nxt <= t:
                        dt, cid = server.pop_departure()
                        dep_pids.append(cid)
                        dep_times.append(dt)
                        nxt = server.next_departure_time()
                    server.arrive(t, customer_id=int(p_s[j]))
                self.active.add(arc)
        for arc in sorted(self.active):
            server = servers[arc]
            nxt = server.next_departure_time()
            while nxt is not None and nxt <= watermark:
                dt, cid = server.pop_departure()
                dep_pids.append(cid)
                dep_times.append(dt)
                nxt = server.next_departure_time()
            if server.num_active == 0:
                self.active.discard(arc)
        return (
            np.asarray(dep_pids, dtype=np.int64),
            np.asarray(dep_times, dtype=float),
        )


def _require_chunkable(discipline: str, chunk_packets: int) -> int:
    if discipline not in ("fifo", "ps"):
        raise ConfigurationError(f"unknown discipline {discipline!r}")
    chunk = int(chunk_packets)
    if chunk < 1:
        raise ConfigurationError(
            f"chunk_packets must be >= 1, got {chunk_packets!r}"
        )
    return chunk


def _level_space_diff(
    diff_vals: np.ndarray, dim_order: Optional[Tuple[int, ...]]
) -> np.ndarray:
    """Remap dim-space XOR masks into *level space*: bit ``di`` of the
    result is bit ``dim_order[di]`` of the input (identity order passes
    through).  In level space "next level to cross" is count-trailing-
    zeros, which keeps the chunk bookkeeping O(d) per packet."""
    if dim_order is None:
        return diff_vals
    out = np.zeros_like(diff_vals)
    for di, dim in enumerate(dim_order):
        out |= ((diff_vals >> np.int64(dim)) & 1) << np.int64(di)
    return out


def _ctz(values: np.ndarray) -> np.ndarray:
    """Count trailing zeros of strictly positive int64 values."""
    return np.bitwise_count((values & -values) - 1).astype(np.int64)


def _bucket_by_level(
    level_in: List[List[Tuple[np.ndarray, np.ndarray, np.ndarray]]],
    levels: np.ndarray,
    lo_level: int,
    pids: np.ndarray,
    times: np.ndarray,
    ldiff: np.ndarray,
) -> None:
    """Append ``(pids, times, ldiff)`` rows to their per-level input
    buckets in one stable sort + split (no per-dimension scan)."""
    order = np.argsort(levels, kind="stable")
    counts = np.bincount(levels - lo_level)
    bounds = np.r_[0, np.cumsum(counts)]
    p_s, t_s, l_s = pids[order], times[order], ldiff[order]
    for k in np.flatnonzero(counts):
        lo, hi = bounds[k], bounds[k + 1]
        level_in[lo_level + k].append((p_s[lo:hi], t_s[lo:hi], l_s[lo:hi]))


def simulate_hypercube_greedy_chunked(
    cube: Hypercube,
    sample: TrafficSample,
    *,
    chunk_packets: int,
    dim_order: Optional[Sequence[int]] = None,
    discipline: str = "fifo",
) -> np.ndarray:
    """Delivery epochs of :func:`simulate_hypercube_greedy`, computed
    in birth-ordered chunks of at most ``chunk_packets`` packets.

    Matches the one-shot sweep exactly — FIFO bit for bit via the dense
    Lindley prefix carry, PS by replaying the fair-share construction
    through carried per-arc in-service state — with peak memory bounded
    by the chunk size and the topology instead of the horizon.
    """
    chunk = _require_chunkable(discipline, chunk_packets)
    d, n_nodes = cube.d, cube.num_nodes
    if dim_order is None:
        order_map: Optional[Tuple[int, ...]] = None
    elif sorted(dim_order) != list(range(d)):
        raise ConfigurationError(
            f"dim_order must be a permutation of range({d}), got {dim_order!r}"
        )
    else:
        dim_order = tuple(int(x) for x in dim_order)
        order_map = None if dim_order == tuple(range(d)) else dim_order
    dims = tuple(range(d)) if order_map is None else order_map
    origins = np.asarray(sample.origins, dtype=np.int64)
    dests = np.asarray(sample.destinations, dtype=np.int64)
    times = np.asarray(sample.times, dtype=float)
    n = origins.shape[0]
    diff = origins ^ dests
    delivery = times.copy()  # zero-hop packets are delivered at birth
    if n == 0 or not diff.any():
        return delivery
    #: bits (dim space) crossed before position di of the global order
    cum_mask = [np.int64(0)] * (d + 1)
    for di, dim in enumerate(dims):
        cum_mask[di + 1] = np.int64(int(cum_mask[di]) | (1 << dim))
    fifo = discipline == "fifo"
    carry = _ArcCarry(cube.num_arcs) if fifo else None
    ps_carry = None if fifo else [_PsLevelCarry() for _ in range(d)]
    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0)
    #: per level: rows parked by an earlier chunk because their arrival
    #: epoch exceeded its watermark — (pids, arrivals, level diffs)
    parked: List[List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = [
        [] for _ in range(d)
    ]
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        watermark = np.inf if hi >= n else float(times[hi - 1])
        level_in, parked = parked, [[] for _ in range(d)]
        routed = np.flatnonzero(diff[lo:hi])
        if routed.size:
            fresh = routed + lo
            ld = _level_space_diff(diff[fresh], order_map)
            # a packet enters at the first position it must cross
            _bucket_by_level(level_in, _ctz(ld), 0, fresh, times[fresh], ld)
        for di in range(d):
            if level_in[di]:
                pids_l = np.concatenate([c[0] for c in level_in[di]])
                t_l = np.concatenate([c[1] for c in level_in[di]])
                ld_l = np.concatenate([c[2] for c in level_in[di]])
                ready = t_l <= watermark
                if not ready.all():
                    wait = ~ready
                    parked[di].append((pids_l[wait], t_l[wait], ld_l[wait]))
                    pids_l = pids_l[ready]
                    t_l = t_l[ready]
                    ld_l = ld_l[ready]
            elif fifo or not ps_carry[di].busy:
                continue
            else:
                pids_l, t_l, ld_l = empty_i, empty_f, empty_i
            if fifo and pids_l.size == 0:
                continue
            already = diff[pids_l] & cum_mask[di]
            arc_ids = np.int64(dims[di]) * n_nodes + (origins[pids_l] ^ already)
            if fifo:
                out_pids = pids_l
                out_dep = _serve_fifo_carry(arc_ids, t_l, pids_l, 1.0, carry)
                out_ld = ld_l
            else:
                # a busy arc drains up to the watermark even when this
                # chunk brings it no new arrivals
                out_pids, out_dep = ps_carry[di].serve(
                    arc_ids, t_l, pids_l, watermark
                )
                if out_pids.size == 0:
                    continue
                out_ld = _level_space_diff(diff[out_pids], order_map)
            rem = out_ld >> np.int64(di + 1)
            done = rem == 0
            delivery[out_pids[done]] = out_dep[done]
            cont = np.flatnonzero(~done)
            if cont.size == 0:
                continue
            nxt = di + 1 + _ctz(rem[cont])
            _bucket_by_level(
                level_in, nxt, di + 1,
                out_pids[cont], out_dep[cont], out_ld[cont],
            )
    return delivery


def simulate_butterfly_greedy_chunked(
    bf: Butterfly,
    sample: TrafficSample,
    *,
    chunk_packets: int,
    discipline: str = "fifo",
) -> np.ndarray:
    """Delivery epochs of :func:`simulate_butterfly_greedy`, computed
    in birth-ordered chunks (the butterfly analogue of
    :func:`simulate_hypercube_greedy_chunked`)."""
    chunk = _require_chunkable(discipline, chunk_packets)
    d, rows_per_level = bf.d, bf.rows
    origins = np.asarray(sample.origins, dtype=np.int64)
    dests = np.asarray(sample.destinations, dtype=np.int64)
    times = np.asarray(sample.times, dtype=float)
    n = origins.shape[0]
    diff = origins ^ dests
    delivery = times.copy()
    if n == 0 or d == 0:
        return delivery
    fifo = discipline == "fifo"
    carry = _ArcCarry(bf.num_arcs) if fifo else None
    ps_carry = None if fifo else [_PsLevelCarry() for _ in range(d)]
    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0)
    parked: List[List[Tuple[np.ndarray, np.ndarray]]] = [[] for _ in range(d)]
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        watermark = np.inf if hi >= n else float(times[hi - 1])
        level_in, parked = parked, [[] for _ in range(d)]
        fresh = np.arange(lo, hi, dtype=np.int64)
        level_in[0].append((fresh, times[lo:hi]))
        for level in range(d):
            if level_in[level]:
                pids_l = np.concatenate([c[0] for c in level_in[level]])
                t_l = np.concatenate([c[1] for c in level_in[level]])
                ready = t_l <= watermark
                if not ready.all():
                    wait = ~ready
                    parked[level].append((pids_l[wait], t_l[wait]))
                    pids_l = pids_l[ready]
                    t_l = t_l[ready]
            elif fifo or not ps_carry[level].busy:
                continue
            else:
                pids_l, t_l = empty_i, empty_f
            if fifo and pids_l.size == 0:
                continue
            pdiff = diff[pids_l]
            # row address entering `level`: bits below it already applied
            rows_addr = origins[pids_l] ^ (pdiff & np.int64((1 << level) - 1))
            kind = (pdiff >> np.int64(level)) & 1
            arc_ids = level * 2 * rows_per_level + 2 * rows_addr + kind
            if fifo:
                out_pids = pids_l
                out_dep = _serve_fifo_carry(arc_ids, t_l, pids_l, 1.0, carry)
            else:
                out_pids, out_dep = ps_carry[level].serve(
                    arc_ids, t_l, pids_l, watermark
                )
                if out_pids.size == 0:
                    continue
            if level + 1 == d:
                delivery[out_pids] = out_dep
            else:
                level_in[level + 1].append((out_pids, out_dep))
    return delivery


def _merge_logs(
    logs: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
) -> ArcLog:
    if not logs:
        empty_i = np.zeros(0, dtype=np.int64)
        return ArcLog(empty_i, empty_i.copy(), np.zeros(0), np.zeros(0))
    return ArcLog(
        np.concatenate([l[0] for l in logs]),
        np.concatenate([l[1] for l in logs]),
        np.concatenate([l[2] for l in logs]),
        np.concatenate([l[3] for l in logs]),
    )


# ---------------------------------------------------------------------------
# network (Markovian routing) mode
# ---------------------------------------------------------------------------


class LevelledSpec:
    """Interface for levelled networks with Markovian routing.

    Concrete specs (network Q, network R, the Fig. 2 example) provide
    the level structure and per-arc routing decision sampling; see
    :mod:`repro.core.qnetwork`.
    """

    num_arcs: int
    num_levels: int

    def arc_level(self, arc_id: int) -> int:
        raise NotImplementedError

    def draw_decisions(
        self, arc_id: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample *count* routing decisions for this arc.

        Each entry is the next arc id (strictly higher level) or
        :data:`EXIT`.
        """
        raise NotImplementedError


def simulate_markovian(
    spec: LevelledSpec,
    ext_times: np.ndarray,
    ext_arcs: np.ndarray,
    *,
    discipline: str = "fifo",
    rng: SeedLike = None,
    decisions: Optional[Dict[int, np.ndarray]] = None,
    record_decisions: bool = False,
    record_arc_log: bool = False,
    service_times: Optional[np.ndarray] = None,
) -> MarkovianResult:
    """Simulate a levelled network under Markovian routing.

    ``ext_times``/``ext_arcs`` give the external arrival epoch and entry
    arc of each customer.  If *decisions* is supplied, the k-th customer
    served by each arc takes that arc's k-th recorded decision — the
    exact coupling used by Lemmas 9/10 to compare FIFO and PS networks
    on one sample path.  Otherwise decisions are drawn from per-arc
    spawned RNG streams (and returned when *record_decisions*), so a
    FIFO run and a PS run with the same seed are automatically coupled.

    ``service_times`` optionally gives each arc its own deterministic
    service duration (shape ``(num_arcs,)``) — the "possibly with
    different service times" generality the paper notes after Prop 11;
    default is the unit service of the main model.
    """
    ext_times = np.asarray(ext_times, dtype=float)
    ext_arcs = np.asarray(ext_arcs, dtype=np.int64)
    if ext_times.shape != ext_arcs.shape:
        raise ConfigurationError("ext_times and ext_arcs must be parallel")
    if service_times is not None:
        service_times = np.asarray(service_times, dtype=float)
        if service_times.shape != (spec.num_arcs,):
            raise ConfigurationError(
                f"service_times must have shape ({spec.num_arcs},), "
                f"got {service_times.shape}"
            )
        if np.any(service_times <= 0):
            raise ConfigurationError("service times must be positive")
    n = ext_times.shape[0]
    pids = np.arange(n, dtype=np.int64)
    gen = as_generator(rng)
    levels = spec.num_levels

    # Per-level in-buckets: lists of (arcs, times, pids) chunks.
    buckets: List[List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = [
        [] for _ in range(levels)
    ]
    if n:
        ext_levels = np.array([spec.arc_level(int(a)) for a in ext_arcs])
        for lvl in range(levels):
            m = ext_levels == lvl
            if m.any():
                buckets[lvl].append((ext_arcs[m], ext_times[m], pids[m]))

    used_decisions: Dict[int, np.ndarray] = {}
    exit_times = np.full(n, np.nan)
    hops = np.zeros(n, dtype=np.int64)
    logs: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []

    for lvl in range(levels):
        if not buckets[lvl]:
            continue
        arcs = np.concatenate([c[0] for c in buckets[lvl]])
        times = np.concatenate([c[1] for c in buckets[lvl]])
        pid_arr = np.concatenate([c[2] for c in buckets[lvl]])
        dep, order = serve_level(
            arcs,
            times,
            pid_arr,
            discipline,
            service=1.0 if service_times is None else service_times,
        )
        hops[pid_arr] += 1
        if record_arc_log:
            logs.append((pid_arr, arcs, times, dep))
        # Route in service order, arc by arc.
        a_s = arcs[order]
        dep_s = dep[order]
        pid_s = pid_arr[order]
        starts = np.flatnonzero(np.r_[True, a_s[1:] != a_s[:-1]])
        bounds = np.r_[starts, a_s.shape[0]]
        next_arcs = np.empty(a_s.shape[0], dtype=np.int64)
        for i in range(starts.shape[0]):
            lo, hi = bounds[i], bounds[i + 1]
            arc_id = int(a_s[lo])
            count = hi - lo
            if decisions is not None:
                if arc_id not in decisions or decisions[arc_id].shape[0] < count:
                    raise SimulationError(
                        f"coupled decision sequence for arc {arc_id} too short "
                        f"({count} needed)"
                    )
                dec = decisions[arc_id][:count]
            else:
                dec = spec.draw_decisions(arc_id, count, gen)
                if dec.shape[0] != count:
                    raise SimulationError(
                        f"spec returned {dec.shape[0]} decisions, expected {count}"
                    )
            if record_decisions:
                used_decisions[arc_id] = np.asarray(dec, dtype=np.int64).copy()
            next_arcs[lo:hi] = dec
        exiting = next_arcs == EXIT
        exit_times[pid_s[exiting]] = dep_s[exiting]
        moving = ~exiting
        if moving.any():
            mv_arcs = next_arcs[moving]
            mv_levels = np.array([spec.arc_level(int(a)) for a in mv_arcs])
            if np.any(mv_levels <= lvl):
                raise SimulationError(
                    "routing decision violates the levelled property"
                )
            for nxt in np.unique(mv_levels):
                m = mv_levels == nxt
                buckets[int(nxt)].append(
                    (mv_arcs[m], dep_s[moving][m], pid_s[moving][m])
                )
    if np.any(np.isnan(exit_times)):  # pragma: no cover - internal invariant
        raise SimulationError("some customers never exited the network")
    arc_log = _merge_logs(logs) if record_arc_log else None
    return MarkovianResult(
        exit_times,
        hops,
        arc_log,
        used_decisions if record_decisions else None,
    )
