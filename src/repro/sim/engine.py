"""A minimal deterministic event calendar.

Events are ordered by ``(time, priority, sequence)``: the sequence
number makes simultaneous same-priority events fire in insertion order,
so every simulation built on this calendar is exactly reproducible.
Departure events are given *lower* priority values than arrivals by the
network simulators, matching the tie rule of :mod:`repro.sim.servers`.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

__all__ = ["EventCalendar"]


class EventCalendar:
    """A binary-heap future-event list with deterministic tie-breaking."""

    __slots__ = ("_heap", "_seq", "_now")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event (0 before any pop)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, payload: Any, priority: int = 0) -> None:
        """Insert an event; *priority* breaks time ties (lower first)."""
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule event in the past: {time} < now={self._now}"
            )
        heapq.heappush(self._heap, (time, priority, self._seq, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest event as ``(time, payload)``."""
        if not self._heap:
            raise IndexError("pop from an empty event calendar")
        time, _prio, _seq, payload = heapq.heappop(self._heap)
        self._now = time
        return time, payload

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None
