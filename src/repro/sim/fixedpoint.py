"""Vectorised fixed-point simulation of non-levelled networks.

The feed-forward engine (:mod:`repro.sim.feedforward`) solves a
levelled network in one sweep because a packet leaving level ``l``
only ever joins a level ``> l``.  Ring and torus greedy paths have no
such global order — a path can wrap around the arc id space — so no
single sweep order makes every server's arrival stream complete before
it is solved.

This module keeps the vectorised batch machinery anyway, by iterating
it to a fixed point.  Per-hop arrival-time estimates start at the
free-flow lower bound (birth + hops-so-far × service); each sweep
solves **every** server in one vectorised shot with the estimated
arrivals (:func:`repro.sim.feedforward.serve_level` — the same Lindley
/ Processor-Sharing kernels the feed-forward engine uses) and feeds
each departure into the next hop's arrival estimate.  When a sweep
changes nothing, the estimates are a *consistent sample path*: every
server's departures are exactly its discipline applied to its actual
arrivals.

Such a consistent sample path is **unique** (so the fixed point is the
true one, identical to the event calendar's): service times are bounded
below by a positive constant, so the first event where two consistent
paths could differ is determined by strictly earlier events — on which
they agree.  For a levelled network the iteration converges after at
most ``max hops`` sweeps and reproduces the feed-forward engine
bit-for-bit (tested); for ring/torus it converges in a few dozen
sweeps at the loads the scenarios use.  A non-converging system (e.g.
far above saturation with a horizon so long that dependency chains
exceed ``max_sweeps``) raises :class:`~repro.errors.SimulationError`
rather than returning an unconverged path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.feedforward import serve_level

__all__ = [
    "FixedPointResult",
    "simulate_paths_fixed_point",
    "simulate_paths_fixed_point_batch",
]


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a fixed-point run."""

    delivery: np.ndarray
    hops: np.ndarray
    #: sweeps needed to reach the fixed point (diagnostics / benchmarks)
    sweeps: int
    #: total hop-rows scanned across all sweeps — the convergence
    #: loop's real work metric: with ``rep_blocks``, replications that
    #: reached their fixed point drop out of later sweeps, so this is
    #: less than ``sweeps * total_rows`` on mixed-convergence batches
    sweep_rows: int = 0


def simulate_paths_fixed_point(
    num_arcs: int,
    birth_times: np.ndarray,
    paths: Sequence[Sequence[int]],
    *,
    discipline: str = "fifo",
    service: float = 1.0,
    max_sweeps: Optional[int] = None,
    rep_blocks: Optional[np.ndarray] = None,
) -> FixedPointResult:
    """Simulate packets following explicit arc paths, vectorised.

    Same contract as
    :func:`repro.sim.eventsim.simulate_paths_event_driven` (and
    cross-validated against it): *paths* is a per-packet sequence of
    arc ids in ``range(num_arcs)``; a packet with an empty path is
    delivered at birth.  FIFO sample paths agree with the event engine
    bit-for-bit (both reduce to the same max-plus arithmetic); PS
    agrees to floating-point round-off.

    ``rep_blocks`` is the replication-batching fast path (mirroring
    :func:`repro.sim.feedforward.serve_level`'s ``blocks``): boundaries
    of contiguous *hop-row* runs whose arc-id ranges are disjoint and
    increasing — how the batch entry point stacks R replications.
    Every sweep's sort then runs per block (cache-resident, exactly the
    sorts R standalone solves would do) instead of one large lexsort
    over the whole stack, with a bit-identical global order.  Blocks
    also converge independently: once a block's sweep moves nothing it
    is dropped from all later sweeps (its arc ids are disjoint, so no
    sibling can perturb it), which
    :attr:`FixedPointResult.sweep_rows` makes observable — on a
    mixed-convergence batch it is strictly less than
    ``sweeps * total_rows`` while the sample path stays bit-identical.
    """
    if discipline not in ("fifo", "ps"):
        raise ConfigurationError(f"unknown discipline {discipline!r}")
    if service <= 0:
        raise ConfigurationError(f"service must be > 0, got {service}")
    births = np.asarray(birth_times, dtype=float)
    n = births.shape[0]
    if len(paths) != n:
        raise ConfigurationError("paths and birth_times must be parallel")
    hops = np.array([len(p) for p in paths], dtype=np.int64)
    total = int(hops.sum())
    delivery = births.copy()  # zero-hop packets are delivered at birth
    if total == 0:
        return FixedPointResult(delivery, hops, 0, 0)

    # Flatten the ragged paths: one row per (packet, hop).
    hop_arc = np.fromiter(
        (a for p in paths for a in p), dtype=np.int64, count=total
    )
    if hop_arc.size and (hop_arc.min() < 0 or hop_arc.max() >= num_arcs):
        raise SimulationError("arc id out of range")
    hop_pid = np.repeat(np.arange(n, dtype=np.int64), hops)
    first = np.r_[0, np.cumsum(hops)[:-1]]  # row of each packet's hop 0
    last = first + hops - 1  # row of each packet's final hop
    routed = hops > 0
    #: rows whose arrival is the previous row's departure (same packet)
    chained = np.zeros(total, dtype=bool)
    chained[1:] = hop_pid[1:] == hop_pid[:-1]

    # Free-flow lower bound: birth + (hops already crossed) * service.
    position = np.arange(total, dtype=np.int64) - np.repeat(first, hops)
    arrivals = np.repeat(births, hops) + position * service

    if max_sweeps is None:
        # Every sweep finalises at least the earliest not-yet-consistent
        # event, so total + 2 sweeps always suffice; real workloads
        # converge in O(max path length + queue chain length).
        max_sweeps = total + 2
    chained_rows = np.flatnonzero(chained)
    departures = np.empty(total)
    # Only arcs whose arrival estimates changed need re-solving: the
    # cached departures of every other arc remain its discipline
    # applied to its (unchanged) actual arrivals.
    arc_dirty = np.ones(num_arcs, dtype=bool)
    # Rep-blocked convergence: a block whose sweep moves nothing is at
    # its fixed point, and block arc-id ranges are disjoint, so nothing
    # can ever dirty it again — drop its rows out of later sweeps
    # entirely (the per-sweep dirty gather and moved check are O(active
    # rows), not O(total)).  The final sample path is bit-identical:
    # dropped rows are exactly those the dirty mask would exclude.
    bounds = (
        np.array([0, total], dtype=np.int64)
        if rep_blocks is None
        else np.asarray(rep_blocks, dtype=np.int64)
    )
    num_blocks = bounds.shape[0] - 1
    active_ids = np.arange(num_blocks, dtype=np.int64)
    act_rows = np.arange(total, dtype=np.int64)
    act_chained = chained_rows
    sweep_rows = 0
    for sweep in range(1, max_sweeps + 1):
        sweep_rows += int(act_rows.shape[0])
        rows = act_rows[arc_dirty[hop_arc[act_rows]]]
        # dirty rows keep the stacked layout's rep-major order, so the
        # disjoint-increasing-block structure survives the subsetting
        blocks = (
            None
            if rep_blocks is None
            else np.searchsorted(rows, bounds)
        )
        departures[rows], _ = serve_level(
            hop_arc[rows],
            arrivals[rows],
            hop_pid[rows],
            discipline,
            service,
            blocks=blocks,
        )
        moved = act_chained[
            departures[act_chained - 1] != arrivals[act_chained]
        ]
        if moved.size == 0:
            delivery[routed] = departures[last[routed]]
            return FixedPointResult(delivery, hops, sweep, sweep_rows)
        arrivals[moved] = departures[moved - 1]
        arc_dirty[:] = False
        arc_dirty[hop_arc[moved]] = True
        if num_blocks > 1:
            moved_ids = np.unique(
                np.searchsorted(bounds, moved, side="right") - 1
            )
            if moved_ids.shape[0] < active_ids.shape[0]:
                active_ids = moved_ids
                act_rows = np.concatenate(
                    [
                        np.arange(bounds[b], bounds[b + 1], dtype=np.int64)
                        for b in active_ids
                    ]
                )
                act_chained = act_rows[chained[act_rows]]
    raise SimulationError(
        f"fixed-point simulation did not converge in {max_sweeps} sweeps "
        f"({total} hops); the system is far above saturation"
    )


def simulate_paths_fixed_point_batch(
    num_arcs: int,
    birth_times: Sequence[np.ndarray],
    paths: Sequence[Sequence[Sequence[int]]],
    *,
    discipline: str = "fifo",
    service: float = 1.0,
    max_sweeps: Optional[int] = None,
) -> List[np.ndarray]:
    """One fixed-point solve for R independent replications.

    ``birth_times[r]`` / ``paths[r]`` describe replication *r*;
    offsetting its arc ids by ``r * num_arcs`` turns the batch into one
    system of R disjoint sub-networks, settled by a **single**
    vectorised iteration.  A replication's chained rows and dirty arcs
    never cross the offset boundary, so entry *r* of the result is
    bit-identical to ``simulate_paths_fixed_point(num_arcs,
    birth_times[r], paths[r], ...).delivery`` (a converged replication
    drops out of the remaining sweeps entirely — extra sweeps demanded
    by a slower-converging sibling never touch its rows).
    """
    reps = len(birth_times)
    if len(paths) != reps:
        raise ConfigurationError("birth_times and paths must be parallel")
    if reps == 0:
        return []
    births = np.concatenate([np.asarray(t, dtype=float) for t in birth_times])
    stacked: List[List[int]] = []
    rep_hops = np.empty(reps, dtype=np.int64)
    for r, rep_paths in enumerate(paths):
        base = r * num_arcs
        stacked.extend([arc + base for arc in path] for path in rep_paths)
        rep_hops[r] = sum(len(path) for path in rep_paths)
    rep_blocks = np.concatenate(([0], np.cumsum(rep_hops)))
    result = simulate_paths_fixed_point(
        num_arcs * reps,
        births,
        stacked,
        discipline=discipline,
        service=service,
        max_sweeps=max_sweeps,
        rep_blocks=rep_blocks,
    )
    counts = np.cumsum([len(t) for t in birth_times])[:-1]
    return np.split(result.delivery, counts)
