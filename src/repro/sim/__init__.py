"""Discrete-event and vectorised simulators for levelled queueing networks.

Two engines produce *identical sample paths* for deterministic FIFO
levelled networks (cross-validated in the test suite):

* :mod:`repro.sim.feedforward` — the HPC path: because the equivalent
  networks Q/R are feed-forward (Property B), each level can be solved
  in one shot with a vectorised Lindley recursion
  (:func:`repro.sim.lindley.fifo_departure_times`); no event heap at
  all.
* :mod:`repro.sim.eventsim` — a classical event-driven engine that also
  supports the **Processor-Sharing** discipline, which is what the
  paper's proof technique (Lemmas 7–10, Prop 11) compares against.

:mod:`repro.sim.servers` holds the exact single-server building blocks,
:mod:`repro.sim.measurement` the statistics collectors,
:mod:`repro.sim.slotted` the §3.4 synchronous variant, and
:mod:`repro.sim.run_spec` the scenario-runner entry point that
dispatches a :class:`~repro.runner.spec.ScenarioSpec` replication to
whichever engine its scheme admits.
"""

from repro.sim.engine import EventCalendar
from repro.sim.lindley import (
    fifo_departure_times,
    fifo_waiting_times,
    unfinished_work,
)
from repro.sim.run_spec import ReplicationOutput, run_spec
from repro.sim.servers import FifoServer, PSServer, ps_departure_times
from repro.sim.measurement import DelayRecord, PopulationTracker, arc_arrival_counts

__all__ = [
    "EventCalendar",
    "ReplicationOutput",
    "run_spec",
    "fifo_departure_times",
    "fifo_waiting_times",
    "unfinished_work",
    "FifoServer",
    "PSServer",
    "ps_departure_times",
    "DelayRecord",
    "PopulationTracker",
    "arc_arrival_counts",
]
