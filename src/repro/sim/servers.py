"""Exact single-server building blocks: deterministic FIFO and PS.

The paper's proof machinery (Lemmas 7–10) compares, server by server,
the FIFO discipline against **Processor Sharing** with the same
deterministic work.  Both are implemented here exactly:

* :class:`FifoServer` — incremental Lindley recursion;
* :class:`PSServer` — egalitarian processor sharing tracked through the
  *fair-share integral* ``S(t) = ∫ 1/n(u) du``: a customer arriving at
  ``a`` with work ``w`` departs at the first ``t`` with
  ``S(t) = S(a) + w``.  This gives exact departure epochs in O(log n)
  per event with no per-customer bookkeeping on each update.

Ties: an arrival that coincides with a departure epoch is processed
*after* the departure (the departing customer's residual work hits zero
exactly then, and an instantaneous overlap renders zero service).
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["FifoServer", "PSServer", "PsServerBank", "ps_departure_times"]


class FifoServer:
    """Deterministic FIFO server with incremental arrivals.

    ``arrive(t)`` returns the departure time of that customer; arrivals
    must be fed in non-decreasing time order.
    """

    __slots__ = ("service", "_last_departure", "_last_arrival")

    def __init__(self, service: float = 1.0) -> None:
        if service <= 0.0:
            raise ValueError(f"service time must be > 0, got {service}")
        self.service = float(service)
        self._last_departure = -math.inf
        self._last_arrival = -math.inf

    def arrive(self, t: float) -> float:
        """Admit a customer at time *t*; return its departure time."""
        if t < self._last_arrival:
            raise ValueError(
                f"arrivals must be non-decreasing: {t} < {self._last_arrival}"
            )
        self._last_arrival = t
        start = self._last_departure if self._last_departure > t else t
        self._last_departure = start + self.service
        return self._last_departure

    @property
    def busy_until(self) -> float:
        """Time the server empties if no further arrivals occur."""
        return self._last_departure


class PSServer:
    """Deterministic egalitarian Processor-Sharing server.

    Maintains the fair-share integral ``S`` and a min-heap of departure
    thresholds ``S(a_i) + w_i``.  Events are driven externally:
    :meth:`next_departure_time` exposes the next epoch at which the
    minimum threshold is reached, and :meth:`advance` moves the clock.
    """

    __slots__ = ("_S", "_now", "_heap", "_seq")

    def __init__(self) -> None:
        self._S = 0.0
        self._now = 0.0
        self._heap: List[Tuple[float, int, int]] = []  # (threshold, seq, id)
        self._seq = 0

    @property
    def num_active(self) -> int:
        return len(self._heap)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, t: float) -> None:
        """Advance the clock to *t*, accruing fair share; no departures
        may be due strictly before *t* (caller drains them first)."""
        if t < self._now - 1e-12:
            raise ValueError(f"time moves backwards: {t} < {self._now}")
        n = len(self._heap)
        if n:
            self._S += (t - self._now) / n
        self._now = max(self._now, t)

    def arrive(self, t: float, customer_id: int = -1, work: float = 1.0) -> None:
        """Admit a customer with the given *work* at time *t*."""
        if work <= 0.0:
            raise ValueError(f"work must be > 0, got {work}")
        self.advance(t)
        heapq.heappush(self._heap, (self._S + work, self._seq, customer_id))
        self._seq += 1

    def next_departure_time(self) -> Optional[float]:
        """Epoch of the next departure if no more arrivals occur."""
        if not self._heap:
            return None
        threshold = self._heap[0][0]
        return self._now + (threshold - self._S) * len(self._heap)

    def pop_departure(self) -> Tuple[float, int]:
        """Advance to and remove the next departing customer.

        Returns ``(departure_time, customer_id)``.
        """
        t = self.next_departure_time()
        if t is None:
            raise RuntimeError("no active customers to depart")
        self.advance(t)
        threshold, _seq, cid = heapq.heappop(self._heap)
        # Snap the fair-share integral to the threshold to kill the
        # accumulated float drift for the remaining customers.
        self._S = threshold
        return t, cid


class PsServerBank:
    """A bank of PS servers in array-of-struct layout (one per arc).

    Same update rules as :class:`PSServer`, column-ised: per-arc
    fair-share integral ``S``, clock ``now`` and active count ``n``,
    plus an intrusive FIFO linked list of waiting customers (one
    ``next`` slot and one departure threshold per customer — a
    customer sits in at most one server).  The heap of ``(threshold,
    seq)`` pairs collapses to that queue because equal work makes
    thresholds non-decreasing in arrival order, with ties broken by
    insertion exactly as the heap's ``seq`` does.  No per-event
    allocation; every operation is the same float arithmetic as the
    per-object server (including the drift-killing snap of ``S`` to
    the departing threshold), so sample paths are bit-identical.
    """

    __slots__ = ("S", "now", "n", "head", "tail", "nxt", "thr")

    def __init__(self, num_servers: int, num_customers: int) -> None:
        self.S = [0.0] * num_servers
        self.now = [0.0] * num_servers
        self.n = [0] * num_servers
        self.head = [-1] * num_servers
        self.tail = [-1] * num_servers
        self.nxt = [-1] * num_customers
        self.thr = [0.0] * num_customers

    def advance(self, a: int, t: float) -> None:
        """Advance server *a*'s clock to *t*, accruing fair share."""
        now = self.now[a]
        if t < now - 1e-12:
            raise ValueError(f"time moves backwards: {t} < {now}")
        k = self.n[a]
        if k:
            self.S[a] += (t - now) / k
        if t > now:
            self.now[a] = t

    def arrive(self, a: int, t: float, customer: int, work: float) -> None:
        """Admit *customer* with the given *work* at server *a*."""
        self.advance(a, t)
        self.thr[customer] = self.S[a] + work
        if self.n[a]:
            self.nxt[self.tail[a]] = customer
        else:
            self.head[a] = customer
        self.tail[a] = customer
        self.n[a] += 1

    def next_departure(self, a: int) -> Optional[float]:
        """Epoch of server *a*'s next departure, or ``None`` if idle."""
        k = self.n[a]
        if not k:
            return None
        return self.now[a] + (self.thr[self.head[a]] - self.S[a]) * k

    def pop(self, a: int) -> Tuple[float, int]:
        """Advance to and remove server *a*'s next departing customer."""
        t = self.next_departure(a)
        if t is None:
            raise RuntimeError("no active customers to depart")
        self.advance(a, t)
        c = self.head[a]
        self.head[a] = self.nxt[c]
        self.n[a] -= 1
        # snap S to the threshold, as PSServer.pop_departure does
        self.S[a] = self.thr[c]
        return t, c


def ps_departure_times(
    arrivals: np.ndarray, work: float = 1.0
) -> np.ndarray:
    """Offline departure times of a deterministic PS server.

    *arrivals* must be sorted ascending; all customers carry the same
    *work* (the paper's unit packets), so departures preserve arrival
    order and ``out[i]`` is the departure of arrival ``i``.

    Lemma 7 guarantees ``fifo_departure_times(a) <= ps_departure_times(a)``
    elementwise — property-tested in the suite.
    """
    t = np.asarray(arrivals, dtype=float)
    if t.ndim != 1:
        raise ValueError(f"arrivals must be 1-D, got shape {t.shape}")
    if t.shape[0] and np.any(np.diff(t) < 0):
        raise ValueError("arrivals must be sorted ascending")
    server = PSServer()
    out = np.empty(t.shape[0])
    i = 0
    n = t.shape[0]
    while i < n or server.num_active:
        nxt = server.next_departure_time()
        if i < n and (nxt is None or t[i] < nxt):
            server.arrive(t[i], customer_id=i, work=work)
            i += 1
        else:
            dep, cid = server.pop_departure()
            out[cid] = dep
    return out
