"""Vectorised Lindley recursion for deterministic FIFO servers.

A single FIFO server with fixed service time ``s`` fed at sorted times
``t_0 <= t_1 <= ...`` departs customer ``i`` at

    D_i = max(D_{i-1}, t_i) + s ,      D_{-1} = -inf .

Unrolling gives the closed form (0-based ``i``)

    D_i = s * (i + 1) + max_{j <= i} (t_j - s * j),

a running maximum — one :func:`numpy.maximum.accumulate` call instead
of a Python loop.  This identity is the engine of the fast feed-forward
simulator and is property-tested against the naive recursion.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "fifo_departure_times",
    "fifo_departure_times_loop",
    "fifo_waiting_times",
    "unfinished_work",
]


def fifo_departure_times(arrivals: np.ndarray, service: float = 1.0) -> np.ndarray:
    """Departure times of a deterministic FIFO server (vectorised).

    Parameters
    ----------
    arrivals:
        Arrival times, sorted ascending (ties allowed — FIFO order is
        the array order).
    service:
        Deterministic service duration ``s > 0`` (the paper uses 1).
    """
    t = np.asarray(arrivals, dtype=float)
    if t.ndim != 1:
        raise ValueError(f"arrivals must be 1-D, got shape {t.shape}")
    if service <= 0.0:
        raise ValueError(f"service time must be > 0, got {service}")
    n = t.shape[0]
    if n == 0:
        return np.zeros(0)
    idx = np.arange(n, dtype=float)
    return service * (idx + 1.0) + np.maximum.accumulate(t - service * idx)


def fifo_departure_times_loop(arrivals: np.ndarray, service: float = 1.0) -> np.ndarray:
    """Reference implementation: the literal Lindley recursion.

    Kept for property tests (must agree with the vectorised closed form
    bit-for-bit on integer-valued inputs) and as executable
    documentation of Lemma 8's proof identity.
    """
    t = np.asarray(arrivals, dtype=float)
    if service <= 0.0:
        raise ValueError(f"service time must be > 0, got {service}")
    out = np.empty_like(t)
    prev = -np.inf
    for i, ti in enumerate(t):
        prev = (prev if prev > ti else ti) + service
        out[i] = prev
    return out


def fifo_waiting_times(arrivals: np.ndarray, service: float = 1.0) -> np.ndarray:
    """Queueing delays ``D_i - t_i - s`` (time waiting before service)."""
    t = np.asarray(arrivals, dtype=float)
    return fifo_departure_times(t, service) - t - service


def unfinished_work(
    arrivals: np.ndarray, at: float, service: float = 1.0
) -> float:
    """Unfinished work W(t) of the server at time *at* (left limit W(t-)).

    Work-conservation makes this identical for FIFO and PS disciplines
    (used in Lemma 7's proof); computed as total work arrived strictly
    before *at* minus total server busy time up to *at*.
    """
    t = np.asarray(arrivals, dtype=float)
    past = t[t < at]
    if past.shape[0] == 0:
        return 0.0
    d = fifo_departure_times(past, service)
    # Work remaining at `at`: for each customer, the part of its service
    # not yet rendered.  Customer i occupies the server on [D_i - s, D_i].
    start = d - service
    served = np.clip(at - start, 0.0, service)
    # Customers that have not begun service contribute full `service`.
    return float(np.sum(service - served))
