"""The engine-plugin registry: decorator registration + entry points.

Completes the plugin trilogy (schemes, networks, **engines**),
replacing the ``engine == "..."`` string branches that used to be
scattered through the scheme adapters, the spec validation and the
CLI.  This module is the **only** place in the library allowed to
compare engine names — everything else goes through
:func:`resolve_engine` / :func:`check_forced_engine` (enforced by a
grep-style test, exactly as PR 3 did for networks).

The registry is populated from three sources:

1. **Built-ins** — the modules in :data:`_BUILTIN_MODULES` are imported
   lazily on first lookup; each registers its plugin at import time
   via the :func:`register_engine` decorator.
2. **Entry points** — third-party distributions may declare::

       [project.entry-points."repro.engine_plugins"]
       myengine = "mypkg.engines:MyEnginePlugin"

   and are discovered through :mod:`importlib.metadata` without this
   repository knowing about them.  A broken third-party plugin emits a
   warning instead of taking the registry down.
3. **Runtime** — tests and notebooks call :func:`register_engine` /
   :func:`unregister_engine` directly.

Two spellings are *reserved* and can never name a registered engine:
``"auto"`` (the scheme's native engine — for greedy, whatever the
network plugin declares native) and ``"vectorized"`` (the network's
native *vectorised* engine: the level sweep on levelled networks, the
fixed-point solver elsewhere).  Both are selection directives rather
than engines, so they pass through :func:`normalize_engine_name`
unchanged and resolve per spec in :func:`resolve_engine`.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type, Union

from repro.engines.api import ENGINE_KINDS, EnginePlugin
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plugins.api import SchemePlugin
    from repro.runner.spec import ScenarioSpec

__all__ = [
    "register_engine",
    "unregister_engine",
    "get_engine",
    "iter_engines",
    "available_engines",
    "all_engine_names",
    "canonical_engine_name",
    "normalize_engine_name",
    "declared_engine_names",
    "resolve_engine",
    "check_forced_engine",
    "ENTRY_POINT_GROUP",
    "RESERVED_ENGINE_NAMES",
]

ENTRY_POINT_GROUP = "repro.engine_plugins"

#: selection directives, not engines; never registrable
RESERVED_ENGINE_NAMES = ("auto", "vectorized")

#: modules whose import registers the built-in engine plugins
_BUILTIN_MODULES = (
    "repro.engines.feedforward",
    "repro.engines.eventsim",
    "repro.engines.fixedpoint",
)

_PLUGINS: Dict[str, EnginePlugin] = {}
_ALIASES: Dict[str, str] = {}  # alias -> canonical name
_loaded = False
_loading = False


def register_engine(
    plugin: Union[EnginePlugin, Type[EnginePlugin]],
    *,
    overwrite: bool = False,
) -> Union[EnginePlugin, Type[EnginePlugin]]:
    """Register a plugin (usable as a class decorator).

    Accepts either an instance or an ``EnginePlugin`` subclass (which
    is instantiated with no arguments).  Returns its argument unchanged
    so it composes as ``@register_engine`` above a class definition.
    """
    instance = plugin() if isinstance(plugin, type) else plugin
    if not isinstance(instance, EnginePlugin):
        raise ConfigurationError(
            f"{instance!r} does not implement the EnginePlugin protocol"
        )
    if not instance.name:
        raise ConfigurationError("an engine plugin needs a non-empty name")
    caps = getattr(instance, "capabilities", None)
    if caps is None:
        raise ConfigurationError(
            f"engine {instance.name!r} declares no capabilities"
        )
    if caps.kind not in ENGINE_KINDS:
        raise ConfigurationError(
            f"engine {instance.name!r}: unknown kind {caps.kind!r} "
            f"(one of {', '.join(ENGINE_KINDS)})"
        )
    for reserved in RESERVED_ENGINE_NAMES:
        if reserved == instance.name or reserved in instance.aliases:
            raise ConfigurationError(
                f"engine name {reserved!r} is reserved (it is a selection "
                "directive, resolved per spec)"
            )
    existing = _PLUGINS.get(instance.name)
    if existing is not None and not overwrite:
        if type(existing) is type(instance):
            return plugin  # idempotent re-import of the same plugin
        raise ConfigurationError(
            f"engine {instance.name!r} is already registered by "
            f"{type(existing).__name__} (pass overwrite=True to replace it)"
        )
    for alias in instance.aliases:
        # an alias may never shadow a canonical name, nor an alias a
        # *different* plugin owns
        if alias in _PLUGINS or _ALIASES.get(alias, instance.name) != instance.name:
            raise ConfigurationError(
                f"alias {alias!r} of engine {instance.name!r} collides "
                f"with an existing engine name or alias"
            )
    if existing is not None:
        unregister_engine(existing.name)
    _PLUGINS[instance.name] = instance
    for alias in instance.aliases:
        _ALIASES[alias] = instance.name
    return plugin


def unregister_engine(name: str) -> None:
    """Remove a plugin and the aliases it owns (primarily for tests)."""
    plugin = _PLUGINS.pop(name, None)
    if plugin is not None:
        for alias in plugin.aliases:
            if _ALIASES.get(alias) == name:
                _ALIASES.pop(alias)


def _load_entry_points() -> None:
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - stdlib since 3.8
        return
    try:
        eps = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 selection API
        eps = entry_points().get(ENTRY_POINT_GROUP, ())
    for ep in eps:
        if ep.name in _PLUGINS or ep.name in _ALIASES:
            continue  # built-ins (or an earlier entry point) win
        try:
            register_engine(ep.load())
        except Exception as exc:  # noqa: BLE001 - isolate bad third parties
            warnings.warn(
                f"engine plugin entry point {ep.name!r} failed to load: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )


def _ensure_loaded() -> None:
    global _loaded, _loading
    if _loaded or _loading:
        return
    _loading = True  # re-entrancy guard, cleared on failure so a broken
    try:  # import can be fixed and retried within the process
        import importlib

        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
        _load_entry_points()
        _loaded = True
    finally:
        _loading = False


def get_engine(name: str) -> EnginePlugin:
    """The plugin registered under *name* (canonical or alias), or an
    enumerating error."""
    _ensure_loaded()
    plugin = _PLUGINS.get(_ALIASES.get(name, name))
    if plugin is None:
        known = ", ".join(sorted(_PLUGINS)) or "(none)"
        raise ConfigurationError(
            f"unknown engine {name!r}; registered engines: {known} "
            f"(plus the directives {', '.join(RESERVED_ENGINE_NAMES)})"
        )
    return plugin


def canonical_engine_name(name: str) -> str:
    """Resolve *name* (canonical or alias) to the canonical name."""
    return get_engine(name).name


def normalize_engine_name(name: str) -> str:
    """The spelling a :class:`~repro.runner.spec.ScenarioSpec` stores.

    The reserved directives pass through unchanged (they resolve per
    spec); anything else is canonicalised through the registry —
    **before** content-hashing, so an alias and its canonical name
    always share one cache cell — or rejected with an enumerating
    error.
    """
    if name in RESERVED_ENGINE_NAMES:
        return name
    return canonical_engine_name(name)


def iter_engines() -> List[EnginePlugin]:
    """All registered plugins, sorted by canonical name."""
    _ensure_loaded()
    return [_PLUGINS[name] for name in sorted(_PLUGINS)]


def available_engines() -> Tuple[str, ...]:
    """Sorted canonical names of every registered engine."""
    _ensure_loaded()
    return tuple(sorted(_PLUGINS))


def all_engine_names() -> Tuple[str, ...]:
    """Sorted canonical names, aliases *and* directives (the full
    ``ScenarioSpec.engine`` vocabulary)."""
    _ensure_loaded()
    return tuple(sorted({*_PLUGINS, *_ALIASES, *RESERVED_ENGINE_NAMES}))


def declared_engine_names(engines: Tuple[str, ...]) -> Tuple[str, ...]:
    """Canonicalise a scheme's declared ``capabilities.engines`` tuple
    (directives pass through; aliases collapse to canonical names).

    A declared name that resolves to no registered engine is kept
    verbatim rather than raised on: a scheme may declare a companion
    engine whose distribution is not installed, and that must not
    poison forcing the engines that *are* registered (nor the
    ``repro engines`` matrix)."""
    names = []
    for engine in engines:
        try:
            names.append(normalize_engine_name(engine))
        except ConfigurationError:
            names.append(engine)
    return tuple(dict.fromkeys(names))


def resolve_engine(spec: "ScenarioSpec") -> Optional[EnginePlugin]:
    """The engine plugin that runs *spec*, or ``None`` when the scheme
    owns its whole simulation loop.

    ``"auto"`` asks the scheme plugin
    (:meth:`~repro.plugins.api.SchemePlugin.native_engine`);
    ``"vectorized"`` asks the network plugin
    (:meth:`~repro.networks.api.NetworkPlugin.native_engine` — always a
    vectorised engine: the level sweep on levelled networks, the
    fixed-point solver elsewhere); a concrete name looks itself up.
    """
    name: Optional[str] = spec.engine
    if name == "auto":
        name = spec.plugin.native_engine(spec)
        if name is None:
            return None
    elif name == "vectorized":
        name = spec.network_plugin.native_engine()
    return get_engine(name)


def check_forced_engine(plugin: "SchemePlugin", spec: "ScenarioSpec") -> None:
    """Validate ``spec.engine`` against the scheme's declared engines
    and the engine's own structural capabilities.

    Called from :meth:`repro.plugins.api.SchemePlugin.validate`; raises
    :class:`~repro.errors.ConfigurationError` with enumerating
    messages.  ``engine="auto"`` (the native engine) is always
    admissible.
    """
    if spec.engine == "auto":
        return
    caps = plugin.capabilities
    if spec.engine not in declared_engine_names(caps.engines):
        admissible = ", ".join(caps.engines) or "(none)"
        raise ConfigurationError(
            f"scheme {plugin.name!r} cannot be forced onto engine "
            f"{spec.engine!r}; admissible engines: {admissible} "
            "(engine='auto' always works)"
        )
    engine = resolve_engine(spec)
    assert engine is not None  # a forced engine always resolves
    reason = engine.supports(spec)
    if reason is not None:
        raise ConfigurationError(
            f"engine {spec.engine!r} cannot run this spec: {reason}"
        )
