"""The engine-plugin protocol: sample-path solvers as plugins.

PR 2 opened the *scheme* axis, PR 3 the *network* axis; this module
completes the plugin trilogy on the **engine** axis.  An
:class:`EnginePlugin` is the single place a sample-path solver touches
the scenario subsystem.  It declares its identity (``name`` +
``aliases``) and its *capabilities* — the structural ``kind`` of
solver it is (``levelled`` level sweep, ``event`` calendar,
``fixed-point`` iteration), the queueing disciplines it implements,
the networks it can drive, whether it supports **replication
batching**, and its typed engine-scoped ``extra`` options — and
implements the hooks the rest of the stack used to hard-code behind
``if engine == "event"`` branches:

* :meth:`~EnginePlugin.simulate` — delivery epochs of one traffic
  sample under greedy routing (the path every engine-driven scheme's
  replication runner takes);
* :meth:`~EnginePlugin.run_paths` — the lower-level contract shared by
  the event calendar and the fixed-point solver: packets following
  explicit precomputed arc paths;
* :meth:`~EnginePlugin.simulate_batch` — the replication-batched fast
  path: R replications' workloads stacked into **one** vectorised
  computation (offsetting arc ids per replication keeps the
  sub-systems disjoint, so the batch is bit-identical to R sequential
  runs).  :func:`repro.runner.engine.measure_many` routes through this
  hook whenever the resolved engine declares ``batching``; at
  ``jobs > 1`` it decomposes the template instead — workloads are
  generated once centrally and each worker calls
  :meth:`~EnginePlugin.batch_deliveries` + :func:`batch_output` on a
  shared-memory slice (the scheme's ``batch_engine`` hook exposes the
  engine for exactly this).  How an engine *internally* organises a
  batch is its own affair: the feed-forward engine stacks replications
  in cache-resident sub-batches and streams chunk-composable kernels
  under its ``chunk_packets`` option.

Like the scheme and network APIs, this module is dependency-light (no
numpy import at runtime, no simulator imports) so plugin modules can
import it without cycles; concrete engines import their machinery
lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.plugins.api import OptionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.rng import SeedLike
    from repro.runner.spec import ScenarioSpec
    from repro.sim.run_spec import ReplicationOutput
    from repro.topology.base import Topology
    from repro.traffic.workload import TrafficSample

__all__ = ["EngineCapabilities", "EnginePlugin", "ENGINE_KINDS", "batch_output"]

#: the structural families an engine may declare as its ``kind``
ENGINE_KINDS = ("levelled", "event", "fixed-point")


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine declares about itself.

    ``kind`` names the structural family: ``"levelled"`` solvers sweep
    a levelled network level by level with no event calendar (Property
    B of the paper — the central computational trick), ``"event"``
    solvers replay a chronological calendar, ``"fixed-point"`` solvers
    iterate the vectorised batch machinery to the unique consistent
    sample path of a non-levelled network.

    ``networks`` lists canonical network-plugin names, or the wildcard
    ``"*"`` for an engine implemented purely against per-packet arc
    paths (event, fixed-point), which therefore drives every network —
    third-party ones included.

    ``batching`` declares the replication-batched fast path:
    :meth:`EnginePlugin.simulate_batch` stacks R replications into one
    vectorised computation, and the parallel runner routes through it
    instead of the one-process-one-replication pool.
    """

    kind: str
    disciplines: Tuple[str, ...] = ("fifo", "ps")
    networks: Tuple[str, ...] = ("*",)
    batching: bool = False
    options: Tuple[OptionSpec, ...] = ()


class EnginePlugin:
    """Base class / protocol for engine plugins.

    Subclasses set :attr:`name` (and optionally :attr:`aliases`,
    :attr:`summary`), declare :attr:`capabilities`, and implement
    :meth:`simulate` (plus :meth:`run_paths` for path-based engines and
    :meth:`simulate_batch` when ``capabilities.batching``).
    """

    #: registry key; also an admissible ``ScenarioSpec.engine`` value
    name: str = ""
    #: alternative spellings accepted by specs and the CLI; a spec
    #: built with an alias is normalised to :attr:`name` *before*
    #: content-hashing, so aliases share cache cells
    aliases: Tuple[str, ...] = ()
    #: one-line human description shown by ``repro engines``
    summary: str = ""
    capabilities: EngineCapabilities

    # -- option schema -------------------------------------------------------

    def option_spec(self, name: str) -> Optional[OptionSpec]:
        for opt in self.capabilities.options:
            if opt.name == name:
                return opt
        return None

    def option_names(self) -> Tuple[str, ...]:
        return tuple(opt.name for opt in self.capabilities.options)

    # -- admissibility -------------------------------------------------------

    def supports(self, spec: "ScenarioSpec") -> Optional[str]:
        """``None`` when the engine can run *spec*, else a reason.

        The default checks the declared discipline and network
        capabilities; subclasses add structural rules (the level-sweep
        engine needs a levelled network)."""
        caps = self.capabilities
        if spec.discipline not in caps.disciplines:
            return (
                f"engine {self.name!r} implements disciplines "
                f"{', '.join(caps.disciplines)}, not {spec.discipline!r}"
            )
        if "*" not in caps.networks and spec.network not in caps.networks:
            return (
                f"engine {self.name!r} drives networks "
                f"{', '.join(caps.networks)}, not {spec.network!r}"
            )
        return None

    def supports_batch(self, spec: "ScenarioSpec") -> bool:
        """May *spec*'s replications run through :meth:`simulate_batch`?"""
        return self.capabilities.batching and self.supports(spec) is None

    # -- execution -----------------------------------------------------------

    def simulate(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        sample: "TrafficSample",
    ) -> "np.ndarray":
        """Delivery epochs of *sample* under greedy routing on *spec*'s
        network (the hook :class:`~repro.plugins.greedy.GreedyPlugin`
        replications route through)."""
        raise NotImplementedError  # pragma: no cover - protocol

    def run_paths(
        self,
        num_arcs: int,
        birth_times: "np.ndarray",
        paths: Sequence[Sequence[int]],
        *,
        discipline: str = "fifo",
        service: float = 1.0,
    ) -> "np.ndarray":
        """Delivery epochs of packets following explicit arc paths.

        The shared low-level contract of the path-based engines (event
        calendar, fixed-point solver); a packet with an empty path is
        delivered at birth.  Levelled sweeps have no generic path form
        and leave this unimplemented.
        """
        raise NotImplementedError  # pragma: no cover - protocol

    def simulate_batch(
        self, spec: "ScenarioSpec", seeds: Sequence["SeedLike"]
    ) -> List["ReplicationOutput"]:
        """One :class:`~repro.sim.run_spec.ReplicationOutput` per seed,
        computed as a single stacked computation.

        The contract is strict: entry *k* must be **bit-identical** to
        ``run_spec(spec, seeds[k])`` — same workload draw from the
        seed's own stream, same sample path, same trimmed estimate —
        so the per-replication cache cells and the pooled confidence
        intervals cannot tell the two paths apart (pinned by
        ``tests/test_golden_dispatch.py``).

        This template owns the RNG-consumption half of that contract
        (one workload draw per seed, each from its own stream — exactly
        the sequential runner's order, generated through the network's
        :meth:`~repro.networks.api.NetworkPlugin.build_workload_batch`
        so the traffic plugin can amortise across the batch) and the
        shared epilogue; a batching engine implements only
        :meth:`batch_deliveries`.
        """
        from repro.rng import as_generator

        net = spec.network_plugin
        topology = net.build_topology(spec)
        samples = net.build_workload_batch(
            spec, spec.horizon, [as_generator(seed) for seed in seeds]
        )
        deliveries = self.batch_deliveries(spec, topology, samples)
        return [
            batch_output(spec, sample, delivery)
            for sample, delivery in zip(samples, deliveries)
        ]

    def batch_deliveries(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        samples: List["TrafficSample"],
    ) -> List["np.ndarray"]:
        """Delivery epochs of R independent samples as one stacked
        computation (entry *r* bit-identical to
        ``simulate(spec, topology, samples[r])``); the hook engines
        declaring ``batching`` implement."""
        raise NotImplementedError  # pragma: no cover - protocol

    # -- cosmetics -----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EnginePlugin {self.name!r}>"


def batch_output(
    spec: "ScenarioSpec", sample: "TrafficSample", delivery: "np.ndarray"
) -> "ReplicationOutput":
    """The batched replication epilogue: one stacked replication's
    delivery array through the **same** trim-and-wrap code the
    sequential runner uses (:func:`repro.plugins.api.steady_output`),
    minus the per-packet record (as the pooled path drops it)."""
    from repro.plugins.api import steady_output
    from repro.sim.measurement import DelayRecord
    from repro.sim.run_spec import ReplicationOutput

    out = steady_output(
        spec, DelayRecord(sample.times, delivery, sample.horizon)
    )
    return ReplicationOutput(out.mean_delay, out.num_packets, out.metrics, None)
