"""Engine plugin for the levelled feed-forward sweep (the HPC path).

The paper's central computational trick: the equivalent networks Q
(§3.1) and R (§4.3) are *levelled* (Property B), so a whole sample
path solves level by level with **no event calendar** — one closed-form
Lindley recursion (FIFO) or exact fair-share construction (PS) per
server, all servers of a level in one vectorised shot
(:func:`repro.sim.feedforward.serve_level`).

The engine drives a network through its native level-sweep kernel
(:meth:`~repro.networks.api.NetworkPlugin.simulate_greedy` — the
XOR-algebra sweep on the hypercube, the one-arc-per-level sweep on the
butterfly), so it only supports networks that declare it native; the
fixed-point engine covers everything else.

**Batching** is where the level sweep pays twice: R replications'
workload arrays stack into one set of parallel arrays (arc ids offset
by ``replication * num_arcs`` keep the R sub-systems disjoint), and the
d-level loop runs **once** for the whole batch.  Profiling showed the
naive all-R stack *loses* to R sequential runs on arc-rich cells: the
per-level sort cost is identical either way (the blockwise sorts do
exactly the R standalone sorts), so what remains is pure overhead —
full-size gather/scatter passes over stacked arrays that fall out of
cache.  The engine therefore stacks replications in **sub-batches**
sized so one level's rows stay cache-resident (the ``batch_reps``
option pins the size for benchmarking), which keeps the amortisation
of the level loop while restoring cache locality.  Each replication's
sub-path is bit-identical to its sequential run (golden-pinned)
whatever the sub-batch size, because every per-arc arrival sequence is
unchanged.

**Chunked-horizon mode** (the ``chunk_packets`` option) streams each
replication through the network's chunk-composable kernel
(:meth:`~repro.networks.api.NetworkPlugin.simulate_greedy_chunked`):
packets are processed in birth-ordered chunks with per-arc queue state
carried between chunks, so peak memory is bounded by the chunk size
and the topology instead of the horizon — the d ≥ 20 regime.  FIFO
carries (count, running-Lindley-max) per arc and is bit-identical to
the one-shot path (tested); PS carries the in-service packets of each
busy arc and agrees with the one-shot fair-share construction to
≤ 1e-9 at every chunk size (tested).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.engines.api import EngineCapabilities, EnginePlugin
from repro.engines.registry import register_engine
from repro.plugins.api import OptionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.topology.base import Topology
    from repro.traffic.workload import TrafficSample

__all__ = ["FeedForwardEngine"]

#: per-level row budget a sub-batch should stay under: small enough
#: that one level's sort + Lindley arrays live in cache, large enough
#: to amortise the per-level Python overhead across replications
_TARGET_LEVEL_ROWS = 16384


@register_engine
class FeedForwardEngine(EnginePlugin):
    name = "feedforward"
    aliases = ("ff", "levelled")
    summary = "level-by-level vectorised sweep of levelled networks (§3.1/§4.3)"
    capabilities = EngineCapabilities(
        kind="levelled",
        disciplines=("fifo", "ps"),
        # admissibility is structural, not a name list: any network —
        # third-party included — that declares a native level-sweep
        # kernel (NetworkPlugin.native_engine) can ride this engine
        networks=("*",),
        batching=True,
        options=(
            OptionSpec(
                "chunk_packets",
                kind="int",
                description="stream each replication in birth-ordered "
                "chunks of this many packets with per-arc queue state "
                "carried between chunks: peak memory bounded by the "
                "chunk and the topology instead of the horizon "
                "(FIFO is bit-identical to the one-shot sweep; PS "
                "carries in-service packets and agrees to <=1e-9)",
            ),
            OptionSpec(
                "batch_reps",
                kind="int",
                description="replications stacked per sub-batch on the "
                "batched path (default: sized so one level's rows stay "
                "cache-resident)",
            ),
        ),
    )

    def supports(self, spec: "ScenarioSpec"):
        reason = super().supports(spec)
        if reason is not None:
            return reason
        if spec.network_plugin.native_engine() != self.name:
            return (
                f"network {spec.network!r} provides no levelled "
                "level-sweep kernel (its native vectorised engine is "
                f"{spec.network_plugin.native_engine()!r})"
            )
        return None

    def simulate(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        sample: "TrafficSample",
    ) -> "np.ndarray":
        chunk = spec.option("chunk_packets")
        if chunk is not None:
            return spec.network_plugin.simulate_greedy_chunked(
                topology, spec, sample, int(chunk)
            )
        return spec.network_plugin.simulate_greedy(topology, spec, sample)

    @staticmethod
    def _sub_batch_reps(spec: "ScenarioSpec", samples: List["TrafficSample"]) -> int:
        """How many replications to stack per sub-batch.

        A level of one replication touches roughly half its packets
        (popcount of a uniform mask), so ``mean_packets / 2`` rows; the
        sub-batch stacks as many replications as keep a level under
        :data:`_TARGET_LEVEL_ROWS` rows.  Profiled on arc-rich cells:
        the all-R stack's full-size passes fall out of cache and lose
        to sequential runs, while cache-resident sub-batches win.
        """
        forced = spec.option("batch_reps")
        if forced is not None:
            return max(1, int(forced))
        mean_packets = sum(s.num_packets for s in samples) / max(len(samples), 1)
        rows_per_level = max(1, int(mean_packets) // 2)
        return max(1, _TARGET_LEVEL_ROWS // rows_per_level)

    def batch_deliveries(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        samples: List["TrafficSample"],
    ) -> List["np.ndarray"]:
        net = spec.network_plugin
        chunk = spec.option("chunk_packets")
        if chunk is not None:
            # bounded memory beats batched throughput by definition
            # here: stream the replications one by one
            return [
                net.simulate_greedy_chunked(topology, spec, s, int(chunk))
                for s in samples
            ]
        reps = self._sub_batch_reps(spec, samples)
        if reps >= len(samples):
            return net.simulate_greedy_batch(topology, spec, samples)
        deliveries: List["np.ndarray"] = []
        for lo in range(0, len(samples), reps):
            deliveries.extend(
                net.simulate_greedy_batch(topology, spec, samples[lo : lo + reps])
            )
        return deliveries
