"""Engine plugin for the levelled feed-forward sweep (the HPC path).

The paper's central computational trick: the equivalent networks Q
(§3.1) and R (§4.3) are *levelled* (Property B), so a whole sample
path solves level by level with **no event calendar** — one closed-form
Lindley recursion (FIFO) or exact fair-share construction (PS) per
server, all servers of a level in one vectorised shot
(:func:`repro.sim.feedforward.serve_level`).

The engine drives a network through its native level-sweep kernel
(:meth:`~repro.networks.api.NetworkPlugin.simulate_greedy` — the
XOR-algebra sweep on the hypercube, the one-arc-per-level sweep on the
butterfly), so it only supports networks that declare it native; the
fixed-point engine covers everything else.

**Batching** is where the level sweep pays twice: R replications'
workload arrays stack into one set of parallel arrays (arc ids offset
by ``replication * num_arcs`` keep the R sub-systems disjoint), and the
d-level loop runs **once** for the whole batch — one lexsort and one
segmented Lindley recursion per level instead of R.  Each
replication's sub-path is bit-identical to its sequential run
(golden-pinned), because every per-arc arrival sequence is unchanged;
only the Python-loop overhead is amortised away.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.engines.api import EngineCapabilities, EnginePlugin
from repro.engines.registry import register_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.topology.base import Topology
    from repro.traffic.workload import TrafficSample

__all__ = ["FeedForwardEngine"]


@register_engine
class FeedForwardEngine(EnginePlugin):
    name = "feedforward"
    aliases = ("ff", "levelled")
    summary = "level-by-level vectorised sweep of levelled networks (§3.1/§4.3)"
    capabilities = EngineCapabilities(
        kind="levelled",
        disciplines=("fifo", "ps"),
        # admissibility is structural, not a name list: any network —
        # third-party included — that declares a native level-sweep
        # kernel (NetworkPlugin.native_engine) can ride this engine
        networks=("*",),
        batching=True,
    )

    def supports(self, spec: "ScenarioSpec"):
        reason = super().supports(spec)
        if reason is not None:
            return reason
        if spec.network_plugin.native_engine() != self.name:
            return (
                f"network {spec.network!r} provides no levelled "
                "level-sweep kernel (its native vectorised engine is "
                f"{spec.network_plugin.native_engine()!r})"
            )
        return None

    def simulate(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        sample: "TrafficSample",
    ) -> "np.ndarray":
        return spec.network_plugin.simulate_greedy(topology, spec, sample)

    def batch_deliveries(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        samples: List["TrafficSample"],
    ) -> List["np.ndarray"]:
        return spec.network_plugin.simulate_greedy_batch(
            topology, spec, samples
        )
