"""Engine plugin for the event calendar (the cross-validation engine).

Wraps :func:`repro.sim.eventsim.simulate_paths_event_driven`: a single
chronological event heap replaying per-packet arc paths, deliberately
independent of the levelled structure.  It drives **every** network
(third-party ones included) through the
:meth:`~repro.networks.api.NetworkPlugin.greedy_paths` hook, and its
FIFO sample paths agree with the vectorised engines bit for bit (PS to
float round-off) — which is exactly what makes it the reference the
fast engines are validated against.

No batching: the calendar is inherently sequential (one heap, one
clock), so replications of an event-engine spec fan out over the
process pool instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.engines.api import EngineCapabilities, EnginePlugin
from repro.engines.registry import register_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.topology.base import Topology
    from repro.traffic.workload import TrafficSample

__all__ = ["EventEngine"]


@register_engine
class EventEngine(EnginePlugin):
    name = "event"
    aliases = ("eventsim", "calendar")
    summary = "chronological event calendar over explicit arc paths"
    capabilities = EngineCapabilities(
        kind="event",
        disciplines=("fifo", "ps"),
        networks=("*",),
        batching=False,
    )

    def simulate(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        sample: "TrafficSample",
    ) -> "np.ndarray":
        paths = spec.network_plugin.greedy_paths(topology, spec, sample)
        return self.run_paths(
            topology.num_arcs,
            sample.times,
            paths,
            discipline=spec.discipline,
        )

    def run_paths(
        self,
        num_arcs: int,
        birth_times: "np.ndarray",
        paths: Sequence[Sequence[int]],
        *,
        discipline: str = "fifo",
        service: float = 1.0,
    ) -> "np.ndarray":
        from repro.sim.eventsim import simulate_paths_event_driven

        return simulate_paths_event_driven(
            num_arcs,
            birth_times,
            paths,
            discipline=discipline,
            service=service,
        ).delivery
