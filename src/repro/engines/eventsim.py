"""Engine plugin for the event calendar (the cross-validation engine).

Wraps :func:`repro.sim.eventsim.simulate_paths_event_driven`: events in
chronological order replaying per-packet arc paths, deliberately
independent of the levelled structure.  It drives **every** network
(third-party ones included) through the
:meth:`~repro.networks.api.NetworkPlugin.greedy_paths` hook, and its
FIFO sample paths agree with the vectorised engines bit for bit (PS to
float round-off) — which is exactly what makes it the reference the
fast engines are validated against.

Batching: replications are independent, so R replications share one
calendar with replication *r*'s arc ids offset by ``r * num_arcs``
(:func:`repro.sim.eventsim.simulate_paths_event_driven_batch`).  The
merged calendar is R times denser — which is where the windowed FIFO
core's fixed per-window cost amortises — and each replication's
deliveries stay bit-identical to its own sequential run, so the
per-replication cache cells cannot tell the two routes apart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from repro.engines.api import EngineCapabilities, EnginePlugin
from repro.engines.registry import register_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.topology.base import Topology
    from repro.traffic.workload import TrafficSample

__all__ = ["EventEngine"]


@register_engine
class EventEngine(EnginePlugin):
    name = "event"
    aliases = ("eventsim", "calendar")
    summary = "replication-batched event calendar over explicit arc paths"
    capabilities = EngineCapabilities(
        kind="event",
        disciplines=("fifo", "ps"),
        networks=("*",),
        batching=True,
    )

    def simulate(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        sample: "TrafficSample",
    ) -> "np.ndarray":
        paths = spec.network_plugin.greedy_paths(topology, spec, sample)
        return self.run_paths(
            topology.num_arcs,
            sample.times,
            paths,
            discipline=spec.discipline,
        )

    def run_paths(
        self,
        num_arcs: int,
        birth_times: "np.ndarray",
        paths: Sequence[Sequence[int]],
        *,
        discipline: str = "fifo",
        service: float = 1.0,
    ) -> "np.ndarray":
        from repro.sim.eventsim import simulate_paths_event_driven

        return simulate_paths_event_driven(
            num_arcs,
            birth_times,
            paths,
            discipline=discipline,
            service=service,
        ).delivery

    def batch_deliveries(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        samples: List["TrafficSample"],
    ) -> List["np.ndarray"]:
        from repro.sim.eventsim import simulate_paths_event_driven_batch

        net = spec.network_plugin
        return simulate_paths_event_driven_batch(
            topology.num_arcs,
            [sample.times for sample in samples],
            [net.greedy_paths(topology, spec, sample) for sample in samples],
            discipline=spec.discipline,
        )
