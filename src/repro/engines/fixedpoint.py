"""Engine plugin for the vectorised fixed-point solver.

Wraps :func:`repro.sim.fixedpoint.simulate_paths_fixed_point`: the
vectorised batch machinery of the feed-forward engine iterated to the
unique consistent sample path, which is what makes *non-levelled*
networks (ring, torus, any third-party topology shipping only
``greedy_paths``) fast without an event calendar.  On a levelled
network it converges to the feed-forward engine's sample path bit for
bit — forcing ``engine="fixedpoint"`` on the hypercube is a legitimate
cross-validation axis (tested).

The engine owns one typed option, ``max_sweeps`` — the iteration
ceiling past which a far-above-saturation system raises
:class:`~repro.errors.SimulationError` instead of returning an
unconverged path.

**Batching**: R replications' path sets concatenate with arc ids
offset by ``replication * num_arcs``, so one fixed-point solve settles
R disjoint sub-systems at once.  A replication's sub-system iterates
independently of the others (its chained rows and dirty arcs never
cross the offset boundary), so each converged sub-path is bit-identical
to its sequential run — and once a replication converges its rows drop
out of the remaining sweeps entirely (rep-blocked convergence, made
observable by ``FixedPointResult.sweep_rows``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from repro.engines.api import EngineCapabilities, EnginePlugin
from repro.engines.registry import register_engine
from repro.plugins.api import OptionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.runner.spec import ScenarioSpec
    from repro.topology.base import Topology
    from repro.traffic.workload import TrafficSample

__all__ = ["FixedPointEngine"]


@register_engine
class FixedPointEngine(EnginePlugin):
    name = "fixedpoint"
    aliases = ("fixed-point", "fp")
    summary = "vectorised fixed-point solver for non-levelled networks"
    capabilities = EngineCapabilities(
        kind="fixed-point",
        disciplines=("fifo", "ps"),
        networks=("*",),
        batching=True,
        options=(
            OptionSpec(
                "max_sweeps",
                kind="int",
                description="iteration ceiling before a far-above-"
                "saturation system raises SimulationError "
                "(default: scales with the hop count)",
            ),
        ),
    )

    @staticmethod
    def _max_sweeps(spec: "ScenarioSpec"):
        value = spec.option("max_sweeps")
        return None if value is None else int(value)

    def simulate(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        sample: "TrafficSample",
    ) -> "np.ndarray":
        paths = spec.network_plugin.greedy_paths(topology, spec, sample)
        from repro.sim.fixedpoint import simulate_paths_fixed_point

        return simulate_paths_fixed_point(
            topology.num_arcs,
            sample.times,
            paths,
            discipline=spec.discipline,
            max_sweeps=self._max_sweeps(spec),
        ).delivery

    def run_paths(
        self,
        num_arcs: int,
        birth_times: "np.ndarray",
        paths: Sequence[Sequence[int]],
        *,
        discipline: str = "fifo",
        service: float = 1.0,
    ) -> "np.ndarray":
        from repro.sim.fixedpoint import simulate_paths_fixed_point

        return simulate_paths_fixed_point(
            num_arcs,
            birth_times,
            paths,
            discipline=discipline,
            service=service,
        ).delivery

    def batch_deliveries(
        self,
        spec: "ScenarioSpec",
        topology: "Topology",
        samples: List["TrafficSample"],
    ) -> List["np.ndarray"]:
        from repro.sim.fixedpoint import simulate_paths_fixed_point_batch

        net = spec.network_plugin
        return simulate_paths_fixed_point_batch(
            topology.num_arcs,
            [s.times for s in samples],
            [net.greedy_paths(topology, spec, s) for s in samples],
            discipline=spec.discipline,
            max_sweeps=self._max_sweeps(spec),
        )
