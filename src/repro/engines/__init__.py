"""Capability-declaring engine plugins: sample-path solvers as
first-class citizens.

The third axis of the plugin trilogy (:mod:`repro.plugins` opened the
scheme axis, :mod:`repro.networks` the network axis): every solver
that can turn a traffic sample into delivery epochs is an
:class:`~repro.engines.api.EnginePlugin` declaring its identity
(name + aliases), its structural kind (levelled sweep / event calendar
/ fixed-point iteration), the disciplines and networks it drives,
whether it supports **replication batching**, and its typed
engine-scoped options.  The scheme adapters, the spec validation, the
parallel runner and the CLI contain no engine-specific code at all —
``if engine == ...`` branches live in this package alone (grep-test
enforced) — and adding a solver is one plugin module, or a third-party
package shipping the ``repro.engine_plugins`` entry-point group.

Quickstart — a new engine in one class::

    from repro.engines import EngineCapabilities, EnginePlugin, register_engine

    @register_engine
    class MyEngine(EnginePlugin):
        name = "myengine"
        aliases = ("me",)
        summary = "one line for `repro engines`"
        capabilities = EngineCapabilities(kind="event")

        def simulate(self, spec, topology, sample): ...
"""

from repro.engines.api import EngineCapabilities, EnginePlugin, batch_output
from repro.engines.registry import (
    all_engine_names,
    available_engines,
    canonical_engine_name,
    check_forced_engine,
    declared_engine_names,
    get_engine,
    iter_engines,
    normalize_engine_name,
    register_engine,
    resolve_engine,
    unregister_engine,
)

__all__ = [
    "EngineCapabilities",
    "EnginePlugin",
    "batch_output",
    "all_engine_names",
    "available_engines",
    "canonical_engine_name",
    "check_forced_engine",
    "declared_engine_names",
    "get_engine",
    "iter_engines",
    "normalize_engine_name",
    "register_engine",
    "resolve_engine",
    "unregister_engine",
]
