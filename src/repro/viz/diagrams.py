"""Graphviz DOT generators for the paper's figures."""

from __future__ import annotations

from typing import List

from repro.core.qnetwork import ButterflyRSpec, HypercubeQSpec
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube

__all__ = [
    "hypercube_dot",
    "butterfly_dot",
    "qnetwork_dot",
    "rnetwork_dot",
    "fig2_networks_dot",
]


def _bits(x: int, d: int) -> str:
    return format(x, f"0{d}b")


def hypercube_dot(cube: Hypercube) -> str:
    """Fig. 1a: the d-cube with binary node identities.

    Antiparallel arc pairs are drawn as one edge with ``dir=both`` to
    match the paper's drawing.
    """
    d = cube.d
    lines: List[str] = [
        f'digraph hypercube_d{d} {{',
        '  label="Fig. 1a: the %d-dimensional hypercube";' % d,
        "  node [shape=circle];",
    ]
    for x in range(cube.num_nodes):
        lines.append(f'  n{x} [label="{_bits(x, d)}"];')
    for arc in cube.arcs():
        if arc.tail < arc.head:  # one line per antiparallel pair
            lines.append(
                f"  n{arc.tail} -> n{arc.head} "
                f'[dir=both, label="dim {arc.level}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def butterfly_dot(bf: Butterfly) -> str:
    """Fig. 3a: the d-dimensional butterfly with straight/vertical arcs."""
    d = bf.d
    lines: List[str] = [
        f"digraph butterfly_d{d} {{",
        '  label="Fig. 3a: the %d-dimensional butterfly";' % d,
        "  rankdir=LR;",
        "  node [shape=circle];",
    ]
    for level in range(d + 1):
        members = " ".join(
            f"b{bf.node_id(row, level)};" for row in range(bf.rows)
        )
        lines.append(f"  {{ rank=same; {members} }}")
        for row in range(bf.rows):
            lines.append(
                f'  b{bf.node_id(row, level)} '
                f'[label="[{_bits(row, d)};{level}]"];'
            )
    for arc_id in range(bf.num_arcs):
        row, level, kind = bf.arc_components(arc_id)
        arc = bf.arc(arc_id)
        style = "solid" if kind == 0 else "dashed"
        lines.append(f"  b{arc.tail} -> b{arc.head} [style={style}];")
    lines.append("}")
    return "\n".join(lines)


def qnetwork_dot(spec: HypercubeQSpec) -> str:
    """Fig. 1b: the equivalent network Q — one server per arc, levelled
    by dimension, with Markovian routing edges (Lemma 4)."""
    cube, p = spec.cube, spec.p
    d, n = cube.d, cube.num_nodes
    lines: List[str] = [
        f"digraph network_Q_d{d} {{",
        '  label="Fig. 1b: the equivalent network Q for the %d-cube '
        '(p=%.3g)";' % (d, p),
        "  rankdir=LR;",
        "  node [shape=box];",
    ]
    for dim in range(d):
        members = " ".join(f"s{dim * n + x};" for x in range(n))
        lines.append(f"  {{ rank=same; {members} }}")
        for x in range(n):
            lines.append(
                f'  s{dim * n + x} [label="({_bits(x, d)},'
                f'{_bits(x ^ (1 << dim), d)})"];'
            )
    # routing edges: after (x, dim i) -> (x^e_i, dim j), j > i
    for dim in range(d):
        for x in range(n):
            src = dim * n + x
            head = x ^ (1 << dim)
            for j in range(dim + 1, d):
                prob = p * (1.0 - p) ** (j - dim - 1)
                lines.append(
                    f"  s{src} -> s{j * n + head} "
                    f'[label="{prob:.3g}", fontsize=8];'
                )
    lines.append("}")
    return "\n".join(lines)


def rnetwork_dot(spec: ButterflyRSpec) -> str:
    """Fig. 3b: the equivalent network R for the butterfly."""
    bf, p = spec.bf, spec.p
    d, rows = bf.d, bf.rows
    lines: List[str] = [
        f"digraph network_R_d{d} {{",
        '  label="Fig. 3b: the equivalent network R for the '
        '%d-dimensional butterfly (p=%.3g)";' % (d, p),
        "  rankdir=LR;",
        "  node [shape=box];",
    ]
    kind_name = {0: "s", 1: "v"}
    for level in range(d):
        members = " ".join(
            f"r{bf.arc_index(row, level, k)};"
            for row in range(rows)
            for k in (0, 1)
        )
        lines.append(f"  {{ rank=same; {members} }}")
        for row in range(rows):
            for k in (0, 1):
                lines.append(
                    f"  r{bf.arc_index(row, level, k)} "
                    f'[label="({_bits(row, d)};{level};{kind_name[k]})"];'
                )
    for level in range(d - 1):
        for row in range(rows):
            for k in (0, 1):
                src = bf.arc_index(row, level, k)
                head_row = row ^ (1 << level) if k else row
                nxt_s = bf.arc_index(head_row, level + 1, 0)
                nxt_v = bf.arc_index(head_row, level + 1, 1)
                lines.append(
                    f'  r{src} -> r{nxt_s} [label="{1 - p:.3g}", fontsize=8];'
                )
                lines.append(
                    f'  r{src} -> r{nxt_v} [label="{p:.3g}", fontsize=8];'
                )
    lines.append("}")
    return "\n".join(lines)


def fig2_networks_dot() -> str:
    """Figs. 2a/2b/2c: the three-server comparison networks.

    g (all FIFO), g̃ (all PS), and g' (PS at the first level only) —
    the gadgets of Lemma 9's proof.
    """
    def network(name: str, tag: str, disciplines: tuple) -> List[str]:
        d1, d2, d3 = disciplines
        return [
            f"subgraph cluster_{tag} {{",
            f'  label="{name}";',
            f'  {tag}_s1 [shape=box, label="S1 ({d1})"];',
            f'  {tag}_s2 [shape=box, label="S2 ({d2})"];',
            f'  {tag}_s3 [shape=box, label="S3 ({d3})"];',
            f"  {tag}_s1 -> {tag}_s3;",
            f"  {tag}_s2 -> {tag}_s3;",
            "}",
        ]

    lines = [
        "digraph fig2 {",
        '  label="Fig. 2: the Lemma 9 comparison networks";',
        "  rankdir=LR;",
    ]
    lines += network("Fig. 2a: network g", "g", ("FIFO", "FIFO", "FIFO"))
    lines += network("Fig. 2b: network g~", "gt", ("PS", "PS", "PS"))
    lines += network("Fig. 2c: network g'", "gp", ("PS", "PS", "FIFO"))
    lines.append("}")
    return "\n".join(lines)
