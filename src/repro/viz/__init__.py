"""Figure generation: the paper's diagrams, regenerated programmatically.

The paper's figures are network diagrams, not data plots:

* Fig. 1a — the 3-dimensional hypercube;
* Fig. 1b — the equivalent network Q for the 3-cube;
* Fig. 2a/2b/2c — the three-server example networks g, g̃, g';
* Fig. 3a — the 2-dimensional butterfly;
* Fig. 3b — the equivalent network R.

Each generator returns Graphviz DOT text (renderable with ``dot -Tpdf``
anywhere; no runtime dependency here) and is exercised by the figure
benchmark, which writes the artefacts under ``benchmarks/results/``.
"""

from repro.viz.diagrams import (
    butterfly_dot,
    fig2_networks_dot,
    hypercube_dot,
    qnetwork_dot,
    rnetwork_dot,
)

__all__ = [
    "hypercube_dot",
    "butterfly_dot",
    "qnetwork_dot",
    "rnetwork_dot",
    "fig2_networks_dot",
]
