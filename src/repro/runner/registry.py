"""The name-based scenario registry.

Every workload the repository measures is a named, frozen
:class:`~repro.runner.spec.ScenarioSpec`.  The built-in catalog below
covers every scheme, every network *and every traffic law* in the
library — greedy routing on all four topologies (hypercube, butterfly,
ring, torus; FIFO and PS, native and event engines), the permutation
family (bit reversal, transpose, bit complement), hot-spot and bursty
workloads, the slotted variant, two-phase Valiant mixing, the §2.3
pipelined-batch baseline, hot-potato deflection, per-packet random
order, and the static one-shot permutation tasks — so ``python -m
repro list-scenarios`` doubles as a map of the reproduction.

Benchmarks and examples derive their grids from these entries via
:meth:`ScenarioSpec.replace`, keeping every protocol decision (warm-up
windows, seed policy, horizons) in one reviewable place.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.runner.spec import ScenarioSpec

__all__ = ["register", "get_scenario", "list_scenarios", "scenario_names"]

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add *spec* to the registry under ``spec.name``."""
    if not spec.name:
        raise ConfigurationError("a registered scenario needs a name")
    if spec.name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def list_scenarios() -> List[ScenarioSpec]:
    return [_REGISTRY[name] for name in scenario_names()]


# ---------------------------------------------------------------------------
# built-in catalog
# ---------------------------------------------------------------------------

_BUILTINS = [
    ScenarioSpec(
        name="smoke",
        d=3,
        rho=0.5,
        horizon=120.0,
        replications=2,
        description="tiny fast cell for CI smoke tests",
    ),
    ScenarioSpec(
        name="hypercube-greedy-light",
        d=6,
        rho=0.3,
        description="greedy d-cube routing far from saturation (Props 12/13)",
    ),
    ScenarioSpec(
        name="hypercube-greedy-mid",
        d=6,
        rho=0.7,
        description="greedy d-cube routing at moderate load (Props 12/13)",
    ),
    ScenarioSpec(
        name="hypercube-greedy-heavy",
        d=5,
        rho=0.95,
        horizon=3000.0,
        description="heavy traffic: (1-rho)T inside the §3.3 window",
    ),
    ScenarioSpec(
        name="hypercube-greedy-ps",
        discipline="ps",
        d=5,
        rho=0.7,
        description="network Q-tilde: every arc served Processor Sharing (§3.3)",
    ),
    ScenarioSpec(
        name="hypercube-greedy-event",
        engine="event",
        d=4,
        rho=0.7,
        description="greedy routing on the event-driven engine (cross-validation)",
    ),
    ScenarioSpec(
        name="hypercube-greedy-antipodal",
        d=5,
        rho=0.7,
        p=1.0,
        description="p=1 endpoint: disjoint paths, exact delay formula (§3.3)",
    ),
    ScenarioSpec(
        name="hypercube-greedy-bitrev",
        d=6,
        lam=0.4,
        traffic="bitrev",
        description="direct greedy under bit-reversal traffic — saturated arcs (§5)",
    ),
    ScenarioSpec(
        name="hypercube-greedy-transpose",
        d=6,
        lam=0.3,
        horizon=250.0,
        traffic="transpose",
        description="direct greedy under matrix-transpose traffic (the "
        "other classic hard permutation)",
    ),
    ScenarioSpec(
        name="hypercube-greedy-bitcomp",
        d=6,
        lam=0.5,
        traffic="bitcomp",
        description="bit-complement traffic: every packet crosses all d "
        "dimensions (constant all-ones mask)",
    ),
    ScenarioSpec(
        name="hypercube-greedy-hotspot",
        d=6,
        lam=0.3,
        traffic="hotspot",
        extra={"beta": 0.15},
        description="hot-spot traffic: 15% of packets target node 0 — "
        "its incoming arcs saturate first",
    ),
    ScenarioSpec(
        name="hypercube-greedy-bursty",
        d=5,
        rho=0.6,
        traffic="bursty",
        extra={"burst": 4.0},
        description="compound-Poisson batch arrivals at unchanged mean "
        "rate: delay driven by variance, not rho",
    ),
    ScenarioSpec(
        name="hypercube-greedy-bursty-onoff",
        d=5,
        rho=0.5,
        traffic="bursty",
        extra={"mode": "onoff", "duty": 0.3},
        description="on-off modulated Poisson arrivals (30% duty cycle "
        "at triple the ON rate)",
    ),
    ScenarioSpec(
        name="hypercube-slotted",
        scheme="slotted",
        d=5,
        rho=0.75,
        extra={"tau": 0.5},
        description="§3.4 slotted time: T <= dp/(1-rho) + tau",
    ),
    ScenarioSpec(
        name="hypercube-random-order",
        scheme="random_order",
        d=5,
        rho=0.8,
        horizon=700.0,
        description="E13 ablation: per-packet random dimension order (event engine)",
    ),
    ScenarioSpec(
        name="hypercube-twophase",
        scheme="twophase",
        d=5,
        lam=0.5,
        description="Valiant two-phase mixing under uniform traffic (§5)",
    ),
    ScenarioSpec(
        name="hypercube-twophase-bitrev",
        scheme="twophase",
        d=6,
        lam=0.4,
        horizon=200.0,
        traffic="bitrev",
        description="two-phase mixing neutralises bit-reversal traffic (§5 / E18)",
    ),
    ScenarioSpec(
        name="hypercube-twophase-hotspot",
        scheme="twophase",
        d=5,
        lam=0.4,
        horizon=200.0,
        traffic="hotspot",
        extra={"beta": 0.2},
        description="mixing spreads a 20% hot spot over both phases "
        "(stability no longer law-dependent)",
    ),
    ScenarioSpec(
        name="hypercube-twophase-bursty",
        scheme="twophase",
        d=5,
        lam=0.4,
        horizon=200.0,
        traffic="bursty",
        extra={"burst": 3.0},
        description="two-phase mixing under compound-Poisson batch "
        "arrivals: bursts survive mixing, hot arcs do not",
    ),
    ScenarioSpec(
        name="hypercube-pipelined-batch",
        scheme="pipelined_batch",
        d=5,
        rho=0.05,
        description="§2.3 non-greedy baseline: stable only for rho = O(1/d)",
    ),
    ScenarioSpec(
        name="hypercube-deflection",
        scheme="deflection",
        d=5,
        lam=0.8,
        horizon=600.0,
        description="hot-potato baseline in the spirit of [GrH89] (E14)",
    ),
    ScenarioSpec(
        name="butterfly-greedy-mid",
        network="butterfly",
        d=4,
        rho=0.7,
        description="greedy butterfly routing at moderate load (Props 14/17)",
    ),
    ScenarioSpec(
        name="butterfly-greedy-asym",
        network="butterfly",
        d=4,
        rho=0.7,
        p=0.3,
        description="asymmetric p: straight arcs are the bottleneck (Prop 15)",
    ),
    ScenarioSpec(
        name="butterfly-greedy-event",
        network="butterfly",
        engine="event",
        d=3,
        rho=0.7,
        description="greedy butterfly on the event engine (cross-validates §4)",
    ),
    ScenarioSpec(
        name="butterfly-greedy-event-ps",
        network="butterfly",
        engine="event",
        discipline="ps",
        d=3,
        rho=0.6,
        description="butterfly with PS servers on the event engine (§4.3 R-tilde)",
    ),
    ScenarioSpec(
        name="butterfly-greedy-transpose",
        network="butterfly",
        d=4,
        lam=0.4,
        horizon=250.0,
        traffic="transpose",
        description="matrix-transpose rows through the butterfly: the "
        "unique §4.1 paths collide level by level",
    ),
    ScenarioSpec(
        name="butterfly-greedy-hotspot",
        network="butterfly",
        d=4,
        lam=0.3,
        horizon=250.0,
        traffic="hotspot",
        extra={"beta": 0.2},
        description="hot output row on the butterfly: the last-level "
        "arc into the hot row is the bottleneck",
    ),
    ScenarioSpec(
        name="ring-greedy",
        network="ring",
        d=5,
        rho=0.7,
        description="Papillon-style greedy on the 32-ring (absolute distance)",
    ),
    ScenarioSpec(
        name="ring-greedy-ps",
        network="ring",
        discipline="ps",
        d=4,
        rho=0.6,
        horizon=200.0,
        description="16-ring with every arc served Processor Sharing",
    ),
    ScenarioSpec(
        name="ring-greedy-clockwise",
        network="ring",
        d=4,
        rho=0.7,
        extra={"direction": "clockwise"},
        description="the unidirectional ring: clockwise-only greedy variant",
    ),
    ScenarioSpec(
        name="ring-greedy-event",
        network="ring",
        engine="event",
        d=4,
        rho=0.7,
        horizon=200.0,
        description="ring greedy on the event engine (cross-validates the "
        "fixed-point engine)",
    ),
    ScenarioSpec(
        name="torus-greedy",
        network="torus",
        d=2,
        rho=0.7,
        description="dimension-order greedy on the 4x4 torus "
        "(Dietzfelbinger-Woelfel grids)",
    ),
    ScenarioSpec(
        name="torus-greedy-ps",
        network="torus",
        discipline="ps",
        d=2,
        rho=0.6,
        horizon=300.0,
        description="4x4 torus with Processor-Sharing arcs",
    ),
    ScenarioSpec(
        name="torus-greedy-event",
        network="torus",
        engine="event",
        d=2,
        rho=0.7,
        horizon=200.0,
        description="torus greedy on the event engine (cross-validates the "
        "fixed-point engine)",
    ),
    ScenarioSpec(
        name="ring-greedy-hotspot",
        network="ring",
        d=4,
        lam=0.2,
        horizon=200.0,
        traffic="hotspot",
        extra={"beta": 0.25},
        description="hot node on the 16-ring: its two incoming arcs "
        "carry a quarter of all flow",
    ),
    ScenarioSpec(
        name="torus-greedy-hotspot",
        network="torus",
        d=2,
        lam=0.25,
        horizon=200.0,
        traffic="hotspot",
        extra={"beta": 0.2},
        description="hot node on the 4x4 torus under dimension-order "
        "greedy (node-addressed hot-spot law)",
    ),
    ScenarioSpec(
        name="static-greedy-bitrev",
        scheme="static_greedy",
        d=6,
        horizon=1.0,
        warmup_fraction=0.0,
        cooldown_fraction=0.0,
        replications=1,
        extra={"perm": "bitrev"},
        description="one-shot bit reversal: the Theta(2^{d/2}) greedy blow-up",
    ),
    ScenarioSpec(
        name="static-valiant-bitrev",
        scheme="static_valiant",
        d=6,
        horizon=1.0,
        warmup_fraction=0.0,
        cooldown_fraction=0.0,
        extra={"perm": "bitrev"},
        description="[VaB81] two-phase one-shot routing: O(d) makespan w.h.p.",
    ),
]

for _spec in _BUILTINS:
    register(_spec)
del _spec
