"""Measurement results: the :class:`DelayMeasurement` record.

Historically this dataclass lived in ``repro.analysis.experiments``;
it moved here when the scenario runner became the canonical producer
(the old module still re-exports it).  A measurement now carries its
provenance — scheme, traffic law, discipline, scenario name, and the
per-replication delay estimates that the pooled confidence interval is built from — so
a cached result is a complete record of how it was obtained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.stats import ConfidenceInterval

__all__ = [
    "DelayMeasurement",
    "measurement_to_dict",
    "measurement_from_dict",
]


@dataclass(frozen=True)
class DelayMeasurement:
    """One steady-state delay estimate with its theoretical bracket.

    For schemes the paper gives no closed-form bracket for, the bounds
    are ``-inf``/``+inf`` ("no known constraint"), so
    :attr:`within_bounds` stays truthful.
    """

    network: str
    d: int
    rho: float
    p: float
    lam: float
    horizon: float
    num_packets: int
    mean_delay: float
    ci: Optional[ConfidenceInterval]
    lower_bound: float
    upper_bound: float
    scheme: str = "greedy"
    traffic: str = "uniform"
    discipline: str = "fifo"
    scenario: Optional[str] = None
    #: one steady-state estimate per independent replication; the
    #: pooled mean/CI are computed across these
    replication_delays: Optional[Tuple[float, ...]] = None
    #: scheme-specific side metrics (e.g. deflection counts, makespans),
    #: averaged across replications
    metrics: Tuple[Tuple[str, float], ...] = ()

    @property
    def within_bounds(self) -> bool:
        """Point-estimate check against the paper's bracket."""
        return self.lower_bound <= self.mean_delay <= self.upper_bound

    @property
    def normalised_delay(self) -> float:
        """``T / d`` — flat in d when the O(d) claim holds."""
        return self.mean_delay / self.d

    @property
    def num_replications(self) -> int:
        return len(self.replication_delays) if self.replication_delays else 1

    def metric(self, key: str, default: float = float("nan")) -> float:
        for k, v in self.metrics:
            if k == key:
                return v
        return default


def _encode_float(x: float) -> Any:
    # JSON has no inf/nan literals in strict mode; encode portably.
    if math.isnan(x):
        return "nan"
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return x


def _decode_float(x: Any) -> float:
    if isinstance(x, str):
        return float(x)
    return float(x)


def measurement_to_dict(m: DelayMeasurement) -> Dict[str, Any]:
    return {
        "network": m.network,
        "d": m.d,
        "rho": _encode_float(m.rho),
        "p": m.p,
        "lam": _encode_float(m.lam),
        "horizon": m.horizon,
        "num_packets": m.num_packets,
        "mean_delay": _encode_float(m.mean_delay),
        "ci": None
        if m.ci is None
        else {
            "mean": _encode_float(m.ci.mean),
            "halfwidth": _encode_float(m.ci.halfwidth),
            "confidence": m.ci.confidence,
            "num_samples": m.ci.num_samples,
        },
        "lower_bound": _encode_float(m.lower_bound),
        "upper_bound": _encode_float(m.upper_bound),
        "scheme": m.scheme,
        "traffic": m.traffic,
        "discipline": m.discipline,
        "scenario": m.scenario,
        "replication_delays": None
        if m.replication_delays is None
        else [_encode_float(x) for x in m.replication_delays],
        "metrics": [[k, _encode_float(v)] for k, v in m.metrics],
    }


def measurement_from_dict(data: Mapping[str, Any]) -> DelayMeasurement:
    ci = None
    if data.get("ci") is not None:
        c = data["ci"]
        ci = ConfidenceInterval(
            mean=_decode_float(c["mean"]),
            halfwidth=_decode_float(c["halfwidth"]),
            confidence=float(c["confidence"]),
            num_samples=int(c["num_samples"]),
        )
    reps = data.get("replication_delays")
    return DelayMeasurement(
        network=data["network"],
        d=int(data["d"]),
        rho=_decode_float(data["rho"]),
        p=float(data["p"]),
        lam=_decode_float(data["lam"]),
        horizon=float(data["horizon"]),
        num_packets=int(data["num_packets"]),
        mean_delay=_decode_float(data["mean_delay"]),
        ci=ci,
        lower_bound=_decode_float(data["lower_bound"]),
        upper_bound=_decode_float(data["upper_bound"]),
        scheme=data.get("scheme", "greedy"),
        traffic=data.get("traffic", "uniform"),
        discipline=data.get("discipline", "fifo"),
        scenario=data.get("scenario"),
        replication_delays=None
        if reps is None
        else tuple(_decode_float(x) for x in reps),
        metrics=tuple(
            (str(k), _decode_float(v)) for k, v in data.get("metrics", [])
        ),
    )
