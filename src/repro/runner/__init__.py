"""Scenario registry + parallel experiment engine.

The measurement protocol used throughout the repository — fix an
operating point, simulate a horizon, trim warm-up/cool-down, pool
independent replications into a confidence interval — as a declarative
subsystem:

* :class:`ScenarioSpec` — one frozen experiment cell, validated
  against the capabilities its scheme's plugin declares
  (:mod:`repro.plugins`);
* :func:`register` / :func:`get_scenario` / :func:`list_scenarios` —
  the name-based catalog covering every scheme in the library;
* :func:`measure` / :func:`measure_many` — multiprocessing-parallel
  replication fan-out with centralized seed spawning;
* :class:`ResultsStore` — content-hash-addressed JSON cache (pooled
  measurements plus per-replication cells) so repeated runs skip
  already-computed work;
* :class:`DelayMeasurement` — the pooled result record.

The scheme vocabulary is open: :func:`repro.plugins.available_schemes`
enumerates whatever plugins are registered (built-ins plus
``repro.scheme_plugins`` entry points), replacing the old hard-coded
``SCHEMES`` tuple.

Quickstart::

    from repro.runner import get_scenario, measure

    m = measure(get_scenario("hypercube-greedy-mid"), jobs=4)
    print(m.mean_delay, m.ci.halfwidth, m.within_bounds)
"""

from repro.plugins.registry import (
    available_networks,
    available_schemes,
    get_plugin,
    iter_plugins,
)
from repro.runner.backends import (
    LockedResultsStore,
    SqliteResultsStore,
    make_store,
)
from repro.runner.engine import (
    MeasureProgress,
    MeasurementCancelled,
    measure,
    measure_many,
    run_replication,
    theory_bounds,
)
from repro.runner.registry import (
    get_scenario,
    list_scenarios,
    register,
    scenario_names,
)
from repro.runner.results import DelayMeasurement
from repro.runner.spec import ScenarioSpec
from repro.runner.store import ResultsStore

__all__ = [
    "ScenarioSpec",
    "DelayMeasurement",
    "ResultsStore",
    "LockedResultsStore",
    "SqliteResultsStore",
    "make_store",
    "MeasureProgress",
    "MeasurementCancelled",
    "available_networks",
    "available_schemes",
    "get_plugin",
    "iter_plugins",
    "register",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "measure",
    "measure_many",
    "run_replication",
    "theory_bounds",
]
