"""Content-addressed JSON results store.

Every measured spec is persisted as ``<content-hash>.json`` holding
both the spec (for provenance/inspection) and the pooled measurement.
Because the key is :meth:`ScenarioSpec.content_hash` — a digest of
every field that affects the numbers — repeated benchmark runs skip
already-computed cells, and renaming a scenario does not invalidate
its results.

Next to the pooled cells lives a **per-replication** cache under
``replications/``: cells keyed by ``(replication_hash, k)``, where
:meth:`ScenarioSpec.replication_hash` is additionally independent of
the replication count.  Replication *k*'s seed depends only on
``(base_seed, seed_policy, k)`` under either seed policy, so raising
``replications`` on an existing spec reuses every already-computed
replication and simulates only the new ones.

The default root is ``$REPRO_CACHE_DIR`` or ``.repro-cache`` under the
current directory; writes are atomic (temp file + rename) so parallel
sweeps never leave a torn cell behind.

:func:`default_cache_dir` re-reads the environment on **every**
``ResultsStore()`` construction — deliberate for short-lived CLI
invocations, but a long-lived process (the ``repro serve`` server, a
worker pool) must resolve the root **once** at startup and pass it
explicitly to every store it constructs, or a mid-run environment
change silently splits the cache across two roots.

Concurrent-safe backends (cross-process ``fcntl`` locking, sqlite)
behind this same interface live in :mod:`repro.runner.backends`.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.runner.results import (
    DelayMeasurement,
    _decode_float,
    _encode_float,
    measurement_from_dict,
    measurement_to_dict,
)
from repro.runner.spec import ScenarioSpec
from repro.sim.run_spec import ReplicationOutput

__all__ = [
    "ResultsStore",
    "StoreStats",
    "default_cache_dir",
    "parse_duration",
    "parse_size",
]

#: 1024-based size suffixes accepted by ``repro cache prune --max-bytes``.
_SIZE_UNITS = {"": 1, "b": 1, "kb": 1024, "mb": 1024**2, "gb": 1024**3}
#: duration suffixes accepted by ``repro cache prune --older-than``.
_DURATION_UNITS = {"": 1, "s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}


def parse_duration(text: Union[str, float, int]) -> float:
    """``"30d"``/``"12h"``/``"45m"``/``"90"`` -> seconds."""
    if isinstance(text, (int, float)):
        return float(text)
    m = re.fullmatch(r"\s*([0-9.]+)\s*([a-z]*)\s*", text.lower())
    if not m or m.group(2) not in _DURATION_UNITS:
        raise ValueError(
            f"unparseable duration {text!r} (use e.g. 90, 45m, 12h, 30d)"
        )
    return float(m.group(1)) * _DURATION_UNITS[m.group(2)]


def parse_size(text: Union[str, float, int]) -> int:
    """``"100mb"``/``"2gb"``/``"4096"`` -> bytes (1024-based units)."""
    if isinstance(text, (int, float)):
        return int(text)
    m = re.fullmatch(r"\s*([0-9.]+)\s*([a-z]*)\s*", text.lower())
    if not m or m.group(2) not in _SIZE_UNITS:
        raise ValueError(
            f"unparseable size {text!r} (use e.g. 4096, 512kb, 100mb, 2gb)"
        )
    return int(float(m.group(1)) * _SIZE_UNITS[m.group(2)])

_ENV_VAR = "REPRO_CACHE_DIR"

#: what the store's own cells look like — content-hash-named JSON.
#: Anything else in the directory is foreign and never touched by
#: :meth:`ResultsStore.clear`.
_POOLED_CELL = re.compile(r"^[0-9a-f]{20}\.json$")
_REPLICATION_CELL = re.compile(r"^[0-9a-f]{20}\.r\d{4,}\.json$")


def default_cache_dir() -> Path:
    return Path(os.environ.get(_ENV_VAR, ".repro-cache"))


@dataclass(frozen=True)
class StoreStats:
    """Cell counts and on-disk size of a results store.

    Doubles as the report of a maintenance pass (``clear``/``prune``),
    where the fields count what was *removed*.  ``corrupt`` counts
    unparseable cells — silent misses from torn writes or hand edits —
    and is only populated by ``stats(verify=True)``.
    """

    pooled: int
    replications: int
    total_bytes: int
    corrupt: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "pooled": self.pooled,
            "replications": self.replications,
            "total_bytes": self.total_bytes,
            "corrupt": self.corrupt,
        }


class ResultsStore:
    """A directory of content-addressed measurement cells."""

    def __init__(self, root: Union[str, os.PathLike, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{spec.content_hash()}.json"

    def contains(self, spec: ScenarioSpec) -> bool:
        return self.path_for(spec).is_file()

    def load(self, spec: ScenarioSpec) -> Optional[DelayMeasurement]:
        """The cached measurement for *spec*, or ``None`` on a miss.

        A corrupt cell (torn write from a crashed run, hand edit) is
        treated as a miss rather than an error.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            return measurement_from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def save(self, spec: ScenarioSpec, measurement: DelayMeasurement) -> Path:
        payload = {
            "spec": spec.to_dict(),
            "result": measurement_to_dict(measurement),
        }
        return self._write_atomic(self.path_for(spec), payload)

    def _write_atomic(self, path: Path, payload: Dict[str, Any]) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- per-replication cells ----------------------------------------------

    def replication_path_for(self, spec: ScenarioSpec, rep: int) -> Path:
        return (
            self.root
            / "replications"
            / f"{spec.replication_hash()}.r{rep:04d}.json"
        )

    def load_replication(
        self, spec: ScenarioSpec, rep: int
    ) -> Optional[ReplicationOutput]:
        """Replication *rep*'s cached output, or ``None`` on a miss.

        The per-packet record is not persisted (it can be regenerated
        from the replication's seed), so cached outputs carry
        ``record=None`` — the same shape the pooled engine consumes.
        """
        path = self.replication_path_for(spec, rep)
        try:
            payload = json.loads(path.read_text())
            return ReplicationOutput(
                mean_delay=_decode_float(payload["mean_delay"]),
                num_packets=int(payload["num_packets"]),
                metrics=tuple(
                    (str(k), _decode_float(v)) for k, v in payload["metrics"]
                ),
            )
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def save_replication(
        self, spec: ScenarioSpec, rep: int, out: ReplicationOutput
    ) -> Path:
        payload = {
            "spec": spec.to_dict(),
            "replication": rep,
            "mean_delay": _encode_float(out.mean_delay),
            "num_packets": out.num_packets,
            "metrics": [[k, _encode_float(v)] for k, v in out.metrics],
        }
        return self._write_atomic(self.replication_path_for(spec, rep), payload)

    def __len__(self) -> int:
        """Number of pooled cells the store owns (foreign JSON a user
        parked in the directory is not counted — one definition of
        "cell", shared with :meth:`stats` and :meth:`clear`)."""
        return sum(1 for _ in self._pooled_cells())

    # -- maintenance (the `repro cache` subcommand) ---------------------------

    def _pooled_cells(self):
        if not self.root.is_dir():
            return
        for path in sorted(self.root.iterdir()):
            if path.is_file() and _POOLED_CELL.match(path.name):
                yield path

    def _replication_cells(self):
        reps = self.root / "replications"
        if not reps.is_dir():
            return
        for path in sorted(reps.iterdir()):
            if path.is_file() and _REPLICATION_CELL.match(path.name):
                yield path

    @staticmethod
    def _survey(paths: Iterable[Path]) -> List[Tuple[Path, float, int]]:
        """``(path, mtime, size)`` for each cell that still exists.

        Another process may delete any cell between ``iterdir()`` and
        ``stat()`` (a concurrent ``clear``/``prune``, a parallel
        sweep's eviction) — a vanished file is simply skipped, never
        an error.
        """
        out = []
        for path in paths:
            try:
                st = path.stat()
            except FileNotFoundError:
                continue
            out.append((path, st.st_mtime, st.st_size))
        return out

    @staticmethod
    def _unlink_surveyed(cells: Iterable[Tuple[Path, float, int]]) -> Tuple[int, int]:
        """Remove surveyed cells, tolerating concurrent deletion;
        returns ``(count_removed, bytes_freed)``."""
        count = freed = 0
        for path, _, size in cells:
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            count += 1
            freed += size
        return count, freed

    def _is_corrupt(self, path: Path) -> bool:
        """Unparseable (or vanished-mid-read) cells read as corrupt is
        wrong for the vanished case — a file deleted under us is just
        gone, not rot — so missing files report healthy."""
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return False
        except (json.JSONDecodeError, UnicodeDecodeError):
            return True
        return not isinstance(payload, dict)

    def stats(self, verify: bool = False) -> StoreStats:
        """Cell counts and total size — only the store's own cells
        (content-hash-named JSON) are counted, never foreign files.

        ``verify=True`` additionally parses every cell and counts the
        corrupt ones (torn writes, hand edits): each is a silent cache
        miss the operator would otherwise never see.
        """
        pooled = self._survey(self._pooled_cells())
        reps = self._survey(self._replication_cells())
        total = sum(size for _, _, size in pooled + reps)
        corrupt = (
            sum(1 for p, _, _ in pooled + reps if self._is_corrupt(p))
            if verify
            else 0
        )
        return StoreStats(len(pooled), len(reps), total, corrupt)

    def clear(self) -> StoreStats:
        """Delete every cell the store owns; returns what was removed.

        Deliberately surgical: only files matching the store's own
        naming scheme go (``<20-hex>.json`` at the root,
        ``<20-hex>.rNNNN.json`` under ``replications/``).  Foreign
        files a user parked in the directory — notes, plots, a stray
        ``.gitignore`` — are left untouched, as is the directory
        itself (unless ``replications/`` ends up empty, which is then
        removed as it is store-owned).  Cells deleted concurrently by
        another process are skipped, not errors.
        """
        pooled, freed_p = self._unlink_surveyed(self._survey(self._pooled_cells()))
        replications, freed_r = self._unlink_surveyed(
            self._survey(self._replication_cells())
        )
        self._rmdir_empty_replications()
        return StoreStats(pooled, replications, freed_p + freed_r)

    def _rmdir_empty_replications(self) -> None:
        reps_dir = self.root / "replications"
        try:
            if reps_dir.is_dir() and not any(reps_dir.iterdir()):
                reps_dir.rmdir()
        except (FileNotFoundError, OSError):
            pass  # a concurrent writer repopulated (or removed) it

    def prune(
        self,
        older_than: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> StoreStats:
        """TTL/LRU eviction; returns what was removed.

        ``older_than`` (seconds) drops every cell whose mtime predates
        ``now - older_than``.  ``max_bytes`` then evicts
        least-recently-written cells (LRU by mtime, pooled and
        per-replication together) until the store fits the budget.
        Either knob may be ``None``; with both ``None`` this is a
        no-op.  Vanished files are tolerated exactly as in
        :meth:`clear`.
        """
        now = time.time() if now is None else now
        pooled = self._survey(self._pooled_cells())
        reps = self._survey(self._replication_cells())
        doomed_p: List[Tuple[Path, float, int]] = []
        doomed_r: List[Tuple[Path, float, int]] = []

        def _doom(cell: Tuple[Path, float, int]) -> None:
            is_rep = _REPLICATION_CELL.match(cell[0].name) is not None
            (doomed_r if is_rep else doomed_p).append(cell)

        survivors = pooled + reps
        if older_than is not None:
            cutoff = now - older_than
            for cell in survivors:
                if cell[1] < cutoff:
                    _doom(cell)
            survivors = [c for c in survivors if c[1] >= cutoff]
        if max_bytes is not None:
            survivors.sort(key=lambda c: c[1])  # oldest mtime first
            total = sum(size for _, _, size in survivors)
            while survivors and total > max_bytes:
                cell = survivors.pop(0)
                total -= cell[2]
                _doom(cell)
        removed_p, freed_p = self._unlink_surveyed(doomed_p)
        removed_r, freed_r = self._unlink_surveyed(doomed_r)
        self._rmdir_empty_replications()
        return StoreStats(removed_p, removed_r, freed_p + freed_r)
