"""Content-addressed JSON results store.

Every measured spec is persisted as ``<content-hash>.json`` holding
both the spec (for provenance/inspection) and the pooled measurement.
Because the key is :meth:`ScenarioSpec.content_hash` — a digest of
every field that affects the numbers — repeated benchmark runs skip
already-computed cells, and renaming a scenario does not invalidate
its results.

Next to the pooled cells lives a **per-replication** cache under
``replications/``: cells keyed by ``(replication_hash, k)``, where
:meth:`ScenarioSpec.replication_hash` is additionally independent of
the replication count.  Replication *k*'s seed depends only on
``(base_seed, seed_policy, k)`` under either seed policy, so raising
``replications`` on an existing spec reuses every already-computed
replication and simulates only the new ones.

The default root is ``$REPRO_CACHE_DIR`` or ``.repro-cache`` under the
current directory; writes are atomic (temp file + rename) so parallel
sweeps never leave a torn cell behind.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.runner.results import (
    DelayMeasurement,
    _decode_float,
    _encode_float,
    measurement_from_dict,
    measurement_to_dict,
)
from repro.runner.spec import ScenarioSpec
from repro.sim.run_spec import ReplicationOutput

__all__ = ["ResultsStore", "StoreStats", "default_cache_dir"]

_ENV_VAR = "REPRO_CACHE_DIR"

#: what the store's own cells look like — content-hash-named JSON.
#: Anything else in the directory is foreign and never touched by
#: :meth:`ResultsStore.clear`.
_POOLED_CELL = re.compile(r"^[0-9a-f]{20}\.json$")
_REPLICATION_CELL = re.compile(r"^[0-9a-f]{20}\.r\d{4,}\.json$")


def default_cache_dir() -> Path:
    return Path(os.environ.get(_ENV_VAR, ".repro-cache"))


@dataclass(frozen=True)
class StoreStats:
    """Cell counts and on-disk size of a results store."""

    pooled: int
    replications: int
    total_bytes: int


class ResultsStore:
    """A directory of content-addressed measurement cells."""

    def __init__(self, root: Union[str, os.PathLike, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{spec.content_hash()}.json"

    def contains(self, spec: ScenarioSpec) -> bool:
        return self.path_for(spec).is_file()

    def load(self, spec: ScenarioSpec) -> Optional[DelayMeasurement]:
        """The cached measurement for *spec*, or ``None`` on a miss.

        A corrupt cell (torn write from a crashed run, hand edit) is
        treated as a miss rather than an error.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            return measurement_from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def save(self, spec: ScenarioSpec, measurement: DelayMeasurement) -> Path:
        payload = {
            "spec": spec.to_dict(),
            "result": measurement_to_dict(measurement),
        }
        return self._write_atomic(self.path_for(spec), payload)

    def _write_atomic(self, path: Path, payload: Dict[str, Any]) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- per-replication cells ----------------------------------------------

    def replication_path_for(self, spec: ScenarioSpec, rep: int) -> Path:
        return (
            self.root
            / "replications"
            / f"{spec.replication_hash()}.r{rep:04d}.json"
        )

    def load_replication(
        self, spec: ScenarioSpec, rep: int
    ) -> Optional[ReplicationOutput]:
        """Replication *rep*'s cached output, or ``None`` on a miss.

        The per-packet record is not persisted (it can be regenerated
        from the replication's seed), so cached outputs carry
        ``record=None`` — the same shape the pooled engine consumes.
        """
        path = self.replication_path_for(spec, rep)
        try:
            payload = json.loads(path.read_text())
            return ReplicationOutput(
                mean_delay=_decode_float(payload["mean_delay"]),
                num_packets=int(payload["num_packets"]),
                metrics=tuple(
                    (str(k), _decode_float(v)) for k, v in payload["metrics"]
                ),
            )
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def save_replication(
        self, spec: ScenarioSpec, rep: int, out: ReplicationOutput
    ) -> Path:
        payload = {
            "spec": spec.to_dict(),
            "replication": rep,
            "mean_delay": _encode_float(out.mean_delay),
            "num_packets": out.num_packets,
            "metrics": [[k, _encode_float(v)] for k, v in out.metrics],
        }
        return self._write_atomic(self.replication_path_for(spec, rep), payload)

    def __len__(self) -> int:
        """Number of pooled cells the store owns (foreign JSON a user
        parked in the directory is not counted — one definition of
        "cell", shared with :meth:`stats` and :meth:`clear`)."""
        return sum(1 for _ in self._pooled_cells())

    # -- maintenance (the `repro cache` subcommand) ---------------------------

    def _pooled_cells(self):
        if not self.root.is_dir():
            return
        for path in sorted(self.root.iterdir()):
            if path.is_file() and _POOLED_CELL.match(path.name):
                yield path

    def _replication_cells(self):
        reps = self.root / "replications"
        if not reps.is_dir():
            return
        for path in sorted(reps.iterdir()):
            if path.is_file() and _REPLICATION_CELL.match(path.name):
                yield path

    def stats(self) -> StoreStats:
        """Cell counts and total size — only the store's own cells
        (content-hash-named JSON) are counted, never foreign files."""
        pooled = list(self._pooled_cells())
        reps = list(self._replication_cells())
        total = sum(p.stat().st_size for p in pooled + reps)
        return StoreStats(len(pooled), len(reps), total)

    def clear(self) -> StoreStats:
        """Delete every cell the store owns; returns what was removed.

        Deliberately surgical: only files matching the store's own
        naming scheme go (``<20-hex>.json`` at the root,
        ``<20-hex>.rNNNN.json`` under ``replications/``).  Foreign
        files a user parked in the directory — notes, plots, a stray
        ``.gitignore`` — are left untouched, as is the directory
        itself (unless ``replications/`` ends up empty, which is then
        removed as it is store-owned).
        """
        pooled = replications = freed = 0
        for path in self._pooled_cells():
            freed += path.stat().st_size
            path.unlink()
            pooled += 1
        for path in self._replication_cells():
            freed += path.stat().st_size
            path.unlink()
            replications += 1
        reps_dir = self.root / "replications"
        if reps_dir.is_dir() and not any(reps_dir.iterdir()):
            reps_dir.rmdir()
        return StoreStats(pooled, replications, freed)
