"""Content-addressed JSON results store.

Every measured spec is persisted as ``<content-hash>.json`` holding
both the spec (for provenance/inspection) and the pooled measurement.
Because the key is :meth:`ScenarioSpec.content_hash` — a digest of
every field that affects the numbers — repeated benchmark runs skip
already-computed cells, and renaming a scenario does not invalidate
its results.

The default root is ``$REPRO_CACHE_DIR`` or ``.repro-cache`` under the
current directory; writes are atomic (temp file + rename) so parallel
sweeps never leave a torn cell behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.runner.results import (
    DelayMeasurement,
    measurement_from_dict,
    measurement_to_dict,
)
from repro.runner.spec import ScenarioSpec

__all__ = ["ResultsStore", "default_cache_dir"]

_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    return Path(os.environ.get(_ENV_VAR, ".repro-cache"))


class ResultsStore:
    """A directory of content-addressed measurement cells."""

    def __init__(self, root: Union[str, os.PathLike, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{spec.content_hash()}.json"

    def contains(self, spec: ScenarioSpec) -> bool:
        return self.path_for(spec).is_file()

    def load(self, spec: ScenarioSpec) -> Optional[DelayMeasurement]:
        """The cached measurement for *spec*, or ``None`` on a miss.

        A corrupt cell (torn write from a crashed run, hand edit) is
        treated as a miss rather than an error.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            return measurement_from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def save(self, spec: ScenarioSpec, measurement: DelayMeasurement) -> Path:
        path = self.path_for(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "spec": spec.to_dict(),
            "result": measurement_to_dict(measurement),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
