"""Parallel scenario execution: replication fan-out and pooling.

The hot path of every experiment is running R independent replications
of one spec (or a whole sweep of specs).  This module executes that
fan-out along three routes:

* **Batched** — when the spec's scheme exposes a batch runner
  (:meth:`~repro.plugins.api.SchemePlugin.batch_runner`, backed by an
  engine plugin declaring ``batching``), R replications stack into
  **one** vectorised computation: no per-task pickling, no per-
  replication Python overhead.  At ``jobs <= 1`` the whole batch runs
  in process.
* **Shared-workload parallel** — the composition of batching with
  ``jobs > 1``.  When the scheme also exposes the engine behind its
  batch runner (:meth:`~repro.plugins.api.SchemePlugin.batch_engine`),
  the parent generates **all** R workloads once (one vectorised
  ``build_workload_batch`` pass — this is where the replication
  streams are consumed, so seeding stays centralized), publishes the
  concatenated arrays through a memory-mapped scratch file, and hands
  each worker only ``(path, offsets, rep range)``: workers attach
  zero-copy views and run the engine's stacked solver on their slice.
  Nothing large is ever pickled, and each replication's output is
  bit-identical to its sequential twin because the workload draw and
  the per-replication sample path are both unchanged.
* **Pooled** — everything else flattens into a one-replication-per-task
  list executed with :mod:`multiprocessing` (chunked sensibly, so
  large sweeps do not pay per-task IPC overhead).

Determinism: every replication's seed is derived **centrally** from the
spec (:func:`repro.rng.replication_seeds`) before any fan-out, and each
replication consumes only its own stream — so the numbers are
bit-for-bit identical whatever ``jobs`` is, whichever route runs,
and identical to calling :func:`repro.sim.run_spec.run_spec` by hand
(the batched route's bit-identity is golden-pinned in
``tests/test_golden_dispatch.py``; the three-route equivalence in
``tests/test_execution_paths.py``).
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rng import replication_seeds
from repro.runner.results import DelayMeasurement
from repro.runner.spec import ScenarioSpec
from repro.runner.store import ResultsStore
from repro.sim.run_spec import ReplicationOutput, run_spec
from repro.stats import mean_confidence_interval

__all__ = [
    "MeasureProgress",
    "MeasurementCancelled",
    "measure",
    "measure_many",
    "run_replication",
    "theory_bounds",
]


class MeasurementCancelled(RuntimeError):
    """A cooperative cancel fired between task waves.

    Every replication completed before the cancel is already persisted
    (when a store was given), so re-issuing the same call resumes from
    those per-replication cells instead of recomputing them.
    ``completed`` counts the replications this call finished before
    stopping.
    """

    def __init__(self, completed: int = 0) -> None:
        super().__init__(
            f"measurement cancelled after {completed} replication(s)"
        )
        self.completed = completed


@dataclass(frozen=True)
class MeasureProgress:
    """One progress beat from :func:`measure_many`.

    Emitted per spec when its cached replications are counted, then
    after every completed task wave.  ``completed`` counts
    replications newly simulated by this call, ``cached`` those served
    from per-replication cells; ``remaining`` is what is still queued.
    """

    spec_index: int
    completed: int
    cached: int
    total: int

    @property
    def remaining(self) -> int:
        return self.total - self.completed - self.cached



def theory_bounds(spec: ScenarioSpec) -> Tuple[float, float]:
    """The closed-form bracket for *spec*, when it has one.

    Entirely plugin-driven: the scheme plugin's
    :meth:`~repro.plugins.api.SchemePlugin.theory_bounds` hook composes
    the answer (typically from the network plugin's
    :meth:`~repro.networks.api.NetworkPlugin.greedy_theory_bounds`) —
    greedy routing gets Props 12/13 on the hypercube and 14/17 on the
    butterfly, the slotted variant the §3.4 upper bound next to the
    Prop 13 lower bound.  Unstable operating points and schemes outside
    the paper's analysis get ``(-inf, +inf)`` — "no known constraint".
    """
    lower, upper = spec.plugin.theory_bounds(spec)
    return (float(lower), float(upper))


def run_replication(
    spec: ScenarioSpec, rep: int = 0, *, keep_record: bool = True
) -> ReplicationOutput:
    """Execute replication *rep* of *spec* under its seed policy.

    The low-level door for callers that need per-packet records or
    scheme-specific result objects; :func:`measure` is the pooled path.
    """
    seeds = replication_seeds(spec.base_seed, spec.replications, spec.seed_policy)
    return run_spec(spec, seeds[rep], keep_record=keep_record)


#: one unit of pool work, tagged by route; every variant returns one
#: ReplicationOutput per replication, in seed order:
#:
#: * ``("seq", spec, seeds)`` — a plain per-seed loop
#: * ``("batch", spec, seeds, runner_or_None, cpu)`` — one stacked
#:   engine computation; the resolved runner rides along only in
#:   process (closures do not cross the pool — workers rebuild from
#:   the spec)
#: * ``("shm", spec, path, bounds, horizons, lo, hi, cpu)`` —
#:   replications ``lo:hi`` of a shared pre-generated workload file
#:   (see :func:`_share_workloads` for the layout)
#:
#: ``cpu`` is the core the executing worker pins itself to
#: (``pin_workers``), or ``None``
_Task = Tuple[Any, ...]


def _worker_cpus(pin_workers: bool) -> Optional[List[int]]:
    """Cores available for round-robin worker pinning, or ``None``
    when pinning is off or the platform has no CPU affinity API."""
    if not pin_workers:
        return None
    try:
        cpus = sorted(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return None
    return cpus or None


def _pin_to_cpu(cpu: Optional[int]) -> None:
    """Pin the executing worker to *cpu* (no-op on ``None`` or where
    the platform lacks CPU affinity)."""
    if cpu is None:
        return
    try:
        os.sched_setaffinity(0, {int(cpu)})
    except (AttributeError, OSError):  # pragma: no cover - no-op
        pass


def _run_shm_task(task: _Task) -> List[ReplicationOutput]:
    """Attach the shared workload file and solve replications
    ``lo:hi`` as one stacked computation."""
    from repro.engines.api import batch_output
    from repro.traffic.workload import TrafficSample

    _, spec, path, bounds, horizons, lo, hi, cpu = task
    _pin_to_cpu(cpu)
    total = bounds[-1]
    times = np.memmap(path, dtype=np.float64, mode="r", shape=(total,))
    origins = np.memmap(
        path, dtype=np.int64, mode="r", offset=8 * total, shape=(total,)
    )
    dests = np.memmap(
        path, dtype=np.int64, mode="r", offset=16 * total, shape=(total,)
    )
    samples = [
        TrafficSample(
            np.asarray(times[bounds[r] : bounds[r + 1]]),
            np.asarray(origins[bounds[r] : bounds[r + 1]]),
            np.asarray(dests[bounds[r] : bounds[r + 1]]),
            horizons[r],
        )
        for r in range(lo, hi)
    ]
    engine = spec.plugin.batch_engine(spec)
    topology = spec.network_plugin.build_topology(spec)
    deliveries = engine.batch_deliveries(spec, topology, samples)
    return [
        batch_output(spec, sample, delivery)
        for sample, delivery in zip(samples, deliveries)
    ]


def _run_task(task: _Task) -> List[ReplicationOutput]:
    kind = task[0]
    if kind == "shm":
        return _run_shm_task(task)
    if kind == "batch":
        _, spec, seeds, runner, cpu = task
        _pin_to_cpu(cpu)
        if runner is None:
            runner = spec.plugin.batch_runner(spec)
        if runner is not None:
            return list(runner(seeds))
        return [run_spec(spec, seed) for seed in seeds]
    _, spec, seeds = task
    return [run_spec(spec, seed) for seed in seeds]


def _chunk_bounds(
    n: int, jobs: int, wave_reps: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Contiguous near-equal index ranges: one per worker (a 1-item
    range degenerates gracefully, so keeping every worker busy always
    beats a bigger batch).  ``wave_reps`` additionally caps every
    range at that many replications — the cancellation/progress
    granularity: cancel fires and cells persist between ranges, so a
    smaller cap trades batching throughput for responsiveness."""
    chunks = min(max(jobs, 1), n)
    if wave_reps is not None and wave_reps >= 1:
        chunks = max(chunks, math.ceil(n / wave_reps))
    chunks = min(chunks, n)
    bounds = np.linspace(0, n, chunks + 1).astype(int)
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def _chunked(
    seeds: Sequence[object], jobs: int, wave_reps: Optional[int] = None
) -> List[Tuple[object, ...]]:
    """Split a batched spec's seeds into contiguous chunks: one
    in-process batch at ``jobs <= 1``, otherwise one chunk per
    worker (both further split when ``wave_reps`` caps the wave)."""
    if len(seeds) <= 1:
        return [tuple(seeds)]
    bounds = _chunk_bounds(len(seeds), 1 if jobs <= 1 else jobs, wave_reps)
    return [tuple(seeds[lo:hi]) for lo, hi in bounds]


def _share_workloads(
    spec: ScenarioSpec, seeds: Sequence[object], scratch_dir: str, tag: int
) -> Optional[Tuple[str, Tuple[int, ...], Tuple[float, ...]]]:
    """Generate every seed's workload in the parent and publish the
    arrays through one memory-mapped scratch file.

    Layout (``total`` = packets across all replications): ``times`` as
    float64 at offset 0, ``origins`` as int64 at ``8 * total``,
    ``destinations`` as int64 at ``16 * total``; replication *r* owns
    rows ``bounds[r]:bounds[r + 1]``.  Returns ``None`` for an empty
    workload (nothing to share — the caller falls back to the plain
    batched route).
    """
    from repro.rng import as_generator

    net = spec.network_plugin
    samples = net.build_workload_batch(
        spec, spec.horizon, [as_generator(seed) for seed in seeds]
    )
    counts = np.array([s.num_packets for s in samples], dtype=np.int64)
    bounds = tuple(int(x) for x in np.concatenate(([0], np.cumsum(counts))))
    if bounds[-1] == 0:
        return None
    path = os.path.join(scratch_dir, f"workloads-{tag}.bin")
    with open(path, "wb") as fh:
        fh.write(
            np.concatenate(
                [np.asarray(s.times, dtype=np.float64) for s in samples]
            ).tobytes()
        )
        fh.write(
            np.concatenate(
                [np.asarray(s.origins, dtype=np.int64) for s in samples]
            ).tobytes()
        )
        fh.write(
            np.concatenate(
                [np.asarray(s.destinations, dtype=np.int64) for s in samples]
            ).tobytes()
        )
    horizons = tuple(float(s.horizon) for s in samples)
    return path, bounds, horizons


def _execute(
    tasks: Sequence[_Task],
    jobs: int,
    on_task_done: Optional[Callable[[int, List[ReplicationOutput]], None]] = None,
) -> List[ReplicationOutput]:
    """Run every task (in parallel when ``jobs > 1``) and concatenate
    their outputs in task order.

    *on_task_done* fires after each task completes, in task order —
    the hook :func:`measure_many` uses to persist cells incrementally,
    report progress, and check for cancellation.  A callback that
    raises aborts the run (in-flight pool workers are terminated by
    the pool's context manager); results streamed so far have already
    been handed to the callback.
    """
    chunks: List[List[ReplicationOutput]] = []

    def _done(i: int, outs: List[ReplicationOutput]) -> None:
        chunks.append(outs)
        if on_task_done is not None:
            on_task_done(i, outs)

    if jobs <= 1 or len(tasks) <= 1:
        for i, t in enumerate(tasks):
            _done(i, _run_task(t))
    else:
        workers = min(jobs, len(tasks))
        # amortise per-task IPC: aim for ~4 waves of tasks per worker
        chunksize = max(1, len(tasks) // (workers * 4))
        with get_context().Pool(processes=workers) as pool:
            for i, outs in enumerate(
                pool.imap(_run_task, tasks, chunksize=chunksize)
            ):
                _done(i, outs)
    return [out for chunk in chunks for out in chunk]


def _pool_measurement(
    spec: ScenarioSpec, outputs: Sequence[ReplicationOutput]
) -> DelayMeasurement:
    rep_means = np.array([o.mean_delay for o in outputs], dtype=float)
    ci = (
        mean_confidence_interval(rep_means)
        if rep_means.shape[0] >= 2
        else None
    )
    # a side metric is averaged over the replications that reported it
    # (replications may carry heterogeneous metric keys, e.g. when a
    # quantity is undefined on an empty sample)
    metric_sums: Dict[str, float] = {}
    metric_counts: Dict[str, int] = {}
    for o in outputs:
        for key, value in o.metrics:
            metric_sums[key] = metric_sums.get(key, 0.0) + value
            metric_counts[key] = metric_counts.get(key, 0) + 1
    metrics = tuple(
        sorted((k, v / metric_counts[k]) for k, v in metric_sums.items())
    )
    lower, upper = theory_bounds(spec)
    static = spec.is_static
    return DelayMeasurement(
        network=spec.network,
        d=spec.d,
        rho=spec.resolved_rho,
        p=spec.p,
        lam=spec.resolved_lam,
        horizon=0.0 if static else spec.horizon,
        num_packets=int(sum(o.num_packets for o in outputs)),
        mean_delay=float(rep_means.mean()),
        ci=ci,
        lower_bound=lower,
        upper_bound=upper,
        scheme=spec.scheme,
        traffic=spec.traffic,
        discipline=spec.discipline,
        scenario=spec.name,
        replication_delays=tuple(float(x) for x in rep_means),
        metrics=metrics,
    )


def measure(
    spec: ScenarioSpec,
    jobs: int = 1,
    store: Optional[ResultsStore] = None,
    refresh: bool = False,
    batch: bool = True,
    cancel: Optional[Callable[[], bool]] = None,
    progress: Optional[Callable[[MeasureProgress], None]] = None,
    wave_reps: Optional[int] = None,
    pin_workers: bool = False,
) -> DelayMeasurement:
    """Run every replication of *spec* (in parallel when ``jobs > 1``)
    and pool them into one :class:`DelayMeasurement`.

    With a *store*, a previously computed spec (same content hash) is
    returned from cache without simulating; ``refresh=True`` forces
    recomputation (and overwrites the cache cell).  ``batch=False``
    forces the one-replication-per-task route even when the spec's
    engine could batch (benchmarking and cross-validation).
    ``cancel``/``progress``/``wave_reps``/``pin_workers`` are forwarded
    to :func:`measure_many` — see there for the
    cooperative-cancellation and resumability contract.
    """
    return measure_many(
        [spec],
        jobs=jobs,
        store=store,
        refresh=refresh,
        batch=batch,
        cancel=cancel,
        progress=progress,
        wave_reps=wave_reps,
        pin_workers=pin_workers,
    )[0]


def measure_many(
    specs: Sequence[ScenarioSpec],
    jobs: int = 1,
    store: Optional[ResultsStore] = None,
    refresh: bool = False,
    batch: bool = True,
    cancel: Optional[Callable[[], bool]] = None,
    progress: Optional[Callable[[MeasureProgress], None]] = None,
    wave_reps: Optional[int] = None,
    pin_workers: bool = False,
) -> List[DelayMeasurement]:
    """Batched :func:`measure`: one flat task list across all *specs*.

    Cached specs contribute no tasks; the rest fan out together, so a
    20-cell sweep with 4 replications each keeps ``jobs`` processes
    busy.  A spec whose scheme exposes a batch runner contributes
    stacked replication-batch tasks — at ``jobs > 1``, when the scheme
    also exposes the engine behind the runner, its workloads are
    generated once in the parent and published to the workers through
    a memory-mapped scratch file (the shared-workload route: nothing
    large crosses the pool).  The rest contribute one task per
    replication.  The batch runner and engine are resolved **once per
    spec** here, never per task.

    Caching is two-level.  A spec whose pooled measurement is already
    stored is returned outright; otherwise the store is probed **per
    replication** (cells keyed by ``(replication_hash, k)``, which is
    independent of the replication count), so raising ``replications``
    on a previously measured spec simulates only the new replications
    and pools them with the cached ones.  All routes preserve the
    cells: a batched or shared-workload replication's output is
    bit-identical to its pooled twin.

    **Cancellation and resumability.**  *cancel* is polled between
    task waves (and once up front); when it returns true the run stops
    with :class:`MeasurementCancelled`.  Each wave's per-replication
    cells are persisted the moment the wave completes — not at the end
    of the whole run — so a cancelled (or crashed) call re-issued with
    the same store resumes from every finished replication.
    *wave_reps* caps how many replications one wave stacks (the
    cancel/persist granularity); *progress* receives a
    :class:`MeasureProgress` per spec up front (its cached count) and
    after every wave.

    *pin_workers* gives each shared-workload and chunked-batch task a
    core (round-robin over the process's CPU affinity set) that the
    executing worker pins itself to with :func:`os.sched_setaffinity`
    — steadier cache residency for the stacked kernels and the
    zero-copy memmap slices on multi-core hosts.  A
    runner-level knob, not a spec option: it cannot change a content
    hash or a cache cell, and it is a no-op where unsupported.
    """
    results: List[Optional[DelayMeasurement]] = [None] * len(specs)
    tasks: List[_Task] = []
    #: per task: (slot index, replication indices the task covers)
    meta: List[Tuple[int, Tuple[int, ...]]] = []
    #: per pending spec: (spec index, missing rep indices, cached outputs by rep)
    slots: List[Tuple[int, List[int], Dict[int, ReplicationOutput]]] = []
    scratch_dir: Optional[str] = None
    cpus = _worker_cpus(pin_workers)
    if cancel is not None and cancel():
        raise MeasurementCancelled(0)
    try:
        for i, spec in enumerate(specs):
            cached_reps: Dict[int, ReplicationOutput] = {}
            if store is not None and not refresh:
                cached = store.load(spec)
                if cached is not None:
                    results[i] = cached
                    if progress is not None:
                        progress(
                            MeasureProgress(
                                i, 0, spec.replications, spec.replications
                            )
                        )
                    continue
                cached_reps = {
                    k: out
                    for k in range(spec.replications)
                    if (out := store.load_replication(spec, k)) is not None
                }
            seeds = replication_seeds(
                spec.base_seed, spec.replications, spec.seed_policy
            )
            missing = [k for k in range(spec.replications) if k not in cached_reps]
            slot_idx = len(slots)
            slots.append((i, missing, cached_reps))
            if progress is not None:
                progress(
                    MeasureProgress(i, 0, len(cached_reps), spec.replications)
                )
            missing_seeds = [seeds[k] for k in missing]
            runner = (
                spec.plugin.batch_runner(spec) if batch and missing else None
            )
            if runner is None:
                for k, seed in zip(missing, missing_seeds):
                    tasks.append(("seq", spec, (seed,)))
                    meta.append((slot_idx, (k,)))
                continue
            shared = None
            if jobs > 1 and len(missing_seeds) > 1:
                engine = spec.plugin.batch_engine(spec)
                if engine is not None:
                    if scratch_dir is None:
                        scratch_dir = tempfile.mkdtemp(prefix="repro-shm-")
                    shared = _share_workloads(
                        spec, missing_seeds, scratch_dir, tag=len(tasks)
                    )
            if shared is not None:
                path, bounds, horizons = shared
                for lo, hi in _chunk_bounds(len(missing_seeds), jobs, wave_reps):
                    cpu = None if cpus is None else cpus[len(tasks) % len(cpus)]
                    tasks.append(
                        ("shm", spec, path, bounds, horizons, lo, hi, cpu)
                    )
                    meta.append((slot_idx, tuple(missing[lo:hi])))
            else:
                # the resolved runner closure rides along only when no
                # pool is involved; workers rebuild it from the spec
                payload = runner if jobs <= 1 else None
                for lo, hi in _chunk_bounds(
                    len(missing_seeds), 1 if jobs <= 1 else jobs, wave_reps
                ):
                    cpu = None if cpus is None else cpus[len(tasks) % len(cpus)]
                    tasks.append(
                        ("batch", spec, tuple(missing_seeds[lo:hi]), payload, cpu)
                    )
                    meta.append((slot_idx, tuple(missing[lo:hi])))

        completed_total = 0
        completed_by_slot = [0] * len(slots)

        def _on_task_done(t_idx: int, outs: List[ReplicationOutput]) -> None:
            nonlocal completed_total
            slot_idx, reps = meta[t_idx]
            i, _, cached_reps = slots[slot_idx]
            spec = specs[i]
            if store is not None:
                for k, out in zip(reps, outs):
                    store.save_replication(spec, k, out)
            completed_by_slot[slot_idx] += len(reps)
            completed_total += len(reps)
            if progress is not None:
                progress(
                    MeasureProgress(
                        i,
                        completed_by_slot[slot_idx],
                        len(cached_reps),
                        spec.replications,
                    )
                )
            if cancel is not None and cancel():
                raise MeasurementCancelled(completed_total)

        outputs = _execute(tasks, jobs, _on_task_done)
    finally:
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)
    cursor = 0
    for i, missing, cached_reps in slots:
        spec = specs[i]
        chunk = outputs[cursor : cursor + len(missing)]
        cursor += len(missing)
        by_rep = dict(cached_reps)
        by_rep.update(zip(missing, chunk))
        ordered = [by_rep[k] for k in range(spec.replications)]
        m = _pool_measurement(spec, ordered)
        if store is not None:
            store.save(spec, m)
        results[i] = m
    return results  # type: ignore[return-value]
