"""Parallel scenario execution: replication fan-out and pooling.

The hot path of every experiment is running R independent replications
of one spec (or a whole sweep of specs).  This module executes that
fan-out with :mod:`multiprocessing`, flattening *all* replications of
*all* requested specs into one task list so a sweep saturates the pool
even when individual specs have few replications.

Determinism: every replication's seed is derived **centrally** from the
spec (:func:`repro.rng.replication_seeds`) before any fan-out, and each
task consumes only its own stream — so the numbers are bit-for-bit
identical whatever ``jobs`` is, and identical between a pooled run and
calling :func:`repro.sim.run_spec.run_spec` by hand.
"""

from __future__ import annotations

from multiprocessing import get_context
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rng import replication_seeds
from repro.runner.results import DelayMeasurement
from repro.runner.spec import ScenarioSpec
from repro.runner.store import ResultsStore
from repro.sim.run_spec import ReplicationOutput, run_spec
from repro.stats import mean_confidence_interval

__all__ = [
    "measure",
    "measure_many",
    "run_replication",
    "theory_bounds",
]


def theory_bounds(spec: ScenarioSpec) -> Tuple[float, float]:
    """The closed-form bracket for *spec*, when it has one.

    Entirely plugin-driven: the scheme plugin's
    :meth:`~repro.plugins.api.SchemePlugin.theory_bounds` hook composes
    the answer (typically from the network plugin's
    :meth:`~repro.networks.api.NetworkPlugin.greedy_theory_bounds`) —
    greedy routing gets Props 12/13 on the hypercube and 14/17 on the
    butterfly, the slotted variant the §3.4 upper bound next to the
    Prop 13 lower bound.  Unstable operating points and schemes outside
    the paper's analysis get ``(-inf, +inf)`` — "no known constraint".
    """
    lower, upper = spec.plugin.theory_bounds(spec)
    return (float(lower), float(upper))


def run_replication(
    spec: ScenarioSpec, rep: int = 0, *, keep_record: bool = True
) -> ReplicationOutput:
    """Execute replication *rep* of *spec* under its seed policy.

    The low-level door for callers that need per-packet records or
    scheme-specific result objects; :func:`measure` is the pooled path.
    """
    seeds = replication_seeds(spec.base_seed, spec.replications, spec.seed_policy)
    return run_spec(spec, seeds[rep], keep_record=keep_record)


def _run_task(task: Tuple[ScenarioSpec, object]) -> ReplicationOutput:
    spec, seed = task
    return run_spec(spec, seed)


def _execute(
    tasks: Sequence[Tuple[ScenarioSpec, object]], jobs: int
) -> List[ReplicationOutput]:
    if jobs <= 1 or len(tasks) <= 1:
        return [_run_task(t) for t in tasks]
    with get_context().Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(_run_task, tasks, chunksize=1)


def _pool_measurement(
    spec: ScenarioSpec, outputs: Sequence[ReplicationOutput]
) -> DelayMeasurement:
    rep_means = np.array([o.mean_delay for o in outputs], dtype=float)
    ci = (
        mean_confidence_interval(rep_means)
        if rep_means.shape[0] >= 2
        else None
    )
    metric_sums: Dict[str, float] = {}
    for o in outputs:
        for key, value in o.metrics:
            metric_sums[key] = metric_sums.get(key, 0.0) + value
    metrics = tuple(
        sorted((k, v / len(outputs)) for k, v in metric_sums.items())
    )
    lower, upper = theory_bounds(spec)
    static = spec.is_static
    return DelayMeasurement(
        network=spec.network,
        d=spec.d,
        rho=spec.resolved_rho,
        p=spec.p,
        lam=spec.resolved_lam,
        horizon=0.0 if static else spec.horizon,
        num_packets=int(sum(o.num_packets for o in outputs)),
        mean_delay=float(rep_means.mean()),
        ci=ci,
        lower_bound=lower,
        upper_bound=upper,
        scheme=spec.scheme,
        discipline=spec.discipline,
        scenario=spec.name,
        replication_delays=tuple(float(x) for x in rep_means),
        metrics=metrics,
    )


def measure(
    spec: ScenarioSpec,
    jobs: int = 1,
    store: Optional[ResultsStore] = None,
    refresh: bool = False,
) -> DelayMeasurement:
    """Run every replication of *spec* (in parallel when ``jobs > 1``)
    and pool them into one :class:`DelayMeasurement`.

    With a *store*, a previously computed spec (same content hash) is
    returned from cache without simulating; ``refresh=True`` forces
    recomputation (and overwrites the cache cell).
    """
    return measure_many([spec], jobs=jobs, store=store, refresh=refresh)[0]


def measure_many(
    specs: Sequence[ScenarioSpec],
    jobs: int = 1,
    store: Optional[ResultsStore] = None,
    refresh: bool = False,
) -> List[DelayMeasurement]:
    """Batched :func:`measure`: one flat task list across all *specs*.

    Cached specs contribute no tasks; the rest fan out together, so a
    20-cell sweep with 4 replications each keeps ``jobs`` processes
    busy on 80 independent tasks.

    Caching is two-level.  A spec whose pooled measurement is already
    stored is returned outright; otherwise the store is probed **per
    replication** (cells keyed by ``(replication_hash, k)``, which is
    independent of the replication count), so raising ``replications``
    on a previously measured spec simulates only the new replications
    and pools them with the cached ones.
    """
    results: List[Optional[DelayMeasurement]] = [None] * len(specs)
    tasks: List[Tuple[ScenarioSpec, object]] = []
    #: per pending spec: (spec index, missing rep indices, cached outputs by rep)
    slots: List[Tuple[int, List[int], Dict[int, ReplicationOutput]]] = []
    for i, spec in enumerate(specs):
        cached_reps: Dict[int, ReplicationOutput] = {}
        if store is not None and not refresh:
            cached = store.load(spec)
            if cached is not None:
                results[i] = cached
                continue
            cached_reps = {
                k: out
                for k in range(spec.replications)
                if (out := store.load_replication(spec, k)) is not None
            }
        seeds = replication_seeds(
            spec.base_seed, spec.replications, spec.seed_policy
        )
        missing = [k for k in range(spec.replications) if k not in cached_reps]
        slots.append((i, missing, cached_reps))
        tasks.extend((spec, seeds[k]) for k in missing)
    outputs = _execute(tasks, jobs)
    cursor = 0
    for i, missing, cached_reps in slots:
        spec = specs[i]
        chunk = outputs[cursor : cursor + len(missing)]
        cursor += len(missing)
        by_rep = dict(cached_reps)
        by_rep.update(zip(missing, chunk))
        ordered = [by_rep[k] for k in range(spec.replications)]
        m = _pool_measurement(spec, ordered)
        if store is not None:
            for k, out in zip(missing, chunk):
                store.save_replication(spec, k, out)
            store.save(spec, m)
        results[i] = m
    return results  # type: ignore[return-value]
