"""Declarative experiment scenarios.

A :class:`ScenarioSpec` freezes everything that determines one
measurement: the network, the routing scheme, the queueing discipline,
the operating point ``(d, rho-or-lam, p)``, the horizon and trimming
windows, the replication count, and the seed policy.  Specs are
immutable, hashable, picklable (they cross process boundaries in the
parallel engine) and content-addressed: :meth:`ScenarioSpec.content_hash`
keys the results cache, so two specs that would produce the same
numbers share one cache cell regardless of how they are named.

Scheme-specific knobs (slot length ``tau``, a fixed ``dim_order``, the
destination ``law``, the static ``perm``) travel in the ``extra``
mapping, stored as a sorted tuple of pairs (tuples all the way down)
to stay hashable.

Validation is **capability-driven along all four axes**: the scheme
resolves to a :class:`~repro.plugins.api.SchemePlugin` through the
scheme registry, the network to a
:class:`~repro.networks.api.NetworkPlugin` through the network
registry, the traffic law to a
:class:`~repro.traffic.api.TrafficPlugin` through the traffic
registry, and the engine to an
:class:`~repro.engines.api.EnginePlugin` through the engine registry,
and their declared capabilities decide which scheme x network x
traffic x engine x discipline x option combinations the spec may form
— so an invalid spec is rejected with a message enumerating what *is*
available.  There is no hard-coded scheme, network, traffic or engine
list here; registering a new plugin on any axis extends the accepted
vocabulary automatically.  Network, traffic and engine names are
normalised to their canonical spellings (aliases like ``"cube"``
resolve to ``"hypercube"``, ``"bernoulli"`` to ``"uniform"``,
``"eventsim"`` to ``"event"``) **before** content-hashing, so an alias
and its canonical name always share one cache cell — as does the
retired ``extra={"law": ...}`` spelling, which folds into the traffic
field during normalisation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

__all__ = [
    "ScenarioSpec",
    "DISCIPLINES",
    "SEED_POLICIES",
]

DISCIPLINES = ("fifo", "ps")
#: ``spawn`` derives replication seeds via ``SeedSequence(base_seed).spawn``
#: (provably independent streams); ``sequential`` uses ``base_seed + k``,
#: matching the historical hand-rolled experiment loops bit for bit.
SEED_POLICIES = ("spawn", "sequential")

ExtraValue = Union[int, float, str, bool, Tuple[Any, ...]]


def _freeze_value(key: str, value: Any) -> ExtraValue:
    """Deep-freeze one option value: lists/tuples become tuples
    recursively, so every spec stays hashable and ``from_dict`` accepts
    what ``to_dict`` (or a JSON round trip) produced."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(key, x) for x in value)
    if not isinstance(value, (int, float, str, bool)):
        raise ConfigurationError(
            f"extra[{key!r}] must be a scalar or (nested) sequence of "
            f"scalars, got {type(value)}"
        )
    return value


def _thaw_value(value: Any) -> Any:
    """Inverse of :func:`_freeze_value` for serialisation: tuples become
    lists recursively (the JSON-native shape)."""
    if isinstance(value, tuple):
        return [_thaw_value(x) for x in value]
    return value


def _freeze_extra(
    extra: Union[Mapping[str, Any], Sequence[Tuple[str, Any]], None],
) -> Tuple[Tuple[str, ExtraValue], ...]:
    if extra is None:
        return ()
    items = extra.items() if isinstance(extra, Mapping) else extra
    frozen = [(str(key), _freeze_value(key, value)) for key, value in items]
    frozen.sort()
    names = [k for k, _ in frozen]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate keys in extra: {names}")
    return tuple(frozen)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified experiment cell.

    Exactly one of ``rho`` (load factor) and ``lam`` (raw per-node
    rate) must be given for dynamic schemes; static schemes (one-shot
    permutation tasks, declared via their plugin's ``static``
    capability) take neither.
    """

    name: str
    network: str = "hypercube"
    scheme: str = "greedy"
    traffic: str = "uniform"
    discipline: str = "fifo"
    d: int = 4
    rho: Optional[float] = None
    lam: Optional[float] = None
    p: float = 0.5
    horizon: float = 400.0
    warmup_fraction: float = 0.2
    cooldown_fraction: float = 0.1
    replications: int = 4
    base_seed: int = 0
    seed_policy: str = "spawn"
    engine: str = "auto"
    extra: Tuple[Tuple[str, ExtraValue], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        from repro.engines.registry import normalize_engine_name
        from repro.networks.registry import get_network
        from repro.plugins.registry import get_plugin
        from repro.traffic.registry import canonical_traffic_name, merge_legacy_law

        object.__setattr__(self, "extra", _freeze_extra(self.extra))
        network = get_network(self.network)  # enumerates networks on a miss
        # canonicalise aliases before anything hashes or validates; the
        # engine vocabulary lives in the engine registry (canonical
        # names, aliases, plus the auto/vectorized directives)
        object.__setattr__(self, "network", network.name)
        object.__setattr__(self, "engine", normalize_engine_name(self.engine))
        # the retired extra={"law": ...} spelling folds into the
        # traffic axis (the mapping lives in the traffic registry), so
        # legacy specs normalise — pre-content-hash — onto the same
        # cache cells as their traffic-axis twins
        traffic_name = self.traffic
        law = next((v for k, v in self.extra if k == "law"), None)
        if law is not None:
            traffic_name = merge_legacy_law(traffic_name, law)
            object.__setattr__(
                self,
                "extra",
                tuple((k, v) for k, v in self.extra if k != "law"),
            )
        object.__setattr__(
            self, "traffic", canonical_traffic_name(traffic_name)
        )
        plugin = get_plugin(self.scheme)  # enumerates schemes on a miss
        if self.discipline not in DISCIPLINES:
            raise ConfigurationError(
                f"unknown discipline {self.discipline!r}; "
                f"one of {', '.join(DISCIPLINES)}"
            )
        if self.seed_policy not in SEED_POLICIES:
            raise ConfigurationError(
                f"unknown seed policy {self.seed_policy!r}; "
                f"one of {', '.join(SEED_POLICIES)}"
            )
        plugin.validate(self)
        network.validate(self)
        self.traffic_plugin.validate(self)
        if self.d < 1:
            raise ConfigurationError(f"d must be >= 1, got {self.d}")
        if not 0.0 <= self.p <= 1.0:
            raise ConfigurationError(f"p must lie in [0, 1], got {self.p}")
        if plugin.capabilities.static:
            if self.rho is not None or self.lam is not None:
                raise ConfigurationError(
                    f"static scheme {self.scheme!r} takes neither rho nor lam"
                )
        else:
            if (self.rho is None) == (self.lam is None):
                raise ConfigurationError(
                    "exactly one of rho and lam must be set "
                    f"(got rho={self.rho}, lam={self.lam})"
                )
            if self.horizon <= 0:
                raise ConfigurationError(f"horizon must be > 0, got {self.horizon}")
        if not 0 <= self.warmup_fraction < 1 or not 0 <= self.cooldown_fraction < 1:
            raise ConfigurationError("trim fractions must lie in [0, 1)")
        if self.warmup_fraction + self.cooldown_fraction >= 1:
            raise ConfigurationError("warmup + cooldown must leave a window")
        if self.replications < 1:
            raise ConfigurationError(
                f"replications must be >= 1, got {self.replications}"
            )

    # -- derived quantities ---------------------------------------------------

    @property
    def plugin(self):
        """The :class:`~repro.plugins.api.SchemePlugin` running this spec."""
        from repro.plugins.registry import get_plugin

        return get_plugin(self.scheme)

    @property
    def network_plugin(self):
        """The :class:`~repro.networks.api.NetworkPlugin` this spec runs on."""
        from repro.networks.registry import get_network

        return get_network(self.network)

    @property
    def traffic_plugin(self):
        """The :class:`~repro.traffic.api.TrafficPlugin` generating
        this spec's workload."""
        from repro.traffic.registry import get_traffic

        return get_traffic(self.traffic)

    @property
    def is_static(self) -> bool:
        """One-shot permutation task (no arrival process)?"""
        return self.plugin.capabilities.static

    @property
    def resolved_lam(self) -> float:
        """Per-node arrival rate, whichever way the spec was given
        (the network plugin owns the load-factor -> rate law)."""
        if self.is_static:
            return float("nan")
        if self.lam is not None:
            return float(self.lam)
        return float(self.network_plugin.lam_for_load(self))

    @property
    def resolved_rho(self) -> float:
        """Load factor, whichever way the spec was given (the network
        plugin owns the rate -> load-factor law)."""
        if self.is_static:
            return float("nan")
        if self.rho is not None:
            return float(self.rho)
        return float(self.network_plugin.load_factor(self))

    def option(self, key: str, default: Any = None) -> Any:
        """Look up a scheme-specific knob from ``extra``."""
        for k, v in self.extra:
            if k == key:
                return v
        return default

    # -- derivation -----------------------------------------------------------

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy with fields overridden (``dataclasses.replace`` that
        also resolves the rho/lam exclusivity: overriding one clears
        the other unless both are given explicitly)."""
        if "rho" in changes and "lam" not in changes and self.lam is not None:
            changes["lam"] = None
        if "lam" in changes and "rho" not in changes and self.rho is not None:
            changes["rho"] = None
        if "extra" in changes:
            changes["extra"] = _freeze_extra(changes["extra"])
        return dataclasses.replace(self, **changes)

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["extra"] = {k: _thaw_value(v) for k, v in self.extra}
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown spec fields: {sorted(unknown)}")
        return cls(**dict(data))

    def _hash_payload(self) -> Dict[str, Any]:
        payload = self.to_dict()
        payload.pop("name")
        payload.pop("description")
        return payload

    def content_hash(self) -> str:
        """Stable digest of everything that affects the numbers.

        ``name`` and ``description`` are labels, not physics: two specs
        differing only there share a cache cell.
        """
        blob = json.dumps(
            self._hash_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:20]

    def replication_hash(self) -> str:
        """Digest of everything that affects **one replication**.

        Like :meth:`content_hash` but additionally independent of
        ``replications``: replication *k*'s seed depends only on
        ``(base_seed, seed_policy, k)`` under either policy, so raising
        the replication count of a spec extends — never invalidates —
        its per-replication cache cells.
        """
        payload = self._hash_payload()
        payload.pop("replications")
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:20]
