"""Concurrent-safe results-store backends.

:class:`~repro.runner.store.ResultsStore` is already safe for the
one-writer-many-readers case (atomic temp-file + rename), but a busy
``repro serve`` deployment has N worker processes and the server all
mutating one cache root.  Two backends harden that case behind the
same interface:

* :class:`LockedResultsStore` — the plain file layout plus a
  cross-process ``fcntl`` advisory lock (one ``.lock`` file at the
  root) held exclusively around every mutating operation, so cell
  writes never interleave with a concurrent ``clear``/``prune`` pass.
  Byte-identical cells to the plain store — the lock changes *when*
  writes happen, never *what* is written — so the CLI and the server
  can share one cache root freely.
* :class:`SqliteResultsStore` — an opt-in sqlite file (``cells.sqlite``
  under the root) holding the same JSON payloads in two tables, with
  sqlite's own locking providing atomicity.  Useful where advisory
  file locks are unreliable (some network filesystems).

:func:`make_store` picks a backend by name (``file`` / ``locked`` /
``sqlite``), defaulting to ``$REPRO_CACHE_BACKEND`` or ``file``.
Long-lived processes must pin the root once and pass it explicitly —
see the :func:`~repro.runner.store.default_cache_dir` caveat.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.runner.results import (
    DelayMeasurement,
    measurement_from_dict,
)
from repro.runner.spec import ScenarioSpec
from repro.runner.store import ResultsStore, StoreStats, default_cache_dir
from repro.sim.run_spec import ReplicationOutput

try:  # POSIX only; on other platforms the locked backend degrades to plain
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "LockedResultsStore",
    "SqliteResultsStore",
    "make_store",
    "STORE_BACKENDS",
    "default_cache_dir",
]

STORE_BACKENDS = ("file", "locked", "sqlite")
_BACKEND_ENV_VAR = "REPRO_CACHE_BACKEND"


class LockedResultsStore(ResultsStore):
    """The file store under a cross-process advisory lock.

    Every mutating operation (cell writes, ``clear``, ``prune``) takes
    an exclusive ``flock`` on ``<root>/.lock``; reads stay lock-free
    because the underlying writes are atomic renames.  The lock file
    itself is foreign to the cell-naming scheme, so ``clear`` never
    deletes it.
    """

    def _lock_path(self) -> Path:
        return self.root / ".lock"

    @contextmanager
    def _locked(self) -> Iterator[None]:
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self._lock_path(), os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def save(self, spec: ScenarioSpec, measurement: DelayMeasurement) -> Path:
        with self._locked():
            return super().save(spec, measurement)

    def save_replication(
        self, spec: ScenarioSpec, rep: int, out: ReplicationOutput
    ) -> Path:
        with self._locked():
            return super().save_replication(spec, rep, out)

    def clear(self) -> StoreStats:
        with self._locked():
            return super().clear()

    def prune(
        self,
        older_than: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> StoreStats:
        with self._locked():
            return super().prune(older_than, max_bytes, now)


class SqliteResultsStore(ResultsStore):
    """The same cell vocabulary in one sqlite file.

    Payloads are the exact JSON text the file backend would write, so
    switching backends never changes what a cached measurement decodes
    to.  A connection is opened per operation (safe across ``fork``
    and process pools) with a generous busy timeout; writes go through
    ``INSERT OR REPLACE``, which sqlite applies atomically.
    """

    _SCHEMA = (
        "CREATE TABLE IF NOT EXISTS pooled ("
        " hash TEXT PRIMARY KEY, payload TEXT NOT NULL, mtime REAL NOT NULL)",
        "CREATE TABLE IF NOT EXISTS replications ("
        " hash TEXT NOT NULL, rep INTEGER NOT NULL,"
        " payload TEXT NOT NULL, mtime REAL NOT NULL,"
        " PRIMARY KEY (hash, rep))",
    )

    @property
    def db_path(self) -> Path:
        return self.root / "cells.sqlite"

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        self.root.mkdir(parents=True, exist_ok=True)
        con = sqlite3.connect(self.db_path, timeout=30.0)
        try:
            con.execute("PRAGMA busy_timeout=30000")
            for stmt in self._SCHEMA:
                con.execute(stmt)
            yield con
            con.commit()
        finally:
            con.close()

    @staticmethod
    def _encode(payload: Dict[str, Any]) -> str:
        # the file backend's exact serialisation, for cross-backend parity
        return json.dumps(payload, indent=1, sort_keys=True)

    # -- pooled cells -------------------------------------------------------

    def contains(self, spec: ScenarioSpec) -> bool:
        return self.load(spec) is not None

    def load(self, spec: ScenarioSpec) -> Optional[DelayMeasurement]:
        row = self._fetch(
            "SELECT payload FROM pooled WHERE hash = ?", (spec.content_hash(),)
        )
        if row is None:
            return None
        try:
            return measurement_from_dict(json.loads(row[0])["result"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def save(self, spec: ScenarioSpec, measurement: DelayMeasurement) -> Path:
        from repro.runner.results import measurement_to_dict

        payload = {
            "spec": spec.to_dict(),
            "result": measurement_to_dict(measurement),
        }
        with self._connect() as con:
            con.execute(
                "INSERT OR REPLACE INTO pooled (hash, payload, mtime)"
                " VALUES (?, ?, ?)",
                (spec.content_hash(), self._encode(payload), time.time()),
            )
        return self.db_path

    # -- per-replication cells ----------------------------------------------

    def load_replication(
        self, spec: ScenarioSpec, rep: int
    ) -> Optional[ReplicationOutput]:
        from repro.runner.results import _decode_float

        row = self._fetch(
            "SELECT payload FROM replications WHERE hash = ? AND rep = ?",
            (spec.replication_hash(), int(rep)),
        )
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
            return ReplicationOutput(
                mean_delay=_decode_float(payload["mean_delay"]),
                num_packets=int(payload["num_packets"]),
                metrics=tuple(
                    (str(k), _decode_float(v)) for k, v in payload["metrics"]
                ),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def save_replication(
        self, spec: ScenarioSpec, rep: int, out: ReplicationOutput
    ) -> Path:
        from repro.runner.results import _encode_float

        payload = {
            "spec": spec.to_dict(),
            "replication": rep,
            "mean_delay": _encode_float(out.mean_delay),
            "num_packets": out.num_packets,
            "metrics": [[k, _encode_float(v)] for k, v in out.metrics],
        }
        with self._connect() as con:
            con.execute(
                "INSERT OR REPLACE INTO replications"
                " (hash, rep, payload, mtime) VALUES (?, ?, ?, ?)",
                (
                    spec.replication_hash(),
                    int(rep),
                    self._encode(payload),
                    time.time(),
                ),
            )
        return self.db_path

    # -- maintenance --------------------------------------------------------

    def _fetch(self, sql: str, params: Tuple[Any, ...]) -> Optional[Tuple]:
        if not self.db_path.is_file():
            return None
        with self._connect() as con:
            return con.execute(sql, params).fetchone()

    def __len__(self) -> int:
        return self.stats().pooled

    def stats(self, verify: bool = False) -> StoreStats:
        if not self.db_path.is_file():
            return StoreStats(0, 0, 0)
        with self._connect() as con:
            rows = list(
                con.execute("SELECT payload FROM pooled")
            ) + list(con.execute("SELECT payload FROM replications"))
            pooled = con.execute("SELECT COUNT(*) FROM pooled").fetchone()[0]
            reps = con.execute(
                "SELECT COUNT(*) FROM replications"
            ).fetchone()[0]
        total = sum(len(r[0].encode()) for r in rows)
        corrupt = 0
        if verify:
            for (text,) in rows:
                try:
                    if not isinstance(json.loads(text), dict):
                        corrupt += 1
                except (json.JSONDecodeError, UnicodeDecodeError):
                    corrupt += 1
        return StoreStats(pooled, reps, total, corrupt)

    def clear(self) -> StoreStats:
        before = self.stats()
        if not self.db_path.is_file():
            return before
        with self._connect() as con:
            con.execute("DELETE FROM pooled")
            con.execute("DELETE FROM replications")
        return before

    def prune(
        self,
        older_than: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> StoreStats:
        if not self.db_path.is_file():
            return StoreStats(0, 0, 0)
        now = time.time() if now is None else now
        with self._connect() as con:
            cells: List[Tuple[str, Any, float, int, str]] = []
            for table, key_cols in (("pooled", ("hash",)),
                                    ("replications", ("hash", "rep"))):
                for row in con.execute(
                    f"SELECT {', '.join(key_cols)}, mtime, payload FROM {table}"
                ):
                    *keys, mtime, payload = row
                    cells.append(
                        (table, tuple(keys), float(mtime),
                         len(payload.encode()), payload)
                    )
            doomed = []
            if older_than is not None:
                cutoff = now - older_than
                doomed += [c for c in cells if c[2] < cutoff]
                cells = [c for c in cells if c[2] >= cutoff]
            if max_bytes is not None:
                cells.sort(key=lambda c: c[2])
                total = sum(c[3] for c in cells)
                while cells and total > max_bytes:
                    cell = cells.pop(0)
                    total -= cell[3]
                    doomed.append(cell)
            removed_p = removed_r = freed = 0
            for table, keys, _, size, _ in doomed:
                if table == "pooled":
                    con.execute("DELETE FROM pooled WHERE hash = ?", keys)
                    removed_p += 1
                else:
                    con.execute(
                        "DELETE FROM replications WHERE hash = ? AND rep = ?",
                        keys,
                    )
                    removed_r += 1
                freed += size
        return StoreStats(removed_p, removed_r, freed)


def make_store(
    root: Union[str, os.PathLike, None] = None,
    backend: Optional[str] = None,
) -> ResultsStore:
    """A results store at *root* using *backend* (``file`` / ``locked``
    / ``sqlite``; default ``$REPRO_CACHE_BACKEND`` or ``file``)."""
    backend = backend or os.environ.get(_BACKEND_ENV_VAR) or "file"
    if backend == "file":
        return ResultsStore(root)
    if backend == "locked":
        return LockedResultsStore(root)
    if backend == "sqlite":
        return SqliteResultsStore(root)
    raise ConfigurationError(
        f"unknown store backend {backend!r}; one of {', '.join(STORE_BACKENDS)}"
    )
