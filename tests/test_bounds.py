"""Tests for the paper's closed-form bounds (Props 2, 3, 12, 13, 14, 17)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    antipodal_exact_delay,
    butterfly_delay_lower_bound,
    butterfly_delay_upper_bound,
    butterfly_heavy_traffic_window,
    greedy_delay_lower_bound,
    greedy_delay_upper_bound,
    heavy_traffic_window,
    mean_queue_per_node_bound,
    oblivious_delay_lower_bound,
    slotted_delay_upper_bound,
    total_population_bound,
    universal_delay_lower_bound,
    universal_delay_lower_bound_simplified,
    zero_contention_delay,
)
from repro.errors import ConfigurationError, UnstableSystemError


class TestZeroContention:
    def test_is_dp(self):
        assert zero_contention_delay(8, 0.25) == pytest.approx(2.0)


class TestProp12Upper:
    def test_formula(self):
        # d=6, rho=0.8, p=0.5 -> 3/0.2 = 15
        assert greedy_delay_upper_bound(6, 1.6, 0.5) == pytest.approx(15.0)

    def test_linear_in_d(self):
        t4 = greedy_delay_upper_bound(4, 1.0, 0.5)
        t8 = greedy_delay_upper_bound(8, 1.0, 0.5)
        assert t8 == pytest.approx(2 * t4)

    def test_diverges_at_saturation(self):
        with pytest.raises(UnstableSystemError):
            greedy_delay_upper_bound(4, 2.0, 0.5)


class TestProp13Lower:
    def test_formula(self):
        d, lam, p = 5, 1.2, 0.5
        rho = 0.6
        expected = d * p + p * rho / (2 * (1 - rho))
        assert greedy_delay_lower_bound(d, lam, p) == pytest.approx(expected)

    def test_below_upper_bound(self):
        for d in (2, 5, 9):
            for rho in (0.1, 0.5, 0.9, 0.99):
                p = 0.5
                lam = rho / p
                assert greedy_delay_lower_bound(d, lam, p) <= greedy_delay_upper_bound(
                    d, lam, p
                )

    def test_reduces_to_dp_at_zero_load(self):
        assert greedy_delay_lower_bound(6, 1e-12, 0.5) == pytest.approx(3.0)


class TestProp2Universal:
    def test_max_structure(self):
        # light load: dp dominates
        assert universal_delay_lower_bound(6, 0.2, 0.5) == pytest.approx(3.0)

    def test_simplified_below_max_form(self):
        # (a1+a2)/2 <= max{a1, a2}
        for d in (2, 4):
            for rho in (0.3, 0.9):
                lam = rho / 0.5
                assert universal_delay_lower_bound_simplified(
                    d, lam, 0.5
                ) <= universal_delay_lower_bound(d, lam, 0.5) + 1e-12

    def test_methods_agree_roughly_heavy_traffic(self):
        d, p, rho = 3, 0.5, 0.95
        lam = rho / p
        a = universal_delay_lower_bound(d, lam, p, mdc_method="brumelle")
        b = universal_delay_lower_bound(d, lam, p, mdc_method="cosmetatos")
        assert a == pytest.approx(b, rel=0.25)

    def test_below_greedy_lower_bound(self):
        # the universal bound must not exceed the greedy scheme's bound
        for rho in (0.3, 0.7, 0.95):
            lam = rho / 0.5
            assert universal_delay_lower_bound(5, lam, 0.5) <= greedy_delay_lower_bound(
                5, lam, 0.5
            ) + 1e-9

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            universal_delay_lower_bound(3, 0.5, 0.5, mdc_method="nope")


class TestProp3Oblivious:
    def test_between_universal_and_greedy(self):
        d, p = 5, 0.5
        for rho in (0.5, 0.8, 0.95):
            lam = rho / p
            uni = universal_delay_lower_bound(d, lam, p)
            obl = oblivious_delay_lower_bound(d, lam, p)
            grd = greedy_delay_lower_bound(d, lam, p)
            assert uni <= obl + 1e-9  # oblivious class is smaller
            assert obl <= grd + 1e-9  # greedy is oblivious

    def test_formula_heavy(self):
        d, p, rho = 4, 0.5, 0.9
        lam = rho / p
        expected = p * (1 + rho / (2 * (1 - rho)))
        assert oblivious_delay_lower_bound(d, lam, p) == pytest.approx(
            max(d * p, expected)
        )


class TestHeavyTraffic:
    def test_window_structure(self):
        lo, hi = heavy_traffic_window(6, 0.5)
        assert lo == pytest.approx(0.25)
        assert hi == pytest.approx(3.0)

    def test_scaled_bounds_converge_into_window(self):
        # (1-rho) * bounds land inside [p/2, dp] as rho -> 1
        d, p = 5, 0.5
        lo, hi = heavy_traffic_window(d, p)
        for rho in (0.99, 0.999):
            lam = rho / p
            scaled_lo = (1 - rho) * greedy_delay_lower_bound(d, lam, p)
            scaled_hi = (1 - rho) * greedy_delay_upper_bound(d, lam, p)
            assert lo * 0.9 <= scaled_lo <= hi
            assert lo <= scaled_hi <= hi * 1.01


class TestAntipodal:
    def test_exact_p1_formula(self):
        # T = d + rho/(2(1-rho)) at p = 1: 4 + 0.5/(2*0.5) = 4.5
        assert antipodal_exact_delay(4, 0.5) == pytest.approx(4.5)

    def test_within_general_bounds(self):
        d, lam = 4, 0.6
        t = antipodal_exact_delay(d, lam)
        assert greedy_delay_lower_bound(d, lam, 1.0) <= t
        assert t <= greedy_delay_upper_bound(d, lam, 1.0)

    def test_matches_lower_bound_exactly(self):
        # §3.3: at p = 1 the Prop 13 lower bound is tight.
        d, lam = 5, 0.7
        assert antipodal_exact_delay(d, lam) == pytest.approx(
            greedy_delay_lower_bound(d, lam, 1.0)
        )


class TestQueueSizes:
    def test_per_node(self):
        assert mean_queue_per_node_bound(4, 1.6, 0.5) == pytest.approx(
            4 * 0.8 / 0.2
        )

    def test_total_scales_with_nodes(self):
        assert total_population_bound(4, 1.6, 0.5) == pytest.approx(
            16 * mean_queue_per_node_bound(4, 1.6, 0.5)
        )


class TestSlotted:
    def test_adds_tau(self):
        base = greedy_delay_upper_bound(4, 1.0, 0.5)
        assert slotted_delay_upper_bound(4, 1.0, 0.5, 0.5) == pytest.approx(base + 0.5)

    def test_rejects_bad_tau(self):
        with pytest.raises(ConfigurationError):
            slotted_delay_upper_bound(4, 1.0, 0.5, 0.0)
        with pytest.raises(ConfigurationError):
            slotted_delay_upper_bound(4, 1.0, 0.5, 2.0)


class TestButterflyBounds:
    def test_prop14_formula(self):
        d, lam, p = 4, 1.0, 0.5
        expected = d + lam * p**2 / (2 * (1 - lam * p)) + lam * (1 - p) ** 2 / (
            2 * (1 - lam * (1 - p))
        )
        assert butterfly_delay_lower_bound(d, lam, p) == pytest.approx(expected)

    def test_prop17_formula(self):
        d, lam, p = 4, 1.0, 0.3
        expected = d * p / (1 - lam * p) + d * (1 - p) / (1 - lam * (1 - p))
        assert butterfly_delay_upper_bound(d, lam, p) == pytest.approx(expected)

    def test_sandwich(self):
        for p in (0.2, 0.5, 0.8):
            for lam in (0.5, 1.0):
                if max(p, 1 - p) * lam < 1:
                    assert butterfly_delay_lower_bound(
                        5, lam, p
                    ) <= butterfly_delay_upper_bound(5, lam, p)

    def test_symmetric_in_p(self):
        # swapping p <-> 1-p swaps straight/vertical roles only
        assert butterfly_delay_upper_bound(4, 1.1, 0.3) == pytest.approx(
            butterfly_delay_upper_bound(4, 1.1, 0.7)
        )

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            butterfly_delay_upper_bound(4, 1.2, 0.9)  # lam*p > 1

    def test_heavy_traffic_window(self):
        lo, hi = butterfly_heavy_traffic_window(4, 0.7)
        assert lo == pytest.approx(0.35)
        assert hi == pytest.approx(2.8)


@settings(max_examples=100, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=12),
    rho=st.floats(min_value=0.01, max_value=0.99),
    p=st.floats(min_value=0.05, max_value=1.0),
)
def test_property_bound_ordering(d, rho, p):
    """For all stable parameters: dp <= Prop13 <= Prop12 bound."""
    lam = rho / p
    dp = zero_contention_delay(d, p)
    lo = greedy_delay_lower_bound(d, lam, p)
    hi = greedy_delay_upper_bound(d, lam, p)
    assert dp <= lo + 1e-12
    assert lo <= hi + 1e-12
