"""Tests for the equivalent networks Q and R (§3.1, §4.3, Lemma 4)."""

import numpy as np
import pytest

from repro.core.qnetwork import (
    ButterflyRSpec,
    ExplicitLevelledSpec,
    HypercubeQSpec,
    butterfly_external_from_sample,
    hypercube_external_from_sample,
)
from repro.errors import ConfigurationError
from repro.sim.feedforward import EXIT
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import ButterflyWorkload, HypercubeWorkload


class TestHypercubeQSpec:
    def test_dimensions(self, cube3):
        spec = HypercubeQSpec(cube3, 0.5)
        assert spec.num_arcs == 24
        assert spec.num_levels == 3

    def test_arc_level_is_dimension(self, cube3):
        spec = HypercubeQSpec(cube3, 0.5)
        assert spec.arc_level(0) == 0
        assert spec.arc_level(8) == 1
        assert spec.arc_level(23) == 2

    def test_property_a_external_rates(self, cube3):
        # rate lam p (1-p)^dim at every arc of that dimension
        spec = HypercubeQSpec(cube3, 0.25)
        rates = spec.external_rates(2.0)
        for arc in range(24):
            dim = arc // 8
            assert rates[arc] == pytest.approx(2.0 * 0.25 * 0.75**dim)

    def test_external_rates_sum_to_moving_packets(self, cube3):
        # total external rate = lam * 2^d * P[mask != 0]
        p, lam = 0.3, 1.5
        spec = HypercubeQSpec(cube3, p)
        expected = lam * 8 * (1 - (1 - p) ** 3)
        assert spec.external_rates(lam).sum() == pytest.approx(expected)

    def test_prop5_traffic_equations(self, cube4):
        # solving the flow equations must give lam*p at EVERY arc
        for p in (0.2, 0.5, 0.9):
            spec = HypercubeQSpec(cube4, p)
            solved = spec.solve_total_rates(1.3)
            np.testing.assert_allclose(solved, 1.3 * p, rtol=1e-12)

    def test_lemma4_decision_distribution(self, cube3, rng):
        # after crossing (x, dim 0), next dim j w.p. p(1-p)^(j-1), exit
        # w.p. (1-p)^(d-1)
        p = 0.4
        spec = HypercubeQSpec(cube3, p)
        arc = cube3.arc_index(5, 0)
        dec = spec.draw_decisions(arc, 100_000, rng)
        head = 5 ^ 1
        frac_exit = np.mean(dec == EXIT)
        frac_d1 = np.mean(dec == cube3.arc_index(head, 1))
        frac_d2 = np.mean(dec == cube3.arc_index(head, 2))
        assert frac_d1 == pytest.approx(p, abs=0.01)
        assert frac_d2 == pytest.approx(p * (1 - p), abs=0.01)
        assert frac_exit == pytest.approx((1 - p) ** 2, abs=0.01)

    def test_decisions_target_correct_tail(self, cube3, rng):
        # Property C: the next arc's tail is the current head
        spec = HypercubeQSpec(cube3, 0.5)
        arc = cube3.arc_index(3, 1)
        head = 3 ^ 2
        dec = spec.draw_decisions(arc, 1000, rng)
        moving = dec[dec != EXIT]
        tails = moving % 8
        assert np.all(tails == head)

    def test_last_dimension_always_exits(self, cube3, rng):
        spec = HypercubeQSpec(cube3, 0.5)
        arc = cube3.arc_index(0, 2)
        dec = spec.draw_decisions(arc, 500, rng)
        assert np.all(dec == EXIT)

    def test_p_one_deterministic_chain(self, cube3, rng):
        spec = HypercubeQSpec(cube3, 1.0)
        arc = cube3.arc_index(0, 0)
        dec = spec.draw_decisions(arc, 100, rng)
        assert np.all(dec == cube3.arc_index(1, 1))

    def test_rejects_p_zero(self, cube3):
        with pytest.raises(ConfigurationError):
            HypercubeQSpec(cube3, 0.0)

    def test_sample_external_arrivals(self, cube3):
        spec = HypercubeQSpec(cube3, 0.5)
        times, arcs = spec.sample_external_arrivals(1.0, 500.0, rng=5)
        assert np.all(np.diff(times) >= 0)
        # empirical per-dim split ~ geometric
        dims = arcs // 8
        frac0 = np.mean(dims == 0)
        assert frac0 == pytest.approx(0.5 / (1 - 0.5**3), abs=0.02)


class TestButterflyRSpec:
    def test_dimensions(self, bf3):
        spec = ButterflyRSpec(bf3, 0.5)
        assert spec.num_arcs == 48
        assert spec.num_levels == 3

    def test_prop15_traffic_equations(self, bf3):
        for p in (0.2, 0.5, 0.8):
            spec = ButterflyRSpec(bf3, p)
            solved = spec.solve_total_rates(1.1)
            expected = spec.total_rates(1.1)
            np.testing.assert_allclose(solved, expected, rtol=1e-12)

    def test_total_rates_by_kind(self, bf3):
        spec = ButterflyRSpec(bf3, 0.3)
        rates = spec.total_rates(2.0)
        kinds = np.arange(48) % 2
        np.testing.assert_allclose(rates[kinds == 0], 2.0 * 0.7)
        np.testing.assert_allclose(rates[kinds == 1], 2.0 * 0.3)

    def test_external_only_at_level0(self, bf3):
        spec = ButterflyRSpec(bf3, 0.5)
        rates = spec.external_rates(1.0)
        assert np.all(rates[16:] == 0.0)
        assert rates[:16].sum() == pytest.approx(8.0)

    def test_decision_kind_probability(self, bf3, rng):
        spec = ButterflyRSpec(bf3, 0.3)
        arc = bf3.arc_index(2, 0, 0)
        dec = spec.draw_decisions(arc, 50_000, rng)
        kinds = dec % 2
        assert np.mean(kinds == 1) == pytest.approx(0.3, abs=0.01)

    def test_final_level_exits(self, bf3, rng):
        spec = ButterflyRSpec(bf3, 0.5)
        arc = bf3.arc_index(0, 2, 1)
        assert np.all(spec.draw_decisions(arc, 100, rng) == EXIT)

    def test_vertical_decision_updates_row(self, bf3, rng):
        spec = ButterflyRSpec(bf3, 0.5)
        arc = bf3.arc_index(1, 0, 1)  # vertical at level 0: row 1 -> 0
        dec = spec.draw_decisions(arc, 200, rng)
        rows = (dec % 16) // 2
        assert np.all(rows == 0)


class TestExplicitSpec:
    def _fig2_network(self, q1=0.5, q2=0.5):
        """The Fig. 2 three-server network: S1, S2 feed S3."""
        return ExplicitLevelledSpec(
            levels=[0, 0, 1],
            routing={
                0: ([2, EXIT], [q1, 1 - q1]),
                1: ([2, EXIT], [q2, 1 - q2]),
            },
        )

    def test_fig2_structure(self):
        spec = self._fig2_network()
        assert spec.num_arcs == 3
        assert spec.num_levels == 2
        assert spec.arc_level(2) == 1

    def test_unrouted_arc_exits(self, rng):
        spec = self._fig2_network()
        assert np.all(spec.draw_decisions(2, 50, rng) == EXIT)

    def test_decision_frequencies(self, rng):
        spec = self._fig2_network(q1=0.8)
        dec = spec.draw_decisions(0, 20_000, rng)
        assert np.mean(dec == 2) == pytest.approx(0.8, abs=0.01)

    def test_rejects_level_violation(self):
        with pytest.raises(ConfigurationError):
            ExplicitLevelledSpec(levels=[0, 0], routing={0: ([1], [1.0])})

    def test_rejects_bad_pmf(self):
        with pytest.raises(ConfigurationError):
            ExplicitLevelledSpec(levels=[0, 1], routing={0: ([1], [0.5])})

    def test_rejects_empty_levels(self):
        with pytest.raises(ConfigurationError):
            ExplicitLevelledSpec(levels=[], routing={})


class TestExternalFromSample:
    def test_hypercube_entry_arcs(self, cube4):
        wl = HypercubeWorkload(cube4, 1.0, BernoulliFlipLaw(4, 0.5))
        sample = wl.generate(200.0, rng=3)
        times, arcs, pids = hypercube_external_from_sample(cube4, sample)
        diff = sample.origins ^ sample.destinations
        moving = diff != 0
        assert times.shape[0] == int(moving.sum())
        # entry arc dimension == lowest set bit of the mask
        for k in range(min(50, times.shape[0])):
            pid = pids[k]
            v = int(diff[pid])
            first = (v & -v).bit_length() - 1
            assert arcs[k] // 16 == first
            assert arcs[k] % 16 == sample.origins[pid]

    def test_butterfly_every_packet_enters(self, bf3):
        wl = ButterflyWorkload(bf3, 1.0, BernoulliFlipLaw(3, 0.5))
        sample = wl.generate(100.0, rng=4)
        times, arcs, pids = butterfly_external_from_sample(bf3, sample)
        assert times.shape[0] == sample.num_packets
        # all entry arcs at level 0
        assert np.all(arcs < 16)
        kinds = arcs % 2
        expected = (sample.origins ^ sample.destinations) & 1
        np.testing.assert_array_equal(kinds, expected)
