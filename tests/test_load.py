"""Tests for load factors and stability conditions (§2.1, §4.2)."""

import numpy as np
import pytest

from repro.core.load import (
    butterfly_lam_for_load,
    butterfly_load_factor,
    butterfly_stable,
    hypercube_load_factor,
    hypercube_load_vector,
    hypercube_stable,
    lam_for_load,
)
from repro.errors import ConfigurationError
from repro.traffic.destinations import BernoulliFlipLaw, TranslationInvariantLaw


class TestHypercubeLoad:
    def test_rho_is_lam_p(self):
        assert hypercube_load_factor(2.0, 0.4) == pytest.approx(0.8)

    def test_stability_boundary(self):
        assert hypercube_stable(1.9, 0.5)
        assert not hypercube_stable(2.0, 0.5)  # rho == 1 unstable
        assert not hypercube_stable(3.0, 0.5)

    def test_load_vector_bernoulli(self):
        law = BernoulliFlipLaw(4, 0.3)
        np.testing.assert_allclose(hypercube_load_vector(2.0, law), 0.6)

    def test_load_vector_general_law(self):
        # §2.2: rho_j = lam * sum_{v: v_j = 1} f(v)
        law = TranslationInvariantLaw(2, [0.4, 0.3, 0.2, 0.1])
        np.testing.assert_allclose(
            hypercube_load_vector(1.0, law), [0.3 + 0.1, 0.2 + 0.1]
        )

    def test_lam_for_load_roundtrip(self):
        lam = lam_for_load(0.8, 0.4)
        assert hypercube_load_factor(lam, 0.4) == pytest.approx(0.8)

    def test_lam_for_load_rejects_p_zero(self):
        with pytest.raises(ConfigurationError):
            lam_for_load(0.5, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            hypercube_load_factor(-1.0, 0.5)
        with pytest.raises(ConfigurationError):
            hypercube_load_factor(1.0, 1.5)


class TestButterflyLoad:
    def test_bottleneck_max(self):
        # eq. (17): rho = lam * max(p, 1-p)
        assert butterfly_load_factor(1.0, 0.7) == pytest.approx(0.7)
        assert butterfly_load_factor(1.0, 0.2) == pytest.approx(0.8)

    def test_p_half_is_best_case(self):
        # at fixed lam, rho is minimised at p = 1/2
        lam = 1.5
        assert butterfly_load_factor(lam, 0.5) <= butterfly_load_factor(lam, 0.3)
        assert butterfly_load_factor(lam, 0.5) <= butterfly_load_factor(lam, 0.9)

    def test_stability(self):
        assert butterfly_stable(1.9, 0.5)
        assert not butterfly_stable(2.0, 0.5)
        # asymmetric: straight arcs bottleneck at small p
        assert not butterfly_stable(1.2, 0.1)

    def test_lam_for_load_roundtrip(self):
        lam = butterfly_lam_for_load(0.9, 0.3)
        assert butterfly_load_factor(lam, 0.3) == pytest.approx(0.9)
