"""Store backends: concurrency safety, TTL/LRU pruning, corrupt-cell
accounting, and the TOCTOU tolerance of the maintenance passes.

The contracts under test:

* ``stats``/``clear``/``prune`` never crash when another process
  deletes a cell mid-iteration (the ``FileNotFoundError`` TOCTOU);
* two processes measuring the same spec simultaneously leave exactly
  one valid pooled cell and one valid cell per replication — no torn
  or duplicated writes — under both the locked-file and sqlite
  backends;
* the locked backend writes byte-identical cells to the plain store;
* ``prune`` evicts by TTL then LRU-by-mtime, reporting what it
  removed in the same shape as ``stats``.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    LockedResultsStore,
    ResultsStore,
    ScenarioSpec,
    SqliteResultsStore,
    make_store,
    measure,
)
from repro.runner.store import parse_duration, parse_size

SPEC = dict(name="backend-t", d=3, rho=0.5, horizon=60.0, replications=3)


def _cell(root, name: str, text: str = "{}"):
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{name}.json"
    path.write_text(text)
    return path


class TestParseHelpers:
    def test_durations(self):
        assert parse_duration("90") == 90.0
        assert parse_duration("45m") == 2700.0
        assert parse_duration("12h") == 43200.0
        assert parse_duration("30d") == 30 * 86400.0
        assert parse_duration(7.5) == 7.5

    def test_sizes(self):
        assert parse_size("4096") == 4096
        assert parse_size("512kb") == 512 * 1024
        assert parse_size("100mb") == 100 * 1024**2
        assert parse_size(10) == 10

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_duration("soon")
        with pytest.raises(ValueError):
            parse_size("plenty")


class TestToctouTolerance:
    """A cell deleted between ``iterdir()`` and ``stat()``/``unlink()``
    is a vanished file, never an error."""

    def test_stats_with_cell_deleted_mid_iteration(self, tmp_path):
        store = ResultsStore(tmp_path)
        _cell(tmp_path, "a" * 20)
        doomed = _cell(tmp_path, "b" * 20)
        original = store._pooled_cells

        def vanishing():
            for path in original():
                # a concurrent process clears the other cell mid-walk
                doomed.unlink(missing_ok=True)
                yield path

        store._pooled_cells = vanishing
        stats = store.stats()  # must not raise FileNotFoundError
        assert stats.pooled == 1

    def test_clear_with_cell_deleted_mid_iteration(self, tmp_path):
        store = ResultsStore(tmp_path)
        _cell(tmp_path, "a" * 20)
        doomed = _cell(tmp_path, "b" * 20)
        original = store._pooled_cells

        def vanishing():
            for path in original():
                doomed.unlink(missing_ok=True)
                yield path

        store._pooled_cells = vanishing
        removed = store.clear()
        assert removed.pooled == 1
        assert not any(tmp_path.glob("*.json"))

    def test_unlink_surveyed_tolerates_ghosts(self, tmp_path):
        ghost = (tmp_path / ("f" * 20 + ".json"), 0.0, 64)
        count, freed = ResultsStore._unlink_surveyed([ghost])
        assert (count, freed) == (0, 0)


class TestCorruptCells:
    def test_corrupt_counted_only_under_verify(self, tmp_path):
        store = ResultsStore(tmp_path)
        measure(ScenarioSpec(**SPEC), store=store)
        bad = _cell(tmp_path, "0" * 20, "{ torn write")
        assert store.stats().corrupt == 0
        verified = store.stats(verify=True)
        assert verified.corrupt == 1
        assert verified.pooled == 2  # corrupt cells still count as cells
        bad.write_text('"not a cell object"')
        assert store.stats(verify=True).corrupt == 1

    def test_cache_info_json_reports_corrupt(self, tmp_path, capsys):
        from repro.__main__ import main

        store = ResultsStore(tmp_path)
        measure(ScenarioSpec(**SPEC), store=store)
        _cell(tmp_path, "0" * 20, "{ torn write")
        assert main(["cache", "info", "--json", "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["corrupt"] == 1
        assert payload["pooled"] == 2
        assert payload["replications"] == SPEC["replications"]
        assert payload["root"] == str(tmp_path)


class TestPrune:
    def test_ttl_drops_only_old_cells(self, tmp_path):
        store = ResultsStore(tmp_path)
        old = _cell(tmp_path, "a" * 20)
        young = _cell(tmp_path, "b" * 20)
        os.utime(old, (1_000, 1_000))
        os.utime(young, (9_000, 9_000))
        removed = store.prune(older_than=5_000, now=10_000)
        assert (removed.pooled, removed.replications) == (1, 0)
        assert not old.exists() and young.exists()

    def test_lru_evicts_oldest_until_budget(self, tmp_path):
        store = ResultsStore(tmp_path)
        paths = []
        for i, name in enumerate(["a", "b", "c"]):
            p = _cell(tmp_path, name * 20, json.dumps({"pad": "x" * 100}))
            os.utime(p, (1_000 * (i + 1),) * 2)
            paths.append(p)
        size = paths[0].stat().st_size
        removed = store.prune(max_bytes=2 * size, now=10_000)
        assert removed.pooled == 1
        assert not paths[0].exists()  # oldest mtime went first
        assert paths[1].exists() and paths[2].exists()

    def test_prune_covers_replication_cells(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = ScenarioSpec(**SPEC)
        measure(spec, store=store)
        rep = store.replication_path_for(spec, 0)
        os.utime(rep, (1_000, 1_000))
        removed = store.prune(older_than=5_000, now=10_000)
        assert (removed.pooled, removed.replications) == (0, 1)
        assert store.load_replication(spec, 0) is None
        assert store.load_replication(spec, 1) is not None

    def test_noop_without_knobs(self, tmp_path):
        store = ResultsStore(tmp_path)
        _cell(tmp_path, "a" * 20)
        removed = store.prune()
        assert (removed.pooled, removed.replications) == (0, 0)
        assert store.stats().pooled == 1

    def test_cache_prune_cli_reports_json(self, tmp_path, capsys):
        from repro.__main__ import main

        store = ResultsStore(tmp_path)
        measure(ScenarioSpec(**SPEC), store=store)
        for path in store._pooled_cells():
            os.utime(path, (1_000, 1_000))
        code = main(
            ["cache", "prune", "--older-than", "30d", "--json",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["removed"]["pooled"] == 1
        assert payload["remaining"]["pooled"] == 0
        assert payload["remaining"]["replications"] == SPEC["replications"]

    def test_cache_prune_cli_requires_a_knob(self, tmp_path):
        from repro.__main__ import main

        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2


class TestLockedBackend:
    def test_cells_byte_identical_to_plain_store(self, tmp_path):
        spec = ScenarioSpec(**SPEC)
        plain_root, locked_root = tmp_path / "plain", tmp_path / "locked"
        measure(spec, store=ResultsStore(plain_root))
        measure(spec, store=LockedResultsStore(locked_root))
        plain = sorted(p for p in plain_root.rglob("*.json"))
        locked = sorted(p for p in locked_root.rglob("*.json"))
        assert [p.name for p in plain] == [p.name for p in locked]
        assert all(
            a.read_bytes() == b.read_bytes() for a, b in zip(plain, locked)
        )

    def test_clear_spares_the_lock_file(self, tmp_path):
        store = LockedResultsStore(tmp_path)
        measure(ScenarioSpec(**SPEC), store=store)
        assert (tmp_path / ".lock").exists()
        store.clear()
        assert (tmp_path / ".lock").exists()
        assert store.stats().pooled == 0


class TestSqliteBackend:
    def test_round_trip_matches_file_backend(self, tmp_path):
        spec = ScenarioSpec(**SPEC)
        file_m = measure(spec, store=ResultsStore(tmp_path / "f"))
        store = SqliteResultsStore(tmp_path / "s")
        sqlite_m = measure(spec, store=store)
        assert sqlite_m == file_m
        assert store.load(spec) == file_m
        assert store.contains(spec)
        for k in range(spec.replications):
            assert store.load_replication(spec, k) is not None

    def test_replication_cells_resume_growth(self, tmp_path):
        store = SqliteResultsStore(tmp_path)
        spec = ScenarioSpec(**SPEC)
        measure(spec, store=store)
        grown = spec.replace(replications=spec.replications + 2)
        measure(grown, store=store)
        stats = store.stats()
        assert stats.pooled == 2  # one cell per replication count
        assert stats.replications == grown.replications

    def test_stats_clear_prune(self, tmp_path):
        store = SqliteResultsStore(tmp_path)
        spec = ScenarioSpec(**SPEC)
        measure(spec, store=store)
        stats = store.stats(verify=True)
        assert stats.pooled == 1
        assert stats.replications == spec.replications
        assert stats.total_bytes > 0 and stats.corrupt == 0
        removed = store.prune(max_bytes=0)
        assert removed.pooled == 1
        assert removed.replications == spec.replications
        assert store.stats().pooled == 0
        measure(spec, store=store)
        cleared = store.clear()
        assert cleared.pooled == 1
        assert store.load(spec) is None

    def test_empty_store_paths(self, tmp_path):
        store = SqliteResultsStore(tmp_path / "never")
        assert store.load(ScenarioSpec(**SPEC)) is None
        assert store.stats().pooled == 0
        assert store.prune(older_than=1.0).pooled == 0
        assert len(store) == 0


class TestMakeStore:
    def test_backend_selection(self, tmp_path):
        assert type(make_store(tmp_path)) is ResultsStore
        assert type(make_store(tmp_path, "locked")) is LockedResultsStore
        assert type(make_store(tmp_path, "sqlite")) is SqliteResultsStore

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "locked")
        assert type(make_store(tmp_path)) is LockedResultsStore

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown store backend"):
            make_store(tmp_path, "redis")


def _measure_into(root: str, backend: str) -> None:
    store = make_store(root, backend)
    measure(ScenarioSpec(**SPEC), store=store, wave_reps=1)


@pytest.mark.parametrize("backend", ["locked", "sqlite"])
class TestConcurrentAccess:
    def test_two_processes_one_valid_cell(self, tmp_path, backend):
        """Two processes measuring the same spec simultaneously must
        leave exactly one valid pooled cell and one valid cell per
        replication — no torn or duplicated writes."""
        root = str(tmp_path / "shared")
        procs = [
            multiprocessing.Process(target=_measure_into, args=(root, backend))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in procs)
        store = make_store(root, backend)
        spec = ScenarioSpec(**SPEC)
        stats = store.stats(verify=True)
        assert stats.pooled == 1
        assert stats.replications == spec.replications
        assert stats.corrupt == 0
        reference = measure(spec, store=ResultsStore(tmp_path / "ref"))
        assert store.load(spec) == reference
        for k in range(spec.replications):
            assert store.load_replication(spec, k) is not None
