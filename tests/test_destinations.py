"""Tests for destination laws (paper eq. (1), Lemma 1, §2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traffic.destinations import (
    BernoulliFlipLaw,
    TranslationInvariantLaw,
    UniformExcludingOriginLaw,
    UniformLaw,
)


class TestBernoulliFlipLaw:
    def test_mask_prob_matches_eq1(self):
        law = BernoulliFlipLaw(3, 0.25)
        # f(v) = p^|v| (1-p)^(d-|v|)
        assert law.mask_prob(0b000) == pytest.approx(0.75**3)
        assert law.mask_prob(0b101) == pytest.approx(0.25**2 * 0.75)
        assert law.mask_prob(0b111) == pytest.approx(0.25**3)

    def test_pmf_normalises(self):
        for p in (0.0, 0.3, 0.5, 1.0):
            law = BernoulliFlipLaw(4, p)
            assert law.mask_pmf().sum() == pytest.approx(1.0)

    def test_prob_is_translation_invariant(self):
        law = BernoulliFlipLaw(4, 0.3)
        # Pr[x -> z] depends only on x ^ z
        assert law.prob(0b0000, 0b0101) == pytest.approx(law.prob(0b1111, 0b1010))

    def test_flip_probabilities_lemma1(self):
        law = BernoulliFlipLaw(5, 0.37)
        np.testing.assert_allclose(law.flip_probabilities(), np.full(5, 0.37))

    def test_mean_distance_is_dp(self):
        assert BernoulliFlipLaw(8, 0.25).mean_distance() == pytest.approx(2.0)

    def test_sample_masks_marginals(self, rng):
        law = BernoulliFlipLaw(6, 0.3)
        masks = law.sample_masks(40_000, rng)
        bits = (masks[:, None] >> np.arange(6)) & 1
        freq = bits.mean(axis=0)
        np.testing.assert_allclose(freq, 0.3, atol=0.02)

    def test_sample_masks_bit_independence(self, rng):
        # Lemma 1: flips of different bits are independent.
        law = BernoulliFlipLaw(2, 0.5)
        masks = law.sample_masks(40_000, rng)
        p11 = np.mean(masks == 0b11)
        assert p11 == pytest.approx(0.25, abs=0.02)

    def test_sample_destinations_xor(self, rng):
        law = BernoulliFlipLaw(4, 1.0)  # flips every bit
        origins = np.array([0b0000, 0b1010, 0b1111])
        dests = law.sample_destinations(origins, rng)
        np.testing.assert_array_equal(dests, origins ^ 0b1111)

    def test_p_zero_never_moves(self, rng):
        law = BernoulliFlipLaw(4, 0.0)
        assert np.all(law.sample_masks(100, rng) == 0)

    def test_empty_sample(self, rng):
        assert BernoulliFlipLaw(3, 0.5).sample_masks(0, rng).shape == (0,)

    @pytest.mark.parametrize("bad_p", [-0.1, 1.5])
    def test_rejects_bad_p(self, bad_p):
        with pytest.raises(ConfigurationError):
            BernoulliFlipLaw(3, bad_p)

    def test_mask_prob_rejects_out_of_range(self):
        law = BernoulliFlipLaw(3, 0.5)
        with pytest.raises(ConfigurationError):
            law.mask_prob(8)


class TestUniformLaw:
    def test_is_bernoulli_half(self):
        law = UniformLaw(4)
        assert law.p == 0.5
        # every destination equally likely: f(v) = 2^-d
        for v in range(16):
            assert law.mask_prob(v) == pytest.approx(1.0 / 16)


class TestUniformExcludingOrigin:
    def test_zero_mask_excluded(self):
        law = UniformExcludingOriginLaw(3)
        assert law.mask_prob(0) == 0.0
        assert law.mask_prob(5) == pytest.approx(1.0 / 7)

    def test_pmf_normalises(self):
        assert UniformExcludingOriginLaw(4).mask_pmf().sum() == pytest.approx(1.0)

    def test_flip_probability_slightly_above_half(self):
        law = UniformExcludingOriginLaw(3)
        np.testing.assert_allclose(law.flip_probabilities(), 4.0 / 7.0)

    def test_samples_never_zero(self, rng):
        law = UniformExcludingOriginLaw(3)
        assert np.all(law.sample_masks(1000, rng) != 0)


class TestTranslationInvariantLaw:
    def test_recovers_arbitrary_pmf(self):
        pmf = np.array([0.1, 0.2, 0.3, 0.4])
        law = TranslationInvariantLaw(2, pmf)
        for v in range(4):
            assert law.mask_prob(v) == pytest.approx(pmf[v])

    def test_flip_probabilities(self):
        # q_0 = f(01) + f(11), q_1 = f(10) + f(11)
        law = TranslationInvariantLaw(2, [0.1, 0.2, 0.3, 0.4])
        np.testing.assert_allclose(law.flip_probabilities(), [0.6, 0.7])

    def test_matches_bernoulli_when_product(self):
        p = 0.3
        bern = BernoulliFlipLaw(3, p)
        law = TranslationInvariantLaw(3, bern.mask_pmf())
        np.testing.assert_allclose(law.flip_probabilities(), p, atol=1e-12)
        assert law.mean_distance() == pytest.approx(bern.mean_distance())

    def test_sampling_respects_pmf(self, rng):
        law = TranslationInvariantLaw(2, [0.0, 0.5, 0.5, 0.0])
        masks = law.sample_masks(2000, rng)
        assert set(np.unique(masks)) == {1, 2}

    @pytest.mark.parametrize(
        "pmf",
        [
            [0.5, 0.5, 0.1, -0.1],  # negative
            [0.3, 0.3, 0.3, 0.3],  # doesn't normalise
            [1.0, 0.0],  # wrong length for d=2
        ],
    )
    def test_rejects_invalid_pmf(self, pmf):
        with pytest.raises(ConfigurationError):
            TranslationInvariantLaw(2, pmf)


@settings(max_examples=50, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=6),
    p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_property_bernoulli_pmf_normalises(d, p):
    """eq. (1) defines a probability distribution for every (d, p)."""
    law = BernoulliFlipLaw(d, p)
    assert law.mask_pmf().sum() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=5),
    p=st.floats(min_value=0.01, max_value=0.99),
    data=st.data(),
)
def test_property_flip_prob_consistency(d, p, data):
    """q_j computed from the pmf equals the law's flip_probabilities."""
    law = BernoulliFlipLaw(d, p)
    pmf = law.mask_pmf()
    j = data.draw(st.integers(min_value=0, max_value=d - 1))
    q_j = sum(pmf[v] for v in range(1 << d) if (v >> j) & 1)
    assert q_j == pytest.approx(law.flip_probabilities()[j], abs=1e-9)
