"""Tests for shortest-path utilities, incl. hypothesis properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology.hypercube import Hypercube
from repro.topology.paths import (
    all_shortest_paths,
    dims_to_cross,
    is_shortest_path,
    path_arcs,
)


class TestDimsToCross:
    def test_default_is_increasing(self, cube4):
        assert dims_to_cross(cube4, 0, 0b1101) == [0, 2, 3]

    def test_custom_order(self, cube4):
        assert dims_to_cross(cube4, 0, 0b101, order=[2, 0]) == [2, 0]

    def test_rejects_non_permutation(self, cube4):
        with pytest.raises(TopologyError):
            dims_to_cross(cube4, 0, 0b101, order=[0, 1])
        with pytest.raises(TopologyError):
            dims_to_cross(cube4, 0, 0b101, order=[0])


class TestPathArcs:
    def test_any_order_reaches_destination(self, cube4):
        x, z = 0b0011, 0b1100
        for order in ([0, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2]):
            arcs = path_arcs(cube4, x, z, order=order)
            cur = x
            for a in arcs:
                arc = cube4.arc(a)
                assert arc.tail == cur
                cur = arc.head
            assert cur == z


class TestAllShortestPaths:
    def test_count_is_factorial_of_distance(self, cube4):
        x, z = 0, 0b0111
        paths = list(all_shortest_paths(cube4, x, z))
        assert len(paths) == math.factorial(3)
        # all distinct
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_all_are_shortest(self, cube4):
        for nodes in all_shortest_paths(cube4, 0b0001, 0b1110):
            assert is_shortest_path(cube4, nodes)

    def test_canonical_path_is_among_them(self, cube4):
        x, z = 0b0010, 0b1001
        canonical = cube4.canonical_path_nodes(x, z)
        assert canonical in list(all_shortest_paths(cube4, x, z))


class TestIsShortestPath:
    def test_empty_and_singleton(self, cube3):
        assert not is_shortest_path(cube3, [])
        assert is_shortest_path(cube3, [5])

    def test_detects_non_adjacent_hop(self, cube3):
        assert not is_shortest_path(cube3, [0, 3])

    def test_detects_dimension_recross(self, cube3):
        assert not is_shortest_path(cube3, [0, 1, 0, 2])

    def test_detects_self_loop(self, cube3):
        assert not is_shortest_path(cube3, [0, 0])


@settings(max_examples=100, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_property_canonical_path_is_shortest(d, data):
    """For every (x, z): the canonical path is a valid shortest path
    whose length equals the Hamming distance."""
    cube = Hypercube(d)
    x = data.draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
    z = data.draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
    nodes = cube.canonical_path_nodes(x, z)
    assert nodes[0] == x and nodes[-1] == z
    assert len(nodes) - 1 == cube.hamming(x, z)
    assert is_shortest_path(cube, nodes)


@settings(max_examples=100, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_property_canonical_dims_sorted(d, data):
    """The canonical crossing order is strictly increasing (the paper's
    increasing index-order rule)."""
    cube = Hypercube(d)
    x = data.draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
    z = data.draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
    dims = cube.dims_to_cross(x, z)
    assert dims == sorted(dims)
    assert len(set(dims)) == len(dims)
