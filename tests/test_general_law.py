"""Tests for the §2.2 generalisation (arbitrary translation-invariant
laws) and the non-TI traffic classes."""

import numpy as np
import pytest

from repro.core.general import (
    general_arc_rates,
    general_load_factor,
    general_load_vector,
    general_oblivious_lower_bound,
    general_stable,
    general_universal_lower_bound,
    general_zero_contention_delay,
)
from repro.errors import ConfigurationError, UnstableSystemError
from repro.sim.feedforward import simulate_hypercube_greedy
from repro.sim.measurement import arc_arrival_counts
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import (
    BernoulliFlipLaw,
    HotSpotTraffic,
    PermutationTraffic,
    TranslationInvariantLaw,
    bit_reversal_permutation,
    transpose_permutation,
)
from repro.traffic.workload import HypercubeWorkload


def _skewed_law(d=3):
    """A strongly asymmetric TI law: dimension 0 flipped often,
    dimension d-1 rarely."""
    pmf = np.zeros(1 << d)
    pmf[0b001] = 0.55
    pmf[0b011] = 0.2
    pmf[0b100] = 0.05
    pmf[0b000] = 0.2
    return TranslationInvariantLaw(d, pmf)


class TestGeneralCalculus:
    def test_load_vector_matches_flip_probs(self):
        law = _skewed_law()
        np.testing.assert_allclose(
            general_load_vector(2.0, law), 2.0 * law.flip_probabilities()
        )

    def test_load_factor_is_max(self):
        law = _skewed_law()
        # q = [0.75, 0.2, 0.05]
        assert general_load_factor(1.0, law) == pytest.approx(0.75)

    def test_reduces_to_paper_for_bernoulli(self):
        law = BernoulliFlipLaw(4, 0.3)
        assert general_load_factor(2.0, law) == pytest.approx(0.6)
        assert general_zero_contention_delay(law) == pytest.approx(1.2)

    def test_stability_driven_by_worst_dimension(self):
        law = _skewed_law()
        assert general_stable(1.3, law)  # 1.3*0.75 < 1
        assert not general_stable(1.4, law)  # 1.4*0.75 > 1

    def test_lower_bounds_ordering(self):
        law = _skewed_law()
        lam = 1.2
        uni = general_universal_lower_bound(lam, law)
        obl = general_oblivious_lower_bound(lam, law)
        assert uni <= obl + 1e-12
        assert obl >= general_zero_contention_delay(law)

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            general_oblivious_lower_bound(2.0, _skewed_law())

    def test_arc_rates_dimension_major(self):
        law = _skewed_law()
        rates = general_arc_rates(1.0, law)
        assert rates.shape == (3 * 8,)
        np.testing.assert_allclose(rates[:8], 0.75)
        np.testing.assert_allclose(rates[16:], 0.05)


class TestGeneralSimulation:
    def test_measured_arc_rates_match_general_prop5(self):
        cube = Hypercube(3)
        law = _skewed_law()
        lam = 1.0
        wl = HypercubeWorkload(cube, lam, law)
        horizon = 3000.0
        sample = wl.generate(horizon, rng=5)
        res = simulate_hypercube_greedy(cube, sample, record_arc_log=True)
        measured = arc_arrival_counts(res.arc_log.arc, cube.num_arcs) / horizon
        expected = general_arc_rates(lam, law)
        # per-dimension means match lam * q_j
        for j in range(3):
            sl = slice(8 * j, 8 * (j + 1))
            assert measured[sl].mean() == pytest.approx(
                expected[sl].mean(), rel=0.05
            )

    def test_delay_respects_general_lower_bound(self):
        cube = Hypercube(3)
        law = _skewed_law()
        lam = 1.2  # rho = 0.9 on dimension 0
        wl = HypercubeWorkload(cube, lam, law)
        sample = wl.generate(2000.0, rng=6)
        res = simulate_hypercube_greedy(cube, sample)
        rec = res.delay_record()
        t = rec.mean_delay()
        assert t >= general_oblivious_lower_bound(lam, law) * 0.95

    def test_greedy_stable_at_general_condition(self):
        # rho = max_j rho_j = 0.9 < 1: delay converged across horizons
        cube = Hypercube(3)
        law = _skewed_law()
        wl = HypercubeWorkload(cube, 1.2, law)
        t1 = (
            simulate_hypercube_greedy(cube, wl.generate(1500.0, rng=7))
            .delay_record()
            .mean_delay()
        )
        t2 = (
            simulate_hypercube_greedy(cube, wl.generate(4500.0, rng=8))
            .delay_record()
            .mean_delay()
        )
        assert t2 < 1.4 * t1


class TestPermutationTraffic:
    def test_deterministic_destinations(self):
        perm = bit_reversal_permutation(4)
        law = PermutationTraffic(4, perm)
        origins = np.arange(16)
        np.testing.assert_array_equal(
            law.sample_destinations(origins), perm
        )

    def test_bit_reversal_involution(self):
        perm = bit_reversal_permutation(5)
        np.testing.assert_array_equal(perm[perm], np.arange(32))

    def test_bit_reversal_values(self):
        perm = bit_reversal_permutation(3)
        assert perm[0b001] == 0b100
        assert perm[0b011] == 0b110
        assert perm[0b111] == 0b111

    def test_transpose_involution(self):
        perm = transpose_permutation(6)
        np.testing.assert_array_equal(perm[perm], np.arange(64))

    def test_transpose_rejects_odd_d(self):
        with pytest.raises(ConfigurationError):
            transpose_permutation(3)

    def test_rejects_non_permutation(self):
        with pytest.raises(ConfigurationError):
            PermutationTraffic(2, [0, 0, 1, 2])

    def test_workload_accepts_permutation_traffic(self):
        cube = Hypercube(4)
        law = PermutationTraffic(4, bit_reversal_permutation(4))
        wl = HypercubeWorkload(cube, 0.5, law)
        s = wl.generate(50.0, rng=9)
        np.testing.assert_array_equal(
            s.destinations, bit_reversal_permutation(4)[s.origins]
        )


class TestHotSpotTraffic:
    def test_hot_fraction(self, rng):
        law = HotSpotTraffic(BernoulliFlipLaw(4, 0.5), hot_node=3, beta=0.3)
        origins = rng.integers(0, 16, size=20_000)
        dests = law.sample_destinations(origins, rng)
        frac = np.mean(dests == 3)
        # 0.3 forced + background mass on node 3
        assert 0.3 < frac < 0.4

    def test_beta_one_all_hot(self, rng):
        law = HotSpotTraffic(BernoulliFlipLaw(3, 0.5), hot_node=5, beta=1.0)
        dests = law.sample_destinations(np.arange(8), rng)
        assert np.all(dests == 5)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            HotSpotTraffic(BernoulliFlipLaw(3, 0.5), hot_node=9, beta=0.5)
        with pytest.raises(ConfigurationError):
            HotSpotTraffic(BernoulliFlipLaw(3, 0.5), hot_node=0, beta=1.5)
