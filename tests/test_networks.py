"""Tests for the capability-declaring network-plugin API and registry.

Covers the registry (decorator registration, aliases, entry points),
the topology conformance contract every registered network must honor
(dense level-major arc ids, ``arc(i)`` round trip, ``level_slice``
partition), the load-law round trip, the greedy hop-count
distribution, the alias-normalisation cache guarantee, the
fixed-point/event-engine cross-validation for the non-levelled
networks, and a grep-style guard that no ``network ==`` literal
survives outside ``src/repro/networks/``.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.networks import (
    NetworkPlugin,
    all_network_names,
    available_networks,
    canonical_network_name,
    get_network,
    iter_networks,
    register_network,
    unregister_network,
)
from repro.networks import registry as network_registry
from repro.runner import ScenarioSpec, get_scenario, measure
from repro.sim.run_spec import run_spec

ALL_BUILTINS = {"hypercube", "butterfly", "ring", "torus"}

#: a small valid greedy operating point per network (d chosen per
#: network so every topology stays tiny)
CONFORMANCE_D = {"hypercube": 3, "butterfly": 3, "ring": 3, "torus": 2}


def small_spec(network: str, **overrides) -> ScenarioSpec:
    params = dict(
        name=f"conf-{network}",
        network=network,
        d=CONFORMANCE_D.get(network, 3),
        rho=0.5,
        horizon=120.0,
        replications=1,
        base_seed=7,
        seed_policy="sequential",
    )
    params.update(overrides)
    return ScenarioSpec(**params)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(available_networks()) == ALL_BUILTINS

    def test_aliases_resolve(self):
        assert canonical_network_name("cube") == "hypercube"
        assert canonical_network_name("bf") == "butterfly"
        assert canonical_network_name("cycle") == "ring"
        assert canonical_network_name("grid") == "torus"
        assert get_network("d-cube") is get_network("hypercube")
        assert set(all_network_names()) >= ALL_BUILTINS | {"cube", "bf"}

    def test_unknown_network_enumerates_registry(self):
        with pytest.raises(ConfigurationError, match="hypercube"):
            get_network("mesh-of-trees")

    def test_iter_networks_sorted_with_metadata(self):
        plugins = iter_networks()
        names = [p.name for p in plugins]
        assert names == sorted(names)
        for p in plugins:
            assert p.summary

    def test_register_requires_protocol(self):
        with pytest.raises(ConfigurationError, match="NetworkPlugin"):
            register_network(object())

    def test_collision_requires_overwrite(self):
        class FakeRing(NetworkPlugin):
            name = "ring"

        with pytest.raises(ConfigurationError, match="already registered"):
            register_network(FakeRing)
        # re-registering the *same* class is an idempotent no-op
        register_network(type(get_network("ring")))
        assert "ring" in available_networks()

    def test_alias_collision_rejected(self):
        class Clashing(NetworkPlugin):
            name = "freshnet"
            aliases = ("cube",)  # hypercube's alias

        with pytest.raises(ConfigurationError, match="alias"):
            register_network(Clashing)
        assert "freshnet" not in available_networks()

    def test_overwrite_cannot_steal_alias(self):
        class NetA(NetworkPlugin):
            name = "neta"
            aliases = ("shared-alias",)

        class NetB(NetworkPlugin):
            name = "netb"
            aliases = ("shared-alias",)

        register_network(NetA)
        try:
            # overwrite replaces same-name registrations only; it never
            # licenses stealing another plugin's alias
            with pytest.raises(ConfigurationError, match="alias"):
                register_network(NetB, overwrite=True)
            assert canonical_network_name("shared-alias") == "neta"
            assert "netb" not in available_networks()
        finally:
            unregister_network("neta")
        with pytest.raises(ConfigurationError):
            get_network("shared-alias")

    def test_wildcard_schemes_do_not_leak_to_unknown_networks(self):
        from repro.plugins import schemes_for_network

        assert schemes_for_network("mesh-of-trees") == ()

    def test_unregister_removes_aliases(self):
        class Temp(NetworkPlugin):
            name = "tempnet"
            aliases = ("tn",)

        register_network(Temp)
        assert canonical_network_name("tn") == "tempnet"
        unregister_network("tempnet")
        with pytest.raises(ConfigurationError):
            get_network("tn")

    def test_entry_point_discovery(self, monkeypatch):
        class EPNetwork(NetworkPlugin):
            name = "ep-net"
            summary = "from an entry point"

        class FakeEP:
            name = "ep-net"

            def load(self):
                return EPNetwork

        class BrokenEP:
            name = "broken-net"

            def load(self):
                raise ImportError("third-party package is broken")

        import importlib.metadata as md

        monkeypatch.setattr(
            md, "entry_points", lambda group=None: [FakeEP(), BrokenEP()]
        )
        try:
            with pytest.warns(RuntimeWarning, match="broken-net"):
                network_registry._load_entry_points()
            assert "ep-net" in available_networks()
            assert "broken-net" not in available_networks()
        finally:
            unregister_network("ep-net")


class TestTopologyConformance:
    """The Topology contract, asserted against every registered network."""

    @pytest.fixture(params=sorted(ALL_BUILTINS))
    def plugin_and_topology(self, request):
        plugin = get_network(request.param)
        spec = small_spec(request.param)
        return plugin, spec, plugin.build_topology(spec)

    def test_dense_level_major_arc_ids(self, plugin_and_topology):
        _, _, topo = plugin_and_topology
        assert topo.num_arcs > 0 and topo.num_levels >= 1
        indices = [arc.index for arc in topo.arcs()]
        assert indices == list(range(topo.num_arcs))

    def test_arc_round_trip(self, plugin_and_topology):
        _, _, topo = plugin_and_topology
        for arc in topo.arcs():
            again = topo.arc(arc.index)
            assert again == arc

    def test_level_slices_partition_arc_ids(self, plugin_and_topology):
        _, _, topo = plugin_and_topology
        covered = []
        for level in range(topo.num_levels):
            s = topo.level_slice(level)
            covered.extend(range(*s.indices(topo.num_arcs)))
        assert covered == list(range(topo.num_arcs))

    def test_arc_levels_match_slices(self, plugin_and_topology):
        _, _, topo = plugin_and_topology
        for arc in topo.arcs():
            s = topo.level_slice(arc.level)
            assert s.start <= arc.index < s.stop

    def test_load_law_round_trip(self, plugin_and_topology):
        plugin, spec, _ = plugin_and_topology
        lam = plugin.lam_for_load(spec)
        assert lam > 0
        by_lam = spec.replace(lam=lam)
        assert plugin.load_factor(by_lam) == pytest.approx(spec.rho)
        assert by_lam.resolved_rho == pytest.approx(0.5)

    def test_hop_pmf_is_a_distribution(self, plugin_and_topology):
        plugin, spec, _ = plugin_and_topology
        pmf = plugin.greedy_hop_pmf(spec)
        assert np.all(pmf >= 0)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf @ np.arange(pmf.shape[0]) == pytest.approx(
            plugin.mean_greedy_hops(spec)
        )

    def test_paths_stay_in_range_and_match_hops(self, plugin_and_topology):
        plugin, spec, topo = plugin_and_topology
        sample = plugin.build_workload(spec).generate(
            60.0, np.random.default_rng(3)
        )
        paths = plugin.greedy_paths(topo, spec, sample)
        assert len(paths) == sample.num_packets
        for path in paths:
            assert all(0 <= a < topo.num_arcs for a in path)
            # a path never holds the same server twice (unit-capacity
            # arcs are crossed once)
            assert len(set(path)) == len(path)

    def test_bound_report_contains_bracket(self, plugin_and_topology):
        plugin, spec, _ = plugin_and_topology
        rows = dict(plugin.bound_report(spec))
        lower, upper = plugin.greedy_theory_bounds(spec)
        assert any(v == lower for v in rows.values())


class TestRingExactDistributions:
    """Brute-force checks of the ring/torus load law and hop pmf."""

    @pytest.mark.parametrize("d", [3, 4])
    @pytest.mark.parametrize("direction", ["absolute", "clockwise"])
    def test_ring_mean_hops_matches_brute_force(self, d, direction):
        from repro.topology.ring import Ring

        plugin = get_network("ring")
        spec = small_spec("ring", d=d, extra={"direction": direction})
        ring = Ring(1 << d)
        n = ring.n
        exact = sum(
            ring.greedy_hops(x, z, direction) for x in range(n) for z in range(n)
        ) / (n * n)
        assert plugin.mean_greedy_hops(spec) == pytest.approx(exact)

    def test_ring_bottleneck_is_clockwise_flow(self):
        # rho/lam must equal the mean number of *clockwise* arcs crossed
        from repro.topology.ring import CLOCKWISE, Ring

        plugin = get_network("ring")
        spec = small_spec("ring", d=3)
        ring = Ring(8)
        cw_hops = sum(
            sum(
                1
                for a in ring.greedy_path_arcs(x, z)
                if ring.arc(a).level == CLOCKWISE
            )
            for x in range(8)
            for z in range(8)
        ) / 64.0
        assert spec.rho / plugin.lam_for_load(spec) == pytest.approx(cw_hops)

    def test_torus_mean_hops_matches_brute_force(self):
        from repro.topology.torus import Torus

        plugin = get_network("torus")
        spec = small_spec("torus", d=2, extra={"side": 5})
        t = Torus(5, 2)
        exact = sum(
            t.greedy_hops(x, z)
            for x in range(t.num_nodes)
            for z in range(t.num_nodes)
        ) / (t.num_nodes ** 2)
        assert plugin.mean_greedy_hops(spec) == pytest.approx(exact)

    def test_torus_side_must_be_at_least_three(self):
        with pytest.raises(ConfigurationError, match="side"):
            small_spec("torus", extra={"side": 2})


class TestAliasNormalisation:
    """Satellite: aliases normalise before content-hashing, so an alias
    and its canonical name hit the same cache cell."""

    def test_alias_round_trip(self):
        via_alias = small_spec("cube")
        canonical = small_spec("hypercube")
        assert via_alias.network == "hypercube"
        assert via_alias.content_hash() == canonical.content_hash()
        assert via_alias.replication_hash() == canonical.replication_hash()
        # serialisation round-trips through the canonical name
        again = ScenarioSpec.from_dict(via_alias.to_dict())
        assert again == canonical.replace(name="conf-cube")
        assert again.network == "hypercube"

    def test_alias_shares_cache_cell(self, tmp_path):
        from repro.runner import ResultsStore

        store = ResultsStore(tmp_path)
        m = measure(small_spec("cube", replications=2), store=store)
        cached = store.load(small_spec("hypercube", replications=2))
        assert cached is not None
        assert cached.mean_delay == m.mean_delay

    def test_cli_accepts_alias(self, capsys):
        from repro.__main__ import main

        assert main(["bounds", "--network", "bf", "--d", "4", "--rho", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "butterfly" in out and "Prop 17" in out


class TestFixedPointEngine:
    """The fixed-point solver is the ring/torus native engine; it must
    agree with the event calendar (and, on levelled networks, with the
    feed-forward engine) sample path for sample path."""

    @pytest.mark.parametrize("network", ["ring", "torus"])
    @pytest.mark.parametrize("discipline", ["fifo", "ps"])
    def test_engines_agree_to_roundoff(self, network, discipline):
        spec = small_spec(
            network,
            d=4 if network == "ring" else 2,
            rho=0.7 if discipline == "fifo" else 0.6,
            discipline=discipline,
            horizon=150.0,
        )
        vec = run_spec(spec, 11, keep_record=True)
        evt = run_spec(spec.replace(engine="event"), 11, keep_record=True)
        assert vec.num_packets == evt.num_packets
        np.testing.assert_allclose(
            evt.record.delivery, vec.record.delivery, rtol=0, atol=1e-9
        )
        assert evt.mean_delay == pytest.approx(vec.mean_delay, abs=1e-9)

    def test_ring_clockwise_variant_cross_validates(self):
        spec = small_spec(
            "ring", d=4, rho=0.7, horizon=150.0,
            extra={"direction": "clockwise"},
        )
        vec = run_spec(spec, 5, keep_record=True)
        evt = run_spec(spec.replace(engine="event"), 5, keep_record=True)
        np.testing.assert_allclose(
            evt.record.delivery, vec.record.delivery, rtol=0, atol=1e-9
        )

    def test_matches_feedforward_on_levelled_network(self, small_cube_workload):
        from repro.sim.eventsim import hypercube_packet_paths
        from repro.sim.feedforward import simulate_hypercube_greedy
        from repro.sim.fixedpoint import simulate_paths_fixed_point
        from repro.topology.hypercube import Hypercube

        cube = Hypercube(4)
        sample = small_cube_workload.generate(120.0, np.random.default_rng(9))
        paths = hypercube_packet_paths(cube, sample)
        for discipline in ("fifo", "ps"):
            ff = simulate_hypercube_greedy(cube, sample, discipline=discipline)
            fp = simulate_paths_fixed_point(
                cube.num_arcs, sample.times, paths, discipline=discipline
            )
            np.testing.assert_array_equal(fp.delivery, ff.delivery)
            # a levelled network converges in <= max hops (+1 verify) sweeps
            assert fp.sweeps <= cube.d + 1

    def test_nonconvergence_raises(self):
        from repro.errors import SimulationError
        from repro.sim.fixedpoint import simulate_paths_fixed_point

        times = np.zeros(4)
        paths = [[0, 1], [1, 0], [0, 1], [1, 0]]
        with pytest.raises(SimulationError, match="converge"):
            simulate_paths_fixed_point(2, times, paths, max_sweeps=1)

    def test_empty_and_zero_hop_packets(self):
        from repro.sim.fixedpoint import simulate_paths_fixed_point

        out = simulate_paths_fixed_point(4, np.array([1.0, 2.0]), [[], []])
        np.testing.assert_array_equal(out.delivery, [1.0, 2.0])
        assert out.sweeps == 0


class TestScenarioCatalog:
    def test_new_scenarios_registered(self):
        assert get_scenario("ring-greedy").network == "ring"
        assert get_scenario("ring-greedy-ps").discipline == "ps"
        assert get_scenario("torus-greedy").network == "torus"
        assert get_scenario("torus-greedy-ps").discipline == "ps"
        assert get_scenario("ring-greedy-event").engine == "event"
        assert get_scenario("torus-greedy-event").engine == "event"

    def test_ring_scenario_within_bracket(self):
        m = measure(get_scenario("ring-greedy").replace(
            replications=2, horizon=200.0, d=4))
        assert m.within_bounds
        assert m.lower_bound == pytest.approx(4.0)  # n/4 mean hops

    def test_torus_scenario_within_bracket(self):
        m = measure(get_scenario("torus-greedy").replace(replications=2))
        assert m.within_bounds
        assert m.lower_bound == pytest.approx(2.0)  # d * E[ring hops]


class TestCustomNetworkEndToEnd:
    """A third-party network drives the whole stack through the greedy
    scheme without touching any repro module — the tentpole promise."""

    @pytest.fixture()
    def star_network(self):
        """A toy 'star': d+1 nodes, node 0 is the hub; every packet
        routes source -> hub -> destination (levelled, 2 levels)."""

        @register_network
        class StarNetwork(NetworkPlugin):
            name = "star"
            aliases = ("hub",)
            summary = "toy hub-and-spoke network"

            def build_topology(self, spec):
                from repro.topology.ring import Ring

                # reuse the ring's arc table as a stand-in substrate:
                # spoke arcs into the hub live in [0, n), out of the
                # hub in [n, 2n) — dense, level-major, conformant
                return Ring(spec.d + 3)

            def lam_for_load(self, spec):
                return spec.rho / 2.0

            def load_factor(self, spec):
                return spec.lam * 2.0

            def build_workload(self, spec):
                from repro.traffic.destinations import UniformNodeLaw
                from repro.traffic.workload import NodePoissonWorkload

                n = spec.d + 3
                return NodePoissonWorkload(
                    n, spec.resolved_lam, UniformNodeLaw(n)
                )

            def greedy_paths(self, topology, spec, sample):
                n = topology.n
                paths = []
                for i in range(sample.num_packets):
                    x = int(sample.origins[i])
                    z = int(sample.destinations[i])
                    paths.append([] if x == z else [x, n + z])
                return paths

            # simulate_greedy: inherited — the NetworkPlugin default
            # (fixed-point solver over greedy_paths) carries a custom
            # network with no engine code at all

        yield StarNetwork
        unregister_network("star")

    def test_spec_runs_on_registered_network(self, star_network):
        spec = ScenarioSpec(
            name="star-toy", network="hub", scheme="greedy", d=5,
            rho=0.4, horizon=100.0, replications=2,
        )
        assert spec.network == "star"
        vec = run_spec(spec, 0, keep_record=True)
        evt = run_spec(spec.replace(engine="event"), 0, keep_record=True)
        np.testing.assert_allclose(
            evt.record.delivery, vec.record.delivery, rtol=0, atol=1e-9
        )
        m = measure(spec)
        assert m.network == "star"
        assert m.num_packets > 0

    def test_unregistered_network_rejected_again(self, star_network):
        unregister_network("star")
        with pytest.raises(ConfigurationError, match="star"):
            ScenarioSpec(name="x", network="star", rho=0.4)
        register_network(star_network)  # restore for fixture teardown


def test_no_network_literals_outside_networks_package():
    """Grep-style guard: the tentpole's deliverable is that network
    dispatch lives in src/repro/networks/ alone.  Any ``network ==``
    (or ``== network``) literal elsewhere in the library is a
    regression to the closed string enum."""
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    assert src.is_dir()
    pattern = re.compile(
        r"""(\bnetwork\s*==\s*["'])|(["']\s*==\s*spec\.network)"""
    )
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if "networks" in path.relative_to(src).parts[:1]:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if pattern.search(line):
                offenders.append(f"{path.relative_to(src)}:{lineno}: {line.strip()}")
    assert not offenders, "network literals outside repro.networks:\n" + "\n".join(
        offenders
    )
