"""End-to-end tests for ``repro serve``.

A real :class:`~repro.serve.app.ServerThread` binds an ephemeral port
per test; requests go over actual sockets via :mod:`urllib`.  The
acceptance contracts:

* a spec measured through ``POST /v1/measure`` produces **byte-identical**
  pooled and per-replication cache cells to ``repro run`` of the same
  spec;
* a repeated POST is answered from cache (200) without touching the
  worker pool;
* a cancelled-then-resubmitted job resumes from its persisted
  per-replication cells rather than recomputing them;
* alias spellings normalise onto the same cache cell over HTTP exactly
  as they do in the CLI.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.runner import ResultsStore, ScenarioSpec, measure
from repro.serve import ServerThread
from repro.serve.http import Request

SPEC = {"name": "serve-t", "d": 3, "rho": 0.5, "horizon": 60.0,
        "replications": 4}
TERMINAL = ("done", "failed", "cancelled")


def _request(method: str, url: str, payload=None, timeout: float = 60.0):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _poll_terminal(base: str, job_id: str, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = _request("GET", f"{base}/v1/jobs/{job_id}")
        assert status == 200
        if body["state"] in TERMINAL:
            return body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached a terminal state")


def _read_events(url: str, timeout: float = 120.0):
    events, current = [], {}
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        for raw in resp:
            line = raw.decode().rstrip("\n")
            if line.startswith("event: "):
                current["event"] = line[len("event: "):]
            elif line.startswith("data: "):
                current["data"] = json.loads(line[len("data: "):])
            elif not line and current:
                events.append(current)
                if current.get("event") in TERMINAL:
                    break
                current = {}
    return events


@pytest.fixture
def server(tmp_path):
    thread = ServerThread(cache_dir=tmp_path / "cache", workers=2).start()
    try:
        yield thread
    finally:
        thread.stop()


class TestPlumbing:
    def test_healthz(self, server):
        status, body = _request("GET", f"{server.base_url}/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers"] == 2
        assert body["store"]["backend"] == "locked"

    def test_scenario_catalog(self, server):
        status, body = _request("GET", f"{server.base_url}/v1/scenarios")
        assert status == 200
        names = {s["name"] for s in body["scenarios"]}
        assert "smoke" in names

    def test_unknown_route_is_404(self, server):
        assert _request("GET", f"{server.base_url}/nope")[0] == 404
        assert _request("GET", f"{server.base_url}/v1/nope")[0] == 404
        assert _request("GET", f"{server.base_url}/v1/jobs/missing")[0] == 404

    def test_wrong_method_is_405(self, server):
        assert _request("POST", f"{server.base_url}/v1/healthz", {})[0] == 405
        assert _request("GET", f"{server.base_url}/v1/measure")[0] == 405

    def test_bad_bodies_are_400(self, server):
        url = f"{server.base_url}/v1/measure"
        req = urllib.request.Request(url, data=b"{ not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400
        status, body = _request("POST", url, {"name": "x", "d": -3})
        assert status == 400 and "invalid spec" in body["error"]
        status, body = _request("POST", url, {"scenario": "no-such"})
        assert status == 400

    def test_request_parser_roundtrip(self):
        # the hand-rolled parser's corner: query strings and encodings
        req = Request(method="POST", path="/v1/measure", body=b'{"a": 1}')
        assert req.json() == {"a": 1}


class TestMeasureEndpoint:
    def test_miss_then_hit_without_worker_pool(self, server):
        base = server.base_url
        status, body = _request("POST", f"{base}/v1/measure", SPEC)
        assert status == 202 and body["cache"] == "miss"
        terminal = _poll_terminal(base, body["job"])
        assert terminal["state"] == "done"
        assert terminal["progress"]["completed"] == SPEC["replications"]

        jobs_before = _request("GET", f"{base}/v1/jobs")[1]["jobs"]
        status, hit = _request("POST", f"{base}/v1/measure", SPEC)
        assert status == 200 and hit["cache"] == "hit"
        assert hit["result"] == terminal["result"]
        # answered straight from the store: no new job was created
        jobs_after = _request("GET", f"{base}/v1/jobs")[1]["jobs"]
        assert len(jobs_after) == len(jobs_before)

    def test_result_matches_direct_measure(self, server, tmp_path):
        from repro.runner.results import measurement_from_dict

        base = server.base_url
        status, body = _request("POST", f"{base}/v1/measure", SPEC)
        assert status == 202
        terminal = _poll_terminal(base, body["job"])
        served = measurement_from_dict(terminal["result"])
        direct = measure(
            ScenarioSpec(**SPEC), store=ResultsStore(tmp_path / "direct")
        )
        assert served == direct

    def test_cells_byte_identical_to_repro_run(self, server, tmp_path,
                                               monkeypatch, capsys):
        """The golden acceptance bit: HTTP-measured cells == CLI cells."""
        from repro.__main__ import main

        base = server.base_url
        status, body = _request(
            "POST", f"{base}/v1/measure", {"scenario": "smoke"}
        )
        assert status == 202
        assert _poll_terminal(base, body["job"])["state"] == "done"

        cli_root = tmp_path / "cli-cache"
        assert main(["run", "smoke", "--cache-dir", str(cli_root)]) == 0
        capsys.readouterr()

        server_root = server.server.store_root
        cli_cells = sorted(cli_root.rglob("*.json"))
        served_cells = sorted(server_root.rglob("*.json"))
        assert [p.name for p in cli_cells] == [p.name for p in served_cells]
        assert len(cli_cells) == 1 + 2  # pooled + two replications
        for a, b in zip(cli_cells, served_cells):
            assert a.read_bytes() == b.read_bytes()

    def test_alias_spelling_shares_the_cache_cell(self, server):
        base = server.base_url
        status, body = _request("POST", f"{base}/v1/measure", SPEC)
        assert status == 202
        _poll_terminal(base, body["job"])
        aliased = dict(SPEC, network="cube", traffic="bernoulli")
        status, hit = _request("POST", f"{base}/v1/measure", aliased)
        assert status == 200 and hit["cache"] == "hit"

    def test_concurrent_posts_coalesce_onto_one_job(self, server):
        base = server.base_url
        slow = dict(SPEC, horizon=400.0, replications=16, name="serve-co")
        status, first = _request("POST", f"{base}/v1/measure", slow)
        assert status == 202
        status, second = _request("POST", f"{base}/v1/measure", slow)
        if status == 202:  # not already finished (the usual case)
            assert second["job"] == first["job"]
            assert second["coalesced"] is True
        _poll_terminal(base, first["job"])

    def test_events_stream_progress_to_done(self, server):
        base = server.base_url
        status, body = _request("POST", f"{base}/v1/measure", SPEC)
        assert status == 202
        events = _read_events(base + body["events"])
        assert events[-1]["event"] == "done"
        beats = [e["data"] for e in events if e["event"] == "progress"]
        assert beats, "no progress beats before the terminal event"
        assert beats[-1]["completed"] + beats[-1]["cached"] == SPEC["replications"]
        assert events[-1]["data"]["result"]["num_packets"] > 0


class TestCancelAndResume:
    #: big enough that cancellation lands mid-run with wide margin
    #: (~100 ms per replication, ~4 s total on one core)
    BIG = {"name": "serve-big", "d": 6, "rho": 0.8, "horizon": 1500.0,
           "replications": 40}

    def test_cancel_then_resubmit_resumes_from_cells(self, server):
        base = server.base_url
        status, body = _request("POST", f"{base}/v1/measure", self.BIG)
        assert status == 202
        job_id = body["job"]
        # wait until at least one replication has completed...
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            state = _request("GET", f"{base}/v1/jobs/{job_id}")[1]
            if state["progress"]["completed"] >= 1:
                break
            time.sleep(0.02)
        assert state["progress"]["completed"] >= 1
        # ...then cancel and let the worker stop at the wave boundary
        status, ack = _request("DELETE", f"{base}/v1/jobs/{job_id}")
        assert status == 200 and ack["cancelled"] is True
        terminal = _poll_terminal(base, job_id)
        assert terminal["state"] == "cancelled"

        store = ResultsStore(server.server.store_root)
        persisted = store.stats().replications
        assert 1 <= persisted < self.BIG["replications"]

        # resubmitting resumes from the persisted cells, not from scratch
        status, body = _request("POST", f"{base}/v1/measure", self.BIG)
        assert status == 202 and body["cache"] == "miss"
        events = _read_events(base + body["events"])
        assert events[-1]["event"] == "done"
        beats = [e["data"] for e in events if e["event"] == "progress"]
        resumed_cached = max(b["cached"] for b in beats)
        assert resumed_cached >= persisted
        completed = max(b["completed"] for b in beats)
        assert completed + resumed_cached == self.BIG["replications"]

    def test_cancelling_a_finished_job_is_a_conflict(self, server):
        base = server.base_url
        status, body = _request("POST", f"{base}/v1/measure", SPEC)
        assert status == 202
        _poll_terminal(base, body["job"])
        status, ack = _request("DELETE", f"{base}/v1/jobs/{body['job']}")
        assert status == 409 and ack["cancelled"] is False


class TestJobRetention:
    """Terminal jobs are retained for ``job_ttl`` seconds and then
    evicted (table entry and job directory); active jobs survive the
    sweep untouched."""

    def test_done_job_404s_after_ttl_while_running_job_survives(
        self, tmp_path
    ):
        thread = ServerThread(
            cache_dir=tmp_path / "cache", workers=2, job_ttl=0.6
        ).start()
        try:
            base = thread.base_url
            status, body = _request("POST", f"{base}/v1/measure", SPEC)
            assert status == 202
            done_id = body["job"]
            _poll_terminal(base, done_id)
            status, body = _request("GET", f"{base}/v1/jobs/{done_id}")
            assert status == 200 and body["state"] == "done"
            done_dir = thread.server.manager.jobs[done_id].job_dir
            assert done_dir.exists()
            # a long-running sibling, still active when the TTL lapses
            big = {"name": "serve-ttl-big", "d": 6, "rho": 0.8,
                   "horizon": 2000.0, "replications": 60}
            status, body = _request("POST", f"{base}/v1/measure", big)
            assert status == 202
            run_id = body["job"]
            time.sleep(0.9)  # > job_ttl since the first job finished
            assert _request("GET", f"{base}/v1/jobs/{done_id}")[0] == 404
            assert not done_dir.exists()
            status, body = _request("GET", f"{base}/v1/jobs/{run_id}")
            assert status == 200 and body["state"] not in TERMINAL
            _request("DELETE", f"{base}/v1/jobs/{run_id}")
        finally:
            thread.stop()

    def test_manager_rejects_nonpositive_ttl(self, tmp_path):
        from repro.serve.jobs import JobManager

        with pytest.raises(ValueError, match="job_ttl"):
            JobManager(tmp_path, "locked", 1, job_ttl=0.0)
