"""Tests for the CLI, ASCII plotting, replication, and slotted butterfly."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main
from repro.analysis.plotting import ascii_plot, sparkline
from repro.analysis.replication import replicate
from repro.sim.slotted import SlottedGreedyButterfly


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestAsciiPlot:
    def test_contains_marker_and_labels(self):
        out = ascii_plot([0, 1, 2], [5, 7, 6], xlabel="load", ylabel="delay")
        assert "*" in out
        assert "load" in out and "delay" in out

    def test_extremes_on_canvas(self):
        out = ascii_plot([0, 10], [0, 100], width=20, height=5)
        lines = out.split("\n")
        # min and max y labels present
        assert any("100" in l for l in lines)
        assert any(l.strip().startswith("0 |") for l in lines)

    def test_validates(self):
        with pytest.raises(ValueError):
            ascii_plot([1], [1, 2])
        with pytest.raises(ValueError):
            ascii_plot([1], [1], width=5, height=2)

    def test_empty(self):
        assert ascii_plot([], []) == "(empty plot)"


class TestReplication:
    def test_interval_covers_mean(self):
        gen = np.random.default_rng(0)
        samples = {s: 10.0 + gen.normal() for s in range(10)}
        res = replicate(lambda s: samples[s], seeds=range(10))
        assert res.num_replications == 10
        assert res.ci.lo <= res.mean <= res.ci.hi
        assert res.spread > 0

    def test_rejects_few_or_duplicate_seeds(self):
        with pytest.raises(ValueError):
            replicate(lambda s: 1.0, seeds=[1])
        with pytest.raises(ValueError):
            replicate(lambda s: 1.0, seeds=[1, 1])

    def test_with_real_simulation(self):
        from repro.core.greedy import GreedyHypercubeScheme

        scheme = GreedyHypercubeScheme(d=3, lam=1.0, p=0.5)
        res = replicate(
            lambda s: scheme.measure_delay(200.0, rng=s), seeds=range(4)
        )
        assert scheme.delay_lower_bound() * 0.9 <= res.mean
        assert res.mean <= scheme.delay_upper_bound() * 1.1


class TestSlottedButterfly:
    def test_delay_below_bound(self):
        s = SlottedGreedyButterfly(d=4, lam=1.2, p=0.5, tau=0.5)
        t = s.measure_delay(500.0, rng=1)
        assert t <= s.delay_upper_bound() * 1.05

    def test_rho(self):
        s = SlottedGreedyButterfly(d=3, lam=1.0, p=0.2, tau=0.5)
        assert s.rho == pytest.approx(0.8)

    def test_rejects_bad_tau(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SlottedGreedyButterfly(d=3, lam=1.0, p=0.5, tau=0.4)


class TestCLI:
    def test_bounds_command(self, capsys):
        rc = main(["bounds", "--d", "4", "--rho", "0.5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Prop 12" in out
        assert "yes" in out  # stable

    def test_bounds_unstable(self, capsys):
        rc = main(["bounds", "--d", "4", "--rho", "1.2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no" in out

    def test_bounds_butterfly(self, capsys):
        rc = main(["bounds", "--network", "butterfly", "--d", "4", "--rho", "0.6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Prop 17" in out

    def test_simulate_command(self, capsys):
        rc = main(
            [
                "simulate",
                "--d",
                "3",
                "--rho",
                "0.5",
                "--horizon",
                "200",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "inside the bracket" in out

    def test_sweep_command(self, capsys):
        rc = main(
            ["sweep", "--d", "3", "--points", "3", "--horizon", "100"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "*" in out  # the plot

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
