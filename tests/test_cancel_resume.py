"""Cooperative cancellation and resumability of the parallel engine.

The serving contract :mod:`repro.serve` builds on: *cancel* is polled
between task waves; every wave's per-replication cells persist the
moment the wave completes; a cancelled call re-issued against the same
store resumes from those cells and pools a result identical to an
uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro.runner import (
    MeasurementCancelled,
    MeasureProgress,
    ResultsStore,
    ScenarioSpec,
    measure,
    measure_many,
)

SPEC = dict(name="cancel-t", d=3, rho=0.5, horizon=60.0, replications=8)


@pytest.fixture
def spec() -> ScenarioSpec:
    return ScenarioSpec(**SPEC)


@pytest.fixture
def reference(spec, tmp_path_factory):
    store = ResultsStore(tmp_path_factory.mktemp("ref"))
    return measure(spec, store=store)


class TestProgress:
    def test_progress_beats_cover_every_wave(self, spec):
        events = []
        measure(spec, progress=events.append, wave_reps=1)
        assert events[0] == MeasureProgress(0, 0, 0, spec.replications)
        assert [e.completed for e in events] == list(
            range(spec.replications + 1)
        )
        assert events[-1].remaining == 0

    def test_wave_reps_caps_wave_size(self, spec):
        events = []
        measure(spec, progress=events.append, wave_reps=3)
        deltas = [
            b.completed - a.completed for a, b in zip(events, events[1:])
        ]
        assert max(deltas) <= 3
        assert sum(deltas) == spec.replications

    def test_cache_hit_reports_all_cached(self, spec, tmp_path):
        store = ResultsStore(tmp_path)
        measure(spec, store=store)
        events = []
        m = measure(spec, store=store, progress=events.append)
        assert events == [
            MeasureProgress(0, 0, spec.replications, spec.replications)
        ]
        assert m == store.load(spec)

    def test_spec_index_tracks_position(self, spec):
        other = spec.replace(rho=0.4)
        events = []
        measure_many([spec, other], progress=events.append, wave_reps=4)
        assert {e.spec_index for e in events} == {0, 1}


class TestCancelResume:
    def test_cancel_preserves_completed_cells(self, spec, reference, tmp_path):
        store = ResultsStore(tmp_path)
        state = {"completed": 0}

        def progress(ev: MeasureProgress) -> None:
            state["completed"] = ev.completed

        with pytest.raises(MeasurementCancelled) as err:
            measure(
                spec,
                store=store,
                progress=progress,
                cancel=lambda: state["completed"] >= 3,
                wave_reps=1,
            )
        assert err.value.completed == 3
        stats = store.stats()
        assert stats.pooled == 0  # no pooled cell for a half-done spec
        assert stats.replications == 3

        # resume: the 3 persisted cells are loaded, only 5 are simulated
        events = []
        resumed = measure(spec, store=store, progress=events.append)
        assert events[0].cached == 3
        assert events[-1].completed == spec.replications - 3
        assert resumed == reference
        # and the pooled cell now exists for an instant third call
        assert store.load(spec) == reference

    def test_cancel_before_any_wave(self, spec, tmp_path):
        store = ResultsStore(tmp_path)
        with pytest.raises(MeasurementCancelled) as err:
            measure(spec, store=store, cancel=lambda: True)
        assert err.value.completed == 0
        assert store.stats().replications == 0

    def test_cancel_never_fires_runs_to_completion(self, spec, reference):
        assert measure(spec, cancel=lambda: False, wave_reps=2) == reference

    def test_resumed_cells_byte_identical(self, spec, tmp_path):
        """A cancelled-then-resumed run leaves exactly the cells an
        uninterrupted run writes, byte for byte."""
        whole_root, resumed_root = tmp_path / "whole", tmp_path / "resumed"
        measure(spec, store=ResultsStore(whole_root))
        store = ResultsStore(resumed_root)
        state = {"completed": 0}

        def progress(ev: MeasureProgress) -> None:
            state["completed"] = ev.completed

        with pytest.raises(MeasurementCancelled):
            measure(
                spec,
                store=store,
                progress=progress,
                cancel=lambda: state["completed"] >= 2,
                wave_reps=1,
            )
        measure(spec, store=store)
        whole = sorted(whole_root.rglob("*.json"))
        resumed = sorted(resumed_root.rglob("*.json"))
        assert [p.name for p in whole] == [p.name for p in resumed]
        assert all(
            a.read_bytes() == b.read_bytes() for a, b in zip(whole, resumed)
        )

    def test_parallel_jobs_cancel_between_waves(self, spec, tmp_path):
        """jobs > 1 routes through the pool; cancel still fires between
        completed waves and persists what finished."""
        store = ResultsStore(tmp_path)
        state = {"completed": 0}

        def progress(ev: MeasureProgress) -> None:
            state["completed"] = ev.completed

        with pytest.raises(MeasurementCancelled):
            measure(
                spec,
                jobs=2,
                store=store,
                progress=progress,
                cancel=lambda: state["completed"] >= 2,
                wave_reps=1,
            )
        persisted = store.stats().replications
        assert 2 <= persisted < spec.replications
        resumed = measure(spec, store=store)
        fresh = measure(spec, store=ResultsStore(tmp_path / "fresh"))
        assert resumed == fresh
