"""Tests for the scheme objects (greedy hypercube/butterfly, slotted)."""

import numpy as np
import pytest

from repro.core.greedy import GreedyButterflyScheme, GreedyHypercubeScheme
from repro.errors import ConfigurationError
from repro.sim.slotted import SlottedGreedyHypercube


class TestGreedyHypercubeScheme:
    def test_theory_properties(self):
        s = GreedyHypercubeScheme(d=6, lam=1.6, p=0.5)
        assert s.rho == pytest.approx(0.8)
        assert s.stable
        assert s.zero_contention_delay() == pytest.approx(3.0)
        assert s.delay_upper_bound() == pytest.approx(15.0)
        assert s.delay_lower_bound() < s.delay_upper_bound()

    def test_unstable_flag(self):
        s = GreedyHypercubeScheme(d=4, lam=2.5, p=0.5)
        assert not s.stable

    def test_run_is_reproducible(self):
        s = GreedyHypercubeScheme(d=4, lam=1.0, p=0.5)
        a = s.run(60.0, rng=5)
        b = s.run(60.0, rng=5)
        np.testing.assert_array_equal(a.delivery, b.delivery)

    def test_measured_delay_within_bounds(self):
        s = GreedyHypercubeScheme(d=5, lam=1.4, p=0.5)  # rho=0.7
        t = s.measure_delay(horizon=600.0, rng=7)
        assert s.delay_lower_bound() * 0.95 <= t <= s.delay_upper_bound() * 1.05

    def test_q_spec_consistent(self):
        s = GreedyHypercubeScheme(d=4, lam=1.0, p=0.3)
        spec = s.qspec()
        assert spec.num_arcs == s.cube.num_arcs
        np.testing.assert_allclose(spec.total_rates(s.lam), s.rho)

    def test_workload_dimensions(self):
        s = GreedyHypercubeScheme(d=4, lam=1.0, p=0.5)
        wl = s.workload()
        assert wl.cube.d == 4
        assert wl.total_rate == pytest.approx(16.0)

    @pytest.mark.parametrize("bad", [dict(lam=0.0), dict(p=0.0), dict(p=1.2)])
    def test_rejects_bad_params(self, bad):
        kwargs = dict(d=3, lam=1.0, p=0.5)
        kwargs.update(bad)
        with pytest.raises(ConfigurationError):
            GreedyHypercubeScheme(**kwargs)

    def test_ps_discipline_run(self):
        s = GreedyHypercubeScheme(d=3, lam=1.0, p=0.5)
        fifo = s.run(150.0, rng=3)
        ps = s.run(150.0, rng=3, discipline="ps")
        # same workload (same seed); PS delays dominate on average
        assert ps.delays().mean() >= fifo.delays().mean() - 1e-9


class TestGreedyButterflyScheme:
    def test_theory_properties(self):
        s = GreedyButterflyScheme(d=4, lam=1.2, p=0.3)
        assert s.rho == pytest.approx(1.2 * 0.7)
        assert s.stable
        assert s.delay_lower_bound() >= 4.0

    def test_measured_delay_within_bounds(self):
        s = GreedyButterflyScheme(d=4, lam=1.4, p=0.5)  # rho = 0.7
        t = s.measure_delay(horizon=600.0, rng=11)
        assert s.delay_lower_bound() * 0.95 <= t <= s.delay_upper_bound() * 1.05

    def test_rspec_rates(self):
        s = GreedyButterflyScheme(d=3, lam=1.0, p=0.25)
        rates = s.rspec().total_rates(1.0)
        assert rates.max() == pytest.approx(0.75)

    def test_asymmetric_p_still_valid(self):
        # straight arcs are the bottleneck: rho_s = 0.8 >> rho_v = 0.2
        # (keep the bottleneck comfortably below 1 so a 600-unit horizon
        # reaches steady state; relaxation time blows up as (1-rho)^-2)
        s = GreedyButterflyScheme(d=3, lam=1.0, p=0.2)
        t = s.measure_delay(horizon=600.0, rng=13)
        assert s.delay_lower_bound() * 0.95 <= t <= s.delay_upper_bound() * 1.05


class TestSlottedScheme:
    def test_bound_is_continuous_plus_tau(self):
        s = SlottedGreedyHypercube(d=4, lam=1.2, p=0.5, tau=0.5)
        from repro.core.bounds import greedy_delay_upper_bound

        assert s.delay_upper_bound() == pytest.approx(
            greedy_delay_upper_bound(4, 1.2, 0.5) + 0.5
        )

    def test_measured_delay_below_slotted_bound(self):
        s = SlottedGreedyHypercube(d=4, lam=1.2, p=0.5, tau=0.5)  # rho=0.6
        t = s.measure_delay(horizon=600.0, rng=17)
        assert t <= s.delay_upper_bound() * 1.05

    def test_all_births_slot_aligned(self):
        s = SlottedGreedyHypercube(d=3, lam=1.0, p=0.5, tau=0.25)
        res = s.run(40.0, rng=19)
        np.testing.assert_allclose(res.sample.times % 0.25, 0.0, atol=1e-12)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            SlottedGreedyHypercube(d=3, lam=0.0, p=0.5)
        with pytest.raises(ConfigurationError):
            SlottedGreedyHypercube(d=3, lam=1.0, p=0.5, tau=0.3)
