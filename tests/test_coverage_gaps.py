"""Tests for remaining API surfaces not covered elsewhere."""

import numpy as np
import pytest

from repro.analysis.experiments import sweep_load_factors
from repro.core.greedy import GreedyHypercubeScheme
from repro.sim.eventsim import simulate_paths_event_driven
from repro.sim.feedforward import ArcLog


class TestArcLogForArc:
    def test_filters_and_orders(self):
        log = ArcLog(
            pid=np.array([2, 0, 1]),
            arc=np.array([5, 5, 3]),
            t_in=np.array([4.0, 1.0, 0.0]),
            t_out=np.array([5.0, 2.0, 1.0]),
        )
        sub = log.for_arc(5)
        assert sub.num_hops == 2
        # service order: by (t_in, pid)
        np.testing.assert_array_equal(sub.pid, [0, 2])
        np.testing.assert_allclose(sub.t_in, [1.0, 4.0])

    def test_empty_arc(self):
        log = ArcLog(
            pid=np.array([0]),
            arc=np.array([1]),
            t_in=np.array([0.0]),
            t_out=np.array([1.0]),
        )
        assert log.for_arc(7).num_hops == 0


class TestEventSimExtras:
    def test_delay_record_from_sample(self, cube3):
        from repro.traffic.destinations import BernoulliFlipLaw
        from repro.traffic.workload import HypercubeWorkload

        wl = HypercubeWorkload(cube3, 1.0, BernoulliFlipLaw(3, 0.5))
        sample = wl.generate(60.0, rng=1)
        from repro.sim.eventsim import hypercube_packet_paths

        res = simulate_paths_event_driven(
            cube3.num_arcs, sample.times, hypercube_packet_paths(cube3, sample)
        )
        rec = res.delay_record_from(sample)
        assert rec.num_packets == sample.num_packets

    def test_ps_with_custom_service(self):
        res = simulate_paths_event_driven(
            1, np.array([0.0, 0.0]), [[0], [0]], discipline="ps", service=2.0
        )
        # two customers sharing a 2-unit-work server: both depart at 4
        np.testing.assert_allclose(res.delivery, [4.0, 4.0])


class TestSweepButterfly:
    def test_butterfly_network_sweep(self):
        points = sweep_load_factors(
            3, [0.4, 0.7], horizon=200.0, seed=1, network="butterfly"
        )
        assert [p.network for p in points] == ["butterfly", "butterfly"]
        assert points[0].mean_delay < points[1].mean_delay


class TestCliButterflySimulate:
    def test_simulate_butterfly(self, capsys):
        from repro.__main__ import main

        rc = main(
            [
                "simulate",
                "--network",
                "butterfly",
                "--d",
                "3",
                "--rho",
                "0.5",
                "--horizon",
                "150",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "butterfly" in out


class TestFormatCellVariants:
    def test_ints_and_negatives(self):
        from repro.analysis.tables import format_cell

        assert format_cell(42) == "42"
        assert format_cell(-1.5) == "-1.5"
        assert format_cell(-1e-5) == "-1.000e-05"
        assert format_cell(False) == "no"


class TestSchemeRunRecordInteraction:
    def test_run_with_all_options(self):
        scheme = GreedyHypercubeScheme(d=3, lam=1.0, p=0.5)
        res = scheme.run(
            60.0, rng=3, discipline="ps", dim_order=[2, 0, 1], record_arc_log=True
        )
        assert res.arc_log is not None
        assert np.all(res.delivery >= res.sample.times)

    def test_two_phase_empty_run(self):
        from repro.schemes.twophase import TwoPhaseScheme
        from repro.traffic.destinations import BernoulliFlipLaw

        s = TwoPhaseScheme(d=3, lam=0.01, law=BernoulliFlipLaw(3, 0.5))
        res = s.run(0.05, rng=4)  # likely zero packets
        assert res.mean_hops() >= 0.0


class TestUniversalBoundMonotonicity:
    def test_exact_bound_monotone_in_rho(self):
        from repro.core.bounds import universal_delay_lower_bound

        vals = [
            universal_delay_lower_bound(3, rho / 0.5, 0.5, mdc_method="exact")
            for rho in (0.5, 0.8, 0.95)
        ]
        assert vals == sorted(vals)

    def test_general_matches_bernoulli_specialisation(self):
        from repro.core.bounds import oblivious_delay_lower_bound
        from repro.core.general import general_oblivious_lower_bound
        from repro.traffic.destinations import BernoulliFlipLaw

        d, lam, p = 4, 1.2, 0.5
        law = BernoulliFlipLaw(d, p)
        assert general_oblivious_lower_bound(lam, law) == pytest.approx(
            oblivious_delay_lower_bound(d, lam, p)
        )
