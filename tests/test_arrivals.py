"""Tests for arrival processes (Poisson, §3.4 slotted batches)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.arrivals import (
    PoissonProcess,
    SlottedBatchArrivals,
    merged_poisson_arrivals,
)


class TestPoissonProcess:
    def test_times_sorted_within_horizon(self, rng):
        times = PoissonProcess(2.0).sample_times(100.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0.0
        assert times.max() < 100.0

    def test_mean_count(self, rng):
        proc = PoissonProcess(3.0)
        counts = [proc.sample_times(50.0, rng).shape[0] for _ in range(50)]
        assert np.mean(counts) == pytest.approx(150.0, rel=0.1)

    def test_zero_rate(self, rng):
        assert PoissonProcess(0.0).sample_times(10.0, rng).shape == (0,)

    def test_zero_horizon(self, rng):
        assert PoissonProcess(5.0).sample_times(0.0, rng).shape == (0,)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(-1.0)

    def test_rejects_negative_horizon(self, rng):
        with pytest.raises(ConfigurationError):
            PoissonProcess(1.0).sample_times(-1.0, rng)

    def test_interarrival_distribution(self, rng):
        # gaps of a Poisson(2) process are Exp(2): mean 0.5
        times = PoissonProcess(2.0).sample_times(5000.0, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(0.5, rel=0.05)


class TestMergedPoisson:
    def test_shapes_and_ranges(self, rng):
        times, sources = merged_poisson_arrivals(8, 1.0, 50.0, rng)
        assert times.shape == sources.shape
        assert np.all(np.diff(times) >= 0)
        assert sources.min() >= 0 and sources.max() < 8

    def test_source_uniformity(self, rng):
        _, sources = merged_poisson_arrivals(4, 2.0, 2000.0, rng)
        freq = np.bincount(sources, minlength=4) / sources.shape[0]
        np.testing.assert_allclose(freq, 0.25, atol=0.02)

    def test_total_rate(self, rng):
        times, _ = merged_poisson_arrivals(16, 0.5, 1000.0, rng)
        assert times.shape[0] == pytest.approx(8000, rel=0.1)

    def test_rejects_zero_sources(self, rng):
        with pytest.raises(ConfigurationError):
            merged_poisson_arrivals(0, 1.0, 10.0, rng)


class TestSlottedBatches:
    def test_times_are_slot_multiples(self, rng):
        sb = SlottedBatchArrivals(rate=2.0, tau=0.5)
        times, _ = sb.sample_times(4, 20.0, rng)
        np.testing.assert_allclose(times % 0.5, 0.0, atol=1e-12)

    def test_num_slots(self):
        sb = SlottedBatchArrivals(rate=1.0, tau=0.25)
        assert sb.num_slots(10.0) == 40
        assert sb.num_slots(0.3) == 2  # boundaries at 0.0 and 0.25

    def test_intensity_matches_continuous(self, rng):
        # mean packets per node per unit time must equal `rate`
        sb = SlottedBatchArrivals(rate=1.5, tau=0.5)
        times, _ = sb.sample_times(8, 500.0, rng)
        assert times.shape[0] / (8 * 500.0) == pytest.approx(1.5, rel=0.05)

    def test_sources_in_range(self, rng):
        sb = SlottedBatchArrivals(rate=1.0, tau=1.0)
        _, sources = sb.sample_times(4, 50.0, rng)
        assert sources.min() >= 0 and sources.max() < 4

    def test_times_sorted(self, rng):
        sb = SlottedBatchArrivals(rate=3.0, tau=0.25)
        times, _ = sb.sample_times(4, 50.0, rng)
        assert np.all(np.diff(times) >= 0)

    @pytest.mark.parametrize("tau", [0.3, 1.5, 0.0, -0.5])
    def test_rejects_bad_tau(self, tau):
        with pytest.raises(ConfigurationError):
            SlottedBatchArrivals(rate=1.0, tau=tau)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            SlottedBatchArrivals(rate=-1.0, tau=0.5)
