"""Tests for the event calendar."""

import pytest

from repro.sim.engine import EventCalendar


class TestEventCalendar:
    def test_orders_by_time(self):
        cal = EventCalendar()
        cal.schedule(3.0, "c")
        cal.schedule(1.0, "a")
        cal.schedule(2.0, "b")
        out = [cal.pop()[1] for _ in range(3)]
        assert out == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        cal = EventCalendar()
        cal.schedule(1.0, "arrival", priority=5)
        cal.schedule(1.0, "departure", priority=-1)
        assert cal.pop()[1] == "departure"
        assert cal.pop()[1] == "arrival"

    def test_insertion_order_breaks_remaining_ties(self):
        cal = EventCalendar()
        cal.schedule(1.0, "first", priority=0)
        cal.schedule(1.0, "second", priority=0)
        assert cal.pop()[1] == "first"
        assert cal.pop()[1] == "second"

    def test_now_tracks_pops(self):
        cal = EventCalendar()
        assert cal.now == 0.0
        cal.schedule(2.5, "x")
        cal.pop()
        assert cal.now == 2.5

    def test_rejects_scheduling_in_past(self):
        cal = EventCalendar()
        cal.schedule(5.0, "x")
        cal.pop()
        with pytest.raises(ValueError):
            cal.schedule(1.0, "y")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventCalendar().pop()

    def test_len_and_peek(self):
        cal = EventCalendar()
        assert len(cal) == 0
        assert cal.peek_time() is None
        cal.schedule(1.0, "x")
        assert len(cal) == 1
        assert cal.peek_time() == 1.0
