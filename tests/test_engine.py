"""Tests for the event calendar."""

import pytest

from repro.sim.engine import EventCalendar


class TestEventCalendar:
    def test_orders_by_time(self):
        cal = EventCalendar()
        cal.schedule(3.0, "c")
        cal.schedule(1.0, "a")
        cal.schedule(2.0, "b")
        out = [cal.pop()[1] for _ in range(3)]
        assert out == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        cal = EventCalendar()
        cal.schedule(1.0, "arrival", priority=5)
        cal.schedule(1.0, "departure", priority=-1)
        assert cal.pop()[1] == "departure"
        assert cal.pop()[1] == "arrival"

    def test_insertion_order_breaks_remaining_ties(self):
        cal = EventCalendar()
        cal.schedule(1.0, "first", priority=0)
        cal.schedule(1.0, "second", priority=0)
        assert cal.pop()[1] == "first"
        assert cal.pop()[1] == "second"

    def test_now_tracks_pops(self):
        cal = EventCalendar()
        assert cal.now == 0.0
        cal.schedule(2.5, "x")
        cal.pop()
        assert cal.now == 2.5

    def test_rejects_scheduling_in_past(self):
        cal = EventCalendar()
        cal.schedule(5.0, "x")
        cal.pop()
        with pytest.raises(ValueError):
            cal.schedule(1.0, "y")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventCalendar().pop()

    def test_len_and_peek(self):
        cal = EventCalendar()
        assert len(cal) == 0
        assert cal.peek_time() is None
        cal.schedule(1.0, "x")
        assert len(cal) == 1
        assert cal.peek_time() == 1.0

    def test_full_triple_ordering(self):
        """(time, priority, seq) is the total order: time first, then
        priority, then insertion sequence — regression for the exact
        rule the simulators rely on for determinism."""
        cal = EventCalendar()
        cal.schedule(2.0, "t2-early", priority=-5)
        cal.schedule(1.0, "t1-p0-first", priority=0)
        cal.schedule(1.0, "t1-p-1", priority=-1)
        cal.schedule(1.0, "t1-p0-second", priority=0)
        cal.schedule(0.5, "t05", priority=99)
        order = [cal.pop()[1] for _ in range(5)]
        assert order == [
            "t05",          # earliest time wins regardless of priority
            "t1-p-1",       # at equal times, lower priority first
            "t1-p0-first",  # at equal (time, priority), insertion order
            "t1-p0-second",
            "t2-early",
        ]

    def test_peek_time_empty_after_drain(self):
        cal = EventCalendar()
        cal.schedule(1.0, "x")
        cal.pop()
        assert cal.peek_time() is None
        assert len(cal) == 0
        with pytest.raises(IndexError):
            cal.pop()

    def test_past_rejection_boundary(self):
        """Scheduling *at* now (or within the 1e-12 float slack) is
        allowed — simultaneous follow-on events are the normal case —
        while anything clearly earlier raises."""
        cal = EventCalendar()
        cal.schedule(5.0, "x")
        cal.pop()
        cal.schedule(5.0, "same-time ok")
        cal.schedule(5.0 - 1e-13, "within slack ok")
        with pytest.raises(ValueError):
            cal.schedule(5.0 - 1e-9, "too early")

    def test_many_ties_fire_in_insertion_order(self):
        cal = EventCalendar()
        for i in range(100):
            cal.schedule(3.0, i)
        assert [cal.pop()[1] for _ in range(100)] == list(range(100))
