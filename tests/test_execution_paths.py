"""The three-route equivalence contract of the parallel runner.

One spec, three ways to execute its replications — sequential
per-replication tasks, the cache-resident sub-batched engine path, and
the shared-workload parallel composition (``jobs > 1`` with workloads
generated centrally and published through a memory-mapped file) — plus
the bounded-memory chunked-horizon mode.  All of them must be
**bit-identical**: same pooled measurement, and byte-identical
per-replication cache cells (the cells are how sweeps compose across
sessions, so even a one-ulp drift would poison every downstream
pooled estimate).
"""

import tracemalloc

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runner import ScenarioSpec, measure
from repro.runner.store import ResultsStore

#: one small cell per registered network (both native engines: the
#: level sweep on hypercube/butterfly, the fixed-point solver on
#: ring/torus), sized so the full matrix stays fast
CELLS = [
    ScenarioSpec(
        name="paths-hc", network="hypercube", scheme="greedy", d=4,
        rho=0.6, horizon=6.0, replications=5, base_seed=11,
        seed_policy="sequential",
    ),
    ScenarioSpec(
        name="paths-bf", network="butterfly", scheme="greedy", d=3,
        rho=0.6, horizon=6.0, replications=5, base_seed=12,
        seed_policy="sequential",
    ),
    ScenarioSpec(
        name="paths-ring", network="ring", scheme="greedy", d=4,
        rho=0.5, horizon=5.0, replications=4, base_seed=13,
        seed_policy="spawn",
    ),
    ScenarioSpec(
        name="paths-torus", network="torus", scheme="greedy", d=2,
        rho=0.5, horizon=5.0, replications=4, base_seed=14,
        seed_policy="spawn",
    ),
]

#: the two pool widths the shared-workload route is exercised at
WORKER_COUNTS = (2, 4)


def _cell_bytes(store, spec):
    return [
        store.replication_path_for(spec, k).read_bytes()
        for k in range(spec.replications)
    ]


def _cell_numbers(store, spec):
    """The numeric payload of each per-replication cell (a chunked
    spec's cell embeds its own spec dict — different content hash, by
    design — so byte equality only applies within one spec)."""
    import json

    out = []
    for k in range(spec.replications):
        cell = json.loads(store.replication_path_for(spec, k).read_text())
        out.append((cell["mean_delay"], cell["num_packets"], cell["metrics"]))
    return out


class TestThreeRouteEquivalence:
    @pytest.mark.parametrize("spec", CELLS, ids=lambda s: s.network)
    def test_sequential_batched_parallel_identical(self, spec, tmp_path):
        """Pooled measurements equal and per-replication cache cells
        byte-identical across every route and worker count."""
        seq_store = ResultsStore(tmp_path / "seq")
        m_seq = measure(spec, jobs=1, batch=False, store=seq_store)
        reference = _cell_bytes(seq_store, spec)

        bat_store = ResultsStore(tmp_path / "bat")
        m_bat = measure(spec, jobs=1, batch=True, store=bat_store)
        assert m_bat == m_seq
        assert _cell_bytes(bat_store, spec) == reference

        for jobs in WORKER_COUNTS:
            par_store = ResultsStore(tmp_path / f"par{jobs}")
            m_par = measure(spec, jobs=jobs, batch=True, store=par_store)
            assert m_par == m_seq, f"jobs={jobs}"
            assert _cell_bytes(par_store, spec) == reference, f"jobs={jobs}"

    @pytest.mark.parametrize(
        "spec", [s for s in CELLS if s.network in ("hypercube", "butterfly")],
        ids=lambda s: s.network,
    )
    def test_chunked_horizon_identical(self, spec, tmp_path):
        """The chunked-horizon mode matches the one-shot sweep bit for
        bit, in process and across the pool (the chunk size must never
        leak into the numbers — only into the memory profile)."""
        seq_store = ResultsStore(tmp_path / "seq")
        m_seq = measure(spec, jobs=1, batch=False, store=seq_store)
        reference = _cell_numbers(seq_store, spec)
        for chunk in (1, 7, 50, 10**6):
            chunked = spec.replace(extra={"chunk_packets": chunk})
            chk_store = ResultsStore(tmp_path / f"chk{chunk}")
            m_chk = measure(chunked, jobs=1, batch=True, store=chk_store)
            assert m_chk.replication_delays == m_seq.replication_delays
            assert _cell_numbers(chk_store, chunked) == reference
        chunked = spec.replace(extra={"chunk_packets": 13})
        m_par = measure(chunked, jobs=2, batch=True)
        assert m_par.replication_delays == m_seq.replication_delays


#: event-engine cells: greedy forced onto the calendar engine rides
#: every route (its shared-workload decomposition rebuilds paths from
#: the published samples); the cyclic-scheme cells have no shm
#: decomposition (their scheme RNG follows the workload draw) and
#: compose through chunked batch tasks at jobs > 1 instead
EVENT_CELLS = [
    ScenarioSpec(
        name="paths-ev-greedy", network="hypercube", scheme="greedy",
        engine="event", d=4, rho=0.6, horizon=6.0, replications=5,
        base_seed=21, seed_policy="sequential",
    ),
    ScenarioSpec(
        name="paths-ev-greedy-ps", network="hypercube", scheme="greedy",
        engine="event", discipline="ps", d=4, rho=0.6, horizon=6.0,
        replications=4, base_seed=22, seed_policy="spawn",
    ),
]

CYCLIC_CELLS = [
    ScenarioSpec(
        name="paths-ev-random-order", network="hypercube",
        scheme="random_order", d=4, rho=0.6, horizon=6.0,
        replications=5, base_seed=23, seed_policy="sequential",
    ),
    ScenarioSpec(
        name="paths-ev-twophase", network="hypercube", scheme="twophase",
        d=4, rho=0.6, horizon=6.0, replications=4, base_seed=24,
        seed_policy="spawn",
    ),
]


class TestEventRouteEquivalence:
    """The three-route contract extended to the event calendar."""

    @pytest.mark.parametrize("spec", EVENT_CELLS, ids=lambda s: s.name)
    def test_event_engine_three_routes_identical(self, spec, tmp_path):
        """Greedy on the forced event engine: sequential, batched and
        shared-workload (jobs=2) cells byte-identical."""
        seq_store = ResultsStore(tmp_path / "seq")
        m_seq = measure(spec, jobs=1, batch=False, store=seq_store)
        reference = _cell_bytes(seq_store, spec)

        bat_store = ResultsStore(tmp_path / "bat")
        m_bat = measure(spec, jobs=1, batch=True, store=bat_store)
        assert m_bat == m_seq
        assert _cell_bytes(bat_store, spec) == reference

        par_store = ResultsStore(tmp_path / "par")
        m_par = measure(spec, jobs=2, batch=True, store=par_store)
        assert m_par == m_seq
        assert _cell_bytes(par_store, spec) == reference

    @pytest.mark.parametrize("spec", CYCLIC_CELLS, ids=lambda s: s.name)
    def test_cyclic_scheme_batched_routes_identical(self, spec, tmp_path):
        """Cyclic schemes (batch runner, no shm decomposition): the
        batched calendar and its jobs=2 chunked composition reproduce
        the sequential cells byte for byte."""
        seq_store = ResultsStore(tmp_path / "seq")
        m_seq = measure(spec, jobs=1, batch=False, store=seq_store)
        reference = _cell_bytes(seq_store, spec)

        bat_store = ResultsStore(tmp_path / "bat")
        m_bat = measure(spec, jobs=1, batch=True, store=bat_store)
        assert m_bat == m_seq
        assert _cell_bytes(bat_store, spec) == reference

        par_store = ResultsStore(tmp_path / "par")
        m_par = measure(spec, jobs=2, batch=True, store=par_store)
        assert m_par == m_seq
        assert _cell_bytes(par_store, spec) == reference


class TestChunkedKernels:
    def test_hypercube_chunked_respects_dim_order(self):
        """Chunk composition commutes with a permuted global crossing
        order (the carry is per *arc*, and arcs are dimension-scoped)."""
        base = ScenarioSpec(
            name="chk-order", network="hypercube", scheme="greedy", d=6,
            rho=0.6, horizon=6.0, replications=2, base_seed=5,
            extra={"dim_order": (3, 0, 5, 1, 4, 2)},
        )
        m_one = measure(base, jobs=1, batch=False)
        m_chk = measure(
            base.replace(extra={"dim_order": (3, 0, 5, 1, 4, 2),
                                "chunk_packets": 19}),
            jobs=1, batch=True,
        )
        assert m_chk.replication_delays == m_one.replication_delays

    def test_chunked_rejects_nonpositive_chunk(self):
        from repro.sim.feedforward import simulate_hypercube_greedy_chunked
        from repro.topology.hypercube import Hypercube
        from repro.traffic.workload import HypercubeWorkload
        from repro.traffic.destinations import UniformLaw

        cube = Hypercube(4)
        sample = HypercubeWorkload(cube, 1.0, UniformLaw(4)).generate(
            2.0, np.random.default_rng(0)
        )
        with pytest.raises(ConfigurationError, match="chunk_packets"):
            simulate_hypercube_greedy_chunked(cube, sample, chunk_packets=0)

    def test_chunked_rejects_unchunkable_network(self):
        """Networks without a chunk-composable kernel reject the option
        at validation time (fixedpoint declares no such option)."""
        with pytest.raises(ConfigurationError, match="chunk_packets"):
            spec = ScenarioSpec(
                name="chk-ring", network="ring", scheme="greedy", d=4,
                rho=0.5, horizon=4.0, replications=1,
                extra={"chunk_packets": 16},
            )
            measure(spec, jobs=1)


class TestChunkedPS:
    """The PS chunk carry: in-service packets carried per arc across
    chunk boundaries, busy periods closed at the watermark.  Contract:
    agreement with the one-shot fair-share sweep to <= 1e-9 at every
    chunk size, on both chunk-composable networks."""

    TOL = 1e-9
    CHUNKS = (1, 7, 50, 333, 10**6)

    @staticmethod
    def _one_replication(spec):
        from repro.rng import as_generator, replication_seeds

        net = spec.network_plugin
        topology = net.build_topology(spec)
        seeds = replication_seeds(spec.base_seed, 1, spec.seed_policy)
        sample = net.build_workload(spec).generate(
            spec.horizon, as_generator(seeds[0])
        )
        return net, topology, sample

    @pytest.mark.parametrize("network,d", [("hypercube", 5), ("butterfly", 4)])
    def test_ps_chunk_sweep_matches_one_shot(self, network, d):
        spec = ScenarioSpec(
            name="chk-ps", network=network, scheme="greedy", d=d,
            rho=0.6, horizon=8.0, replications=1, base_seed=21,
            discipline="ps",
        )
        net, topology, sample = self._one_replication(spec)
        assert sample.num_packets > 100
        one_shot = net.simulate_greedy(topology, spec, sample)
        for chunk in self.CHUNKS:
            chunked = net.simulate_greedy_chunked(
                topology, spec, sample, chunk
            )
            err = float(np.max(np.abs(chunked - one_shot)))
            assert err <= self.TOL, f"chunk={chunk}: max deviation {err}"

    def test_ps_chunk_sweep_with_permuted_dim_order(self):
        """The carry composes with a permuted global crossing order —
        the level-space bookkeeping must remap through it."""
        extra = {"dim_order": (3, 0, 4, 1, 2)}
        spec = ScenarioSpec(
            name="chk-ps-ord", network="hypercube", scheme="greedy", d=5,
            rho=0.6, horizon=8.0, replications=1, base_seed=22,
            discipline="ps", extra=extra,
        )
        net, topology, sample = self._one_replication(spec)
        one_shot = net.simulate_greedy(topology, spec, sample)
        for chunk in (1, 29, 10**6):
            chunked = net.simulate_greedy_chunked(
                topology, spec, sample, chunk
            )
            assert float(np.max(np.abs(chunked - one_shot))) <= self.TOL

    def test_ps_chunked_accepted_end_to_end(self):
        """The engine no longer rejects chunk_packets + PS: a chunked
        PS measurement runs and agrees with the one-shot PS run."""
        spec = ScenarioSpec(
            name="chk-ps-e2e", network="hypercube", scheme="greedy", d=4,
            rho=0.5, horizon=6.0, replications=3, base_seed=23,
            discipline="ps",
        )
        m_one = measure(spec, jobs=1, batch=False)
        m_chk = measure(
            spec.replace(extra={"chunk_packets": 16}), jobs=1, batch=True
        )
        for a, b in zip(m_chk.replication_delays, m_one.replication_delays):
            assert abs(a - b) <= self.TOL


class TestRepBlockedConvergence:
    """The fixed-point solver's rep-blocked convergence: a replication
    that reaches its fixed point drops out of the remaining sweeps
    (observable via FixedPointResult.sweep_rows) while the final sample
    paths stay bit-identical to the standalone solves."""

    @staticmethod
    def _mixed_reps():
        """Two replications with deliberately heterogeneous convergence:
        a single-hop fast one and a long shared-arc chain."""
        rng = np.random.default_rng(17)
        num_arcs = 10
        fast = (
            np.sort(rng.uniform(0.0, 5.0, 4)),
            [[int(rng.integers(0, num_arcs))] for _ in range(4)],
        )
        slow_paths = [
            [int((s + k) % num_arcs) for k in range(int(rng.integers(4, 9)))]
            for s in rng.integers(0, num_arcs, 80)
        ]
        slow = (np.sort(rng.uniform(0.0, 10.0, 80)), slow_paths)
        return num_arcs, [fast, slow]

    @pytest.mark.parametrize("discipline", ["fifo", "ps"])
    def test_batch_bit_identical_with_fewer_sweep_rows(self, discipline):
        from repro.sim.fixedpoint import (
            simulate_paths_fixed_point,
            simulate_paths_fixed_point_batch,
        )

        num_arcs, reps = self._mixed_reps()
        solo = [
            simulate_paths_fixed_point(
                num_arcs, births, paths, discipline=discipline
            )
            for births, paths in reps
        ]
        assert solo[0].sweeps < solo[1].sweeps  # genuinely heterogeneous
        batch = simulate_paths_fixed_point_batch(
            num_arcs,
            [r[0] for r in reps],
            [r[1] for r in reps],
            discipline=discipline,
        )
        for r in range(len(reps)):
            assert np.array_equal(batch[r], solo[r].delivery)

    def test_sweep_rows_counts_only_active_blocks(self):
        from repro.sim.fixedpoint import simulate_paths_fixed_point

        num_arcs, reps = self._mixed_reps()
        births = np.concatenate([r[0] for r in reps])
        stacked = [list(p) for p in reps[0][1]] + [
            [a + num_arcs for a in p] for p in reps[1][1]
        ]
        total = sum(len(p) for p in stacked)
        rep_blocks = np.array(
            [0, sum(len(p) for p in reps[0][1]), total], dtype=np.int64
        )
        res = simulate_paths_fixed_point(
            num_arcs * 2, births, stacked, rep_blocks=rep_blocks
        )
        # the fast block converged early and was dropped: strictly
        # fewer rows swept than sweeps * total
        assert res.sweep_rows < res.sweeps * total
        # and without rep_blocks every sweep scans every row
        flat = simulate_paths_fixed_point(num_arcs * 2, births, stacked)
        assert flat.sweep_rows == flat.sweeps * total
        assert np.array_equal(flat.delivery, res.delivery)


class TestBoundedMemory:
    def test_long_horizon_peak_is_chunk_bounded_not_horizon_bounded(self):
        """On a long-horizon cell the one-shot sweep's transient
        footprint scales with the horizon; the chunked sweep's scales
        with the chunk + the topology.  The gap is the whole point of
        the mode."""
        spec = ScenarioSpec(
            name="mem-long", network="hypercube", scheme="greedy", d=8,
            rho=0.7, horizon=150.0, replications=1, base_seed=2,
        )
        net = spec.network_plugin
        topology = net.build_topology(spec)
        from repro.rng import as_generator, replication_seeds

        seeds = replication_seeds(spec.base_seed, 1, spec.seed_policy)
        sample = net.build_workload(spec).generate(
            spec.horizon, as_generator(seeds[0])
        )
        tracemalloc.start()
        one_shot = net.simulate_greedy(topology, spec, sample)
        _, peak_one = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        tracemalloc.start()
        chunked = net.simulate_greedy_chunked(topology, spec, sample, 2048)
        _, peak_chunk = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert np.array_equal(one_shot, chunked)
        assert peak_chunk < peak_one / 2

    def test_d20_cell_completes_in_carry_bounded_memory(self):
        """A d=20 hypercube cell (1M nodes, 21M arcs) streams through
        the chunked kernel with peak *additional* memory bounded by the
        dense per-arc carry plus a chunk-sized working set — not by the
        horizon — and stays bit-identical to the one-shot sweep."""
        spec = ScenarioSpec(
            name="mem-d20", network="hypercube", scheme="greedy", d=20,
            rho=0.6, horizon=0.05, replications=1, base_seed=3,
        )
        net = spec.network_plugin
        topology = net.build_topology(spec)
        from repro.rng import as_generator, replication_seeds

        seeds = replication_seeds(spec.base_seed, 1, spec.seed_policy)
        sample = net.build_workload(spec).generate(
            spec.horizon, as_generator(seeds[0])
        )
        assert sample.num_packets > 20_000  # a real cell, not a toy
        chunk = 8192
        tracemalloc.start()
        chunked = net.simulate_greedy_chunked(topology, spec, sample, chunk)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # dense carry: int64 counts + float64 running max per arc
        carry_bytes = topology.num_arcs * 16
        # plus a chunk-scaled transient working set and ~a few hundred
        # bytes of in-flight bookkeeping per packet (delivery/hops/
        # entry plus the parked (pid, arrival) rows) — crucially, NOT
        # the one-shot sweep's multiple-arrays-per-(packet, level)
        # footprint, which is what the horizon multiplies
        budget = carry_bytes + 64 * 8 * chunk + 400 * sample.num_packets
        assert peak < budget
        one_shot = net.simulate_greedy(topology, spec, sample)
        assert np.array_equal(one_shot, chunked)


class TestRunnerResolution:
    def test_batch_runner_resolved_once_per_spec(self, monkeypatch):
        """measure_many must resolve the scheme's batch runner once per
        spec — never again at task-execution time in the same process."""
        from repro.plugins.greedy import GreedyPlugin

        calls = []
        original = GreedyPlugin.batch_runner

        def counting(self, spec):
            calls.append(spec.name)
            return original(self, spec)

        monkeypatch.setattr(GreedyPlugin, "batch_runner", counting)
        spec = CELLS[0]
        measure(spec, jobs=1, batch=True)
        assert calls == [spec.name]

    def test_shared_workload_scratch_is_cleaned_up(self, tmp_path, monkeypatch):
        """The memory-mapped scratch directory must not outlive the
        measure_many call."""
        import tempfile

        created = []
        real = tempfile.mkdtemp

        def tracking(*args, **kwargs):
            path = real(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr(tempfile, "mkdtemp", tracking)
        measure(CELLS[0], jobs=2, batch=True)
        import os

        scratch = [p for p in created if "repro-shm-" in p]
        assert scratch, "the jobs>1 batched route should share workloads"
        assert not any(os.path.exists(p) for p in scratch)
