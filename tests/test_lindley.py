"""Tests for the vectorised Lindley recursion (Lemma 8 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.lindley import (
    fifo_departure_times,
    fifo_departure_times_loop,
    fifo_waiting_times,
    unfinished_work,
)

sorted_times = (
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60)
    .map(sorted)
    .map(np.array)
)


class TestFifoDepartures:
    def test_single_customer(self):
        np.testing.assert_allclose(fifo_departure_times(np.array([2.5])), [3.5])

    def test_no_contention(self):
        t = np.array([0.0, 5.0, 10.0])
        np.testing.assert_allclose(fifo_departure_times(t), [1.0, 6.0, 11.0])

    def test_back_to_back(self):
        t = np.array([0.0, 0.0, 0.0])
        np.testing.assert_allclose(fifo_departure_times(t), [1.0, 2.0, 3.0])

    def test_mixed(self):
        t = np.array([0.0, 0.5, 3.0])
        np.testing.assert_allclose(fifo_departure_times(t), [1.0, 2.0, 4.0])

    def test_custom_service(self):
        t = np.array([0.0, 0.1])
        np.testing.assert_allclose(fifo_departure_times(t, service=2.0), [2.0, 4.0])

    def test_empty(self):
        assert fifo_departure_times(np.array([])).shape == (0,)

    def test_rejects_bad_service(self):
        with pytest.raises(ValueError):
            fifo_departure_times(np.array([0.0]), service=0.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            fifo_departure_times(np.zeros((2, 2)))


class TestWaitingTimes:
    def test_values(self):
        t = np.array([0.0, 0.0, 5.0])
        np.testing.assert_allclose(fifo_waiting_times(t), [0.0, 1.0, 0.0])

    def test_non_negative(self, rng):
        t = np.sort(rng.random(100) * 50)
        assert np.all(fifo_waiting_times(t) >= -1e-12)


class TestUnfinishedWork:
    def test_empty_before_arrival(self):
        assert unfinished_work(np.array([5.0]), at=4.0) == 0.0

    def test_one_customer_half_served(self):
        assert unfinished_work(np.array([0.0]), at=0.5) == pytest.approx(0.5)

    def test_queue_accumulates(self):
        # 3 arrivals at 0: at t=0.5 work = 0.5 + 1 + 1
        t = np.zeros(3)
        assert unfinished_work(t, at=0.5) == pytest.approx(2.5)

    def test_drains_to_zero(self):
        t = np.array([0.0, 0.2])
        assert unfinished_work(t, at=5.0) == 0.0

    def test_left_limit_excludes_arrival_at_t(self):
        # W(t-) does not see a customer arriving exactly at t
        assert unfinished_work(np.array([1.0]), at=1.0) == 0.0


@settings(max_examples=200, deadline=None)
@given(t=sorted_times)
def test_property_vectorised_equals_loop(t):
    """The closed-form running-max identity equals the literal
    Lindley recursion for arbitrary sorted inputs."""
    np.testing.assert_allclose(
        fifo_departure_times(t), fifo_departure_times_loop(t), rtol=0, atol=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(t=sorted_times)
def test_property_departures_sorted_and_spaced(t):
    """Departures are strictly increasing with gaps >= service time
    (one server, unit service)."""
    d = fifo_departure_times(t)
    assert np.all(np.diff(d) >= 1.0 - 1e-9)
    assert np.all(d >= t + 1.0 - 1e-9)


@settings(max_examples=100, deadline=None)
@given(t=sorted_times, data=st.data())
def test_property_lemma8_monotonicity(t, data):
    """Lemma 8: delaying arrivals can only delay departures."""
    shifts = np.array(
        data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0),
                min_size=len(t),
                max_size=len(t),
            )
        )
    )
    t_delayed = np.sort(t + shifts)  # re-sort to keep a valid stream
    d = fifo_departure_times(t)
    d_delayed = fifo_departure_times(t_delayed)
    assert np.all(d_delayed >= d - 1e-9)
