"""Tests for the FIFO and PS server primitives, incl. Lemma 7."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.lindley import fifo_departure_times, unfinished_work
from repro.sim.servers import FifoServer, PSServer, ps_departure_times

sorted_times = (
    st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=40)
    .map(sorted)
    .map(np.array)
)


class TestFifoServer:
    def test_matches_offline_lindley(self, rng):
        t = np.sort(rng.random(200) * 100)
        server = FifoServer()
        online = np.array([server.arrive(ti) for ti in t])
        np.testing.assert_allclose(online, fifo_departure_times(t))

    def test_rejects_decreasing_arrivals(self):
        server = FifoServer()
        server.arrive(5.0)
        with pytest.raises(ValueError):
            server.arrive(4.0)

    def test_rejects_bad_service(self):
        with pytest.raises(ValueError):
            FifoServer(service=-1.0)

    def test_busy_until(self):
        server = FifoServer()
        server.arrive(0.0)
        server.arrive(0.0)
        assert server.busy_until == pytest.approx(2.0)


class TestPSServer:
    def test_paper_example(self):
        """§3.3 worked example: arrivals at 0 and 1/2, unit work.

        First customer departs at 3/2, second at 2 (both slowed to
        rate 1/2 while sharing).
        """
        out = ps_departure_times(np.array([0.0, 0.5]))
        np.testing.assert_allclose(out, [1.5, 2.0])

    def test_lone_customer_unit_service(self):
        np.testing.assert_allclose(ps_departure_times(np.array([3.0])), [4.0])

    def test_simultaneous_pair_shares_equally(self):
        out = ps_departure_times(np.array([2.0, 2.0]))
        np.testing.assert_allclose(out, [4.0, 4.0])

    def test_three_way_sharing(self):
        # arrivals at 0, 0, 0: each served at 1/3 -> all depart at 3.
        out = ps_departure_times(np.zeros(3))
        np.testing.assert_allclose(out, [3.0, 3.0, 3.0])

    def test_departures_preserve_arrival_order(self, rng):
        t = np.sort(rng.random(100) * 30)
        out = ps_departure_times(t)
        assert np.all(np.diff(out) >= -1e-9)

    def test_empty(self):
        assert ps_departure_times(np.array([])).shape == (0,)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            ps_departure_times(np.array([1.0, 0.0]))

    def test_server_object_rejects_bad_work(self):
        srv = PSServer()
        with pytest.raises(ValueError):
            srv.arrive(0.0, work=0.0)

    def test_server_time_cannot_go_backwards(self):
        srv = PSServer()
        srv.arrive(5.0)
        with pytest.raises(ValueError):
            srv.advance(1.0)

    def test_pop_departure_empty(self):
        with pytest.raises(RuntimeError):
            PSServer().pop_departure()

    def test_next_departure_none_when_idle(self):
        assert PSServer().next_departure_time() is None


class TestLemma7:
    """Lemma 7: FIFO departures never trail PS departures."""

    def test_example_from_proof(self):
        t = np.array([0.0, 0.5])
        d_fifo = fifo_departure_times(t)
        d_ps = ps_departure_times(t)
        assert np.all(d_fifo <= d_ps + 1e-12)
        # and the inequality is strict for the first customer here
        assert d_fifo[0] < d_ps[0]

    @settings(max_examples=200, deadline=None)
    @given(t=sorted_times)
    def test_property_fifo_dominates_ps(self, t):
        d_fifo = fifo_departure_times(t)
        d_ps = ps_departure_times(t)
        assert np.all(d_fifo <= d_ps + 1e-9)

    @settings(max_examples=100, deadline=None)
    @given(t=sorted_times)
    def test_property_work_conservation(self, t):
        """PS and FIFO finish the same total work by any time: the
        last departure coincides (both disciplines are work-conserving
        and non-idling)."""
        d_fifo = fifo_departure_times(t)
        d_ps = ps_departure_times(t)
        assert d_fifo[-1] == pytest.approx(d_ps[-1], abs=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(t=sorted_times, data=st.data())
    def test_property_ps_departure_after_remaining_work(self, t, data):
        """Eq. (12) of the proof: D~_i >= t_i + W(t_i-) + 1."""
        i = data.draw(st.integers(min_value=0, max_value=len(t) - 1))
        d_ps = ps_departure_times(t)
        w = unfinished_work(t, at=float(t[i]))
        assert d_ps[i] >= t[i] + w + 1.0 - 1e-6
