"""Tests for the analysis harness (experiments, tables, theory checks)."""

import pytest

from repro.analysis.experiments import (
    measure_butterfly_delay,
    measure_hypercube_delay,
    sweep_load_factors,
)
from repro.analysis.tables import format_cell, format_series, format_table
from repro.analysis.theory import check_measurement, relative_position


class TestMeasurements:
    def test_hypercube_measurement_fields(self):
        m = measure_hypercube_delay(4, rho=0.6, p=0.5, horizon=250.0, rng=0)
        assert m.network == "hypercube"
        assert m.d == 4
        assert m.rho == 0.6
        assert m.lam == pytest.approx(1.2)
        assert m.num_packets > 0
        assert m.within_bounds

    def test_hypercube_with_ci(self):
        m = measure_hypercube_delay(
            4, rho=0.5, p=0.5, horizon=300.0, rng=1, with_ci=True
        )
        assert m.ci is not None
        assert m.ci.lo <= m.mean_delay <= m.ci.hi

    def test_butterfly_measurement(self):
        m = measure_butterfly_delay(4, rho=0.6, p=0.5, horizon=250.0, rng=2)
        assert m.network == "butterfly"
        assert m.within_bounds

    def test_normalised_delay(self):
        m = measure_hypercube_delay(4, rho=0.5, p=0.5, horizon=200.0, rng=3)
        assert m.normalised_delay == pytest.approx(m.mean_delay / 4)

    def test_sweep_returns_one_point_per_rho(self):
        points = sweep_load_factors(3, [0.3, 0.6], horizon=150.0, seed=4)
        assert len(points) == 2
        assert [p.rho for p in points] == [0.3, 0.6]

    def test_sweep_delay_increases_with_load(self):
        points = sweep_load_factors(4, [0.2, 0.8], horizon=500.0, seed=5)
        assert points[0].mean_delay < points[1].mean_delay


class TestTheoryChecks:
    def test_relative_position(self):
        assert relative_position(5.0, 0.0, 10.0) == pytest.approx(0.5)
        assert relative_position(0.0, 0.0, 10.0) == 0.0
        assert relative_position(1.0, 2.0, 2.0) == 0.0

    def test_check_measurement_pass(self):
        m = measure_hypercube_delay(4, rho=0.6, p=0.5, horizon=400.0, rng=6)
        check = check_measurement(m)
        assert check.holds
        assert 0.0 <= check.position <= 1.0
        assert len(check.summary_row()) == 8

    def test_statistical_slack_widens(self):
        m = measure_hypercube_delay(3, rho=0.5, p=0.5, horizon=200.0, rng=7)
        strict = check_measurement(m, statistical_slack=0.0)
        loose = check_measurement(m, statistical_slack=0.5)
        assert loose.holds or not strict.holds  # slack can only help


class TestTables:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(1.23456789) == "1.235"
        assert format_cell(0.0) == "0"
        assert format_cell(float("nan")) == "nan"
        assert format_cell(1e7) == "1.000e+07"
        assert format_cell("abc") == "abc"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, rule, 2 rows
        # all rows equal width
        assert len({len(l) for l in lines[1:]}) == 1

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("y", [1, 2], [3.0, 4.0], xlabel="x")
        assert "x" in out and "y" in out

    def test_format_series_rejects_mismatch(self):
        with pytest.raises(ValueError):
            format_series("y", [1], [1, 2])
