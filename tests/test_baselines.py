"""Tests for the baselines: §2.3 pipelined batches, random order,
deflection routing."""

import numpy as np
import pytest

from repro.core.greedy import GreedyHypercubeScheme
from repro.errors import ConfigurationError
from repro.schemes.deflection import DeflectionRouter
from repro.schemes.random_order import simulate_fixed_order, simulate_random_order
from repro.schemes.valiant import PipelinedBatchScheme
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import HypercubeWorkload


class TestPipelinedBatch:
    def test_light_load_delivers_everything(self):
        scheme = PipelinedBatchScheme(d=4, lam=0.02, p=0.5)
        res = scheme.run(400.0, rng=1)
        assert res.delivered_mask().mean() > 0.95
        assert res.final_backlog < 0.05 * res.sample.num_packets + 5

    def test_rounds_take_order_d_time(self):
        scheme = PipelinedBatchScheme(d=5, lam=0.05, p=0.5)
        res = scheme.run(300.0, rng=2)
        # each round routes a near-permutation: O(d) with small constant
        assert 1.0 <= res.mean_round_duration() <= 6 * 5

    def test_overload_builds_backlog(self):
        # rho = 0.4 is far below greedy's limit but way above 1/(Rd):
        # the pipelined scheme must drown.
        scheme = PipelinedBatchScheme(d=5, lam=0.8, p=0.5)
        res = scheme.run(300.0, rng=3)
        _, waiting = res.backlog_trajectory()
        assert res.final_backlog > 0.3 * res.sample.num_packets
        assert waiting[-1] > waiting[len(waiting) // 4]  # still growing

    def test_greedy_handles_same_load_easily(self):
        # contrast experiment at the same parameters
        greedy = GreedyHypercubeScheme(d=5, lam=0.8, p=0.5)
        t = greedy.measure_delay(horizon=300.0, rng=4)
        assert t <= greedy.delay_upper_bound()  # rho = 0.4, tiny delay

    def test_stability_threshold_estimate(self):
        scheme = PipelinedBatchScheme(d=5, lam=0.05, p=0.5)
        res = scheme.run(200.0, rng=5)
        thr = scheme.approximate_stability_threshold(res.mean_round_duration())
        assert thr < 0.2  # rho* = O(1/d), far below 1

    def test_delays_exceed_greedy(self):
        # at a load both schemes can carry, batching still idles packets
        lam = 0.05
        batch = PipelinedBatchScheme(d=4, lam=lam, p=0.5).run(400.0, rng=6)
        greedy = GreedyHypercubeScheme(d=4, lam=lam, p=0.5)
        t_greedy = greedy.measure_delay(horizon=400.0, rng=6)
        assert batch.mean_delay_delivered() > t_greedy

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            PipelinedBatchScheme(d=4, lam=-1.0, p=0.5)


class TestRandomOrder:
    def _sample(self, d=4, lam=1.2, p=0.5, horizon=150.0, seed=7):
        cube = Hypercube(d)
        wl = HypercubeWorkload(cube, lam, BernoulliFlipLaw(d, p))
        return cube, wl.generate(horizon, rng=seed)

    def test_fixed_decreasing_order_same_mean_delay_law(self):
        # by symmetry, any fixed order has the same delay distribution;
        # check means agree within tolerance
        cube, sample = self._sample(horizon=500.0)
        inc = simulate_fixed_order(cube, sample, list(range(4)))
        dec = simulate_fixed_order(cube, sample, [3, 2, 1, 0])
        assert dec.delays().mean() == pytest.approx(
            inc.delays().mean(), rel=0.1
        )

    def test_random_order_delivers_all(self):
        cube, sample = self._sample(horizon=80.0)
        res = simulate_random_order(cube, sample, rng=8)
        assert np.all(res.delivery >= sample.times - 1e-9)
        assert np.all(res.hops == np.bitwise_count(sample.origins ^ sample.destinations))

    def test_random_order_respects_hop_lower_bound(self):
        cube, sample = self._sample(horizon=60.0)
        res = simulate_random_order(cube, sample, rng=9)
        assert np.all(res.delivery - sample.times >= res.hops - 1e-9)

    def test_random_order_reproducible(self):
        cube, sample = self._sample(horizon=50.0)
        a = simulate_random_order(cube, sample, rng=10)
        b = simulate_random_order(cube, sample, rng=10)
        np.testing.assert_allclose(a.delivery, b.delivery)


class TestDeflection:
    def test_delivers_all_packets(self):
        router = DeflectionRouter(d=3, lam=0.3, p=0.5)
        res = router.run(100, rng=11)
        assert np.all(res.delivery_slot >= res.birth_slot)

    def test_hops_at_least_shortest(self):
        router = DeflectionRouter(d=3, lam=0.3, p=0.5)
        res = router.run(100, rng=12)
        assert np.all(res.hops_taken >= res.shortest_hops)

    def test_parity_invariant(self):
        # every deflection adds 2 to the eventual hop count parity-wise:
        # hops_taken and shortest_hops have equal parity
        router = DeflectionRouter(d=3, lam=0.5, p=0.5)
        res = router.run(80, rng=13)
        assert np.all((res.hops_taken - res.shortest_hops) % 2 == 0)

    def test_light_load_no_deflections(self):
        router = DeflectionRouter(d=4, lam=0.05, p=0.5)
        res = router.run(200, rng=14)
        assert res.mean_deflections() < 0.05

    def test_mean_delay_reasonable(self):
        router = DeflectionRouter(d=3, lam=0.3, p=0.5)
        res = router.run(300, rng=15)
        # at light load delay ~ mean shortest distance = 1.5
        assert 1.0 <= res.mean_delay() <= 6.0

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            DeflectionRouter(d=3, lam=0.0, p=0.5)
        router = DeflectionRouter(d=3, lam=0.5, p=0.5)
        with pytest.raises(ConfigurationError):
            router.run(0, rng=1)
