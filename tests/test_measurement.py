"""Tests for measurement collectors and statistics utilities."""

import math

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.sim.measurement import (
    DelayRecord,
    PopulationTracker,
    arc_arrival_counts,
)
from repro.stats import (
    batch_means_ci,
    mean_confidence_interval,
    time_average_step,
)


class TestDelayRecord:
    def _record(self):
        birth = np.array([0.0, 10.0, 50.0, 90.0])
        delivery = birth + np.array([1.0, 2.0, 3.0, 4.0])
        return DelayRecord(birth, delivery, horizon=100.0)

    def test_delays(self):
        np.testing.assert_allclose(self._record().delays(), [1, 2, 3, 4])

    def test_steady_state_mask_trims_both_ends(self):
        rec = self._record()
        mask = rec.steady_state_mask(warmup_fraction=0.2, cooldown_fraction=0.1)
        # keeps births in [20, 90]
        np.testing.assert_array_equal(mask, [False, False, True, True])

    def test_mean_delay(self):
        rec = self._record()
        assert rec.mean_delay(0.2, 0.1) == pytest.approx(3.5)

    def test_mean_delay_no_trim(self):
        assert self._record().mean_delay(0.0, 0.0) == pytest.approx(2.5)

    def test_empty_window_raises(self):
        rec = DelayRecord(np.array([0.0]), np.array([1.0]), horizon=100.0)
        with pytest.raises(MeasurementError):
            rec.mean_delay(0.5, 0.4)

    def test_rejects_negative_delay(self):
        with pytest.raises(MeasurementError):
            DelayRecord(np.array([1.0]), np.array([0.5]), horizon=10.0)

    def test_rejects_bad_fractions(self):
        rec = self._record()
        with pytest.raises(MeasurementError):
            rec.steady_state_mask(0.7, 0.5)
        with pytest.raises(MeasurementError):
            rec.steady_state_mask(-0.1, 0.0)

    def test_ci_contains_mean(self):
        gen = np.random.default_rng(0)
        birth = np.sort(gen.random(4000) * 100)
        delivery = birth + gen.exponential(2.0, size=4000)
        rec = DelayRecord(birth, delivery, horizon=100.0)
        ci = rec.mean_delay_ci(0.1, 0.1)
        assert ci.lo <= rec.mean_delay(0.1, 0.1) <= ci.hi

    def test_ci_needs_enough_samples(self):
        rec = self._record()
        with pytest.raises(MeasurementError):
            rec.mean_delay_ci(num_batches=20)


class TestPopulationTracker:
    def test_from_intervals_basic(self):
        # one packet alive on [0, 2), another on [1, 3)
        pt = PopulationTracker.from_intervals(
            np.array([0.0, 1.0]), np.array([2.0, 3.0])
        )
        assert pt.at(0.5) == 1
        assert pt.at(1.5) == 2
        assert pt.at(2.5) == 1
        assert pt.at(3.5) == 0

    def test_time_average(self):
        pt = PopulationTracker.from_intervals(np.array([0.0]), np.array([1.0]))
        assert pt.time_average(0.0, 2.0) == pytest.approx(0.5)

    def test_maximum(self):
        pt = PopulationTracker.from_intervals(
            np.array([0.0, 0.1, 0.2]), np.array([5.0, 5.0, 5.0])
        )
        assert pt.maximum() == 3

    def test_little_law_consistency(self):
        # random intervals: time-average population == total sojourn / window
        gen = np.random.default_rng(1)
        starts = np.sort(gen.random(500) * 100)
        ends = starts + gen.exponential(1.5, size=500)
        pt = PopulationTracker.from_intervals(starts, ends)
        window_end = float(ends.max())
        avg = pt.time_average(0.0, window_end)
        assert avg == pytest.approx((ends - starts).sum() / window_end, rel=1e-9)

    def test_counting_process_shapes(self):
        pt = PopulationTracker.from_intervals(np.array([0.0]), np.array([1.0]))
        t, v = pt.counting_process()
        assert t.shape == v.shape == (2,)

    def test_mismatched_intervals_raise(self):
        with pytest.raises(MeasurementError):
            PopulationTracker.from_intervals(np.array([0.0]), np.array([1.0, 2.0]))


class TestArcCounts:
    def test_bincount(self):
        counts = arc_arrival_counts(np.array([0, 1, 1, 3]), 5)
        np.testing.assert_array_equal(counts, [1, 2, 0, 1, 0])

    def test_out_of_range_raises(self):
        with pytest.raises(MeasurementError):
            arc_arrival_counts(np.array([5]), 5)


class TestStats:
    def test_mean_ci_basic(self):
        gen = np.random.default_rng(2)
        x = gen.normal(10.0, 2.0, size=400)
        ci = mean_confidence_interval(x)
        assert ci.contains(float(x.mean()))
        assert ci.halfwidth < 0.5

    def test_mean_ci_single_sample_infinite(self):
        ci = mean_confidence_interval(np.array([3.0]))
        assert math.isinf(ci.halfwidth)

    def test_mean_ci_empty_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval(np.array([]))

    def test_batch_means_wider_than_iid_for_correlated(self):
        # AR(1)-style positively correlated series
        gen = np.random.default_rng(3)
        n = 4000
        x = np.empty(n)
        x[0] = 0.0
        eps = gen.normal(size=n)
        for i in range(1, n):
            x[i] = 0.9 * x[i - 1] + eps[i]
        naive = mean_confidence_interval(x)
        batched = batch_means_ci(x, num_batches=20)
        assert batched.halfwidth > naive.halfwidth

    def test_batch_means_validates(self):
        with pytest.raises(ValueError):
            batch_means_ci(np.arange(10.0), num_batches=1)
        with pytest.raises(ValueError):
            batch_means_ci(np.arange(5.0), num_batches=10)

    def test_time_average_step_constant(self):
        assert time_average_step(
            np.array([]), np.array([]), 0.0, 1.0, initial=3.0
        ) == pytest.approx(3.0)

    def test_time_average_step_square_wave(self):
        # +1 at t=1, -1 at t=2 over [0, 4]: average = 1/4
        t = np.array([1.0, 2.0])
        dx = np.array([1.0, -1.0])
        assert time_average_step(t, dx, 0.0, 4.0) == pytest.approx(0.25)

    def test_time_average_step_window_inside(self):
        t = np.array([1.0, 3.0])
        dx = np.array([2.0, -2.0])
        # over [2, 3]: level is 2 throughout
        assert time_average_step(t, dx, 2.0, 3.0) == pytest.approx(2.0)

    def test_time_average_step_validates(self):
        with pytest.raises(ValueError):
            time_average_step(np.array([1.0]), np.array([1.0]), 2.0, 1.0)
        with pytest.raises(ValueError):
            time_average_step(np.array([2.0, 1.0]), np.array([1.0, 1.0]), 0.0, 3.0)
