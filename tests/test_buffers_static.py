"""Tests for buffer dimensioning, static tasks, and the M/D/1 wait CDF."""

import numpy as np
import pytest

from repro.core.buffers import (
    arc_buffer_for_overflow,
    arc_overflow_probability,
    node_buffer_for_overflow,
)
from repro.errors import ConfigurationError, UnstableSystemError
from repro.queueing.md1 import md1_wait, md1_wait_cdf, md1_wait_quantile
from repro.schemes.static_tasks import (
    route_permutation_greedy,
    route_permutation_valiant,
)
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import bit_reversal_permutation


class TestBuffers:
    def test_overflow_probability_geometric(self):
        assert arc_overflow_probability(0.5, 10) == pytest.approx(0.5**10)
        assert arc_overflow_probability(0.0, 3) == 0.0
        assert arc_overflow_probability(0.0, 0) == 1.0

    def test_buffer_inversion(self):
        for rho in (0.3, 0.8, 0.95):
            for eps in (1e-3, 1e-6):
                b = arc_buffer_for_overflow(rho, eps)
                assert arc_overflow_probability(rho, b) <= eps
                assert arc_overflow_probability(rho, b - 1) > eps or b == 1

    def test_node_buffer_scales_with_d(self):
        b4 = node_buffer_for_overflow(4, 0.8, 1e-4)
        b8 = node_buffer_for_overflow(8, 0.8, 1e-4)
        assert b8 > b4

    def test_validation(self):
        with pytest.raises(UnstableSystemError):
            arc_buffer_for_overflow(1.0, 0.01)
        with pytest.raises(ValueError):
            arc_buffer_for_overflow(0.5, 1.5)
        with pytest.raises(ValueError):
            node_buffer_for_overflow(0, 0.5, 0.01)

    def test_simulated_occupancy_respects_sizing(self):
        # dimension a buffer for eps=1e-3 and check the FIFO sim rarely
        # exceeds it (FIFO is dominated by the geometric law)
        from repro.core.greedy import GreedyHypercubeScheme
        from repro.sim.measurement import PopulationTracker

        rho = 0.7
        scheme = GreedyHypercubeScheme(d=4, lam=rho / 0.5, p=0.5)
        horizon = 1000.0
        res = scheme.run(horizon, rng=5, record_arc_log=True)
        b = arc_buffer_for_overflow(rho, 1e-3)
        arc0 = int(res.arc_log.arc[0])
        m = res.arc_log.arc == arc0
        occ = PopulationTracker.from_intervals(
            res.arc_log.t_in[m], res.arc_log.t_out[m]
        )
        grid = np.linspace(horizon * 0.2, horizon * 0.9, 2000)
        frac_over = np.mean([occ.at(t) >= b for t in grid])
        assert frac_over <= 5e-3  # eps with sampling slack


class TestStaticTasks:
    def test_identity_permutation_instant(self):
        cube = Hypercube(3)
        res = route_permutation_greedy(cube, np.arange(8))
        assert res.completion_time == 0.0

    def test_random_permutation_completes_fast(self, rng):
        d = 6
        cube = Hypercube(d)
        perm = rng.permutation(cube.num_nodes)
        res = route_permutation_greedy(cube, perm)
        # random permutations: greedy finishes in O(d) (small constant)
        assert res.completion_time <= 4 * d

    def test_bit_reversal_blows_up_greedy(self):
        d = 8
        cube = Hypercube(d)
        res = route_permutation_greedy(cube, bit_reversal_permutation(d))
        # congestion 2^(d/2-1) on middle arcs => makespan >= 2^(d/2-1)
        assert res.completion_time >= 2 ** (d // 2 - 1)

    def test_valiant_tames_bit_reversal(self):
        d = 8
        cube = Hypercube(d)
        res = route_permutation_valiant(
            cube, bit_reversal_permutation(d), rng=1
        )
        # [VaB81]: O(d) completion whp — far below 2^(d/2-1)+d
        assert res.completion_time <= 4 * d

    def test_valiant_hops_are_two_phase(self, rng):
        cube = Hypercube(4)
        perm = rng.permutation(16)
        res = route_permutation_valiant(cube, perm, rng=2)
        assert res.hops.max() <= 8  # at most 2d
        assert res.completion_time >= 1.0

    def test_rejects_non_permutation(self):
        cube = Hypercube(3)
        with pytest.raises(ConfigurationError):
            route_permutation_greedy(cube, np.zeros(8, dtype=int))


class TestMD1WaitCdf:
    def test_atom_at_zero(self):
        # P[W = 0] = 1 - rho
        assert md1_wait_cdf(0.7, 0.0) == pytest.approx(0.3)

    def test_monotone_nondecreasing(self):
        xs = np.linspace(0, 40, 400)
        F = [md1_wait_cdf(0.8, x) for x in xs]
        assert all(b >= a - 1e-12 for a, b in zip(F, F[1:]))

    def test_limits(self):
        assert md1_wait_cdf(0.5, -1.0) == 0.0
        assert md1_wait_cdf(0.5, 60.0) == pytest.approx(1.0, abs=1e-9)
        assert md1_wait_cdf(0.0, 5.0) == 1.0

    def test_mean_consistent_with_pk_formula(self):
        # integrate the complementary CDF: must recover rho/(2(1-rho))
        rho = 0.6
        xs = np.linspace(0, 30, 3001)
        F = np.array([md1_wait_cdf(rho, x) for x in xs])
        mean = float(np.trapezoid(1 - F, xs))
        assert mean == pytest.approx(md1_wait(rho), rel=1e-3)

    def test_matches_simulation(self):
        from repro.sim.lindley import fifo_waiting_times

        rho = 0.7
        gen = np.random.default_rng(3)
        t = np.cumsum(gen.exponential(1 / rho, 200_000))
        w = fifo_waiting_times(t)[20_000:]
        for x in (0.5, 1.0, 2.0, 5.0):
            assert md1_wait_cdf(rho, x) == pytest.approx(
                float((w <= x).mean()), abs=0.01
            )

    def test_quantiles(self):
        rho = 0.7
        q = md1_wait_quantile(rho, 0.9)
        assert md1_wait_cdf(rho, q) == pytest.approx(0.9, abs=1e-6)
        assert md1_wait_quantile(rho, 0.1) == 0.0  # below the atom

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            md1_wait_quantile(0.5, 1.0)

    def test_level0_delay_distribution_matches_md1(self):
        """The greedy scheme's level-0 waits follow the M/D/1 law —
        distribution-level version of the Prop 13 proof's first step."""
        from repro.core.greedy import GreedyHypercubeScheme

        rho = 0.6
        scheme = GreedyHypercubeScheme(d=4, lam=rho / 0.5, p=0.5)
        horizon = 1500.0
        res = scheme.run(horizon, rng=7, record_arc_log=True)
        log = res.arc_log
        level0 = (log.arc < 16) & (log.t_in >= horizon * 0.2) & (
            log.t_in <= horizon * 0.9
        )
        waits = log.t_out[level0] - log.t_in[level0] - 1.0
        for x in (0.0, 1.0, 3.0):
            emp = float((waits <= x + 1e-9).mean())
            assert emp == pytest.approx(md1_wait_cdf(rho, x), abs=0.02)
