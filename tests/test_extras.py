"""Tests for the extras: networkx adapters, occupancy pmf, warm-up
detection, butterfly-R external sampling, and the public API surface."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.warmup import detect_warmup, welch_moving_average
from repro.core.qnetwork import ButterflyRSpec
from repro.sim.feedforward import simulate_markovian
from repro.sim.measurement import arc_occupancy_pmf
from repro.topology.butterfly import Butterfly
from repro.topology.graphs import butterfly_digraph, hypercube_digraph
from repro.topology.hypercube import Hypercube


class TestNetworkxAdapters:
    def test_hypercube_against_networkx(self):
        cube = Hypercube(4)
        g = hypercube_digraph(cube)
        assert g.number_of_nodes() == 16
        assert g.number_of_edges() == 64
        # independent check: networkx's own hypercube graph is isomorphic
        ref = nx.hypercube_graph(4)
        assert nx.is_isomorphic(g.to_undirected(), nx.convert_node_labels_to_integers(ref))

    def test_hypercube_diameter(self):
        cube = Hypercube(5)
        g = hypercube_digraph(cube)
        assert nx.diameter(g.to_undirected()) == 5 == cube.diameter

    def test_hypercube_degrees(self):
        g = hypercube_digraph(Hypercube(3))
        assert all(d == 3 for _, d in g.out_degree())
        assert all(d == 3 for _, d in g.in_degree())

    def test_shortest_path_lengths_match_hamming(self):
        cube = Hypercube(4)
        g = hypercube_digraph(cube).to_undirected()
        for x in (0, 5, 15):
            lengths = nx.single_source_shortest_path_length(g, x)
            for z in (0, 3, 9, 12):
                assert lengths[z] == cube.hamming(x, z)

    def test_butterfly_structure(self):
        bf = Butterfly(3)
        g = butterfly_digraph(bf)
        assert g.number_of_nodes() == bf.num_nodes
        assert g.number_of_edges() == bf.num_arcs
        # levels 0..d-1 have out-degree 2, final level 0
        for node in g.nodes:
            _, level = bf.node_components(node)
            assert g.out_degree(node) == (2 if level < 3 else 0)

    def test_butterfly_unique_paths(self):
        bf = Butterfly(3)
        g = butterfly_digraph(bf)
        # exactly one path from any input to any output
        src = bf.node_id(2, 0)
        dst = bf.node_id(5, 3)
        paths = list(nx.all_simple_paths(g, src, dst))
        assert len(paths) == 1
        assert len(paths[0]) == 4  # d+1 nodes

    def test_canonical_path_is_a_networkx_path(self):
        cube = Hypercube(4)
        g = hypercube_digraph(cube)
        nodes = cube.canonical_path_nodes(0b0011, 0b1100)
        assert nx.is_path(g, nodes)


class TestOccupancyPmf:
    def test_single_busy_interval(self):
        from repro.sim.feedforward import ArcLog

        log = ArcLog(
            pid=np.array([0]),
            arc=np.array([7]),
            t_in=np.array([0.0]),
            t_out=np.array([1.0]),
        )
        pmf = arc_occupancy_pmf(log, 7, 0.0, 2.0, max_n=4)
        assert pmf[1] == pytest.approx(0.5, abs=0.01)
        assert pmf[0] == pytest.approx(0.5, abs=0.01)

    def test_normalised(self):
        from repro.core.greedy import GreedyHypercubeScheme

        res = GreedyHypercubeScheme(3, 1.0, 0.5).run(
            100.0, rng=1, record_arc_log=True
        )
        pmf = arc_occupancy_pmf(res.arc_log, 0, 20.0, 80.0)
        assert pmf.sum() == pytest.approx(1.0)

    def test_validates_window(self):
        from repro.sim.feedforward import ArcLog
        from repro.errors import MeasurementError

        log = ArcLog(np.array([0]), np.array([0]), np.array([0.0]), np.array([1.0]))
        with pytest.raises(MeasurementError):
            arc_occupancy_pmf(log, 0, 5.0, 5.0)


class TestWarmup:
    def test_moving_average_flat_series(self):
        x = np.full(100, 3.0)
        np.testing.assert_allclose(welch_moving_average(x, 10), 3.0)

    def test_moving_average_preserves_length(self):
        assert welch_moving_average(np.arange(17.0), 3).shape == (17,)

    def test_moving_average_validates(self):
        with pytest.raises(ValueError):
            welch_moving_average(np.arange(5.0), 0)

    def test_detect_on_shifted_series(self):
        # transient at level 1 for 200 samples, then steady at 10
        gen = np.random.default_rng(0)
        x = np.concatenate(
            [
                np.linspace(1.0, 10.0, 200) + gen.normal(0, 0.1, 200),
                10.0 + gen.normal(0, 0.1, 1800),
            ]
        )
        cut = detect_warmup(x, window=50, band=0.05)
        assert 100 <= cut <= 400

    def test_detect_on_stationary_series(self):
        gen = np.random.default_rng(1)
        x = 5.0 + gen.normal(0, 0.05, 1000)
        assert detect_warmup(x, window=50, band=0.1) < 100

    def test_detect_empty(self):
        assert detect_warmup(np.zeros(0)) == 0


class TestButterflyRSampling:
    def test_external_arrivals_level0_only(self, bf3):
        spec = ButterflyRSpec(bf3, 0.3)
        times, arcs = spec.sample_external_arrivals(1.0, 400.0, rng=2)
        assert np.all(arcs < 16)
        kinds = arcs % 2
        assert np.mean(kinds) == pytest.approx(0.3, abs=0.02)

    def test_network_r_delay_matches_physical(self, bf3):
        from repro.core.greedy import GreedyButterflyScheme

        lam, p = 1.2, 0.5
        spec = ButterflyRSpec(bf3, p)
        times, arcs = spec.sample_external_arrivals(lam, 800.0, rng=3)
        res = simulate_markovian(spec, times, arcs, rng=4)
        t_r = float((res.exit_times - times).mean())
        t_phys = GreedyButterflyScheme(d=3, lam=lam, p=p).measure_delay(
            800.0, rng=5, warmup_fraction=0.0
        )
        assert t_r == pytest.approx(t_phys, rel=0.1)


class TestPublicAPI:
    def test_all_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.1.0"

    def test_subpackage_all_exports(self):
        import repro.queueing as q
        import repro.sim as s
        import repro.topology as t
        import repro.traffic as tr

        for mod in (q, s, t, tr):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"
