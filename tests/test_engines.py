"""Tests for the capability-declaring engine-plugin API and registry.

Covers the registry (decorator registration, aliases, reserved
directives, entry points), spec-side engine normalisation and
admissibility, the resolution rules (auto / vectorized / forced), the
engine-scoped option schema, the replication-batched fast path
(bit-identity of a batch of R against R sequential runs, through the
engine hook, the parallel runner, and the per-replication cache), and
a grep-style guard that no ``engine ==`` literal survives outside
``src/repro/engines/``.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.engines import (
    EngineCapabilities,
    EnginePlugin,
    all_engine_names,
    available_engines,
    canonical_engine_name,
    declared_engine_names,
    get_engine,
    iter_engines,
    register_engine,
    resolve_engine,
    unregister_engine,
)
from repro.engines import registry as engine_registry
from repro.errors import ConfigurationError
from repro.rng import replication_seeds
from repro.runner import ResultsStore, ScenarioSpec, measure
from repro.sim.run_spec import run_spec

ALL_BUILTINS = {"feedforward", "event", "fixedpoint"}


def greedy_spec(network: str = "hypercube", **overrides) -> ScenarioSpec:
    params = dict(
        name=f"eng-{network}",
        network=network,
        d={"hypercube": 4, "butterfly": 3, "ring": 4, "torus": 2}[network],
        rho=0.7,
        horizon=150.0,
        replications=1,
        base_seed=13,
        seed_policy="sequential",
    )
    params.update(overrides)
    return ScenarioSpec(**params)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(available_engines()) == ALL_BUILTINS

    def test_aliases_resolve(self):
        assert canonical_engine_name("eventsim") == "event"
        assert canonical_engine_name("calendar") == "event"
        assert canonical_engine_name("ff") == "feedforward"
        assert canonical_engine_name("fixed-point") == "fixedpoint"
        assert get_engine("fp") is get_engine("fixedpoint")
        assert set(all_engine_names()) >= ALL_BUILTINS | {"auto", "vectorized"}

    def test_unknown_engine_enumerates_registry(self):
        with pytest.raises(ConfigurationError, match="feedforward"):
            get_engine("quantum")

    def test_iter_engines_sorted_with_metadata(self):
        plugins = iter_engines()
        names = [p.name for p in plugins]
        assert names == sorted(names)
        for p in plugins:
            assert p.summary
            assert p.capabilities.kind in ("levelled", "event", "fixed-point")

    def test_reserved_directives_not_registrable(self):
        class Auto(EnginePlugin):
            name = "auto"
            capabilities = EngineCapabilities(kind="event")

        with pytest.raises(ConfigurationError, match="reserved"):
            register_engine(Auto)

        class Vec(EnginePlugin):
            name = "myengine"
            aliases = ("vectorized",)
            capabilities = EngineCapabilities(kind="event")

        with pytest.raises(ConfigurationError, match="reserved"):
            register_engine(Vec)

    def test_register_requires_protocol_and_kind(self):
        with pytest.raises(ConfigurationError, match="EnginePlugin"):
            register_engine(object())  # type: ignore[arg-type]

        class BadKind(EnginePlugin):
            name = "badkind"
            capabilities = EngineCapabilities(kind="magic")

        with pytest.raises(ConfigurationError, match="levelled"):
            register_engine(BadKind)

    def test_runtime_register_unregister_roundtrip(self):
        class Toy(EnginePlugin):
            name = "toyengine"
            aliases = ("toy",)
            summary = "test double"
            capabilities = EngineCapabilities(kind="event")

        register_engine(Toy)
        try:
            assert get_engine("toy").name == "toyengine"
            register_engine(Toy)  # idempotent re-registration
            with pytest.raises(ConfigurationError, match="already registered"):
                class Usurper(EnginePlugin):
                    name = "toyengine"
                    capabilities = EngineCapabilities(kind="event")

                register_engine(Usurper)
        finally:
            unregister_engine("toyengine")
        with pytest.raises(ConfigurationError):
            get_engine("toyengine")

    def test_entry_point_group_name(self):
        assert engine_registry.ENTRY_POINT_GROUP == "repro.engine_plugins"


class TestSpecNormalisation:
    def test_alias_normalised_before_hashing(self):
        canonical = greedy_spec(engine="event")
        via_alias = greedy_spec(engine="eventsim")
        assert via_alias.engine == "event"
        assert via_alias.content_hash() == canonical.content_hash()

    def test_directives_pass_through(self):
        assert greedy_spec().engine == "auto"
        assert greedy_spec(engine="vectorized").engine == "vectorized"

    def test_unknown_engine_enumerates_vocabulary(self):
        with pytest.raises(ConfigurationError, match="auto"):
            greedy_spec(engine="warp")


class TestResolution:
    def test_auto_resolves_to_network_native(self):
        assert resolve_engine(greedy_spec()).name == "feedforward"
        assert resolve_engine(greedy_spec("butterfly")).name == "feedforward"
        assert resolve_engine(greedy_spec("ring")).name == "fixedpoint"
        assert resolve_engine(greedy_spec("torus")).name == "fixedpoint"

    def test_vectorized_resolves_per_network(self):
        assert (
            resolve_engine(greedy_spec(engine="vectorized")).name
            == "feedforward"
        )
        assert (
            resolve_engine(greedy_spec("ring", engine="vectorized")).name
            == "fixedpoint"
        )

    def test_forced_name_resolves_to_itself(self):
        assert resolve_engine(greedy_spec(engine="event")).name == "event"
        assert (
            resolve_engine(greedy_spec(engine="fixedpoint")).name
            == "fixedpoint"
        )

    def test_scheme_owned_loops_resolve_to_none(self):
        spec = ScenarioSpec(name="x", scheme="deflection", lam=0.5)
        assert resolve_engine(spec) is None

    def test_event_schemes_declare_native_event(self):
        spec = ScenarioSpec(name="x", scheme="random_order", rho=0.5)
        assert resolve_engine(spec).name == "event"

    def test_declared_engine_names_canonicalise(self):
        assert declared_engine_names(("eventsim", "vectorized", "event")) == (
            "event",
            "vectorized",
        )

    def test_unregistered_declared_engine_does_not_poison_the_rest(self):
        """A scheme may declare a companion engine whose distribution is
        not installed; forcing one of its *registered* engines must
        still work, and the declaration must survive enumeration."""
        from repro.plugins import get_plugin, register_scheme, unregister_scheme

        greedy = type(get_plugin("greedy"))

        class CompanionGreedy(greedy):
            name = "companion_greedy"
            capabilities = greedy.capabilities.__class__(
                networks=("*",),
                engines=("event", "companion-engine"),
                disciplines=("fifo", "ps"),
                network_options=True,
            )

        register_scheme(CompanionGreedy)
        try:
            assert declared_engine_names(("event", "companion-engine")) == (
                "event",
                "companion-engine",
            )
            spec = ScenarioSpec(
                name="x", scheme="companion_greedy", d=3, rho=0.5,
                horizon=80.0, engine="event",
            )
            assert run_spec(spec, 0).num_packets > 0
            with pytest.raises(ConfigurationError, match="companion-engine"):
                ScenarioSpec(name="x", scheme="companion_greedy", d=3,
                             rho=0.5, engine="companion-engine")
        finally:
            unregister_scheme("companion_greedy")


class TestAdmissibility:
    def test_feedforward_rejected_on_non_levelled_network(self):
        with pytest.raises(ConfigurationError, match="level-sweep"):
            greedy_spec("ring", engine="feedforward")
        with pytest.raises(ConfigurationError, match="level-sweep"):
            greedy_spec("torus", engine="ff")

    def test_fixedpoint_allowed_on_levelled_network(self):
        """Forcing the fixed-point solver onto the levelled hypercube is
        a legitimate cross-validation axis: the unique consistent
        sample path is the feed-forward one, bit for bit (FIFO)."""
        base = greedy_spec()
        ff = run_spec(base, base.base_seed, keep_record=True)
        fp = run_spec(
            base.replace(engine="fixedpoint"), base.base_seed, keep_record=True
        )
        assert np.array_equal(fp.record.delivery, ff.record.delivery)
        assert fp.mean_delay == ff.mean_delay

    def test_undeclared_engine_rejected_with_enumeration(self):
        with pytest.raises(ConfigurationError, match="event"):
            ScenarioSpec(name="x", scheme="random_order", rho=0.5,
                         engine="fixedpoint")

    def test_max_sweeps_option_scoped_to_fixedpoint(self):
        spec = greedy_spec("ring", engine="fixedpoint",
                           extra={"max_sweeps": 500})
        assert spec.option("max_sweeps") == 500
        # the feedforward engine declares no such option
        with pytest.raises(ConfigurationError, match="max_sweeps"):
            greedy_spec(extra={"max_sweeps": 500})
        # and the schema is typed
        with pytest.raises(ConfigurationError, match="int"):
            greedy_spec("ring", engine="fixedpoint",
                        extra={"max_sweeps": "lots"})

    def test_tiny_max_sweeps_raises_simulation_error(self):
        from repro.errors import SimulationError

        spec = greedy_spec("ring", engine="fixedpoint",
                           extra={"max_sweeps": 1})
        with pytest.raises(SimulationError, match="converge"):
            run_spec(spec, spec.base_seed)

    def test_dim_order_needs_the_levelled_sweep(self):
        order = (3, 1, 0, 2)
        ok = greedy_spec(extra={"dim_order": order})
        assert ok.option("dim_order") == order
        with pytest.raises(ConfigurationError, match="vectorized-engine"):
            greedy_spec(engine="fixedpoint", extra={"dim_order": order})


BATCHED_CELLS = [
    greedy_spec(),
    greedy_spec(discipline="ps", rho=0.6),
    greedy_spec("butterfly"),
    greedy_spec("butterfly", discipline="ps"),
    greedy_spec("ring"),
    greedy_spec("ring", discipline="ps", rho=0.6),
    greedy_spec("torus"),
    greedy_spec(engine="fixedpoint"),
    greedy_spec(engine="event"),
    greedy_spec(engine="event", discipline="ps", rho=0.6),
    greedy_spec("ring", engine="event"),
]


class TestBatchedFastPath:
    @pytest.mark.parametrize(
        "spec", BATCHED_CELLS,
        ids=lambda s: f"{s.network}-{s.discipline}-{s.engine}",
    )
    def test_batch_bit_identical_to_sequential(self, spec):
        """A batch of R replications equals R sequential runs exactly —
        the contract the per-replication cache cells rely on."""
        reps = 5
        spec = spec.replace(replications=reps)
        runner = spec.plugin.batch_runner(spec)
        assert runner is not None
        seeds = replication_seeds(spec.base_seed, reps, spec.seed_policy)
        batched = runner(seeds)
        sequential = [run_spec(spec, seed) for seed in seeds]
        assert batched == sequential  # exact: dataclass equality on floats

    def test_event_engine_batches(self):
        """The event calendar declares batching: R replications share
        one calendar via arc-id offsetting."""
        spec = greedy_spec(engine="event")
        assert get_engine("event").supports_batch(spec)
        assert spec.plugin.batch_runner(spec) is not None

    def test_scheme_owned_loops_do_not_batch(self):
        spec = ScenarioSpec(name="x", scheme="deflection", lam=0.5)
        assert spec.plugin.batch_runner(spec) is None

    def test_measure_routes_agree(self):
        """measure(batch=True) == measure(batch=False), pooled CI and
        all, at every jobs level."""
        spec = greedy_spec(replications=6, seed_policy="spawn")
        baseline = measure(spec, jobs=1, batch=False)
        assert measure(spec, jobs=1, batch=True) == baseline
        assert measure(spec, jobs=2, batch=True) == baseline

    def test_batched_cache_cells_interchangeable(self, tmp_path):
        """Cells written by the batched route are read back by the
        pooled route and vice versa — the two paths share physics."""
        spec = greedy_spec(replications=4)
        batched_store = ResultsStore(tmp_path / "batched")
        pooled_store = ResultsStore(tmp_path / "pooled")
        batched = measure(spec, store=batched_store, batch=True)
        pooled = measure(spec, store=pooled_store, batch=False)
        assert batched == pooled
        for k in range(spec.replications):
            a = batched_store.load_replication(spec, k)
            b = pooled_store.load_replication(spec, k)
            assert a == b

    def test_growing_replications_batches_only_missing(self, tmp_path):
        spec = greedy_spec(replications=2)
        store = ResultsStore(tmp_path)
        first = measure(spec, store=store)
        grown = measure(spec.replace(replications=6), store=store)
        assert grown.replication_delays[:2] == first.replication_delays

    def test_seed_chunking_preserves_order(self):
        from repro.runner.engine import _chunked

        seeds = list(range(17))
        chunks = _chunked(seeds, jobs=4)
        assert [s for c in chunks for s in c] == seeds
        assert len(chunks) == 4  # one chunk per worker: nobody idles
        assert _chunked(seeds, jobs=1) == [tuple(seeds)]
        # more workers than seeds: one replication per chunk
        assert _chunked([1, 2], jobs=8) == [(1,), (2,)]


class TestCustomEngineEndToEnd:
    """A third-party engine drives the greedy scheme without touching
    any repro module — the tentpole promise on the engine axis."""

    @pytest.fixture()
    def echo_engine(self):
        @register_engine
        class EchoEngine(EnginePlugin):
            name = "echo"
            aliases = ("free-flow",)
            summary = "zero-contention toy: delivery = birth + hops"
            capabilities = EngineCapabilities(kind="event")

            def simulate(self, spec, topology, sample):
                paths = spec.network_plugin.greedy_paths(
                    topology, spec, sample
                )
                hops = np.array([len(p) for p in paths], dtype=float)
                return np.asarray(sample.times, dtype=float) + hops

        yield EchoEngine
        unregister_engine("echo")

    def test_forced_custom_engine_runs(self, echo_engine):
        from repro.plugins import get_plugin, register_scheme, unregister_scheme

        # widen greedy's declared engines through a subclass double so
        # the built-in plugin object stays untouched
        greedy = type(get_plugin("greedy"))

        class OpenGreedy(greedy):
            name = "open_greedy"
            capabilities = greedy.capabilities.__class__(
                networks=("*",),
                engines=("vectorized", "echo"),
                disciplines=("fifo", "ps"),
                network_options=True,
            )

        register_scheme(OpenGreedy)
        try:
            spec = ScenarioSpec(
                name="echo-toy", scheme="open_greedy", d=3, rho=0.4,
                horizon=80.0, replications=1, engine="free-flow",
            )
            assert spec.engine == "echo"
            out = run_spec(spec, 0, keep_record=True)
            # zero contention: every delay is exactly the hop count
            delays = out.record.delivery - out.record.birth
            assert np.all(delays >= 0)
            assert np.allclose(delays, np.round(delays))
        finally:
            unregister_scheme("open_greedy")


def test_no_engine_literals_outside_engines_package():
    """Grep-style guard: the tentpole's deliverable is that engine
    dispatch lives in src/repro/engines/ alone.  Any ``engine ==`` (or
    ``!=``) literal comparison elsewhere in the library is a regression
    to the closed string enum."""
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    assert src.is_dir()
    pattern = re.compile(
        r"""(\bengine\s*[!=]=\s*["'])|(["']\s*[!=]=\s*(spec\.)?engine\b)"""
    )
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if "engines" in path.relative_to(src).parts[:1]:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if pattern.search(line):
                offenders.append(
                    f"{path.relative_to(src)}:{lineno}: {line.strip()}"
                )
    assert not offenders, "engine literals outside repro.engines:\n" + "\n".join(
        offenders
    )
