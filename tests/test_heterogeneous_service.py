"""The Prop 11 generality remark: levelled networks with per-arc
deterministic service times are also dominated by their PS versions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qnetwork import ExplicitLevelledSpec
from repro.errors import ConfigurationError
from repro.sim.feedforward import EXIT, serve_level, simulate_markovian


def _fig2_spec():
    return ExplicitLevelledSpec(
        levels=[0, 0, 1],
        routing={
            0: ([2, EXIT], [0.6, 0.4]),
            1: ([2, EXIT], [0.7, 0.3]),
        },
    )


class TestServeLevelPerArcService:
    def test_scalar_vs_array_consistency(self):
        arcs = np.array([0, 1, 0])
        times = np.array([0.0, 0.0, 0.1])
        pids = np.arange(3)
        dep_scalar, _ = serve_level(arcs, times, pids, service=2.0)
        dep_array, _ = serve_level(
            arcs, times, pids, service=np.array([2.0, 2.0])
        )
        np.testing.assert_allclose(dep_scalar, dep_array)

    def test_different_speeds(self):
        # arc 0 fast (0.5), arc 1 slow (3.0)
        arcs = np.array([0, 1])
        times = np.zeros(2)
        dep, _ = serve_level(
            arcs, times, np.arange(2), service=np.array([0.5, 3.0])
        )
        np.testing.assert_allclose(dep, [0.5, 3.0])

    def test_queueing_with_slow_server(self):
        arcs = np.zeros(3, dtype=np.int64)
        times = np.zeros(3)
        dep, _ = serve_level(
            arcs, times, np.arange(3), service=np.array([2.0])
        )
        np.testing.assert_allclose(np.sort(dep), [2.0, 4.0, 6.0])


class TestHeterogeneousMarkovian:
    def test_exit_times_reflect_services(self):
        spec = _fig2_spec()
        services = np.array([0.5, 2.0, 1.5])
        times = np.array([0.0])
        arcs = np.array([0])
        res = simulate_markovian(
            spec,
            times,
            arcs,
            decisions={0: np.array([2]), 2: np.array([EXIT])},
            service_times=services,
        )
        # 0.5 at S1 then 1.5 at S3
        assert res.exit_times[0] == pytest.approx(2.0)

    def test_validates_service_shape(self):
        spec = _fig2_spec()
        with pytest.raises(ConfigurationError):
            simulate_markovian(
                spec,
                np.array([0.0]),
                np.array([0]),
                service_times=np.array([1.0, 1.0]),
            )
        with pytest.raises(ConfigurationError):
            simulate_markovian(
                spec,
                np.array([0.0]),
                np.array([0]),
                service_times=np.array([1.0, -1.0, 1.0]),
            )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_property_domination_heterogeneous(self, seed):
        """Lemma 9/10 with per-arc service times: coupled FIFO network
        departures still never trail the PS network's."""
        gen = np.random.default_rng(seed)
        spec = _fig2_spec()
        services = gen.uniform(0.3, 3.0, size=3)
        n = int(gen.integers(1, 100))
        times = np.sort(gen.random(n) * 40.0)
        arcs = gen.integers(0, 2, size=n)
        fifo = simulate_markovian(
            spec,
            times,
            arcs,
            rng=seed,
            record_decisions=True,
            service_times=services,
        )
        ps = simulate_markovian(
            spec,
            times,
            arcs,
            discipline="ps",
            decisions=fifo.decisions,
            service_times=services,
        )
        ef, ep = np.sort(fifo.exit_times), np.sort(ps.exit_times)
        assert np.all(ef <= ep + 1e-9)

    def test_population_domination_heterogeneous(self):
        gen = np.random.default_rng(77)
        spec = _fig2_spec()
        services = np.array([0.7, 1.8, 1.2])
        n = 300
        times = np.sort(gen.random(n) * 100.0)
        arcs = gen.integers(0, 2, size=n)
        fifo = simulate_markovian(
            spec, times, arcs, rng=78, record_decisions=True,
            service_times=services,
        )
        ps = simulate_markovian(
            spec, times, arcs, discipline="ps",
            decisions=fifo.decisions, service_times=services,
        )
        grid = np.linspace(0, 300, 3001)
        nf = np.searchsorted(times, grid, side="right") - np.searchsorted(
            np.sort(fifo.exit_times), grid, side="right"
        )
        np_ = np.searchsorted(times, grid, side="right") - np.searchsorted(
            np.sort(ps.exit_times), grid, side="right"
        )
        assert np.all(nf <= np_)
