"""Tests for the capability-declaring scheme-plugin API and registry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.plugins import (
    Capabilities,
    OptionSpec,
    SchemePlugin,
    available_networks,
    available_schemes,
    get_plugin,
    iter_plugins,
    register_scheme,
    schemes_for_network,
    unregister_scheme,
)
from repro.plugins import registry as plugin_registry
from repro.plugins.api import steady_output
from repro.runner import ScenarioSpec, get_scenario, measure
from repro.sim.run_spec import run_spec

ALL_BUILTINS = {
    "greedy",
    "slotted",
    "random_order",
    "twophase",
    "pipelined_batch",
    "deflection",
    "static_greedy",
    "static_valiant",
}


class TestRegistry:
    def test_builtins_are_registered(self):
        assert ALL_BUILTINS <= set(available_schemes())

    def test_networks_are_derived_from_plugins(self):
        assert available_networks() == ("butterfly", "hypercube", "ring", "torus")
        assert schemes_for_network("butterfly") == ("greedy",)
        assert schemes_for_network("ring") == ("greedy",)
        assert schemes_for_network("torus") == ("greedy",)
        # aliases resolve before the capability lookup
        assert schemes_for_network("bf") == ("greedy",)
        assert set(schemes_for_network("hypercube")) == set(available_schemes())

    def test_unknown_scheme_enumerates_registry(self):
        with pytest.raises(ConfigurationError, match="greedy"):
            get_plugin("magic")

    def test_iter_plugins_sorted_with_capabilities(self):
        plugins = iter_plugins()
        names = [p.name for p in plugins]
        assert names == sorted(names)
        for p in plugins:
            assert p.capabilities.networks
            assert p.summary

    def test_register_requires_protocol(self):
        with pytest.raises(ConfigurationError, match="SchemePlugin"):
            register_scheme(object())

    def test_collision_requires_overwrite(self):
        class FakeGreedy(SchemePlugin):
            name = "greedy"
            capabilities = Capabilities(networks=("hypercube",))

        with pytest.raises(ConfigurationError, match="already registered"):
            register_scheme(FakeGreedy)
        # re-registering the *same* class is an idempotent no-op
        register_scheme(type(get_plugin("greedy")))
        assert "greedy" in available_schemes()

    def test_entry_point_discovery(self, monkeypatch):
        class EPPlugin(SchemePlugin):
            name = "ep-scheme"
            summary = "from an entry point"
            capabilities = Capabilities(networks=("hypercube",))

        class FakeEP:
            name = "ep-scheme"

            def load(self):
                return EPPlugin

        class BrokenEP:
            name = "broken-scheme"

            def load(self):
                raise ImportError("third-party package is broken")

        import importlib.metadata as md

        monkeypatch.setattr(
            md, "entry_points", lambda group=None: [FakeEP(), BrokenEP()]
        )
        try:
            with pytest.warns(RuntimeWarning, match="broken-scheme"):
                plugin_registry._load_entry_points()
            assert "ep-scheme" in available_schemes()
            assert "broken-scheme" not in available_schemes()
        finally:
            unregister_scheme("ep-scheme")


class TestCustomPluginEndToEnd:
    """A third-party scheme drives the whole stack: spec validation,
    run_spec, measure — without touching any repro module."""

    @pytest.fixture()
    def zero_delay(self):
        @register_scheme
        class ZeroDelayPlugin(SchemePlugin):
            name = "zero_delay"
            summary = "toy: deliver every packet at birth"
            capabilities = Capabilities(
                networks=("hypercube",),
                options=(OptionSpec("bump", kind="float", default=0.0),),
            )

            def prepare(self, spec):
                from repro.sim.measurement import DelayRecord
                from repro.topology.hypercube import Hypercube
                from repro.traffic.destinations import BernoulliFlipLaw
                from repro.traffic.workload import HypercubeWorkload

                cube = Hypercube(spec.d)
                bump = float(spec.option("bump", 0.0))

                def run(gen):
                    workload = HypercubeWorkload(
                        cube, spec.resolved_lam, BernoulliFlipLaw(spec.d, spec.p)
                    )
                    sample = workload.generate(spec.horizon, gen)
                    record = DelayRecord(
                        sample.times, sample.times + bump, sample.horizon
                    )
                    return steady_output(spec, record)

                return run

        yield ZeroDelayPlugin
        unregister_scheme("zero_delay")

    def test_spec_accepts_registered_scheme(self, zero_delay):
        spec = ScenarioSpec(
            name="toy", scheme="zero_delay", d=3, rho=0.5, horizon=80.0,
            replications=2, extra={"bump": 1.5},
        )
        out = run_spec(spec, 0)
        assert out.mean_delay == pytest.approx(1.5)
        m = measure(spec)
        assert m.mean_delay == pytest.approx(1.5)
        assert m.scheme == "zero_delay"

    def test_option_schema_enforced(self, zero_delay):
        with pytest.raises(ConfigurationError, match="bump"):
            ScenarioSpec(name="toy", scheme="zero_delay", rho=0.5,
                         extra={"bmup": 1.0})

    def test_unregistered_scheme_rejected_again(self, zero_delay):
        unregister_scheme("zero_delay")
        with pytest.raises(ConfigurationError, match="zero_delay"):
            ScenarioSpec(name="toy", scheme="zero_delay", rho=0.5)
        register_scheme(zero_delay)  # restore for the fixture teardown


class TestCapabilityValidation:
    def test_network_rejection_enumerates_alternatives(self):
        with pytest.raises(ConfigurationError) as err:
            ScenarioSpec(name="x", network="butterfly", scheme="deflection",
                         lam=0.5)
        msg = str(err.value)
        assert "hypercube" in msg  # what deflection does support
        assert "greedy" in msg  # what butterfly does support

    def test_engine_admissibility(self):
        with pytest.raises(ConfigurationError, match="vectorized"):
            ScenarioSpec(name="x", scheme="slotted", rho=0.5,
                         engine="event")
        with pytest.raises(ConfigurationError, match="event"):
            ScenarioSpec(name="x", scheme="random_order", rho=0.5,
                         engine="vectorized")
        with pytest.raises(ConfigurationError, match="auto"):
            ScenarioSpec(name="x", scheme="deflection", lam=0.5,
                         engine="event")

    def test_discipline_admissibility(self):
        with pytest.raises(ConfigurationError, match="fifo"):
            ScenarioSpec(name="x", scheme="slotted", rho=0.5, discipline="ps")

    def test_greedy_cross_field_rules(self):
        with pytest.raises(ConfigurationError, match="vectorized-engine"):
            ScenarioSpec(name="x", rho=0.5, engine="event",
                         extra={"dim_order": (1, 0, 2, 3)})
        # dim_order is a *hypercube network* option: on the butterfly
        # it is rejected as unknown, with the butterfly's (empty)
        # network schema enumerated
        with pytest.raises(ConfigurationError, match="dim_order"):
            ScenarioSpec(name="x", network="butterfly", rho=0.5,
                         extra={"dim_order": (1, 0, 2)})
        # the legacy law option folds into the traffic axis — on the
        # butterfly bit reversal is now *valid* (rows are d-bit
        # addresses), and the normalised spec says so
        spec = ScenarioSpec(name="x", network="butterfly", rho=0.5,
                            extra={"law": "bitrev"})
        assert spec.traffic == "bitrev"
        assert spec.extra == ()
        # non-uniform traffic only reaches schemes that declare they
        # run under it; the slotted scheme admits uniform alone
        with pytest.raises(ConfigurationError, match="traffic"):
            ScenarioSpec(name="x", scheme="slotted", rho=0.5,
                         extra={"law": "bitrev"})
        with pytest.raises(ConfigurationError, match="traffic"):
            ScenarioSpec(name="x", scheme="slotted", rho=0.5,
                         traffic="hotspot")

    def test_static_capability_drives_rate_rules(self):
        spec = ScenarioSpec(name="x", scheme="static_greedy")
        assert spec.is_static
        assert not ScenarioSpec(name="y", rho=0.5).is_static
        assert spec.plugin.name == "static_greedy"


class TestButterflyEventEngine:
    """The concrete capability the redesign unlocks: the event calendar
    cross-validates greedy routing on the butterfly."""

    def test_event_scenarios_registered(self):
        assert get_scenario("butterfly-greedy-event").engine == "event"
        assert get_scenario("butterfly-greedy-event-ps").discipline == "ps"

    @pytest.mark.parametrize("discipline", ["fifo", "ps"])
    def test_engines_agree_to_roundoff(self, discipline):
        base = ScenarioSpec(
            name="bf-xval", network="butterfly", discipline=discipline,
            d=3, rho=0.7, horizon=150.0, replications=1, base_seed=11,
            seed_policy="sequential",
        )
        vec = run_spec(base, 11, keep_record=True)
        evt = run_spec(base.replace(engine="event"), 11, keep_record=True)
        assert vec.num_packets == evt.num_packets
        np.testing.assert_allclose(
            evt.record.delivery, vec.record.delivery, rtol=0, atol=1e-9
        )
        assert evt.mean_delay == pytest.approx(vec.mean_delay, abs=1e-9)

    def test_event_butterfly_within_paper_bracket(self):
        m = measure(get_scenario("butterfly-greedy-event").replace(
            replications=2, horizon=250.0))
        assert m.within_bounds

    def test_butterfly_packet_paths_match_topology(self):
        from repro.sim.eventsim import butterfly_packet_paths
        from repro.topology.butterfly import Butterfly
        from repro.traffic.destinations import BernoulliFlipLaw
        from repro.traffic.workload import ButterflyWorkload

        bf = Butterfly(3)
        sample = ButterflyWorkload(bf, 0.8, BernoulliFlipLaw(3, 0.5)).generate(
            40.0, np.random.default_rng(2)
        )
        paths = butterfly_packet_paths(bf, sample)
        assert len(paths) == sample.num_packets
        for i, path in enumerate(paths):
            assert len(path) == bf.d  # one arc per level, always
            assert path == bf.path_arcs(
                int(sample.origins[i]), int(sample.destinations[i])
            )


class TestCLI:
    def test_schemes_lists_capabilities(self, capsys):
        from repro.__main__ import main

        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for name in ALL_BUILTINS:
            assert name in out
        assert "entry-point" in out

    def test_describe_shows_plugin_metadata(self, capsys):
        from repro.__main__ import main

        assert main(["describe", "butterfly-greedy-event"]) == 0
        out = capsys.readouterr().out
        assert "GreedyPlugin" in out
        assert "ButterflyNetwork" in out
        assert "content hash" in out

    def test_describe_shows_network_options(self, capsys):
        from repro.__main__ import main

        assert main(["describe", "hypercube-greedy-event"]) == 0
        out = capsys.readouterr().out
        assert "HypercubeNetwork" in out
        assert "network option: dim_order" in out
        assert "UniformTraffic" in out

    def test_describe_static_scenario(self, capsys):
        from repro.__main__ import main

        assert main(["describe", "static-greedy-bitrev"]) == 0
        out = capsys.readouterr().out
        assert "static task" in out and "option: perm" in out

    def test_describe_unknown_scenario(self):
        from repro.__main__ import main

        with pytest.raises(ConfigurationError, match="smoke"):
            main(["describe", "no-such-scenario"])
