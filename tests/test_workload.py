"""Tests for workload generation (TrafficSample plumbing)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import (
    ButterflyWorkload,
    HypercubeWorkload,
    SlottedHypercubeWorkload,
    TrafficSample,
)


class TestTrafficSample:
    def test_basic_properties(self):
        s = TrafficSample(
            np.array([0.0, 1.0, 2.0]),
            np.array([0, 1, 2]),
            np.array([3, 2, 1]),
            10.0,
        )
        assert s.num_packets == 3
        assert len(s) == 3

    def test_rejects_unsorted_times(self):
        with pytest.raises(ConfigurationError):
            TrafficSample(
                np.array([1.0, 0.5]), np.array([0, 1]), np.array([1, 0]), 10.0
            )

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            TrafficSample(np.array([0.0]), np.array([0, 1]), np.array([1]), 10.0)


class TestHypercubeWorkload:
    def test_generates_valid_sample(self, small_cube_workload, rng):
        s = small_cube_workload.generate(100.0, rng)
        assert np.all(np.diff(s.times) >= 0)
        assert s.origins.min() >= 0 and s.origins.max() < 16
        assert s.destinations.min() >= 0 and s.destinations.max() < 16
        assert s.horizon == 100.0

    def test_total_rate(self, small_cube_workload, rng):
        s = small_cube_workload.generate(1000.0, rng)
        expected = small_cube_workload.total_rate * 1000.0
        assert s.num_packets == pytest.approx(expected, rel=0.05)

    def test_reproducible_with_seed(self, small_cube_workload):
        a = small_cube_workload.generate(50.0, rng=7)
        b = small_cube_workload.generate(50.0, rng=7)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.origins, b.origins)
        np.testing.assert_array_equal(a.destinations, b.destinations)

    def test_different_seeds_differ(self, small_cube_workload):
        a = small_cube_workload.generate(50.0, rng=1)
        b = small_cube_workload.generate(50.0, rng=2)
        assert a.num_packets != b.num_packets or not np.array_equal(a.times, b.times)

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ConfigurationError):
            HypercubeWorkload(Hypercube(4), 1.0, BernoulliFlipLaw(3, 0.5))

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            HypercubeWorkload(Hypercube(3), 0.0, BernoulliFlipLaw(3, 0.5))

    def test_destination_distribution(self, rng):
        # empirical Hamming distance distribution ~ Binomial(d, p)
        wl = HypercubeWorkload(Hypercube(5), 4.0, BernoulliFlipLaw(5, 0.3))
        s = wl.generate(500.0, rng)
        dist = np.bitwise_count(s.origins ^ s.destinations)
        assert dist.mean() == pytest.approx(5 * 0.3, rel=0.05)


class TestButterflyWorkload:
    def test_rows_in_range(self, small_bf_workload, rng):
        s = small_bf_workload.generate(200.0, rng)
        assert s.origins.max() < 8
        assert s.destinations.max() < 8

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ConfigurationError):
            ButterflyWorkload(Butterfly(3), 1.0, BernoulliFlipLaw(4, 0.5))


class TestSlottedWorkload:
    def test_times_are_slot_aligned(self, rng):
        wl = SlottedHypercubeWorkload(
            Hypercube(3), 1.0, BernoulliFlipLaw(3, 0.5), tau=0.5
        )
        s = wl.generate(20.0, rng)
        np.testing.assert_allclose(s.times % 0.5, 0.0, atol=1e-12)

    def test_intensity_matches_continuous(self, rng):
        wl = SlottedHypercubeWorkload(
            Hypercube(3), 1.2, BernoulliFlipLaw(3, 0.5), tau=0.25
        )
        s = wl.generate(500.0, rng)
        assert s.num_packets / (8 * 500.0) == pytest.approx(1.2, rel=0.05)

    def test_rejects_mismatched_law(self):
        with pytest.raises(ConfigurationError):
            SlottedHypercubeWorkload(
                Hypercube(3), 1.0, BernoulliFlipLaw(4, 0.5), tau=0.5
            )
