"""Tests for figure generation (paper Figs 1-3) and per-level stats."""

import numpy as np
import pytest

from repro.analysis.hopstats import per_level_hop_stats
from repro.core.greedy import GreedyHypercubeScheme
from repro.core.qnetwork import ButterflyRSpec, HypercubeQSpec
from repro.errors import MeasurementError
from repro.queueing.md1 import md1_wait
from repro.sim.feedforward import ArcLog
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.viz.diagrams import (
    butterfly_dot,
    fig2_networks_dot,
    hypercube_dot,
    qnetwork_dot,
    rnetwork_dot,
)


class TestDiagrams:
    def test_fig1a_counts(self):
        dot = hypercube_dot(Hypercube(3))
        assert dot.startswith("digraph")
        # 12 undirected edges drawn once each
        assert dot.count("dir=both") == 12
        assert '"000"' in dot and '"111"' in dot

    def test_fig1a_scales(self):
        dot = hypercube_dot(Hypercube(4))
        assert dot.count("dir=both") == 32  # d * 2^d / 2

    def test_fig1b_server_count(self):
        dot = qnetwork_dot(HypercubeQSpec(Hypercube(3), 0.5))
        # one node statement per arc-server
        assert dot.count("s0 [") == 1
        for arc in range(24):
            assert f"s{arc} [" in dot

    def test_fig1b_routing_probabilities(self):
        dot = qnetwork_dot(HypercubeQSpec(Hypercube(3), 0.5))
        # Lemma 4: p(1-p)^0 = 0.5 and p(1-p)^1 = 0.25 appear as labels
        assert 'label="0.5"' in dot
        assert 'label="0.25"' in dot

    def test_fig2_has_three_networks(self):
        dot = fig2_networks_dot()
        for tag in ("cluster_g", "cluster_gt", "cluster_gp"):
            assert tag in dot
        assert dot.count("FIFO") == 4  # 3 in g + 1 in g'
        assert dot.count("PS") == 5  # 3 in g~ + 2 in g'

    def test_fig3a_arc_styles(self):
        dot = butterfly_dot(Butterfly(2))
        assert dot.count("style=solid") == 8  # straight arcs
        assert dot.count("style=dashed") == 8  # vertical arcs

    def test_fig3b_routing_edges(self):
        dot = rnetwork_dot(ButterflyRSpec(Butterfly(2), 0.3))
        # only level-0 servers route onward: 8 sources x 2 targets
        assert dot.count(" -> ") == 16
        assert 'label="0.3"' in dot and 'label="0.7"' in dot

    def test_all_dots_parse_as_balanced(self):
        # cheap syntactic sanity: braces balance in every figure
        for dot in (
            hypercube_dot(Hypercube(2)),
            butterfly_dot(Butterfly(2)),
            qnetwork_dot(HypercubeQSpec(Hypercube(2), 0.4)),
            rnetwork_dot(ButterflyRSpec(Butterfly(2), 0.4)),
            fig2_networks_dot(),
        ):
            assert dot.count("{") == dot.count("}")


class TestHopStats:
    def _log(self):
        # level geometry: 2 arcs per level, 2 levels
        return ArcLog(
            pid=np.array([0, 0, 1]),
            arc=np.array([0, 2, 1]),
            t_in=np.array([0.0, 1.0, 0.5]),
            t_out=np.array([1.0, 2.5, 1.5]),
        )

    def test_basic_levels(self):
        stats = per_level_hop_stats(self._log(), arcs_per_level=2, num_levels=2)
        assert stats[0].level == 0
        assert stats[0].num_hops == 2
        assert stats[0].mean_wait == pytest.approx(0.0)
        assert stats[1].num_hops == 1
        assert stats[1].mean_wait == pytest.approx(0.5)
        assert stats[1].mean_service == pytest.approx(1.0)

    def test_window_trimming(self):
        stats = per_level_hop_stats(
            self._log(), arcs_per_level=2, num_levels=2, t0=0.4
        )
        assert stats[0].num_hops == 1  # the t_in=0.0 hop dropped

    def test_empty_level_is_nan(self):
        log = ArcLog(
            pid=np.array([0]),
            arc=np.array([0]),
            t_in=np.array([0.0]),
            t_out=np.array([1.0]),
        )
        stats = per_level_hop_stats(log, arcs_per_level=2, num_levels=2)
        assert stats[1].num_hops == 0
        assert np.isnan(stats[1].mean_wait)

    def test_validates_geometry(self):
        with pytest.raises(MeasurementError):
            per_level_hop_stats(self._log(), arcs_per_level=1, num_levels=2)
        with pytest.raises(MeasurementError):
            per_level_hop_stats(self._log(), arcs_per_level=0, num_levels=2)

    def test_level0_wait_is_md1(self):
        # first-dimension arcs are exact M/D/1 queues (Prop 13 proof)
        rho = 0.7
        scheme = GreedyHypercubeScheme(d=4, lam=rho / 0.5, p=0.5)
        horizon = 2500.0
        res = scheme.run(horizon, rng=3, record_arc_log=True)
        stats = per_level_hop_stats(
            res.arc_log,
            arcs_per_level=16,
            num_levels=4,
            t0=horizon * 0.25,
            t1=horizon * 0.9,
        )
        assert stats[0].mean_wait == pytest.approx(md1_wait(rho), rel=0.08)
