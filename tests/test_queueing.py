"""Tests for the queueing-theory formulas (M/D/1, M/D/c, product form)."""

import math

import numpy as np
import pytest

from repro.errors import UnstableSystemError
from repro.queueing.littleslaw import delay_from_population, population_from_delay
from repro.queueing.md1 import md1_mean_number, md1_sojourn, md1_wait
from repro.queueing.mdc import (
    erlang_b,
    erlang_c,
    mdc_sojourn_brumelle_lower,
    mdc_sojourn_cosmetatos,
    mdc_sojourn_mc,
    mmc_wait,
)
from repro.queueing.mm1 import (
    geometric_mean,
    geometric_pmf,
    geometric_tail,
    mm1_mean_number,
)
from repro.queueing.productform import (
    ProductFormNetwork,
    butterfly_ps_mean_population,
    hypercube_ps_mean_population,
)


class TestMD1:
    def test_wait_formula(self):
        assert md1_wait(0.5) == pytest.approx(0.5)
        assert md1_wait(0.8) == pytest.approx(0.8 / 0.4)

    def test_sojourn_is_wait_plus_service(self):
        assert md1_sojourn(0.6) == pytest.approx(1.0 + md1_wait(0.6))

    def test_mean_number_eq16(self):
        rho = 0.7
        assert md1_mean_number(rho) == pytest.approx(rho + rho**2 / (2 * 0.3))

    def test_littles_law_consistency(self):
        # N = rho * T for M/D/1 (arrival rate == rho at unit service)
        rho = 0.65
        assert md1_mean_number(rho) == pytest.approx(rho * md1_sojourn(rho))

    def test_zero_load(self):
        assert md1_wait(0.0) == 0.0
        assert md1_sojourn(0.0) == 1.0

    @pytest.mark.parametrize("rho", [1.0, 1.5])
    def test_unstable_raises(self, rho):
        with pytest.raises(UnstableSystemError):
            md1_wait(rho)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            md1_wait(-0.1)


class TestErlang:
    def test_erlang_b_known_values(self):
        # classic: c=1 -> B = a/(1+a)
        assert erlang_b(1, 1.0) == pytest.approx(0.5)
        assert erlang_b(2, 1.0) == pytest.approx(0.2)

    def test_erlang_b_zero_servers(self):
        assert erlang_b(0, 2.0) == 1.0

    def test_erlang_c_single_server(self):
        # M/M/1: probability of waiting = rho
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_erlang_c_unstable(self):
        with pytest.raises(UnstableSystemError):
            erlang_c(2, 2.0)

    def test_mmc_wait_single_server(self):
        # M/M/1 wait = rho/(1-rho)
        assert mmc_wait(1, 0.5) == pytest.approx(1.0)

    def test_mmc_wait_decreases_with_servers(self):
        assert mmc_wait(4, 0.8) < mmc_wait(2, 0.8) < mmc_wait(1, 0.8)


class TestMDC:
    def test_brumelle_at_c1_below_exact(self):
        # c=1: bound 1 + rho/(2(1-rho)) equals the exact M/D/1 sojourn.
        rho = 0.6
        assert mdc_sojourn_brumelle_lower(1, rho) == pytest.approx(md1_sojourn(rho))

    def test_brumelle_decreases_with_servers(self):
        assert mdc_sojourn_brumelle_lower(8, 0.8) < mdc_sojourn_brumelle_lower(2, 0.8)

    def test_cosmetatos_exact_at_c1(self):
        rho = 0.7
        assert mdc_sojourn_cosmetatos(1, rho) == pytest.approx(md1_sojourn(rho))

    def test_brumelle_form_heavy_traffic_agreement(self):
        # The paper's closed form is asymptotically exact as rho -> 1:
        # (1-rho)-scaled waits converge to 1/(2c).
        c = 4
        for rho in (0.95, 0.99):
            paper = (mdc_sojourn_brumelle_lower(c, rho) - 1.0) * (1 - rho)
            assert paper == pytest.approx(rho / (2 * c), abs=1e-12)

    def test_mc_close_to_cosmetatos(self):
        # Monte Carlo vs approximation: a few percent at c=4
        c, rho = 4, 0.7
        mc = mdc_sojourn_mc(c, rho, num_customers=150_000, rng=3)
        assert mc == pytest.approx(mdc_sojourn_cosmetatos(c, rho), rel=0.05)

    def test_paper_form_vs_true_value_documented_gap(self):
        # Documented behaviour: the reconstructed closed form exceeds
        # the true sojourn at light load (where Prop 2's max picks dp).
        c, rho = 2, 0.3
        mc = mdc_sojourn_mc(c, rho, num_customers=100_000, rng=4)
        assert mc < mdc_sojourn_brumelle_lower(c, rho)

    def test_mc_zero_load(self):
        assert mdc_sojourn_mc(4, 0.0, num_customers=10, rng=0) == 1.0

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            mdc_sojourn_brumelle_lower(4, 1.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            mdc_sojourn_brumelle_lower(0, 0.5)
        with pytest.raises(ValueError):
            mdc_sojourn_mc(2, 0.5, num_customers=0)


class TestGeometric:
    def test_pmf_normalises(self):
        n = np.arange(200)
        assert geometric_pmf(0.6, n).sum() == pytest.approx(1.0, abs=1e-9)

    def test_tail_consistency(self):
        rho = 0.5
        assert geometric_tail(rho, 3) == pytest.approx(rho**3)
        assert geometric_tail(rho, 0) == 1.0

    def test_mean(self):
        assert mm1_mean_number(0.5) == pytest.approx(1.0)
        assert geometric_mean(0.75) == pytest.approx(3.0)

    def test_negative_n_pmf_zero(self):
        assert geometric_pmf(0.5, -1) == 0.0

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            mm1_mean_number(1.0)


class TestProductForm:
    def test_mean_population_sum(self):
        net = ProductFormNetwork([0.5, 0.5, 0.8])
        assert net.mean_population() == pytest.approx(1.0 + 1.0 + 4.0)

    def test_hypercube_formula(self):
        # N = d 2^d rho/(1-rho)
        assert hypercube_ps_mean_population(3, 0.5) == pytest.approx(24.0)
        net = ProductFormNetwork([0.5] * 24)
        assert net.mean_population() == pytest.approx(
            hypercube_ps_mean_population(3, 0.5)
        )

    def test_butterfly_formula_eq21(self):
        d, lam, p = 3, 1.2, 0.4
        rv, rs = lam * p, lam * (1 - p)
        expected = 3 * 8 * (rv / (1 - rv) + rs / (1 - rs))
        assert butterfly_ps_mean_population(d, lam, p) == pytest.approx(expected)

    def test_mean_delay_little(self):
        net = ProductFormNetwork([0.5] * 24)  # cube d=3, rho=.5
        lam2d = 8.0  # throughput
        # T = N/Lambda = 24/8 = 3 = d*p/(1-rho) with p=.5? dp/(1-rho)=1.5/.5=3 yes
        assert net.mean_delay(lam2d) == pytest.approx(3.0)

    def test_chernoff_tail_below_one_above_mean(self):
        net = ProductFormNetwork([0.6] * 50)
        bound = net.chernoff_tail(1.5 * net.mean_population())
        assert 0.0 < bound < 1.0

    def test_chernoff_vacuous_below_mean(self):
        net = ProductFormNetwork([0.6] * 10)
        assert net.chernoff_tail(0.5 * net.mean_population()) == 1.0

    def test_chernoff_tightens_with_scale(self):
        # more servers -> relatively tighter concentration
        small = ProductFormNetwork([0.5] * 10)
        large = ProductFormNetwork([0.5] * 200)
        eps = 0.5
        assert large.population_quantile_bound(eps) < small.population_quantile_bound(eps)

    def test_mgf_infinite_beyond_radius(self):
        net = ProductFormNetwork([0.5])
        assert net.log_mgf(math.log(2.0) + 0.1) == math.inf

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            ProductFormNetwork([0.5, 1.0])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ProductFormNetwork([])
        with pytest.raises(ValueError):
            ProductFormNetwork([-0.1])
        with pytest.raises(ValueError):
            hypercube_ps_mean_population(0, 0.5)
        with pytest.raises(UnstableSystemError):
            butterfly_ps_mean_population(3, 2.5, 0.5)


class TestLittlesLaw:
    def test_roundtrip(self):
        assert delay_from_population(10.0, 2.0) == 5.0
        assert population_from_delay(5.0, 2.0) == 10.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            delay_from_population(1.0, 0.0)
        with pytest.raises(ValueError):
            population_from_delay(-1.0, 1.0)
        with pytest.raises(ValueError):
            delay_from_population(-1.0, 1.0)
