"""Tests for the exact M/D/c solver (Crommelin embedded chain)."""

import pytest

from repro.errors import UnstableSystemError
from repro.queueing.md1 import md1_sojourn
from repro.queueing.mdc import (
    mdc_sojourn_brumelle_lower,
    mdc_sojourn_cosmetatos,
    mdc_sojourn_exact,
    mdc_sojourn_mc,
)


class TestExactMDC:
    def test_reduces_to_md1(self):
        # c = 1: must match Pollaczek-Khinchine exactly
        for rho in (0.2, 0.5, 0.8, 0.95):
            assert mdc_sojourn_exact(1, rho) == pytest.approx(
                md1_sojourn(rho), rel=1e-6
            )

    def test_matches_monte_carlo(self):
        for c, rho in [(2, 0.3), (4, 0.6), (8, 0.8)]:
            mc = mdc_sojourn_mc(c, rho, num_customers=400_000, rng=1)
            assert mdc_sojourn_exact(c, rho) == pytest.approx(mc, rel=0.01)

    def test_cosmetatos_accuracy_quantified(self):
        # the approximation is within ~1% of exact in this range
        for c, rho in [(2, 0.5), (4, 0.7), (16, 0.9)]:
            exact = mdc_sojourn_exact(c, rho)
            approx = mdc_sojourn_cosmetatos(c, rho)
            assert abs(approx - exact) / exact < 0.01

    def test_paper_form_vs_exact_ordering(self):
        # the reconstructed paper form overshoots at light load...
        assert mdc_sojourn_brumelle_lower(2, 0.3) > mdc_sojourn_exact(2, 0.3)
        # ...and converges in heavy traffic (scaled waits agree)
        c, rho = 4, 0.95
        paper_w = mdc_sojourn_brumelle_lower(c, rho) - 1.0
        exact_w = mdc_sojourn_exact(c, rho) - 1.0
        assert paper_w == pytest.approx(exact_w, rel=0.12)

    def test_zero_load(self):
        assert mdc_sojourn_exact(4, 0.0) == 1.0

    def test_monotone_in_rho(self):
        vals = [mdc_sojourn_exact(4, r) for r in (0.2, 0.5, 0.8, 0.9)]
        assert vals == sorted(vals)

    def test_decreasing_in_c(self):
        # more servers at equal utilisation: less waiting
        assert mdc_sojourn_exact(8, 0.7) < mdc_sojourn_exact(2, 0.7)

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            mdc_sojourn_exact(2, 1.0)

    def test_truncation_guard(self):
        with pytest.raises(RuntimeError):
            mdc_sojourn_exact(2, 0.99999, max_states=512)


class TestExactInProp2:
    def test_universal_bound_exact_method(self):
        from repro.core.bounds import universal_delay_lower_bound

        d, lam, p = 3, 1.8, 0.5  # rho = 0.9
        exact = universal_delay_lower_bound(d, lam, p, mdc_method="exact")
        paper = universal_delay_lower_bound(d, lam, p, mdc_method="brumelle")
        # both dominated by the measured delay elsewhere; here just check
        # they are close and ordered sanely in heavy-ish traffic
        assert exact == pytest.approx(paper, rel=0.2)
