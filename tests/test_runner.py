"""Tests for the scenario registry + parallel experiment engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import replication_seeds
from repro.runner import (
    ScenarioSpec,
    ResultsStore,
    get_scenario,
    list_scenarios,
    measure,
    measure_many,
    register,
    run_replication,
    scenario_names,
    theory_bounds,
)
from repro.runner.results import measurement_from_dict, measurement_to_dict
from repro.sim.run_spec import run_spec

SMOKE = get_scenario("smoke")


class TestScenarioSpec:
    def test_rho_lam_exclusivity(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", rho=0.5, lam=1.0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x")

    def test_static_schemes_take_no_rate(self):
        spec = ScenarioSpec(name="x", scheme="static_greedy")
        assert np.isnan(spec.resolved_lam)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", scheme="static_greedy", rho=0.5)

    def test_resolved_lam_both_ways(self):
        by_rho = ScenarioSpec(name="x", d=4, rho=0.6, p=0.5)
        by_lam = ScenarioSpec(name="x", d=4, lam=1.2, p=0.5)
        assert by_rho.resolved_lam == pytest.approx(1.2)
        assert by_lam.resolved_rho == pytest.approx(0.6)
        bf = ScenarioSpec(name="x", network="butterfly", d=4, rho=0.7, p=0.3)
        assert bf.resolved_lam == pytest.approx(0.7 / 0.7)

    def test_replace_swaps_parameterisation(self):
        spec = ScenarioSpec(name="x", rho=0.5)
        swapped = spec.replace(lam=1.0)
        assert swapped.rho is None and swapped.lam == 1.0
        back = swapped.replace(rho=0.8)
        assert back.lam is None and back.rho == 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", rho=0.5, network="mesh-of-trees")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", rho=0.5, scheme="magic")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", rho=0.5, replications=0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", rho=0.5, warmup_fraction=0.8,
                         cooldown_fraction=0.3)
        with pytest.raises(ConfigurationError):
            # only the plain greedy scheme exists on the butterfly
            ScenarioSpec(name="x", network="butterfly", scheme="deflection",
                         lam=0.5)

    def test_extra_is_frozen_and_sorted(self):
        spec = ScenarioSpec(
            name="x", rho=0.5,
            extra={"beta": 0.2, "dim_order": [1, 0, 2, 3]},
            traffic="hotspot",
        )
        assert spec.extra == (("beta", 0.2), ("dim_order", (1, 0, 2, 3)))
        assert spec.option("beta") == 0.2
        assert spec.option("missing", 7) == 7
        assert hash(spec)  # stays hashable
        # the legacy law spelling folds into the traffic axis and out
        # of extra (so both spellings share one cache cell)
        legacy = ScenarioSpec(name="x", rho=0.5, extra={"law": "bernoulli"})
        assert legacy.traffic == "uniform"
        assert legacy.extra == ()

    def test_unknown_option_enumerates_schema(self):
        # tau belongs to the slotted scheme, not greedy; the error must
        # say which options greedy does declare
        with pytest.raises(ConfigurationError, match="dim_order"):
            ScenarioSpec(name="x", rho=0.5, extra={"tau": 0.5})

    def test_option_values_are_typed(self):
        with pytest.raises(ConfigurationError, match="bernoulli"):
            # the legacy law vocabulary is enumerated on a miss
            ScenarioSpec(name="x", rho=0.5, extra={"law": "weird"})
        with pytest.raises(ConfigurationError, match="float"):
            ScenarioSpec(name="x", scheme="slotted", rho=0.5,
                         extra={"tau": "long"})

    def test_roundtrip_dict(self):
        spec = ScenarioSpec(name="x", scheme="slotted", d=5, rho=0.7,
                            extra={"tau": 0.25})
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_roundtrip_dict_with_nested_tuple_options(self):
        """to_dict emits extra values as (nested) lists; feeding them
        back through from_dict must reproduce the spec exactly —
        including through an actual JSON round trip."""
        import json

        spec = ScenarioSpec(
            name="x", d=4, rho=0.7, extra={"dim_order": (3, 1, 0, 2)}
        )
        payload = spec.to_dict()
        assert payload["extra"]["dim_order"] == [3, 1, 0, 2]
        again = ScenarioSpec.from_dict(payload)
        assert again == spec and hash(again) == hash(spec)
        via_json = ScenarioSpec.from_dict(json.loads(json.dumps(payload)))
        assert via_json == spec
        assert via_json.content_hash() == spec.content_hash()

    def test_content_hash_ignores_labels(self):
        a = ScenarioSpec(name="a", rho=0.5, description="one")
        b = ScenarioSpec(name="b", rho=0.5, description="two")
        c = ScenarioSpec(name="a", rho=0.6)
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != c.content_hash()


class TestRegistry:
    def test_every_scheme_is_reachable(self):
        """Acceptance: every scheme in repro/schemes (plus the core
        greedy and slotted paths) has at least one registered scenario."""
        covered = {s.scheme for s in list_scenarios()}
        assert {
            "greedy",
            "slotted",
            "random_order",
            "twophase",
            "pipelined_batch",
            "deflection",
            "static_greedy",
            "static_valiant",
        } <= covered

    def test_every_network_and_discipline_covered(self):
        from repro.networks import available_networks

        specs = list_scenarios()
        # the catalog exercises every registered network plugin
        assert set(available_networks()) == {s.network for s in specs}
        assert "ps" in {s.discipline for s in specs}

    def test_get_unknown_lists_names(self):
        with pytest.raises(ConfigurationError, match="smoke"):
            get_scenario("nope")

    def test_register_rejects_collisions(self):
        spec = SMOKE.replace(name="smoke")
        with pytest.raises(ConfigurationError):
            register(spec)
        register(spec, overwrite=True)  # idempotent with overwrite

    def test_names_sorted(self):
        names = scenario_names()
        assert names == sorted(names)
        assert "smoke" in names


class TestSeedPolicy:
    def test_sequential(self):
        assert replication_seeds(7, 3, "sequential") == [7, 8, 9]

    def test_spawn_is_deterministic_and_distinct(self):
        a = replication_seeds(7, 3, "spawn")
        b = replication_seeds(7, 3, "spawn")
        for sa, sb in zip(a, b):
            ga = np.random.default_rng(sa).random(4)
            gb = np.random.default_rng(sb).random(4)
            np.testing.assert_array_equal(ga, gb)
        streams = {tuple(np.random.default_rng(s).random(4)) for s in a}
        assert len(streams) == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            replication_seeds(0, 0)
        with pytest.raises(ValueError):
            replication_seeds(0, 2, "fancy")


class TestEngine:
    def test_jobs_do_not_change_the_numbers(self):
        """Acceptance: --jobs 4 == --jobs 1 bit for bit, per replication."""
        spec = SMOKE.replace(replications=4)
        serial = measure(spec, jobs=1)
        parallel = measure(spec, jobs=4)
        assert serial.replication_delays == parallel.replication_delays
        assert serial == parallel

    def test_pooled_ci_across_replications(self):
        m = measure(SMOKE.replace(replications=4), jobs=2)
        assert m.num_replications == 4
        reps = np.array(m.replication_delays)
        assert m.mean_delay == pytest.approx(reps.mean())
        assert m.ci is not None and m.ci.num_samples == 4
        assert m.ci.lo <= m.mean_delay <= m.ci.hi

    def test_single_replication_has_no_ci(self):
        m = measure(SMOKE.replace(replications=1))
        assert m.ci is None
        assert m.num_replications == 1

    def test_matches_run_spec_by_hand(self):
        spec = SMOKE.replace(replications=3)
        m = measure(spec, jobs=3)
        by_hand = [
            run_spec(spec, seed).mean_delay
            for seed in replication_seeds(spec.base_seed, 3, spec.seed_policy)
        ]
        assert list(m.replication_delays) == by_hand

    def test_run_replication_returns_record(self):
        out = run_replication(SMOKE, rep=1)
        assert out.record is not None
        assert out.record.num_packets == out.num_packets
        assert out.mean_delay == measure(SMOKE).replication_delays[1]

    def test_measure_many_flattens_and_regroups(self):
        specs = [
            SMOKE.replace(name=f"m{i}", base_seed=i, replications=2)
            for i in range(3)
        ]
        batched = measure_many(specs, jobs=4)
        single = [measure(s) for s in specs]
        assert batched == single

    def test_sequential_policy_matches_legacy_loop(self):
        """The migrated benchmarks' compatibility contract."""
        from repro.core.greedy import GreedyHypercubeScheme

        spec = SMOKE.replace(
            replications=1, seed_policy="sequential", base_seed=42
        )
        m = measure(spec)
        legacy = (
            GreedyHypercubeScheme(spec.d, spec.resolved_lam, spec.p)
            .run(spec.horizon, 42)
            .delay_record()
            .mean_delay(spec.warmup_fraction)
        )
        assert m.mean_delay == legacy

    def test_theory_bounds(self):
        lo, hi = theory_bounds(SMOKE)
        assert 0 < lo < hi < np.inf
        unstable = SMOKE.replace(rho=1.2)
        assert theory_bounds(unstable) == (-np.inf, np.inf)
        unbounded = get_scenario("hypercube-deflection")
        assert theory_bounds(unbounded) == (-np.inf, np.inf)

    def test_metric_pooling_averages_over_reporting_replications(self):
        """A side metric is the mean over the replications that carried
        it — a replication that reported no value for a key (e.g. a
        quantity undefined on its sample) must not drag the average
        toward zero."""
        from repro.runner.engine import _pool_measurement
        from repro.sim.run_spec import ReplicationOutput

        outputs = [
            ReplicationOutput(1.0, 10, (("hops", 4.0), ("rare", 8.0))),
            ReplicationOutput(2.0, 10, (("hops", 6.0),)),
            ReplicationOutput(3.0, 10, ()),
        ]
        m = _pool_measurement(SMOKE, outputs)
        assert dict(m.metrics) == {"hops": 5.0, "rare": 8.0}

    def test_metric_pooling_homogeneous_unchanged(self):
        """When every replication reports every key (the common case),
        pooling is the plain mean across all replications."""
        from repro.runner.engine import _pool_measurement
        from repro.sim.run_spec import ReplicationOutput

        outputs = [
            ReplicationOutput(1.0, 5, (("hops", 2.0),)),
            ReplicationOutput(2.0, 5, (("hops", 4.0),)),
        ]
        m = _pool_measurement(SMOKE, outputs)
        assert dict(m.metrics) == {"hops": 3.0}


class TestResultsStore:
    def test_cache_roundtrip(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = SMOKE.replace(replications=2)
        assert store.load(spec) is None
        first = measure(spec, store=store)
        assert store.contains(spec)
        assert len(store) == 1
        again = measure(spec, store=store)
        assert again == first

    def test_cache_hit_skips_simulation(self, tmp_path, monkeypatch):
        store = ResultsStore(tmp_path)
        spec = SMOKE.replace(replications=2)
        measure(spec, store=store)

        def boom(*a, **k):  # pragma: no cover - must not run
            raise AssertionError("cache miss: engine executed a task")

        monkeypatch.setattr("repro.runner.engine._run_task", boom)
        cached = measure(spec, store=store)
        assert cached.replication_delays is not None

    def test_refresh_recomputes(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = SMOKE.replace(replications=2)
        first = measure(spec, store=store)
        refreshed = measure(spec, store=store, refresh=True)
        assert refreshed == first  # deterministic, but recomputed

    def test_corrupt_cell_is_a_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = SMOKE.replace(replications=2)
        measure(spec, store=store)
        store.path_for(spec).write_text("{not json")
        assert store.load(spec) is None
        assert measure(spec, store=store) is not None

    def test_label_changes_share_a_cell(self, tmp_path):
        store = ResultsStore(tmp_path)
        a = SMOKE.replace(name="label-a", replications=2)
        b = a.replace(name="label-b", description="renamed")
        measure(a, store=store)
        assert store.contains(b)

    def test_growing_replications_reuses_cached_ones(self, tmp_path, monkeypatch):
        """Raising `replications` on a measured spec must simulate only
        the new replications: cells are keyed by (replication_hash, k)."""
        import repro.runner.engine as engine_mod

        store = ResultsStore(tmp_path)
        small = SMOKE.replace(replications=2)
        first = measure(small, store=store)

        executed = []
        real = engine_mod._run_task

        def counting(task):
            executed.append(task)
            return real(task)

        monkeypatch.setattr(engine_mod, "_run_task", counting)
        grown = measure(small.replace(replications=5), store=store)
        # replications 2, 3, 4 only (a "seq"/"batch" task's third slot
        # is its seed tuple — the batched route stacks several seeds
        # into one computation)
        assert sum(len(t[2]) for t in executed) == 3
        # the first two pooled estimates are the cached ones, bit for bit
        assert grown.replication_delays[:2] == first.replication_delays
        # and the pooled result equals a from-scratch computation
        fresh = measure(small.replace(replications=5))
        assert grown == fresh

    def test_replication_cells_survive_renames_and_count_changes(self, tmp_path):
        store = ResultsStore(tmp_path)
        a = SMOKE.replace(name="rep-a", replications=2)
        measure(a, store=store)
        b = a.replace(name="rep-b", description="renamed", replications=6)
        assert a.replication_hash() == b.replication_hash()
        for k in range(2):
            assert store.load_replication(b, k) is not None
        assert store.load_replication(b, 2) is None

    def test_corrupt_replication_cell_is_a_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = SMOKE.replace(replications=2)
        measure(spec, store=store)
        store.replication_path_for(spec, 0).write_text("{torn")
        assert store.load_replication(spec, 0) is None
        # and the engine recomputes through the corruption
        grown = measure(spec.replace(replications=3), store=store)
        assert grown == measure(spec.replace(replications=3))

    def test_refresh_overwrites_replication_cells(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = SMOKE.replace(replications=2)
        measure(spec, store=store)
        mtime = store.replication_path_for(spec, 0).stat().st_mtime_ns
        measure(spec, store=store, refresh=True)
        assert store.replication_path_for(spec, 0).stat().st_mtime_ns > mtime

    def test_replication_cache_preserves_metrics(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = get_scenario("hypercube-twophase").replace(
            d=3, horizon=60.0, replications=2
        )
        direct = measure(spec)
        measure(spec, store=store)
        cached = store.load_replication(spec, 0)
        assert cached.metrics and cached.metrics[0][0] == "mean_hops"
        grown = measure(spec.replace(replications=3), store=store)
        assert grown.metric("mean_hops") == pytest.approx(
            measure(spec.replace(replications=3)).metric("mean_hops")
        )
        assert direct.replication_delays == grown.replication_delays[:2]

    def test_measurement_serialisation_handles_inf_nan(self):
        m = measure(get_scenario("static-greedy-bitrev").replace(d=3))
        again = measurement_from_dict(measurement_to_dict(m))
        assert again.lower_bound == -np.inf and again.upper_bound == np.inf
        assert np.isnan(again.rho) and np.isnan(again.lam)
        assert again.metric("makespan") == m.metric("makespan")


class TestCLI:
    def test_list_scenarios(self, capsys):
        from repro.__main__ import main

        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "butterfly-greedy-mid" in out

    def test_run_and_cache(self, capsys, tmp_path):
        from repro.__main__ import main

        args = [
            "run", "smoke", "--replications", "2", "--jobs", "2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "computed with jobs=2" in first
        assert "per-replication T" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "results cache" in second

    def test_run_unknown_scenario(self):
        from repro.__main__ import main

        with pytest.raises(ConfigurationError):
            main(["run", "no-such-scenario"])
