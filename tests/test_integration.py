"""End-to-end integration tests: the paper's claims under simulation.

Each test here is a miniature version of one EXPERIMENTS.md experiment,
run at parameters small enough for CI but large enough to be
statistically meaningful with fixed seeds.
"""

import numpy as np
import pytest

from repro.core.bounds import (
    antipodal_exact_delay,
    greedy_delay_lower_bound,
    greedy_delay_upper_bound,
    mean_queue_per_node_bound,
    oblivious_delay_lower_bound,
    total_population_bound,
    universal_delay_lower_bound,
)
from repro.core.greedy import GreedyButterflyScheme, GreedyHypercubeScheme
from repro.core.load import lam_for_load
from repro.queueing.productform import ProductFormNetwork
from repro.sim.measurement import PopulationTracker, arc_arrival_counts


class TestProp5ArcRates:
    """Prop 5: every arc carries total flow rho = lam * p."""

    def test_measured_arc_rates_uniform(self):
        scheme = GreedyHypercubeScheme(d=4, lam=1.2, p=0.5)
        horizon = 2000.0
        res = scheme.run(horizon, rng=100, record_arc_log=True)
        counts = arc_arrival_counts(res.arc_log.arc, scheme.cube.num_arcs)
        rates = counts / horizon
        np.testing.assert_allclose(rates, scheme.rho, rtol=0.15)
        assert rates.mean() == pytest.approx(scheme.rho, rel=0.02)

    def test_property_a_external_split(self):
        # first-arc dimension of each packet follows p(1-p)^i
        scheme = GreedyHypercubeScheme(d=4, lam=1.0, p=0.5)
        sample = scheme.workload().generate(3000.0, rng=101)
        diff = sample.origins ^ sample.destinations
        moving = diff != 0
        lowest = diff[moving] & -diff[moving]
        first_dim = np.bitwise_count(lowest - 1)
        for i in range(4):
            frac = np.mean(first_dim == i)
            expected = 0.5 * 0.5**i / (1 - 0.5**4)
            assert frac == pytest.approx(expected, rel=0.05)


class TestProp6Stability:
    """Prop 6: bounded delay for rho < 1; blow-up past saturation."""

    def test_delay_bounded_below_saturation(self):
        for rho in (0.3, 0.9):
            scheme = GreedyHypercubeScheme(d=4, lam=lam_for_load(rho, 0.5), p=0.5)
            t = scheme.measure_delay(horizon=800.0, rng=int(rho * 100))
            assert t <= scheme.delay_upper_bound() * 1.1

    def test_super_saturation_delay_grows_with_horizon(self):
        # rho = 1.2: mean delay must grow linearly with the horizon
        scheme = GreedyHypercubeScheme(d=4, lam=2.4, p=0.5)
        t_short = scheme.run(200.0, rng=1).delay_record().mean_delay(0.5, 0.0)
        t_long = scheme.run(800.0, rng=1).delay_record().mean_delay(0.5, 0.0)
        assert t_long > 2.0 * t_short


class TestProps12And13DelaySandwich:
    """The headline result: dp + p rho/(2(1-rho)) <= T <= dp/(1-rho)."""

    @pytest.mark.parametrize("d,rho", [(3, 0.5), (4, 0.7), (5, 0.8), (6, 0.5)])
    def test_sandwich_uniform_traffic(self, d, rho):
        p = 0.5
        lam = lam_for_load(rho, p)
        scheme = GreedyHypercubeScheme(d=d, lam=lam, p=p)
        t = scheme.measure_delay(horizon=1200.0, rng=d * 17 + int(rho * 10))
        assert greedy_delay_lower_bound(d, lam, p) * 0.97 <= t
        assert t <= greedy_delay_upper_bound(d, lam, p) * 1.03

    @pytest.mark.parametrize("p", [0.25, 0.75])
    def test_sandwich_nonuniform_p(self, p):
        d, rho = 4, 0.6
        lam = lam_for_load(rho, p)
        scheme = GreedyHypercubeScheme(d=d, lam=lam, p=p)
        t = scheme.measure_delay(horizon=1200.0, rng=int(p * 100))
        assert greedy_delay_lower_bound(d, lam, p) * 0.97 <= t
        assert t <= greedy_delay_upper_bound(d, lam, p) * 1.03

    def test_universal_and_oblivious_bounds_hold(self):
        d, rho, p = 4, 0.7, 0.5
        lam = lam_for_load(rho, p)
        t = GreedyHypercubeScheme(d, lam, p).measure_delay(800.0, rng=55)
        assert universal_delay_lower_bound(d, lam, p) <= t
        assert oblivious_delay_lower_bound(d, lam, p) <= t

    def test_delay_scales_linearly_in_d(self):
        # O(d) delay claim: T/d roughly constant at fixed rho
        p, rho = 0.5, 0.6
        lam = lam_for_load(rho, p)
        norm = []
        for d in (3, 6):
            t = GreedyHypercubeScheme(d, lam, p).measure_delay(700.0, rng=d)
            norm.append(t / d)
        assert norm[1] == pytest.approx(norm[0], rel=0.15)


class TestAntipodalExact:
    def test_p1_simulation_matches_closed_form(self):
        # p = 1: disjoint paths; T = d + rho/(2(1-rho)) exactly
        d, lam = 4, 0.7
        scheme = GreedyHypercubeScheme(d=d, lam=lam, p=1.0)
        t = scheme.measure_delay(horizon=2500.0, rng=77)
        assert t == pytest.approx(antipodal_exact_delay(d, lam), rel=0.03)


class TestQueueSizes:
    """§3.3: mean packets per node <= d rho/(1-rho); population bound."""

    def test_population_time_average_below_bound(self):
        scheme = GreedyHypercubeScheme(d=4, lam=1.4, p=0.5)  # rho=0.7
        horizon = 1500.0
        res = scheme.run(horizon, rng=88)
        pt = PopulationTracker.from_intervals(res.sample.times, res.delivery)
        avg = pt.time_average(horizon * 0.25, horizon * 0.9)
        assert avg <= total_population_bound(4, 1.4, 0.5)

    def test_per_node_queue_bound(self):
        d, lam, p = 4, 1.4, 0.5
        scheme = GreedyHypercubeScheme(d=d, lam=lam, p=p)
        horizon = 1500.0
        res = scheme.run(horizon, rng=89)
        pt = PopulationTracker.from_intervals(res.sample.times, res.delivery)
        avg_per_node = pt.time_average(horizon * 0.25, horizon * 0.9) / 16
        assert avg_per_node <= mean_queue_per_node_bound(d, lam, p)

    def test_chernoff_whp_population(self):
        # N(t) <= (1+eps) * d 2^d rho/(1-rho) w.h.p. — check empirically
        d, rho, p = 4, 0.6, 0.5
        scheme = GreedyHypercubeScheme(d=d, lam=lam_for_load(rho, p), p=p)
        horizon = 1500.0
        res = scheme.run(horizon, rng=90)
        pt = PopulationTracker.from_intervals(res.sample.times, res.delivery)
        bound = (1.0 + 1.0) * total_population_bound(d, scheme.lam, p)
        grid = np.linspace(horizon * 0.3, horizon * 0.9, 500)
        exceed = np.mean([pt.at(t) > bound for t in grid])
        assert exceed < 0.01

    def test_ps_product_form_population_prediction(self):
        # the PS network's measured mean population matches the
        # product-form prediction (Prop 12 machinery)
        d, rho, p = 3, 0.6, 0.5
        scheme = GreedyHypercubeScheme(d=d, lam=lam_for_load(rho, p), p=p)
        horizon = 2500.0
        res = scheme.run(horizon, rng=91, discipline="ps")
        pt = PopulationTracker.from_intervals(res.sample.times, res.delivery)
        measured = pt.time_average(horizon * 0.3, horizon * 0.9)
        predicted = ProductFormNetwork(
            np.full(d * 2**d, rho)
        ).mean_population()
        assert measured == pytest.approx(predicted, rel=0.15)


class TestButterflyIntegration:
    """Props 14-17 under simulation."""

    @pytest.mark.parametrize("p", [0.3, 0.5, 0.7])
    def test_delay_sandwich(self, p):
        d, lam = 4, 1.2
        scheme = GreedyButterflyScheme(d=d, lam=lam, p=p)
        assert scheme.stable
        t = scheme.measure_delay(horizon=1000.0, rng=int(p * 1000))
        assert scheme.delay_lower_bound() * 0.97 <= t
        assert t <= scheme.delay_upper_bound() * 1.03

    def test_prop15_arc_rates_by_kind(self):
        d, lam, p = 3, 1.0, 0.3
        scheme = GreedyButterflyScheme(d=d, lam=lam, p=p)
        horizon = 2500.0
        res = scheme.run(horizon, rng=92, record_arc_log=True)
        counts = arc_arrival_counts(res.arc_log.arc, scheme.butterfly.num_arcs)
        rates = counts / horizon
        kinds = np.arange(scheme.butterfly.num_arcs) % 2
        assert rates[kinds == 1].mean() == pytest.approx(lam * p, rel=0.05)
        assert rates[kinds == 0].mean() == pytest.approx(lam * (1 - p), rel=0.05)

    def test_hypercube_vs_butterfly_delay_relation(self):
        # at p=1/2 and the same rho the butterfly averages more hops
        # (d vs d/2), hence larger delay
        rho = 0.6
        hc = GreedyHypercubeScheme(d=4, lam=lam_for_load(rho, 0.5), p=0.5)
        bf = GreedyButterflyScheme(d=4, lam=2 * rho, p=0.5)
        t_hc = hc.measure_delay(600.0, rng=93)
        t_bf = bf.measure_delay(600.0, rng=94)
        assert t_bf > t_hc


class TestSlottedIntegration:
    def test_slotted_delay_below_bound(self):
        from repro.sim.slotted import SlottedGreedyHypercube

        for tau in (0.25, 0.5, 1.0):
            s = SlottedGreedyHypercube(d=4, lam=1.4, p=0.5, tau=tau)
            t = s.measure_delay(horizon=900.0, rng=int(tau * 100))
            assert t <= s.delay_upper_bound() * 1.03

    def test_slotted_close_to_continuous(self):
        # the slotted system's delay is within ~tau of continuous time
        from repro.sim.slotted import SlottedGreedyHypercube

        d, lam, p, tau = 4, 1.2, 0.5, 0.5
        cont = GreedyHypercubeScheme(d, lam, p).measure_delay(1200.0, rng=95)
        slot = SlottedGreedyHypercube(d, lam, p, tau).measure_delay(1200.0, rng=96)
        assert abs(slot - cont) <= tau + 0.5  # tau plus noise allowance
