"""Tests for the ``repro cache`` subcommand and the store maintenance
API (:meth:`ResultsStore.stats` / :meth:`ResultsStore.clear`).

The contract under test: the store only ever counts and deletes its
*own* cells — content-hash-named JSON at the root and
``<hash>.rNNNN.json`` under ``replications/`` — so anything a user
parked in the cache directory survives a ``repro cache clear``.
"""

import json

import pytest

from repro.__main__ import main
from repro.runner import ResultsStore, ScenarioSpec, measure


@pytest.fixture
def populated_store(tmp_path):
    store = ResultsStore(tmp_path)
    spec = ScenarioSpec(name="cache-t", d=3, rho=0.5, horizon=60.0,
                        replications=2)
    measurement = measure(spec, store=store)
    return store, spec, measurement


class TestStoreMaintenance:
    def test_stats_counts_cells(self, populated_store):
        store, _, _ = populated_store
        stats = store.stats()
        assert stats.pooled == 1
        assert stats.replications == 2
        assert stats.total_bytes > 0

    def test_stats_on_missing_root(self, tmp_path):
        stats = ResultsStore(tmp_path / "never-created").stats()
        assert (stats.pooled, stats.replications, stats.total_bytes) == (0, 0, 0)

    def test_clear_removes_cells_and_reports(self, populated_store):
        store, spec, _ = populated_store
        removed = store.clear()
        assert removed.pooled == 1
        assert removed.replications == 2
        assert removed.total_bytes > 0
        assert store.load(spec) is None
        assert store.stats().pooled == 0

    def test_clear_leaves_foreign_files_untouched(self, populated_store):
        store, _, _ = populated_store
        foreign_root = store.root / "notes.md"
        foreign_root.write_text("my lab notes")
        # a JSON that does not match the cell naming scheme is foreign too
        foreign_json = store.root / "summary-2026.json"
        foreign_json.write_text(json.dumps({"keep": True}))
        foreign_rep = store.root / "replications" / "keep.me"
        foreign_rep.write_text("foreign")
        store.clear()
        assert foreign_root.read_text() == "my lab notes"
        assert json.loads(foreign_json.read_text()) == {"keep": True}
        assert foreign_rep.read_text() == "foreign"
        # replications/ survives because it still holds a foreign file
        assert (store.root / "replications").is_dir()

    def test_wide_replication_indices_are_store_cells(self, populated_store):
        """rep >= 10000 pads to five digits; those cells are still the
        store's own (counted and cleared, not treated as foreign)."""
        store, spec, _ = populated_store
        wide = store.replication_path_for(spec, 12345)
        assert wide.name.endswith(".r12345.json")
        wide.write_text("{}")
        assert store.stats().replications == 3
        removed = store.clear()
        assert removed.replications == 3
        assert not wide.exists()

    def test_clear_removes_empty_replications_dir(self, populated_store):
        store, _, _ = populated_store
        store.clear()
        assert not (store.root / "replications").exists()
        assert store.root.is_dir()  # the root itself always survives


class TestCacheCLI:
    def test_info_reports_counts(self, populated_store, capsys):
        store, _, _ = populated_store
        assert main(["cache", "info", "--cache-dir", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "pooled cells" in out and "per-replication cells" in out

    def test_clear_round_trip(self, populated_store, capsys):
        store, spec, _ = populated_store
        (store.root / "keep.txt").write_text("x")
        assert main(["cache", "clear", "--cache-dir", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "cleared 1 pooled and 2 per-replication cells" in out
        assert (store.root / "keep.txt").read_text() == "x"
        assert store.load(spec) is None

    def test_clear_is_idempotent(self, tmp_path, capsys):
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 0 pooled" in capsys.readouterr().out
