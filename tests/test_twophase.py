"""Tests for two-phase Valiant routing (§5 remedy) and the arc-load
analysis of direct greedy routing under adversarial traffic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.schemes.twophase import TwoPhaseScheme, direct_greedy_arc_loads
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import (
    BernoulliFlipLaw,
    PermutationTraffic,
    bit_reversal_permutation,
    transpose_permutation,
)


class TestDirectArcLoads:
    def test_uniform_law_loads_are_rho(self):
        cube = Hypercube(4)
        law = BernoulliFlipLaw(4, 0.5)
        loads = direct_greedy_arc_loads(cube, law, lam=1.0)
        # Prop 5: every arc's flow is lam * p = 0.5 (MC tolerance)
        assert loads.mean() == pytest.approx(0.5, rel=0.05)
        assert loads.max() < 0.7

    def test_bit_reversal_concentrates_flow(self):
        # the classic pathology: max arc load ~ 2^(d/2 - 1) * lam
        # (the middle dimension funnels 2^(d/2) address patterns, halved
        # by the crossing-bit condition)
        d = 6
        cube = Hypercube(d)
        law = PermutationTraffic(d, bit_reversal_permutation(d))
        loads = direct_greedy_arc_loads(cube, law, lam=1.0)
        assert loads.max() >= 2 ** (d // 2 - 1)  # 4x concentration at d=6
        # while the *average* is only the mean path length over arcs
        assert loads.mean() < 1.0

    def test_transpose_concentrates_flow(self):
        d = 6
        cube = Hypercube(d)
        law = PermutationTraffic(d, transpose_permutation(d))
        loads = direct_greedy_arc_loads(cube, law, lam=1.0)
        assert loads.max() >= 2 ** (d // 2 - 1)

    def test_concentration_grows_with_d(self):
        maxima = []
        for d in (4, 6, 8):
            cube = Hypercube(d)
            law = PermutationTraffic(d, bit_reversal_permutation(d))
            maxima.append(direct_greedy_arc_loads(cube, law, lam=1.0).max())
        assert maxima[0] < maxima[1] < maxima[2]

    def test_exact_for_permutation(self):
        # deterministic computation: repeated calls identical
        cube = Hypercube(4)
        law = PermutationTraffic(4, bit_reversal_permutation(4))
        a = direct_greedy_arc_loads(cube, law, lam=2.0)
        b = direct_greedy_arc_loads(cube, law, lam=2.0)
        np.testing.assert_array_equal(a, b)


class TestTwoPhaseScheme:
    def test_stability_limit_independent_of_law(self):
        law = PermutationTraffic(4, bit_reversal_permutation(4))
        s = TwoPhaseScheme(d=4, lam=0.9, law=law)
        assert s.stability_limit == 1.0
        assert s.stable

    def test_paths_reach_destinations(self):
        law = PermutationTraffic(3, bit_reversal_permutation(3))
        s = TwoPhaseScheme(d=3, lam=0.5, law=law)
        res = s.run(60.0, rng=1)
        # hop counts = H(x,w) + H(w,z)
        h1 = np.bitwise_count(res.sample.origins ^ res.intermediates)
        h2 = np.bitwise_count(res.intermediates ^ res.sample.destinations)
        np.testing.assert_array_equal(res.result.hops, h1 + h2)
        assert np.all(res.result.delivery >= res.sample.times + res.result.hops - 1e-9)

    def test_mean_hops_about_d(self):
        law = BernoulliFlipLaw(4, 0.5)
        s = TwoPhaseScheme(d=4, lam=0.4, law=law)
        res = s.run(300.0, rng=2)
        # d/2 (to uniform intermediate) + d/2 (uniform to dest) = d
        assert res.mean_hops() == pytest.approx(4.0, rel=0.05)

    def test_two_phase_survives_bit_reversal_where_direct_chokes(self):
        d, lam = 6, 0.4
        cube = Hypercube(d)
        law = PermutationTraffic(d, bit_reversal_permutation(d))
        # direct greedy: max arc load lam * 2^(d/2) = 3.2 >> 1 (unstable)
        loads = direct_greedy_arc_loads(cube, law, lam)
        assert loads.max() > 1.0
        # two-phase at the same lam: stable, sane delay
        s = TwoPhaseScheme(d=d, lam=lam, law=law)
        t = s.measure_delay(horizon=120.0, rng=3)
        # delay near the uncontended two-phase path time (~d hops)
        assert t < 3.0 * d

    def test_reproducible(self):
        law = BernoulliFlipLaw(3, 0.5)
        s = TwoPhaseScheme(d=3, lam=0.5, law=law)
        a = s.run(50.0, rng=7)
        b = s.run(50.0, rng=7)
        np.testing.assert_allclose(a.result.delivery, b.result.delivery)

    def test_rejects_bad_params(self):
        law = BernoulliFlipLaw(3, 0.5)
        with pytest.raises(ConfigurationError):
            TwoPhaseScheme(d=3, lam=0.0, law=law)
        with pytest.raises(ConfigurationError):
            TwoPhaseScheme(d=4, lam=0.5, law=law)  # dimension mismatch
