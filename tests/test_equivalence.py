"""Cross-engine and physical-vs-network-Q equivalence (integration).

The strongest correctness evidence in the suite: independent
implementations must produce the *same sample paths*:

* feed-forward (vectorised Lindley) vs event-driven (heap), FIFO & PS;
* the physical hypercube vs network Q fed with the same packets
  (§3.1's equivalence, Lemma 4 coupling).
"""

import numpy as np
import pytest

from repro.core.qnetwork import HypercubeQSpec, hypercube_external_from_sample
from repro.sim.eventsim import (
    hypercube_packet_paths,
    simulate_paths_event_driven,
)
from repro.sim.feedforward import (
    simulate_hypercube_greedy,
    simulate_markovian,
)
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import HypercubeWorkload


def _workload_sample(d, lam, p, horizon, seed):
    cube = Hypercube(d)
    wl = HypercubeWorkload(cube, lam, BernoulliFlipLaw(d, p))
    return cube, wl.generate(horizon, rng=seed)


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fifo_sample_paths_identical(self, seed):
        cube, sample = _workload_sample(4, 1.4, 0.5, 120.0, seed)
        ff = simulate_hypercube_greedy(cube, sample)
        ev = simulate_paths_event_driven(
            cube.num_arcs, sample.times, hypercube_packet_paths(cube, sample)
        )
        np.testing.assert_allclose(ff.delivery, ev.delivery, atol=1e-9)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_ps_sample_paths_identical(self, seed):
        cube, sample = _workload_sample(3, 1.2, 0.5, 80.0, seed)
        ff = simulate_hypercube_greedy(cube, sample, discipline="ps")
        ev = simulate_paths_event_driven(
            cube.num_arcs,
            sample.times,
            hypercube_packet_paths(cube, sample),
            discipline="ps",
        )
        np.testing.assert_allclose(ff.delivery, ev.delivery, atol=1e-6)

    def test_fifo_with_slotted_ties(self):
        # heavy tie traffic: all births at integer slots
        cube = Hypercube(3)
        from repro.traffic.workload import SlottedHypercubeWorkload

        wl = SlottedHypercubeWorkload(
            cube, 1.2, BernoulliFlipLaw(3, 0.5), tau=0.5
        )
        sample = wl.generate(60.0, rng=9)
        ff = simulate_hypercube_greedy(cube, sample)
        ev = simulate_paths_event_driven(
            cube.num_arcs, sample.times, hypercube_packet_paths(cube, sample)
        )
        np.testing.assert_allclose(ff.delivery, ev.delivery, atol=1e-9)


class TestBatchedEventMatchesFeedForward:
    """The replication-batched calendar against the level sweep.

    Stacking R replications into one arc-offset calendar must not move
    any delivery epoch: each replication agrees with the independent
    feed-forward sweep to 1e-9 under both disciplines (the engine
    contract the batched route is validated against).
    """

    @pytest.mark.parametrize("discipline", ["fifo", "ps"])
    def test_batched_calendar_matches_level_sweep(self, discipline):
        from repro.sim.eventsim import simulate_paths_event_driven_batch

        cube = Hypercube(4)
        samples = [
            _workload_sample(4, 1.4, 0.5, 60.0, seed)[1]
            for seed in (21, 22, 23, 24)
        ]
        deliveries = simulate_paths_event_driven_batch(
            cube.num_arcs,
            [s.times for s in samples],
            [hypercube_packet_paths(cube, s) for s in samples],
            discipline=discipline,
        )
        for s, delivery in zip(samples, deliveries):
            ff = simulate_hypercube_greedy(cube, s, discipline=discipline)
            np.testing.assert_allclose(ff.delivery, delivery, atol=1e-9)


class TestPhysicalVsNetworkQ:
    """§3.1: the loaded hypercube *is* network Q.

    Feeding Q the physical packets' entry arcs and replaying the
    physical packets' actual dimension choices as 'routing decisions'
    must reproduce the physical delivery times exactly.
    """

    def _decisions_from_physical(self, cube, sample, res):
        """Extract per-arc decision sequences from the physical run."""
        log = res.arc_log
        n_nodes = cube.num_nodes
        decisions = {}
        # per packet, the sequence of arcs crossed, in level order
        by_pid_arcs = {}
        by_pid_tout = {}
        order = np.lexsort((log.t_in, log.pid))
        for idx in order:
            pid = int(log.pid[idx])
            by_pid_arcs.setdefault(pid, []).append(int(log.arc[idx]))
        # for each arc, customers in service order; decision = next arc
        from collections import defaultdict

        served = defaultdict(list)  # arc -> [(t_out, pid, next_arc)]
        for pid, arcs in by_pid_arcs.items():
            for k, arc in enumerate(arcs):
                nxt = arcs[k + 1] if k + 1 < len(arcs) else -1
                served[arc].append((pid, nxt))
        # service order at each arc == (t_in, pid) order
        for arc in served:
            m = log.arc == arc
            srv_order = np.lexsort((log.pid[m], log.t_in[m]))
            pid_sorted = log.pid[m][srv_order]
            nxt_of = dict(served[arc])
            decisions[int(arc)] = np.array(
                [nxt_of[int(q)] for q in pid_sorted], dtype=np.int64
            )
        return decisions

    def test_replayed_q_matches_physical(self):
        cube, sample = _workload_sample(3, 1.0, 0.5, 60.0, 11)
        res = simulate_hypercube_greedy(cube, sample, record_arc_log=True)
        spec = HypercubeQSpec(cube, 0.5)
        times, arcs, pids = hypercube_external_from_sample(cube, sample)
        decisions = self._decisions_from_physical(cube, sample, res)
        qres = simulate_markovian(spec, times, arcs, decisions=decisions)
        np.testing.assert_allclose(
            qres.exit_times, res.delivery[pids], atol=1e-9
        )

    def test_q_statistics_match_physical(self):
        # Without coupling: network-Q with Lemma-4 random routing gives
        # the same delay distribution as the physical cube (law level).
        cube, sample = _workload_sample(4, 1.4, 0.5, 600.0, 13)
        res = simulate_hypercube_greedy(cube, sample)
        phys_delays = res.delays()
        moving = (sample.origins ^ sample.destinations) != 0
        phys_mean = phys_delays[moving].mean()

        spec = HypercubeQSpec(cube, 0.5)
        times, arcs = spec.sample_external_arrivals(1.4, 600.0, rng=14)
        qres = simulate_markovian(spec, times, arcs, rng=15)
        q_mean = (qres.exit_times - times).mean()
        assert q_mean == pytest.approx(phys_mean, rel=0.1)
