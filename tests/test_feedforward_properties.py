"""Property-based tests on simulator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.feedforward import serve_level, simulate_hypercube_greedy
from repro.sim.lindley import fifo_departure_times
from repro.topology.hypercube import Hypercube
from repro.traffic.workload import TrafficSample


@st.composite
def level_instance(draw):
    """Random (arcs, times, pids) for one level."""
    n = draw(st.integers(min_value=1, max_value=60))
    arcs = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=5), min_size=n, max_size=n
            )
        ),
        dtype=np.int64,
    )
    times = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=30.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    pids = np.arange(n, dtype=np.int64)
    return arcs, times, pids


@settings(max_examples=150, deadline=None)
@given(inst=level_instance())
def test_property_serve_level_matches_per_arc_lindley(inst):
    """serve_level == independent Lindley recursions per arc."""
    arcs, times, pids = inst
    dep, _ = serve_level(arcs, times, pids)
    for arc in np.unique(arcs):
        m = arcs == arc
        order = np.lexsort((pids[m], times[m]))
        expected = fifo_departure_times(times[m][order])
        np.testing.assert_allclose(np.sort(dep[m]), expected, atol=1e-9)


@settings(max_examples=150, deadline=None)
@given(inst=level_instance())
def test_property_serve_level_departure_spacing(inst):
    """Per arc, departures are spaced >= 1 (unit service, one server)."""
    arcs, times, pids = inst
    dep, _ = serve_level(arcs, times, pids)
    for arc in np.unique(arcs):
        d = np.sort(dep[arcs == arc])
        assert np.all(np.diff(d) >= 1.0 - 1e-9)
        assert np.all(dep[arcs == arc] >= times[arcs == arc] + 1.0 - 1e-9)


@settings(max_examples=150, deadline=None)
@given(inst=level_instance())
def test_property_serve_level_fifo_order(inst):
    """Within an arc, (time, pid) order equals departure order."""
    arcs, times, pids = inst
    dep, _ = serve_level(arcs, times, pids)
    for arc in np.unique(arcs):
        m = arcs == arc
        order = np.lexsort((pids[m], times[m]))
        assert np.all(np.diff(dep[m][order]) > 0)


@settings(max_examples=150, deadline=None)
@given(inst=level_instance())
def test_property_ps_dominates_fifo_per_level(inst):
    """Lemma 7 at level granularity: FIFO departures <= PS departures."""
    arcs, times, pids = inst
    dep_fifo, _ = serve_level(arcs, times, pids, discipline="fifo")
    dep_ps, _ = serve_level(arcs, times, pids, discipline="ps")
    assert np.all(dep_fifo <= dep_ps + 1e-9)


@st.composite
def cube_traffic(draw):
    d = draw(st.integers(min_value=1, max_value=4))
    cube = Hypercube(d)
    n = draw(st.integers(min_value=0, max_value=40))
    times = np.sort(
        np.array(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=20.0),
                    min_size=n,
                    max_size=n,
                )
            )
        )
    )
    origins = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=cube.num_nodes - 1),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    dests = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=cube.num_nodes - 1),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    return cube, TrafficSample(times, origins, dests, 25.0)


@settings(max_examples=100, deadline=None)
@given(ct=cube_traffic())
def test_property_hypercube_sim_invariants(ct):
    """Every packet's delay >= its hop count; hops == Hamming distance;
    total hops conserved in the arc log."""
    cube, sample = ct
    res = simulate_hypercube_greedy(cube, sample, record_arc_log=True)
    expected_hops = np.bitwise_count(sample.origins ^ sample.destinations)
    np.testing.assert_array_equal(res.hops, expected_hops)
    assert np.all(res.delivery - sample.times >= res.hops - 1e-9)
    assert res.arc_log.num_hops == int(expected_hops.sum())


@settings(max_examples=60, deadline=None)
@given(ct=cube_traffic(), data=st.data())
def test_property_translation_invariance(ct, data):
    """§1.1: renaming every node ``x -> x ^ y*`` leaves all delays
    unchanged (the whole system is XOR-translation symmetric)."""
    cube, sample = ct
    y_star = data.draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
    base = simulate_hypercube_greedy(cube, sample)
    translated = TrafficSample(
        sample.times, sample.origins ^ y_star, sample.destinations ^ y_star, 25.0
    )
    moved = simulate_hypercube_greedy(cube, translated)
    np.testing.assert_allclose(moved.delivery, base.delivery, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(ct=cube_traffic(), data=st.data())
def test_property_time_shift_invariance(ct, data):
    """Shifting all births by a constant shifts all deliveries by it."""
    cube, sample = ct
    tau = data.draw(st.floats(min_value=0.0, max_value=50.0))
    base = simulate_hypercube_greedy(cube, sample)
    shifted = TrafficSample(
        sample.times + tau, sample.origins, sample.destinations, 25.0 + tau
    )
    moved = simulate_hypercube_greedy(cube, shifted)
    np.testing.assert_allclose(moved.delivery, base.delivery + tau, atol=1e-7)


@settings(max_examples=40, deadline=None)
@given(ct=cube_traffic())
def test_property_temporal_separation(ct):
    """Packet groups separated by more than the worst-case drain time
    do not interact: joint simulation == separate simulations."""
    cube, sample = ct
    n = sample.num_packets
    if n == 0:
        return
    base = simulate_hypercube_greedy(cube, sample)
    # replay the same group far in the future (gap >> n*d drain bound)
    gap = sample.times[-1] + (n + 1) * cube.d + 10.0
    times2 = np.concatenate([sample.times, sample.times + gap])
    orig2 = np.concatenate([sample.origins, sample.origins])
    dest2 = np.concatenate([sample.destinations, sample.destinations])
    joint = simulate_hypercube_greedy(
        cube, TrafficSample(times2, orig2, dest2, 2 * gap + 25.0)
    )
    np.testing.assert_allclose(joint.delivery[:n], base.delivery, atol=1e-9)
    np.testing.assert_allclose(joint.delivery[n:], base.delivery + gap, atol=1e-7)
