"""Property-based tests on simulator invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.feedforward import serve_level, simulate_hypercube_greedy
from repro.sim.lindley import fifo_departure_times
from repro.topology.hypercube import Hypercube
from repro.traffic.workload import TrafficSample


@st.composite
def level_instance(draw):
    """Random (arcs, times, pids) for one level."""
    n = draw(st.integers(min_value=1, max_value=60))
    arcs = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=5), min_size=n, max_size=n
            )
        ),
        dtype=np.int64,
    )
    times = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=30.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    pids = np.arange(n, dtype=np.int64)
    return arcs, times, pids


@settings(max_examples=150, deadline=None)
@given(inst=level_instance())
def test_property_serve_level_matches_per_arc_lindley(inst):
    """serve_level == independent Lindley recursions per arc."""
    arcs, times, pids = inst
    dep, _ = serve_level(arcs, times, pids)
    for arc in np.unique(arcs):
        m = arcs == arc
        order = np.lexsort((pids[m], times[m]))
        expected = fifo_departure_times(times[m][order])
        np.testing.assert_allclose(np.sort(dep[m]), expected, atol=1e-9)


@settings(max_examples=150, deadline=None)
@given(inst=level_instance())
def test_property_serve_level_departure_spacing(inst):
    """Per arc, departures are spaced >= 1 (unit service, one server)."""
    arcs, times, pids = inst
    dep, _ = serve_level(arcs, times, pids)
    for arc in np.unique(arcs):
        d = np.sort(dep[arcs == arc])
        assert np.all(np.diff(d) >= 1.0 - 1e-9)
        assert np.all(dep[arcs == arc] >= times[arcs == arc] + 1.0 - 1e-9)


@settings(max_examples=150, deadline=None)
@given(inst=level_instance())
def test_property_serve_level_fifo_order(inst):
    """Within an arc, (time, pid) order equals departure order."""
    arcs, times, pids = inst
    dep, _ = serve_level(arcs, times, pids)
    for arc in np.unique(arcs):
        m = arcs == arc
        order = np.lexsort((pids[m], times[m]))
        assert np.all(np.diff(dep[m][order]) > 0)


@settings(max_examples=150, deadline=None)
@given(inst=level_instance())
def test_property_ps_dominates_fifo_per_level(inst):
    """Lemma 7 at level granularity: FIFO departures <= PS departures."""
    arcs, times, pids = inst
    dep_fifo, _ = serve_level(arcs, times, pids, discipline="fifo")
    dep_ps, _ = serve_level(arcs, times, pids, discipline="ps")
    assert np.all(dep_fifo <= dep_ps + 1e-9)


# Birth times are drawn on the dyadic grid 2^-6 so that the translated
# inputs built by the invariance tests below (times + tau, times + gap)
# are *exactly representable* in float64.  With arbitrary floats the
# translated sample can differ from the original: e.g. an eps-scale
# offset between two births is absorbed when a large shift is added
# (171.0 + 2.2e-16 == 171.0), which collapses distinct arrival epochs
# into a tie and legitimately flips the engine's deterministic
# (time, pid) FIFO tie-break — the joint simulation is then run on
# genuinely different inputs, not evidence of an engine bug (this was
# the discovered falsifying example of test_property_temporal_separation).
# On the grid, every sum stays exact and the properties are exact
# statements about the engine.
TIME_GRID = 64.0


def _grid_times(draw, n: int, max_value: float) -> np.ndarray:
    raw = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=max_value),
            min_size=n,
            max_size=n,
        )
    )
    return np.round(np.array(raw) * TIME_GRID) / TIME_GRID


@st.composite
def cube_traffic(draw):
    d = draw(st.integers(min_value=1, max_value=4))
    cube = Hypercube(d)
    n = draw(st.integers(min_value=0, max_value=40))
    times = np.sort(_grid_times(draw, n, 20.0))
    origins = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=cube.num_nodes - 1),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    dests = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=cube.num_nodes - 1),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    return cube, TrafficSample(times, origins, dests, 25.0)


@settings(max_examples=100, deadline=None)
@given(ct=cube_traffic())
def test_property_hypercube_sim_invariants(ct):
    """Every packet's delay >= its hop count; hops == Hamming distance;
    total hops conserved in the arc log."""
    cube, sample = ct
    res = simulate_hypercube_greedy(cube, sample, record_arc_log=True)
    expected_hops = np.bitwise_count(sample.origins ^ sample.destinations)
    np.testing.assert_array_equal(res.hops, expected_hops)
    assert np.all(res.delivery - sample.times >= res.hops - 1e-9)
    assert res.arc_log.num_hops == int(expected_hops.sum())


@settings(max_examples=60, deadline=None)
@given(ct=cube_traffic(), data=st.data())
def test_property_translation_invariance(ct, data):
    """§1.1: renaming every node ``x -> x ^ y*`` leaves all delays
    unchanged (the whole system is XOR-translation symmetric)."""
    cube, sample = ct
    y_star = data.draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
    base = simulate_hypercube_greedy(cube, sample)
    translated = TrafficSample(
        sample.times, sample.origins ^ y_star, sample.destinations ^ y_star, 25.0
    )
    moved = simulate_hypercube_greedy(cube, translated)
    np.testing.assert_allclose(moved.delivery, base.delivery, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(ct=cube_traffic(), data=st.data())
def test_property_time_shift_invariance(ct, data):
    """Shifting all births by a constant shifts all deliveries by it.

    The shift is drawn on the same dyadic grid as the births, so
    ``times + tau`` is exact and the assertion can be exact too.
    """
    cube, sample = ct
    tau = data.draw(st.floats(min_value=0.0, max_value=50.0))
    tau = round(tau * TIME_GRID) / TIME_GRID
    base = simulate_hypercube_greedy(cube, sample)
    shifted = TrafficSample(
        sample.times + tau, sample.origins, sample.destinations, 25.0 + tau
    )
    moved = simulate_hypercube_greedy(cube, shifted)
    np.testing.assert_array_equal(moved.delivery, base.delivery + tau)


@settings(max_examples=40, deadline=None)
@given(ct=cube_traffic())
def test_property_temporal_separation(ct):
    """Packet groups separated by more than the worst-case drain time
    do not interact: joint simulation == separate simulations."""
    cube, sample = ct
    n = sample.num_packets
    if n == 0:
        return
    base = simulate_hypercube_greedy(cube, sample)
    # replay the same group far in the future (gap >> n*d drain bound)
    gap = sample.times[-1] + (n + 1) * cube.d + 10.0
    times2 = np.concatenate([sample.times, sample.times + gap])
    orig2 = np.concatenate([sample.origins, sample.origins])
    dest2 = np.concatenate([sample.destinations, sample.destinations])
    joint = simulate_hypercube_greedy(
        cube, TrafficSample(times2, orig2, dest2, 2 * gap + 25.0)
    )
    # On the dyadic grid every arithmetic step (gap construction, the
    # shifted births, the unit-service Lindley recursions) is exact, so
    # the separation property holds with equality, not a tolerance.
    np.testing.assert_array_equal(joint.delivery[:n], base.delivery)
    np.testing.assert_array_equal(joint.delivery[n:], base.delivery + gap)


def test_temporal_separation_eps_offset_regression():
    """The discovered falsifying example, pinned down deterministically.

    Two packets contend for node 4's dim-3 arc: packet A (0 -> 12) born
    an offset after t=0, packet B (4 -> 12) born at t=1.  When the
    offset survives the shift (dyadic 1/64), the joint run reproduces
    the separate run exactly.  When the offset is absorbed by float
    rounding (eps added to a large shift), the shifted group presents
    *different inputs* — a genuine tie — and the engine resolves it by
    packet id, by design; the original property test failure was this
    input collapse, not an engine defect.
    """
    cube = Hypercube(4)
    for offset in (1.0 / 64.0, np.finfo(float).eps):
        times = np.array([offset, 1.0])
        origins = np.array([0, 4])
        dests = np.array([12, 12])
        sample = TrafficSample(times, origins, dests, 25.0)
        base = simulate_hypercube_greedy(cube, sample)
        gap = 171.0
        joint = simulate_hypercube_greedy(
            cube,
            TrafficSample(
                np.concatenate([times, times + gap]),
                np.concatenate([origins, origins]),
                np.concatenate([dests, dests]),
                2 * gap + 25.0,
            ),
        )
        np.testing.assert_array_equal(joint.delivery[:2], base.delivery)
        if offset == 1.0 / 64.0:
            # exactly representable after the shift: groups identical
            np.testing.assert_array_equal(joint.delivery[2:], base.delivery + gap)
        else:
            # eps is absorbed: both packets reach the shared arc at the
            # same (representable) instant and the lower pid goes first,
            # so the delivery *multiset* shifts but the assignment swaps.
            assert times[0] + gap == gap  # the collapse itself
            np.testing.assert_array_equal(
                np.sort(joint.delivery[2:]), np.sort(base.delivery + gap)
            )
            assert joint.delivery[2] < joint.delivery[3]
