"""Tests for the capability-declaring traffic-plugin API and registry.

Covers the registry (decorator registration, aliases, entry-point-style
runtime registration), the statistical conformance contract every
registered traffic plugin must honor on at least two networks
(empirical mask frequencies vs. ``mask_pmf()`` at a fixed seed,
flip-probability and mean-distance closed forms, plugin-specific
destination laws), the bit-identity of ``sample_workload_batch``
against per-replication ``sample_workload``, the end-to-end batched
engine path under every law, the alias-normalisation cache guarantee
(including the legacy ``extra={"law": ...}`` spelling), the new
scenario catalog entries, and a grep-style guard that no traffic
dispatch survives outside ``src/repro/traffic/``.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import as_generator, replication_seeds
from repro.runner import ScenarioSpec, get_scenario, measure
from repro.sim.run_spec import run_spec
from repro.traffic import (
    TrafficPlugin,
    available_traffics,
    get_traffic,
    iter_traffics,
    register_traffic,
    unregister_traffic,
)

#: the operating point of the conformance suite: small, even d (the
#: transpose law needs it), rate given directly so non-paper laws do
#: not ride the uniform load law
_CONF = dict(scheme="greedy", d=4, lam=0.3, horizon=500.0, replications=1)

#: networks a law is probed on, in preference order
_CANDIDATE_NETWORKS = ("hypercube", "butterfly", "ring", "torus")


def conf_spec(traffic: str, network: str, **overrides) -> ScenarioSpec:
    params = dict(_CONF, **overrides)
    return ScenarioSpec(
        name=f"conf-{traffic}-{network}",
        network=network,
        traffic=traffic,
        **params,
    )


def _supported_networks(plugin) -> list:
    nets = []
    for network in _CANDIDATE_NETWORKS:
        spec = ScenarioSpec(
            name="probe", network=network, d=4, lam=0.3, horizon=10.0
        )
        if plugin.supports(spec.replace(name="probe")) is None:
            nets.append(network)
    return nets


def _conformance_cells():
    """(plugin name, network) pairs: every registered law on (at
    least) its first two supported networks — plus the ring where the
    law runs there, so the node-addressed branch is probed too."""
    cells = []
    for plugin in iter_traffics():
        nets = _supported_networks(plugin)
        assert len(nets) >= 2, (
            f"traffic {plugin.name!r} must run on at least two built-in "
            f"networks, supports only {nets}"
        )
        probed = nets[:2] + [n for n in nets[2:] if n == "ring"]
        cells.extend((plugin.name, network) for network in probed)
    return cells


class TestRegistry:
    def test_builtins_registered(self):
        names = available_traffics()
        for expected in ("uniform", "bitrev", "transpose", "bitcomp",
                         "hotspot", "bursty"):
            assert expected in names

    def test_aliases_resolve(self):
        assert get_traffic("bernoulli").name == "uniform"
        assert get_traffic("eq1").name == "uniform"
        assert get_traffic("bit-reversal").name == "bitrev"
        assert get_traffic("hot-spot").name == "hotspot"

    def test_unknown_traffic_enumerates(self):
        with pytest.raises(ConfigurationError, match="uniform"):
            get_traffic("zipfian")

    def test_duplicate_name_rejected(self):
        class Impostor(TrafficPlugin):
            name = "uniform"

        with pytest.raises(ConfigurationError, match="already registered"):
            register_traffic(Impostor)

    def test_alias_theft_rejected(self):
        class Thief(TrafficPlugin):
            name = "thief"
            aliases = ("bernoulli",)  # owned by uniform

        with pytest.raises(ConfigurationError, match="collides"):
            register_traffic(Thief)
        assert "thief" not in available_traffics()

    def test_unnamed_plugin_rejected(self):
        class Nameless(TrafficPlugin):
            pass

        with pytest.raises(ConfigurationError, match="name"):
            register_traffic(Nameless)

    def test_non_plugin_rejected(self):
        with pytest.raises(ConfigurationError, match="protocol"):
            register_traffic(object())  # type: ignore[arg-type]


class TestSpecNormalisation:
    """Aliases (and the legacy law spelling) normalise before
    content-hashing, so every spelling hits one cache cell."""

    def test_alias_round_trip(self):
        via_alias = conf_spec("bernoulli", "hypercube")
        canonical = conf_spec("uniform", "hypercube")
        assert via_alias.traffic == "uniform"
        assert via_alias.content_hash() == canonical.content_hash()
        assert via_alias.replication_hash() == canonical.replication_hash()
        again = ScenarioSpec.from_dict(via_alias.to_dict())
        assert again.traffic == "uniform"
        assert again == canonical.replace(name="conf-bernoulli-hypercube")

    def test_legacy_law_folds_into_traffic(self):
        legacy = ScenarioSpec(name="x", d=6, lam=0.4, extra={"law": "bitrev"})
        modern = ScenarioSpec(name="x", d=6, lam=0.4, traffic="bitrev")
        assert legacy.traffic == "bitrev"
        assert legacy.extra == ()
        assert legacy.content_hash() == modern.content_hash()
        bern = ScenarioSpec(name="x", d=6, lam=0.4, extra={"law": "bernoulli"})
        assert bern.traffic == "uniform"

    def test_legacy_law_conflicts_are_rejected(self):
        with pytest.raises(ConfigurationError, match="contradicts"):
            ScenarioSpec(name="x", d=6, lam=0.4, traffic="hotspot",
                         extra={"law": "bitrev"})
        with pytest.raises(ConfigurationError, match="bernoulli"):
            ScenarioSpec(name="x", d=6, lam=0.4, extra={"law": "zipf"})

    def test_alias_shares_cache_cell(self, tmp_path):
        from repro.runner import ResultsStore

        store = ResultsStore(tmp_path)
        spec = conf_spec("bernoulli", "hypercube",
                         horizon=60.0, replications=2)
        m = measure(spec, store=store)
        cached = store.load(
            conf_spec("uniform", "hypercube", horizon=60.0, replications=2)
        )
        assert cached is not None
        assert cached.mean_delay == m.mean_delay

    def test_unknown_traffic_in_spec_enumerates(self):
        with pytest.raises(ConfigurationError, match="registered traffic"):
            ScenarioSpec(name="x", rho=0.5, traffic="zipfian")


class TestAdmissibility:
    def test_bit_laws_rejected_on_node_addressed_networks(self):
        for traffic in ("bitrev", "transpose", "bitcomp"):
            with pytest.raises(ConfigurationError, match="bit-addressed"):
                conf_spec(traffic, "ring")

    def test_transpose_needs_even_d(self):
        with pytest.raises(ConfigurationError, match="even"):
            conf_spec("transpose", "hypercube", d=5)

    def test_hotspot_range_rules(self):
        with pytest.raises(ConfigurationError, match="beta"):
            conf_spec("hotspot", "hypercube", extra={"beta": 1.5})
        with pytest.raises(ConfigurationError, match="out of range"):
            conf_spec("hotspot", "hypercube", extra={"hot": 1 << 10})

    def test_bursty_knob_rules(self):
        with pytest.raises(ConfigurationError, match="burst"):
            conf_spec("bursty", "hypercube", extra={"burst": 0.5})
        with pytest.raises(ConfigurationError, match="duty"):
            conf_spec("bursty", "hypercube",
                      extra={"mode": "onoff", "duty": 0.0})
        with pytest.raises(ConfigurationError, match="mode"):
            conf_spec("bursty", "hypercube", extra={"mode": "fractal"})

    def test_hotspot_law_on_node_addressed_network(self):
        """The node-addressed hot-spot law exposes num_nodes and raises
        a clear error on .d (there is no d-bit structure to report)."""
        spec = conf_spec("hotspot", "ring")
        law = spec.traffic_plugin.destination_law(spec, spec.network_plugin)
        assert law.num_nodes == 16
        with pytest.raises(AttributeError, match="num_nodes"):
            _ = law.d
        # on a bit-addressed network .d is the address width as before
        cube_spec = conf_spec("hotspot", "hypercube")
        cube_law = cube_spec.traffic_plugin.destination_law(
            cube_spec, cube_spec.network_plugin
        )
        assert cube_law.d == 4 and cube_law.num_nodes == 16

    def test_uniform_only_schemes_reject_other_laws(self):
        for scheme in ("slotted", "deflection", "pipelined_batch"):
            with pytest.raises(ConfigurationError, match="traffic"):
                ScenarioSpec(name="x", scheme=scheme, d=4, rho=0.5,
                             traffic="hotspot")

    def test_traffic_options_are_typed_and_enumerated(self):
        with pytest.raises(ConfigurationError, match="float"):
            conf_spec("hotspot", "hypercube", extra={"beta": "lots"})
        # unknown options enumerate the traffic schema too
        with pytest.raises(ConfigurationError, match="beta"):
            conf_spec("hotspot", "hypercube", extra={"temperature": 3.0})


@pytest.mark.parametrize(
    "traffic,network", _conformance_cells(), ids=lambda v: str(v)
)
class TestConformance:
    """Statistical conformance of every registered law on (at least)
    two networks, at a fixed seed."""

    def _sample(self, spec):
        workload = spec.network_plugin.build_workload(spec)
        return workload.generate(spec.horizon, as_generator(20240731))

    def test_sample_shape_and_ranges(self, traffic, network):
        spec = conf_spec(traffic, network)
        net = spec.network_plugin
        sample = self._sample(spec)
        assert sample.num_packets > 200
        assert np.all(np.diff(sample.times) >= 0)
        assert sample.times[0] >= 0 and sample.times[-1] < spec.horizon
        assert np.all(sample.origins >= 0)
        assert np.all(sample.origins < net.num_sources(spec))
        bits = net.address_bits(spec)
        space = (1 << bits) if bits is not None else net.num_sources(spec)
        assert np.all(sample.destinations >= 0)
        assert np.all(sample.destinations < space)
        # long-run intensity matches lam * num_sources for every law
        # (bursty included: the modulation preserves the mean)
        expected = spec.resolved_lam * net.num_sources(spec) * spec.horizon
        assert sample.num_packets == pytest.approx(expected, rel=0.25)

    def test_empirical_masks_match_mask_pmf(self, traffic, network):
        spec = conf_spec(traffic, network)
        plugin = spec.traffic_plugin
        pmf = plugin.mask_pmf(spec)
        bits = spec.network_plugin.address_bits(spec)
        if pmf is None:
            if bits is not None and traffic in ("bitrev", "transpose"):
                return  # permutations are checked exactly below
            pytest.skip("law declares no mask closed form here")
        assert pmf.shape == (1 << bits,)
        assert pmf.sum() == pytest.approx(1.0)
        sample = self._sample(spec)
        masks = np.asarray(sample.origins) ^ np.asarray(sample.destinations)
        freq = np.bincount(masks, minlength=1 << bits) / sample.num_packets
        # fixed seed: deterministic, so the tolerance cannot flake
        assert float(np.abs(freq - pmf).sum()) < 0.12  # total variation
        q = plugin.flip_probabilities(spec)
        assert q is not None
        bit_freq = ((masks[:, None] >> np.arange(bits)) & 1).mean(axis=0)
        np.testing.assert_allclose(bit_freq, q, atol=0.05)
        mean_dist = plugin.mean_distance(spec)
        popcounts = ((masks[:, None] >> np.arange(bits)) & 1).sum(axis=1)
        assert float(popcounts.mean()) == pytest.approx(
            mean_dist, rel=0.1, abs=0.1
        )

    def test_law_specific_destinations(self, traffic, network):
        spec = conf_spec(traffic, network)
        net = spec.network_plugin
        sample = self._sample(spec)
        origins = np.asarray(sample.origins)
        dests = np.asarray(sample.destinations)
        bits = net.address_bits(spec)
        if traffic in ("bitrev", "transpose"):
            from repro.traffic.destinations import (
                bit_reversal_permutation,
                transpose_permutation,
            )

            perm = (bit_reversal_permutation(bits) if traffic == "bitrev"
                    else transpose_permutation(bits))
            np.testing.assert_array_equal(dests, perm[origins])
        elif traffic == "bitcomp":
            np.testing.assert_array_equal(dests, origins ^ ((1 << bits) - 1))
        elif traffic == "hotspot":
            beta = spec.option("beta", 0.1)
            hot = spec.option("hot", 0)
            share = float((dests == hot).mean())
            # beta plus the background's own mass on the hot node
            assert share >= 0.8 * beta

    def test_batch_generation_is_bit_identical(self, traffic, network):
        """sample_workload_batch(spec, net, h, gens)[r] must equal the
        per-replication sample_workload draw from the same seed —
        under both seed policies."""
        spec = conf_spec(traffic, network, horizon=120.0)
        plugin, net = spec.traffic_plugin, spec.network_plugin
        for policy in ("spawn", "sequential"):
            seeds = replication_seeds(7, 3, policy)
            batch = plugin.sample_workload_batch(
                spec, net, spec.horizon, [as_generator(s) for s in seeds]
            )
            singles = [
                plugin.sample_workload(spec, net, spec.horizon, as_generator(s))
                for s in seeds
            ]
            assert len(batch) == len(singles) == 3
            for b, s in zip(batch, singles):
                np.testing.assert_array_equal(b.times, s.times)
                np.testing.assert_array_equal(b.origins, s.origins)
                np.testing.assert_array_equal(b.destinations, s.destinations)

    def test_batched_engine_path_is_bit_identical(self, traffic, network):
        """The replication-batched fast path must survive the traffic
        axis: a batch of R greedy replications under every law equals
        R sequential runs, output for output."""
        spec = conf_spec(traffic, network, horizon=80.0, replications=3)
        runner = spec.plugin.batch_runner(spec)
        if runner is None:
            pytest.skip("network's engine does not batch")
        seeds = replication_seeds(spec.base_seed, 3, spec.seed_policy)
        assert runner(seeds) == [run_spec(spec, s) for s in seeds]


class TestTheoryGating:
    def test_paper_law_keeps_the_bracket(self):
        from repro.runner.engine import theory_bounds

        lower, upper = theory_bounds(conf_spec("uniform", "hypercube"))
        assert np.isfinite(lower) and np.isfinite(upper)

    def test_non_paper_laws_drop_the_bracket(self):
        from repro.runner.engine import theory_bounds

        for traffic in ("bitrev", "bitcomp", "hotspot", "bursty"):
            lower, upper = theory_bounds(conf_spec(traffic, "hypercube"))
            assert lower == -np.inf and upper == np.inf

    def test_only_uniform_declares_paper_law(self):
        assert [p.name for p in iter_traffics() if p.paper_law] == ["uniform"]

    def test_bounds_cli_agrees_with_runner_off_the_paper_law(self, capsys):
        """repro bounds must not print the eq. (1) stability verdict or
        Prop 12/13 bracket for a law the runner's theory_bounds refuses
        (the CLI/engine never-disagree invariant)."""
        from repro.__main__ import main

        for network, traffic in (
            ("hypercube", "bitrev"),
            ("butterfly", "transpose"),
            ("ring", "hotspot"),
        ):
            assert main(["bounds", "--network", network, "--traffic",
                         traffic, "--d", "4", "--rho", "0.7"]) == 0
            out = capsys.readouterr().out
            assert "closed-form theory" in out and traffic in out
            assert "stable" not in out
            assert "lower" not in out  # no bracket rows at all


class TestScenarioCatalog:
    def test_new_scenarios_registered(self):
        assert get_scenario("hypercube-greedy-hotspot").traffic == "hotspot"
        assert get_scenario("hypercube-greedy-bursty").traffic == "bursty"
        assert get_scenario("butterfly-greedy-transpose").traffic == "transpose"
        assert get_scenario("hypercube-greedy-bitcomp").traffic == "bitcomp"
        assert get_scenario("hypercube-twophase-bursty").scheme == "twophase"
        assert get_scenario("ring-greedy-hotspot").network == "ring"
        assert get_scenario("torus-greedy-hotspot").network == "torus"
        onoff = get_scenario("hypercube-greedy-bursty-onoff")
        assert onoff.option("mode") == "onoff"

    def test_hotspot_scenario_runs(self):
        m = measure(get_scenario("hypercube-greedy-hotspot").replace(
            replications=2, horizon=60.0, d=4))
        assert m.num_packets > 0
        assert m.within_bounds  # no bracket: (-inf, inf)

    def test_twophase_bursty_scenario_runs(self):
        m = measure(get_scenario("hypercube-twophase-bursty").replace(
            replications=2, horizon=60.0, d=4))
        assert m.num_packets > 0
        assert dict(m.metrics)["mean_hops"] > 0

    def test_bursty_delay_dominates_uniform_at_equal_load(self):
        """Same mean rate, fatter bursts: the batch law must hurt.
        (The physics the axis exists to expose.)"""
        base = conf_spec("uniform", "hypercube", horizon=300.0,
                         replications=3)
        bursty = conf_spec("bursty", "hypercube", horizon=300.0,
                           replications=3, extra={"burst": 8.0})
        assert measure(bursty).mean_delay > measure(base).mean_delay


class TestCustomTrafficPlugin:
    """End-to-end: a third-party law registered at runtime drives the
    full stack (spec validation, both engine routes, the cache)."""

    @pytest.fixture
    def shift_law(self):
        @register_traffic
        class ShiftTraffic(TrafficPlugin):
            name = "shift1"
            aliases = ("succ",)
            summary = "toy law: everyone targets node (x + 1) mod n"

            def destination_law(self, spec, network):
                class _Shift:
                    def __init__(self, n):
                        self.n = n

                    def sample_destinations(self, origins, rng=None):
                        return (np.asarray(origins, dtype=np.int64) + 1) % self.n

                return _Shift(network.num_sources(spec))

        yield ShiftTraffic
        unregister_traffic("shift1")

    def test_runs_on_two_networks(self, shift_law):
        for network in ("hypercube", "ring"):
            spec = ScenarioSpec(
                name="toy", network=network, traffic="succ",
                d=4, lam=0.3, horizon=60.0, replications=2,
            )
            assert spec.traffic == "shift1"
            m = measure(spec)
            assert m.num_packets > 0
            out = run_spec(spec, 3, keep_record=True)
            n = spec.network_plugin.num_sources(spec)
            wl = spec.network_plugin.build_workload(spec)
            s = wl.generate(30.0, as_generator(0))
            np.testing.assert_array_equal(
                s.destinations, (s.origins + 1) % n
            )
            assert out.num_packets > 0

    def test_unregistered_rejected_again(self, shift_law):
        unregister_traffic("shift1")
        with pytest.raises(ConfigurationError, match="shift1"):
            ScenarioSpec(name="x", traffic="shift1", rho=0.5)
        register_traffic(shift_law)  # restore for fixture teardown


class TestCustomNetworkWorkloadOverride:
    """A network that overrides build_workload stays authoritative on
    both the single-sample and the batch generation routes."""

    def test_override_wins_on_batch_route(self):
        from repro.networks import NetworkPlugin

        calls = []

        class Overriding(NetworkPlugin):
            name = "override-probe"

            def build_workload(self, spec):
                from repro.traffic.destinations import UniformNodeLaw
                from repro.traffic.workload import NodePoissonWorkload

                calls.append("build")
                return NodePoissonWorkload(8, 0.3, UniformNodeLaw(8))

            def build_topology(self, spec):
                from repro.topology.ring import Ring

                return Ring(8)

        plugin = Overriding()
        spec = ScenarioSpec(name="x", d=3, lam=0.3, horizon=30.0)
        gens = [as_generator(s) for s in replication_seeds(0, 2, "spawn")]
        samples = plugin.build_workload_batch(spec, 30.0, gens)
        assert calls  # went through the override, not the traffic axis
        assert len(samples) == 2


def test_no_traffic_literals_outside_traffic_package():
    """Grep-style guard: the tentpole's deliverable is that traffic
    dispatch lives in src/repro/traffic/ alone.  Any ``traffic ==``
    (or ``== spec.traffic``) literal elsewhere — or a surviving
    ``option("law")`` relic — is a regression to the closed law enum."""
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    assert src.is_dir()
    pattern = re.compile(
        r"""(\btraffic\s*==\s*["'])|(["']\s*==\s*spec\.traffic)"""
        r"""|(option\(\s*["']law["'])"""
    )
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if "traffic" in path.relative_to(src).parts[:1]:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if pattern.search(line):
                offenders.append(f"{path.relative_to(src)}:{lineno}: {line.strip()}")
    assert not offenders, "traffic literals outside repro.traffic:\n" + "\n".join(
        offenders
    )
